#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/ids.hpp"
#include "sim/time.hpp"

namespace dredbox::hyp {

enum class VmState : std::uint8_t { kProvisioning, kRunning, kTerminated };

std::string to_string(VmState state);

/// A guest-visible DIMM. Boot DIMMs back onto brick-local DDR; hotplugged
/// DIMMs back onto disaggregated segments attached through the fabric.
struct GuestDimm {
  std::uint64_t size = 0;
  bool hotplugged = false;
  hw::SegmentId backing_segment;  // valid only for disaggregated DIMMs
  sim::Time plugged_at;
};

/// A commodity virtual machine hosted by the dReDBox Type-1 hypervisor.
/// Tracks the guest memory topology (DIMMs + balloon) and the resource
/// envelope used by orchestration and the TCO study.
class VirtualMachine {
 public:
  VirtualMachine(hw::VmId id, std::size_t vcpus, std::uint64_t boot_memory);

  hw::VmId id() const { return id_; }
  std::size_t vcpus() const { return vcpus_; }
  VmState state() const { return state_; }

  void set_running() { state_ = VmState::kRunning; }
  void terminate() { state_ = VmState::kTerminated; }

  /// Degraded mode: one of the guest's disaggregated DIMMs lost its
  /// backing (dMEMBRICK crash) and has not been re-homed yet. The VM keeps
  /// running on its remaining memory; the orchestrator clears the flag
  /// once every DIMM is backed again.
  bool degraded() const { return degraded_; }
  void set_degraded(bool degraded) { degraded_ = degraded; }

  // --- guest memory topology ---
  const std::vector<GuestDimm>& dimms() const { return dimms_; }
  std::uint64_t installed_bytes() const;
  std::uint64_t hotplugged_bytes() const;

  /// Hypervisor-side: inserts a new RAM DIMM at runtime (Section IV-B).
  void add_dimm(const GuestDimm& dimm);

  /// Removes the most recent hotplugged DIMM backed by `segment`; returns
  /// its size, or 0 when no such DIMM exists.
  std::uint64_t remove_dimm(hw::SegmentId segment);

  /// Re-points every DIMM backed by `from` at `to` (segment evacuation:
  /// the bytes moved to another dMEMBRICK; the guest topology is
  /// unchanged). Returns the number of DIMMs re-pointed.
  std::size_t rebind_dimm(hw::SegmentId from, hw::SegmentId to);

  /// True when any hotplugged DIMM is backed by `segment`.
  bool has_dimm_backed_by(hw::SegmentId segment) const;

  // --- balloon (elastic redistribution of disaggregated memory) ---
  std::uint64_t balloon_bytes() const { return balloon_bytes_; }
  /// Inflating the balloon takes memory away from the guest.
  void balloon_inflate(std::uint64_t bytes);
  void balloon_deflate(std::uint64_t bytes);

  /// Memory the guest can actually use right now.
  std::uint64_t usable_bytes() const { return installed_bytes() - balloon_bytes_; }

  std::string describe() const;

 private:
  hw::VmId id_;
  std::size_t vcpus_;
  VmState state_ = VmState::kProvisioning;
  bool degraded_ = false;
  std::vector<GuestDimm> dimms_;
  std::uint64_t balloon_bytes_ = 0;
};

}  // namespace dredbox::hyp
