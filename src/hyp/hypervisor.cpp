#include "hyp/hypervisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/span.hpp"

namespace dredbox::hyp {

Hypervisor::Hypervisor(hw::ComputeBrick& brick, os::BareMetalOs& os,
                       const HypervisorTiming& timing)
    : brick_{brick}, os_{os}, timing_{timing} {
  if (os.brick() != brick.id()) {
    throw std::invalid_argument("Hypervisor: OS instance belongs to a different brick");
  }
}

hw::BrickId Hypervisor::brick() const { return brick_.id(); }

void Hypervisor::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    created_metric_ = destroyed_metric_ = nullptr;
    dimms_added_metric_ = dimms_removed_metric_ = nullptr;
    balloon_reclaims_metric_ = balloon_returns_metric_ = nullptr;
    running_metric_ = committed_metric_ = degraded_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  created_metric_ = &m.counter("hyp.vms.created");
  destroyed_metric_ = &m.counter("hyp.vms.destroyed");
  dimms_added_metric_ = &m.counter("hyp.dimms.hotplugged");
  dimms_removed_metric_ = &m.counter("hyp.dimms.removed");
  balloon_reclaims_metric_ = &m.counter("hyp.balloon.reclaims");
  balloon_returns_metric_ = &m.counter("hyp.balloon.returns");
  running_metric_ = &m.gauge("hyp.vms.running");
  committed_metric_ = &m.gauge("hyp.memory.committed_bytes");
  degraded_metric_ = &m.gauge("hyp.vms.degraded");
}

std::size_t Hypervisor::rebind_dimm_backing(hw::SegmentId from, hw::SegmentId to) {
  std::size_t rebound = 0;
  for (auto& [id, vm] : vms_) {
    rebound += vm->rebind_dimm(from, to);
    auto lost = lost_backings_.find(id);
    if (lost != lost_backings_.end()) {
      lost->second.erase(std::remove(lost->second.begin(), lost->second.end(), from),
                         lost->second.end());
      refresh_degraded(*vm);
    }
  }
  return rebound;
}

void Hypervisor::note_backing_lost(hw::SegmentId segment) {
  for (auto& [id, vm] : vms_) {
    if (!vm->has_dimm_backed_by(segment)) continue;
    auto& lost = lost_backings_[id];
    if (std::find(lost.begin(), lost.end(), segment) == lost.end()) lost.push_back(segment);
    if (!vm->degraded()) {
      vm->set_degraded(true);
      if (degraded_metric_ != nullptr) degraded_metric_->add(1.0);
    }
  }
}

void Hypervisor::note_backing_restored(hw::SegmentId segment) {
  for (auto& [id, vm] : vms_) {
    auto lost = lost_backings_.find(id);
    if (lost == lost_backings_.end()) continue;
    lost->second.erase(std::remove(lost->second.begin(), lost->second.end(), segment),
                       lost->second.end());
    refresh_degraded(*vm);
  }
}

void Hypervisor::refresh_degraded(VirtualMachine& vm) {
  auto lost = lost_backings_.find(vm.id());
  const bool still_degraded = lost != lost_backings_.end() && !lost->second.empty();
  if (vm.degraded() && !still_degraded) {
    vm.set_degraded(false);
    if (degraded_metric_ != nullptr) degraded_metric_->add(-1.0);
  }
}

std::size_t Hypervisor::degraded_vms() const {
  std::size_t n = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->degraded()) ++n;
  }
  return n;
}

std::uint64_t Hypervisor::ballooned_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, vm] : vms_) total += vm->balloon_bytes();
  return total;
}

std::uint64_t Hypervisor::available_bytes() const {
  const std::uint64_t host = os_.total_ram_bytes() + ballooned_bytes();
  return host > committed_bytes_ ? host - committed_bytes_ : 0;
}

sim::Time Hypervisor::balloon_reclaim(hw::VmId vm_id, std::uint64_t size) {
  VirtualMachine& guest = vm(vm_id);
  guest.balloon_inflate(size);  // throws if the guest cannot give it back
  if (balloon_reclaims_metric_ != nullptr) balloon_reclaims_metric_->add();
  const double gib = static_cast<double>(size) / static_cast<double>(1ull << 30);
  return sim::scale(timing_.balloon_per_gib, gib);
}

sim::Time Hypervisor::balloon_return(hw::VmId vm_id, std::uint64_t size) {
  VirtualMachine& guest = vm(vm_id);
  if (size > guest.balloon_bytes()) {
    throw std::logic_error("Hypervisor::balloon_return: balloon holds less than requested");
  }
  if (size > available_bytes()) {
    throw std::logic_error(
        "Hypervisor::balloon_return: ballooned pages were re-committed elsewhere; "
        "attach remote memory first");
  }
  guest.balloon_deflate(size);
  if (balloon_returns_metric_ != nullptr) balloon_returns_metric_->add();
  const double gib = static_cast<double>(size) / static_cast<double>(1ull << 30);
  return sim::scale(timing_.balloon_per_gib, gib);
}

std::optional<hw::VmId> Hypervisor::create_vm(std::size_t vcpus, std::uint64_t boot_memory) {
  if (vcpus > brick_.cores_free()) return std::nullopt;
  if (boot_memory > available_bytes()) return std::nullopt;
  brick_.reserve_cores(vcpus);
  committed_bytes_ += boot_memory;
  const hw::VmId id{next_vm_++};
  auto vm = std::make_unique<VirtualMachine>(id, vcpus, boot_memory);
  vm->set_running();
  vms_.emplace(id, std::move(vm));
  if (created_metric_ != nullptr) {
    created_metric_->add();
    running_metric_->add(1.0);
    committed_metric_->add(static_cast<double>(boot_memory));
  }
  return id;
}

bool Hypervisor::destroy_vm(hw::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) return false;
  VirtualMachine& vm = *it->second;
  brick_.release_cores(vm.vcpus());
  committed_bytes_ -= vm.installed_bytes();
  if (destroyed_metric_ != nullptr) {
    destroyed_metric_->add();
    running_metric_->add(-1.0);
    committed_metric_->add(-static_cast<double>(vm.installed_bytes()));
  }
  vm.terminate();
  vms_.erase(it);
  return true;
}

VirtualMachine& Hypervisor::vm(hw::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    throw std::out_of_range("Hypervisor::vm: unknown VM " + id.to_string());
  }
  return *it->second;
}

const VirtualMachine& Hypervisor::vm(hw::VmId id) const {
  return const_cast<Hypervisor*>(this)->vm(id);
}

std::vector<hw::VmId> Hypervisor::vms() const {
  std::vector<hw::VmId> out;
  out.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

sim::Time Hypervisor::expand_vm_memory(hw::VmId vm_id, std::uint64_t size,
                                       hw::SegmentId segment, sim::Time now,
                                       const sim::TraceContext& ctx) {
  if (size > available_bytes()) {
    throw std::logic_error(
        "Hypervisor::expand_vm_memory: host has insufficient memory; attach remote "
        "memory first (available " +
        std::to_string(available_bytes()) + ", requested " + std::to_string(size) + ")");
  }
  VirtualMachine& guest = vm(vm_id);
  GuestDimm dimm;
  dimm.size = size;
  dimm.hotplugged = true;
  dimm.backing_segment = segment;
  dimm.plugged_at = now;
  guest.add_dimm(dimm);
  committed_bytes_ += size;

  const double gib = static_cast<double>(size) / static_cast<double>(1ull << 30);
  const sim::Time latency =
      timing_.dimm_insert_fixed + sim::scale(timing_.guest_online_per_gib, gib);
  if (dimms_added_metric_ != nullptr) {
    dimms_added_metric_->add();
    committed_metric_->add(static_cast<double>(size));
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kHypervisor,
                     "DIMM add + guest online", now};
      span.context(ctx.valid() ? telemetry_->tracer().child_of(ctx)
                               : telemetry_->tracer().begin_trace());
      span.arg("vm", vm_id.to_string())
          .arg("bytes", std::to_string(size))
          .arg("brick", brick_.id().to_string());
      span.end(now + latency);
    }
  }
  return latency;
}

sim::Time Hypervisor::shrink_vm_memory(hw::VmId vm_id, hw::SegmentId segment) {
  VirtualMachine& guest = vm(vm_id);
  const std::uint64_t removed = guest.remove_dimm(segment);
  if (removed == 0) return sim::Time::zero();
  committed_bytes_ -= removed;
  if (dimms_removed_metric_ != nullptr) {
    dimms_removed_metric_->add();
    committed_metric_->add(-static_cast<double>(removed));
  }
  const double gib = static_cast<double>(removed) / static_cast<double>(1ull << 30);
  return timing_.dimm_insert_fixed + sim::scale(timing_.balloon_per_gib, gib);
}

}  // namespace dredbox::hyp
