#include "hyp/vm.hpp"

#include <stdexcept>

namespace dredbox::hyp {

std::string to_string(VmState state) {
  switch (state) {
    case VmState::kProvisioning:
      return "provisioning";
    case VmState::kRunning:
      return "running";
    case VmState::kTerminated:
      return "terminated";
  }
  return "<unknown vm state>";
}

VirtualMachine::VirtualMachine(hw::VmId id, std::size_t vcpus, std::uint64_t boot_memory)
    : id_{id}, vcpus_{vcpus} {
  if (vcpus == 0) throw std::invalid_argument("VirtualMachine: needs at least one vCPU");
  if (boot_memory == 0) throw std::invalid_argument("VirtualMachine: needs boot memory");
  GuestDimm boot;
  boot.size = boot_memory;
  boot.hotplugged = false;
  dimms_.push_back(boot);
}

std::uint64_t VirtualMachine::installed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& d : dimms_) total += d.size;
  return total;
}

std::uint64_t VirtualMachine::hotplugged_bytes() const {
  std::uint64_t total = 0;
  for (const auto& d : dimms_) {
    if (d.hotplugged) total += d.size;
  }
  return total;
}

void VirtualMachine::add_dimm(const GuestDimm& dimm) {
  if (dimm.size == 0) throw std::invalid_argument("add_dimm: zero-sized DIMM");
  if (state_ == VmState::kTerminated) {
    throw std::logic_error("add_dimm: VM " + id_.to_string() + " is terminated");
  }
  dimms_.push_back(dimm);
}

std::uint64_t VirtualMachine::remove_dimm(hw::SegmentId segment) {
  for (auto it = dimms_.rbegin(); it != dimms_.rend(); ++it) {
    if (it->hotplugged && it->backing_segment == segment) {
      // The balloon holds guest pages; removing a DIMM may not shrink the
      // guest below what the balloon has claimed (the kernel could not
      // offline those frames). Deflate first.
      if (balloon_bytes_ > installed_bytes() - it->size) {
        throw std::logic_error(
            "remove_dimm: balloon holds more than the remaining memory; deflate before "
            "hot-removing");
      }
      const std::uint64_t size = it->size;
      dimms_.erase(std::next(it).base());
      return size;
    }
  }
  return 0;
}

std::size_t VirtualMachine::rebind_dimm(hw::SegmentId from, hw::SegmentId to) {
  std::size_t rebound = 0;
  for (auto& dimm : dimms_) {
    if (dimm.hotplugged && dimm.backing_segment == from) {
      dimm.backing_segment = to;
      ++rebound;
    }
  }
  return rebound;
}

bool VirtualMachine::has_dimm_backed_by(hw::SegmentId segment) const {
  for (const auto& dimm : dimms_) {
    if (dimm.hotplugged && dimm.backing_segment == segment) return true;
  }
  return false;
}

void VirtualMachine::balloon_inflate(std::uint64_t bytes) {
  if (balloon_bytes_ + bytes > installed_bytes()) {
    throw std::logic_error("balloon_inflate: balloon cannot exceed installed memory");
  }
  balloon_bytes_ += bytes;
}

void VirtualMachine::balloon_deflate(std::uint64_t bytes) {
  if (bytes > balloon_bytes_) {
    throw std::logic_error("balloon_deflate: deflating more than the balloon holds");
  }
  balloon_bytes_ -= bytes;
}

std::string VirtualMachine::describe() const {
  return "vm#" + id_.to_string() + " (" + std::to_string(vcpus_) + " vCPUs, " +
         std::to_string(installed_bytes() >> 20) + " MiB, " + to_string(state_) + ")";
}

}  // namespace dredbox::hyp
