#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <map>
#include <vector>

#include "hw/compute_brick.hpp"
#include "hyp/vm.hpp"
#include "os/baremetal_os.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace dredbox::hyp {

/// Timing of hypervisor-side memory operations (Section IV-B: the QEMU
/// memory hotplug implementation adds new RAM DIMMs at runtime and the
/// guest kernel onlines them through its own hotplug support).
struct HypervisorTiming {
  sim::Time dimm_insert_fixed = sim::Time::ms(15);    // device model + ACPI event
  sim::Time guest_online_per_gib = sim::Time::ms(90); // guest kernel hot-add
  sim::Time balloon_per_gib = sim::Time::ms(35);
};

/// The Type-1 hypervisor instance on one dCOMPUBRICK. Executes commodity
/// VMs, reserves APU cores and guest memory against the brick's local DDR
/// plus whatever remote memory the baremetal OS has hot-added, and
/// supports runtime guest memory expansion (DIMM hotplug) and ballooning.
class Hypervisor {
 public:
  Hypervisor(hw::ComputeBrick& brick, os::BareMetalOs& os,
             const HypervisorTiming& timing = {});

  hw::BrickId brick() const;

  /// Creates a VM with `vcpus` cores and `boot_memory` bytes. Fails
  /// (nullopt) when cores or host memory are short.
  std::optional<hw::VmId> create_vm(std::size_t vcpus, std::uint64_t boot_memory);

  /// Destroys a VM, releasing cores and guest memory accounting.
  bool destroy_vm(hw::VmId vm);

  VirtualMachine& vm(hw::VmId id);
  const VirtualMachine& vm(hw::VmId id) const;
  bool has_vm(hw::VmId id) const { return vms_.count(id) != 0; }
  std::vector<hw::VmId> vms() const;
  std::size_t vm_count() const { return vms_.size(); }

  /// Memory committed to guests (boot + hotplugged DIMMs).
  std::uint64_t committed_bytes() const { return committed_bytes_; }

  /// Pages currently reclaimed from guests through their balloons; these
  /// are back in the host's hands and count as available again (the
  /// "revisited ballooning subsystem for elastic distribution of
  /// disaggregated memory" of the project objectives).
  std::uint64_t ballooned_bytes() const;

  /// Host memory still available for new guests or expansions
  /// (host RAM - committed + ballooned-out pages).
  std::uint64_t available_bytes() const;

  /// Inflates `vm`'s balloon by `size`, returning the pages to the host.
  /// Returns the guest-side latency. Throws when the guest cannot give
  /// that much back.
  sim::Time balloon_reclaim(hw::VmId vm, std::uint64_t size);

  /// Deflates `vm`'s balloon by `size`, handing pages back to the guest.
  /// Requires the host to have the memory available.
  sim::Time balloon_return(hw::VmId vm, std::uint64_t size);

  /// Hypervisor half of the scale-up path: after the baremetal OS onlines
  /// remote memory, plug a new DIMM of `size` bytes (backed by `segment`)
  /// into the guest and online it there. Returns the hypervisor+guest
  /// latency. Throws when the host lacks the memory. `ctx`, when valid,
  /// nests the recorded DIMM-add span under the caller's trace (the SDM-C
  /// passes its scale-up root).
  sim::Time expand_vm_memory(hw::VmId vm, std::uint64_t size, hw::SegmentId segment,
                             sim::Time now, const sim::TraceContext& ctx = {});

  /// Scale-down: balloon out `size` bytes then remove the DIMM backed by
  /// `segment`. Returns the latency; 0-size result means unknown segment.
  sim::Time shrink_vm_memory(hw::VmId vm, hw::SegmentId segment);

  // --- fault recovery (graceful degradation) ---
  /// Segment evacuation landed: every guest DIMM backed by `from` now
  /// points at `to` (the bytes moved to another dMEMBRICK; the guest
  /// topology is unchanged). Clears the degraded flag of VMs whose last
  /// lost DIMM this was. Returns the number of DIMMs re-pointed.
  std::size_t rebind_dimm_backing(hw::SegmentId from, hw::SegmentId to);

  /// A dMEMBRICK crash took `segment`'s backing away before it could be
  /// evacuated: the owning VM (if any) enters degraded mode but keeps
  /// running on its remaining memory.
  void note_backing_lost(hw::SegmentId segment);

  /// The brick that backs `segment` came back: VMs whose only lost DIMMs
  /// rode it leave degraded mode.
  void note_backing_restored(hw::SegmentId segment);

  /// VMs currently running in degraded mode on this brick.
  std::size_t degraded_vms() const;

  const HypervisorTiming& timing() const { return timing_; }

  /// Wires rack-wide telemetry in: VM lifecycle counters, the aggregate
  /// running-VM and committed-byte gauges (deltas, so every brick's
  /// hypervisor folds into one rack view), balloon/DIMM event counters
  /// and a kHypervisor span per guest expansion. Null detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

 private:
  hw::ComputeBrick& brick_;
  os::BareMetalOs& os_;
  HypervisorTiming timing_;
  // Ordered by id so guest enumeration (balloon sweeps, vm_ids()) is
  // deterministic.
  std::map<hw::VmId, std::unique_ptr<VirtualMachine>> vms_;
  std::uint64_t committed_bytes_ = 0;
  std::uint32_t next_vm_ = 1;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* created_metric_ = nullptr;
  sim::metrics::Counter* destroyed_metric_ = nullptr;
  sim::metrics::Counter* dimms_added_metric_ = nullptr;
  sim::metrics::Counter* dimms_removed_metric_ = nullptr;
  sim::metrics::Counter* balloon_reclaims_metric_ = nullptr;
  sim::metrics::Counter* balloon_returns_metric_ = nullptr;
  sim::metrics::Gauge* running_metric_ = nullptr;
  sim::metrics::Gauge* committed_metric_ = nullptr;
  sim::metrics::Gauge* degraded_metric_ = nullptr;

  /// Tracks segments whose backing is currently lost, per VM, so restore /
  /// rebind can tell when a VM's last lost DIMM is healed.
  std::map<hw::VmId, std::vector<hw::SegmentId>> lost_backings_;

  void refresh_degraded(VirtualMachine& vm);
};

}  // namespace dredbox::hyp
