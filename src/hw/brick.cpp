#include "hw/brick.hpp"

#include <stdexcept>

namespace dredbox::hw {

std::string to_string(BrickKind kind) {
  switch (kind) {
    case BrickKind::kCompute:
      return "dCOMPUBRICK";
    case BrickKind::kMemory:
      return "dMEMBRICK";
    case BrickKind::kAccelerator:
      return "dACCELBRICK";
  }
  return "<unknown brick kind>";
}

std::string to_string(PowerState state) {
  switch (state) {
    case PowerState::kOff:
      return "off";
    case PowerState::kIdle:
      return "idle";
    case PowerState::kActive:
      return "active";
  }
  return "<unknown power state>";
}

Brick::Brick(BrickId id, BrickKind kind, TrayId tray, std::size_t num_ports,
             double port_rate_gbps)
    : id_{id}, kind_{kind}, tray_{tray} {
  if (!id.valid()) throw std::invalid_argument("Brick: invalid id");
  ports_.reserve(num_ports);
  for (std::size_t i = 0; i < num_ports; ++i) {
    ports_.push_back(TransceiverPort{PortId{static_cast<std::uint32_t>(i)},
                                     /*circuit_based=*/true, port_rate_gbps,
                                     /*connected=*/false});
  }
}

void Brick::power_off() {
  for (auto& p : ports_) {
    if (p.connected) {
      throw std::logic_error("Brick::power_off: brick " + id_.to_string() +
                             " still has connected ports; tear circuits down first");
    }
  }
  power_ = PowerState::kOff;
}

void Brick::set_active(bool active) {
  if (power_ == PowerState::kOff) {
    throw std::logic_error("Brick::set_active: brick " + id_.to_string() + " is powered off");
  }
  power_ = active ? PowerState::kActive : PowerState::kIdle;
}

TransceiverPort* Brick::find_free_port(bool circuit_based) {
  for (auto& p : ports_) {
    if (p.circuit_based == circuit_based && !p.connected) return &p;
  }
  return nullptr;
}

std::size_t Brick::free_port_count(bool circuit_based) const {
  std::size_t n = 0;
  for (const auto& p : ports_) {
    if (p.circuit_based == circuit_based && !p.connected) ++n;
  }
  return n;
}

void Brick::dedicate_packet_ports(std::size_t n) {
  if (n > ports_.size()) {
    throw std::invalid_argument("Brick::dedicate_packet_ports: brick has only " +
                                std::to_string(ports_.size()) + " ports");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (ports_[i].connected) {
      throw std::logic_error("Brick::dedicate_packet_ports: port in use");
    }
    ports_[i].circuit_based = false;
  }
}

std::string Brick::describe() const {
  return to_string(kind_) + "#" + id_.to_string() + " (tray " + tray_.to_string() + ", " +
         std::to_string(ports_.size()) + " ports, " +
         (failed_ ? std::string{"FAILED"} : to_string(power_)) + ")";
}

}  // namespace dredbox::hw
