#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/brick.hpp"
#include "hw/ids.hpp"

namespace dredbox::hw {

/// Memory module technology behind a dMEMBRICK controller. The glue logic
/// interfaces both through the same AXI interconnect (Section II), so both
/// are first-class here; they differ in access latency and bandwidth
/// (modelled in memsys).
enum class MemoryTechnology : std::uint8_t { kDdr4, kHmc };

std::string to_string(MemoryTechnology tech);

/// Configuration of a dMEMBRICK (Fig. 4). A brick is dimensioned by memory
/// size and by the number of memory controllers it supports, and is not
/// limited to one memory technology.
struct MemoryBrickConfig {
  std::uint64_t capacity_bytes = 32ull << 30;
  std::size_t memory_controllers = 2;
  MemoryTechnology technology = MemoryTechnology::kDdr4;
  std::size_t transceiver_ports = 8;  // links: aggregate BW or partitioned
  double port_rate_gbps = 10.0;
};

/// A carved-out slice of the brick's pool, granted to one dCOMPUBRICK.
struct MemorySegment {
  SegmentId id;
  std::uint64_t base = 0;  // offset within the brick pool
  std::uint64_t size = 0;
  BrickId owner;           // consuming dCOMPUBRICK (invalid => unassigned)

  std::uint64_t end() const { return base + size; }
};

/// The memory building block: a large, flexible pool that can be
/// partitioned and (re)distributed among all processing nodes. Segment
/// allocation is first-fit over a free list with coalescing on release,
/// so long-running rack simulations do not leak address space.
class MemoryBrick : public Brick {
 public:
  MemoryBrick(BrickId id, TrayId tray, const MemoryBrickConfig& config = {});

  const MemoryBrickConfig& config() const { return config_; }

  std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  std::uint64_t free_bytes() const { return config_.capacity_bytes - allocated_bytes_; }

  /// Largest single segment currently allocatable (contiguity matters:
  /// RMST entries map contiguous remote ranges).
  std::uint64_t largest_free_extent() const;

  /// Carves `size` bytes for `owner`. Returns the segment descriptor or
  /// nullopt when no contiguous extent fits.
  std::optional<MemorySegment> allocate(std::uint64_t size, BrickId owner);

  /// Releases a segment; returns false when the id is unknown.
  bool release(SegmentId segment);

  /// Re-assigns a live segment to a different consuming dCOMPUBRICK
  /// (VM migration re-points segments without moving data). Returns
  /// false when the id is unknown.
  bool reassign(SegmentId segment, BrickId new_owner);

  std::optional<MemorySegment> find_segment(SegmentId segment) const;
  const std::vector<MemorySegment>& segments() const { return segments_; }

  /// Bytes held by one consuming compute brick.
  std::uint64_t bytes_owned_by(BrickId owner) const;

  std::string describe_resources() const;

 private:
  struct FreeExtent {
    std::uint64_t base;
    std::uint64_t size;
  };

  MemoryBrickConfig config_;
  std::vector<MemorySegment> segments_;
  std::vector<FreeExtent> free_list_;  // sorted by base, coalesced
  std::uint64_t allocated_bytes_ = 0;
  /// Segment ids are namespaced by brick (high bits carry the brick id) so
  /// that segments from different dMEMBRICKs never collide inside one
  /// consumer's RMST.
  std::uint32_t next_segment_;

  void coalesce();
};

}  // namespace dredbox::hw
