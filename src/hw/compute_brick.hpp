#pragma once

#include <cstdint>
#include <string>

#include "hw/brick.hpp"
#include "hw/tgl.hpp"

namespace dredbox::hw {

/// Configuration of a dCOMPUBRICK (Fig. 3). Defaults model the Zynq
/// Ultrascale+ MPSoC used by the prototype: a quad-core A53 APU, a
/// dual-core R5 RPU, local off-chip DDR, and GTH transceivers split
/// between the circuit-based and packet-based substrates.
struct ComputeBrickConfig {
  std::size_t apu_cores = 4;
  std::size_t rpu_cores = 2;
  std::uint64_t local_memory_bytes = 4ull << 30;  // local DDR
  std::size_t transceiver_ports = 8;              // GTH lanes
  double port_rate_gbps = 10.0;
  std::size_t rmst_entries = Rmst::kDefaultCapacity;

  /// Brick-physical base of the remote-memory window the TGL decodes.
  /// Everything below is local DDR / MMIO; everything at or above is
  /// matched against the RMST.
  std::uint64_t remote_window_base = 1ull << 40;  // 1 TiB
};

/// The compute building block: hosts software execution (APU), local
/// memory, and the Transaction Glue Logic that bridges to disaggregated
/// resources.
class ComputeBrick : public Brick {
 public:
  ComputeBrick(BrickId id, TrayId tray, const ComputeBrickConfig& config = {});

  const ComputeBrickConfig& config() const { return config_; }

  std::size_t apu_cores() const { return config_.apu_cores; }
  std::uint64_t local_memory_bytes() const { return config_.local_memory_bytes; }

  TransactionGlueLogic& tgl() { return tgl_; }
  const TransactionGlueLogic& tgl() const { return tgl_; }

  /// Core accounting for VM placement (TCO study and orchestration).
  std::size_t cores_in_use() const { return cores_in_use_; }
  std::size_t cores_free() const { return config_.apu_cores - cores_in_use_; }
  void reserve_cores(std::size_t n);
  void release_cores(std::size_t n);

  /// True when an address falls inside the remote window (TGL territory)
  /// rather than local DDR.
  bool is_remote_address(std::uint64_t addr) const {
    return addr >= config_.remote_window_base;
  }

  /// Next unmapped brick-physical address inside the remote window large
  /// enough for `size` bytes; used when installing new RMST entries.
  std::uint64_t find_remote_window(std::uint64_t size) const;

  std::string describe_resources() const;

 private:
  ComputeBrickConfig config_;
  TransactionGlueLogic tgl_;
  std::size_t cores_in_use_ = 0;
};

}  // namespace dredbox::hw
