#include "hw/tray.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::hw {

Tray::Tray(TrayId id, std::size_t slots) : id_{id} {
  if (slots == 0) throw std::invalid_argument("Tray: needs at least one slot");
  slots_.assign(slots, BrickId{});
}

std::size_t Tray::occupied_slots() const {
  return static_cast<std::size_t>(std::count_if(slots_.begin(), slots_.end(),
                                                [](BrickId b) { return b.valid(); }));
}

std::size_t Tray::plug(BrickId brick) {
  if (!brick.valid()) throw std::invalid_argument("Tray::plug: invalid brick id");
  if (hosts(brick)) {
    throw std::logic_error("Tray::plug: brick " + brick.to_string() + " already plugged");
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid()) {
      slots_[i] = brick;
      return i;
    }
  }
  throw std::logic_error("Tray::plug: tray " + id_.to_string() + " is full");
}

bool Tray::unplug(BrickId brick) {
  for (auto& slot : slots_) {
    if (slot == brick) {
      slot = BrickId{};
      return true;
    }
  }
  return false;
}

bool Tray::hosts(BrickId brick) const {
  return std::find(slots_.begin(), slots_.end(), brick) != slots_.end();
}

std::vector<BrickId> Tray::bricks() const {
  std::vector<BrickId> out;
  for (const auto& slot : slots_) {
    if (slot.valid()) out.push_back(slot);
  }
  return out;
}

std::string Tray::describe() const {
  return "tray#" + id_.to_string() + " (" + std::to_string(occupied_slots()) + "/" +
         std::to_string(slot_count()) + " slots)";
}

}  // namespace dredbox::hw
