#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <map>
#include <vector>

#include "hw/accel_brick.hpp"
#include "hw/brick.hpp"
#include "hw/compute_brick.hpp"
#include "hw/memory_brick.hpp"
#include "hw/power.hpp"
#include "hw/tray.hpp"

namespace dredbox::hw {

/// The rack: owner of all trays and bricks of one dReDBox deployment.
/// Construction follows the tray-level pooling of Fig. 1 — trays are added
/// first, then bricks are hot-plugged into them. The rack exposes typed
/// accessors, aggregate inventories, and first-order power accounting used
/// by the TCO study.
class Rack {
 public:
  Rack() = default;

  // --- construction ---
  TrayId add_tray(std::size_t slots = 16);

  ComputeBrick& add_compute_brick(TrayId tray, const ComputeBrickConfig& config = {});
  MemoryBrick& add_memory_brick(TrayId tray, const MemoryBrickConfig& config = {});
  AcceleratorBrick& add_accelerator_brick(TrayId tray, const AccelBrickConfig& config = {});

  /// Hot-unplugs and destroys a brick. Throws when the brick has connected
  /// ports or reserved resources (the orchestrator must drain it first).
  void remove_brick(BrickId id);

  // --- lookup ---
  bool has_brick(BrickId id) const { return bricks_.count(id) != 0; }
  Brick& brick(BrickId id);
  const Brick& brick(BrickId id) const;

  /// Typed access; throws std::logic_error on kind mismatch.
  ComputeBrick& compute_brick(BrickId id);
  MemoryBrick& memory_brick(BrickId id);
  AcceleratorBrick& accelerator_brick(BrickId id);
  const ComputeBrick& compute_brick(BrickId id) const;
  const MemoryBrick& memory_brick(BrickId id) const;
  const AcceleratorBrick& accelerator_brick(BrickId id) const;

  Tray& tray(TrayId id);
  const Tray& tray(TrayId id) const;

  std::vector<BrickId> bricks_of_kind(BrickKind kind) const;
  std::vector<BrickId> all_bricks() const;
  std::size_t brick_count() const { return bricks_.size(); }
  std::size_t tray_count() const { return trays_.size(); }

  // --- aggregates (Fig. 11: resource-equivalent datacenters) ---
  std::size_t total_compute_cores() const;
  std::uint64_t total_pool_memory_bytes() const;

  // --- power (Section VI) ---
  /// Instantaneous draw of all bricks under `model`, given each brick's
  /// power state, plus the optical switch ports in use.
  double power_draw_watts(const PowerModel& model, std::size_t switch_ports_in_use = 0) const;

  std::string describe() const;

 private:
  // Ordered by id so every rack-wide sweep (inventory, power sweeps,
  // scheduling scans) enumerates bricks deterministically.
  std::map<BrickId, std::unique_ptr<Brick>> bricks_;
  std::vector<Tray> trays_;
  std::uint32_t next_brick_ = 1;
  std::uint32_t next_tray_ = 1;

  BrickId next_brick_id() { return BrickId{next_brick_++}; }
  template <typename T>
  T& typed_brick(BrickId id, BrickKind expected);
};

}  // namespace dredbox::hw
