#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace dredbox::hw {

/// Strongly-typed identifier; Tag distinguishes brick/tray/segment/... ids
/// so they cannot be mixed accidentally.
template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value{v} {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr auto operator<=>(const Id&) const = default;

  std::string to_string() const {
    return valid() ? std::to_string(value) : std::string{"<invalid>"};
  }
};

struct BrickTag {};
struct TrayTag {};
struct SegmentTag {};
struct PortTag {};
struct CircuitTag {};
struct VmTag {};

using BrickId = Id<BrickTag>;
using TrayId = Id<TrayTag>;
using SegmentId = Id<SegmentTag>;
using PortId = Id<PortTag>;
using CircuitId = Id<CircuitTag>;
using VmId = Id<VmTag>;

}  // namespace dredbox::hw

template <typename Tag>
struct std::hash<dredbox::hw::Id<Tag>> {
  std::size_t operator()(const dredbox::hw::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
