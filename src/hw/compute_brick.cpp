#include "hw/compute_brick.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dredbox::hw {

ComputeBrick::ComputeBrick(BrickId id, TrayId tray, const ComputeBrickConfig& config)
    : Brick{id, BrickKind::kCompute, tray, config.transceiver_ports, config.port_rate_gbps},
      config_{config},
      tgl_{config.rmst_entries} {
  if (config.apu_cores == 0) {
    throw std::invalid_argument("ComputeBrick: needs at least one APU core");
  }
}

void ComputeBrick::reserve_cores(std::size_t n) {
  if (n > cores_free()) {
    throw std::logic_error("ComputeBrick::reserve_cores: requested " + std::to_string(n) +
                           " but only " + std::to_string(cores_free()) + " free");
  }
  cores_in_use_ += n;
  set_active(cores_in_use_ > 0);
}

void ComputeBrick::release_cores(std::size_t n) {
  if (n > cores_in_use_) {
    throw std::logic_error("ComputeBrick::release_cores: releasing more cores than in use");
  }
  cores_in_use_ -= n;
  set_active(cores_in_use_ > 0);
}

std::uint64_t ComputeBrick::find_remote_window(std::uint64_t size) const {
  // Collect occupied windows sorted by base, then first-fit scan the gaps.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> used;  // (base, end)
  for (const auto& e : tgl_.rmst().entries()) {
    // A window ending exactly at 2^64 is valid; clamp its exclusive end so
    // the gap scan never sees a wrapped (tiny) end.
    const std::uint64_t end =
        e.size > UINT64_MAX - e.base ? UINT64_MAX : e.base + e.size;
    used.emplace_back(e.base, end);
  }
  std::sort(used.begin(), used.end());

  std::uint64_t cursor = config_.remote_window_base;
  for (const auto& [base, end] : used) {
    if (base >= cursor && base - cursor >= size) return cursor;
    cursor = std::max(cursor, end);
  }
  return cursor;  // space above the highest mapping
}

std::string ComputeBrick::describe_resources() const {
  return describe() + " cores=" + std::to_string(cores_in_use_) + "/" +
         std::to_string(config_.apu_cores) +
         " rmst=" + std::to_string(tgl_.rmst().size()) + "/" +
         std::to_string(tgl_.rmst().capacity());
}

}  // namespace dredbox::hw
