#include "hw/tgl.hpp"

#include "sim/contract.hpp"

namespace dredbox::hw {

void TransactionGlueLogic::set_telemetry(sim::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    hits_metric_ = nullptr;
    misses_metric_ = nullptr;
    return;
  }
  hits_metric_ = &telemetry->metrics().counter("hw.tgl.lookup_hits");
  misses_metric_ = &telemetry->metrics().counter("hw.tgl.lookup_misses");
}

std::optional<TglRoute> TransactionGlueLogic::route(std::uint64_t addr) {
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  const RmstEntry* entry = rmst_.find(addr);
  if (entry == nullptr) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->add();
    return std::nullopt;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->add();
  TglRoute out{entry, entry->dest_base + (addr - entry->base)};
  DREDBOX_ENSURE(out.remote_addr >= entry->dest_base &&
                     out.remote_addr - entry->dest_base < entry->size,
                 "routed address escapes the matched segment window");
  return out;
}

void TransactionGlueLogic::check_invariants() const {
  rmst_.check_invariants();
  // Every installed mapping must point somewhere routable: a valid
  // destination brick and an outgoing port the TGL can forward to.
  for (const RmstEntry& e : rmst_.entries()) {
    DREDBOX_INVARIANT(e.dest_brick.valid(),
                      "segment " + e.segment.to_string() + " maps to an invalid dMEMBRICK");
    DREDBOX_INVARIANT(window_fits(e.dest_base, e.size),
                      "segment " + e.segment.to_string() + " wraps the remote pool");
  }
}

}  // namespace dredbox::hw
