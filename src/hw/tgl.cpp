#include "hw/tgl.hpp"

namespace dredbox::hw {

void TransactionGlueLogic::set_telemetry(sim::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    hits_metric_ = nullptr;
    misses_metric_ = nullptr;
    return;
  }
  hits_metric_ = &telemetry->metrics().counter("hw.tgl.lookup_hits");
  misses_metric_ = &telemetry->metrics().counter("hw.tgl.lookup_misses");
}

std::optional<TglRoute> TransactionGlueLogic::route(std::uint64_t addr) {
  auto entry = rmst_.lookup(addr);
  if (!entry) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->add();
    return std::nullopt;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->add();
  return TglRoute{*entry, entry->dest_base + (addr - entry->base)};
}

}  // namespace dredbox::hw
