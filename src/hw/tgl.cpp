#include "hw/tgl.hpp"

namespace dredbox::hw {

std::optional<TglRoute> TransactionGlueLogic::route(std::uint64_t addr) {
  auto entry = rmst_.lookup(addr);
  if (!entry) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return TglRoute{*entry, entry->dest_base + (addr - entry->base)};
}

}  // namespace dredbox::hw
