#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/ids.hpp"

namespace dredbox::hw {

/// A datacenter tray (Fig. 1): a carrier of hot-pluggable brick modules.
/// Intra-tray bricks are connected over a low-latency electrical circuit;
/// trays interconnect in-rack over the optical network. The tray itself
/// only tracks slot occupancy — brick objects live in the Rack.
class Tray {
 public:
  Tray(TrayId id, std::size_t slots);

  TrayId id() const { return id_; }
  std::size_t slot_count() const { return slots_.size(); }
  std::size_t occupied_slots() const;
  std::size_t free_slots() const { return slot_count() - occupied_slots(); }

  /// Hot-plugs a brick into the first free slot; returns the slot index.
  /// Throws when the tray is full or the brick is already plugged here.
  std::size_t plug(BrickId brick);

  /// Hot-unplugs a brick; returns false if it is not in this tray.
  bool unplug(BrickId brick);

  bool hosts(BrickId brick) const;
  std::vector<BrickId> bricks() const;

  std::string describe() const;

 private:
  TrayId id_;
  std::vector<BrickId> slots_;  // invalid id == empty slot
};

}  // namespace dredbox::hw
