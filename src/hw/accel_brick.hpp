#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/brick.hpp"

namespace dredbox::hw {

/// A partial bitstream held in the dACCELBRICK middleware's store.
struct Bitstream {
  std::string name;
  std::uint64_t size_bytes = 0;
  /// Throughput of the accelerator once loaded, in operations per second
  /// of the offloaded kernel (used by the pilot-application models).
  double kernel_ops_per_sec = 1e9;
};

/// Wrapper-template register file: the glue logic accesses these for
/// accelerator control and status monitoring (Fig. 5).
struct WrapperRegisters {
  std::uint32_t control = 0;
  std::uint32_t status = 0;
  std::uint64_t processed_items = 0;
};

struct AccelBrickConfig {
  std::uint64_t pl_ddr_bytes = 8ull << 30;  // accelerator-local DDR
  std::size_t transceiver_ports = 8;
  double port_rate_gbps = 10.0;
  /// PCAP configuration port throughput; reconfiguration time is
  /// bitstream size divided by this.
  double pcap_bandwidth_bytes_per_sec = 400e6;
};

/// The accelerator building block (Fig. 5): a static infrastructure (thin
/// middleware on the local APU, PCAP reconfiguration, external
/// communication) plus one dynamic reconfigurable slot hosting the active
/// accelerator. Remote dCOMPUBRICKs push bitstreams, then offload data for
/// near-data processing.
class AcceleratorBrick : public Brick {
 public:
  AcceleratorBrick(BrickId id, TrayId tray, const AccelBrickConfig& config = {});

  const AccelBrickConfig& config() const { return config_; }

  /// Middleware step (i): receive and store a bitstream from a remote
  /// dCOMPUBRICK. Replaces any previous bitstream of the same name.
  void store_bitstream(const Bitstream& bs);

  bool has_bitstream(const std::string& name) const;
  std::vector<std::string> stored_bitstreams() const;

  /// Middleware step (ii): reconfigure the PL slot via the PCAP port.
  /// Returns the reconfiguration time in seconds (size / PCAP bandwidth).
  /// Throws if the bitstream was never stored.
  double reconfigure(const std::string& name);

  /// Name of the accelerator currently in the dynamic slot, if any.
  std::optional<std::string> active_accelerator() const;
  const Bitstream* active_bitstream() const;

  WrapperRegisters& registers() { return regs_; }
  const WrapperRegisters& registers() const { return regs_; }

  /// Runs `items` through the loaded kernel; returns processing seconds.
  /// Throws when no accelerator is loaded.
  double offload(std::uint64_t items);

  std::string describe_resources() const;

 private:
  AccelBrickConfig config_;
  std::map<std::string, Bitstream> store_;
  std::optional<std::string> active_;
  WrapperRegisters regs_;
};

}  // namespace dredbox::hw
