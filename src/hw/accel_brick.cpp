#include "hw/accel_brick.hpp"

#include <stdexcept>

namespace dredbox::hw {

AcceleratorBrick::AcceleratorBrick(BrickId id, TrayId tray, const AccelBrickConfig& config)
    : Brick{id, BrickKind::kAccelerator, tray, config.transceiver_ports, config.port_rate_gbps},
      config_{config} {
  if (config.pcap_bandwidth_bytes_per_sec <= 0) {
    throw std::invalid_argument("AcceleratorBrick: PCAP bandwidth must be positive");
  }
}

void AcceleratorBrick::store_bitstream(const Bitstream& bs) {
  if (bs.name.empty()) throw std::invalid_argument("store_bitstream: empty name");
  if (bs.size_bytes == 0) throw std::invalid_argument("store_bitstream: empty bitstream");
  store_[bs.name] = bs;
}

bool AcceleratorBrick::has_bitstream(const std::string& name) const {
  return store_.count(name) != 0;
}

std::vector<std::string> AcceleratorBrick::stored_bitstreams() const {
  std::vector<std::string> names;
  names.reserve(store_.size());
  for (const auto& [name, bs] : store_) names.push_back(name);
  return names;
}

double AcceleratorBrick::reconfigure(const std::string& name) {
  auto it = store_.find(name);
  if (it == store_.end()) {
    throw std::logic_error("AcceleratorBrick::reconfigure: bitstream '" + name +
                           "' not in middleware store");
  }
  if (!is_powered()) {
    throw std::logic_error("AcceleratorBrick::reconfigure: brick is powered off");
  }
  active_ = name;
  regs_.status = 1;  // loaded, idle
  set_active(true);
  return static_cast<double>(it->second.size_bytes) / config_.pcap_bandwidth_bytes_per_sec;
}

std::optional<std::string> AcceleratorBrick::active_accelerator() const { return active_; }

const Bitstream* AcceleratorBrick::active_bitstream() const {
  if (!active_) return nullptr;
  auto it = store_.find(*active_);
  return it == store_.end() ? nullptr : &it->second;
}

double AcceleratorBrick::offload(std::uint64_t items) {
  const Bitstream* bs = active_bitstream();
  if (bs == nullptr) {
    throw std::logic_error("AcceleratorBrick::offload: no accelerator loaded");
  }
  regs_.status = 2;  // busy
  regs_.processed_items += items;
  const double seconds = static_cast<double>(items) / bs->kernel_ops_per_sec;
  regs_.status = 1;  // back to loaded/idle
  return seconds;
}

std::string AcceleratorBrick::describe_resources() const {
  return describe() + " slot=" + (active_ ? *active_ : std::string{"<empty>"}) +
         " store=" + std::to_string(store_.size()) + " bitstreams";
}

}  // namespace dredbox::hw
