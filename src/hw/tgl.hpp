#pragma once

#include <cstdint>
#include <optional>

#include "hw/rmst.hpp"
#include "sim/metrics.hpp"

namespace dredbox::hw {

/// Routing decision produced by the Transaction Glue Logic for one memory
/// transaction entering from the APU master ports. `entry` points into the
/// RMST (no copy on the hot path) and stays valid until the next RMST
/// mutation — consume the route before installing or removing segments.
struct TglRoute {
  const RmstEntry* entry = nullptr;  // matched remote segment
  std::uint64_t remote_addr = 0;     // address within the dMEMBRICK pool
};

/// Transaction Glue Logic (Section II): sits on the data path between the
/// APU master ports and the outgoing high-speed ports. For every remote
/// transaction it identifies the remote memory segment via the RMST and
/// forwards the transaction to the appropriate outgoing port, which leads
/// to a circuit already set up by orchestration.
class TransactionGlueLogic {
 public:
  explicit TransactionGlueLogic(std::size_t rmst_capacity = Rmst::kDefaultCapacity)
      : rmst_{rmst_capacity} {}

  Rmst& rmst() { return rmst_; }
  const Rmst& rmst() const { return rmst_; }

  /// Wires rack-wide telemetry in: every route() outcome also lands in
  /// the shared "hw.tgl.*" counters (all TGLs aggregate into one rack
  /// view; the per-brick hits()/misses() stay available for local debug).
  void set_telemetry(sim::Telemetry* telemetry);

  /// Routes a brick-physical address. nullopt => address does not fall in
  /// any installed remote window (the access faults back to the APU).
  std::optional<TglRoute> route(std::uint64_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  /// Deep consistency audit of the glue logic and its RMST. Throws
  /// ContractViolation on the first broken invariant; audited per route()
  /// when built with -DDREDBOX_AUDIT=ON.
  void check_invariants() const;

 private:
  Rmst rmst_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  sim::metrics::Counter* hits_metric_ = nullptr;
  sim::metrics::Counter* misses_metric_ = nullptr;
};

}  // namespace dredbox::hw
