#pragma once

#include <cstddef>

namespace dredbox::hw {

/// Per-unit power figures (watts). Defaults follow the component class the
/// paper names: Zynq Ultrascale+ MPSoC bricks (low-power ARM SoC + PL,
/// single-digit to low-double-digit watts), the Polatis optical switch at
/// 100 mW/port (Section III), and a commodity two-socket server for the
/// conventional-datacenter comparison (Section VI).
struct PowerModel {
  // dCOMPUBRICK: quad-core A53 APU + PL logic + local DDR.
  double compute_brick_active_w = 22.0;
  double compute_brick_idle_w = 8.0;

  // dMEMBRICK: FPGA glue logic + DDR/HMC modules.
  double memory_brick_active_w = 18.0;
  double memory_brick_idle_w = 6.0;

  // dACCELBRICK: PL-heavy, accelerator slot active.
  double accel_brick_active_w = 30.0;
  double accel_brick_idle_w = 9.0;

  // Optical circuit switch, per port (paper: ~100 mW/port).
  double optical_switch_port_w = 0.1;

  // Conventional COTS server with the same aggregate resources as a set of
  // bricks (32 cores + 32 GB class machine).
  double server_active_w = 350.0;
  double server_idle_w = 120.0;

  // Powered-off units draw nothing in this first-order study (Section VI
  // evaluates savings from powering off unutilized units).
  double powered_off_w = 0.0;
};

}  // namespace dredbox::hw
