#include "hw/rack.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::hw {

TrayId Rack::add_tray(std::size_t slots) {
  TrayId id{next_tray_++};
  trays_.emplace_back(id, slots);
  return id;
}

Tray& Rack::tray(TrayId id) {
  for (auto& t : trays_) {
    if (t.id() == id) return t;
  }
  throw std::out_of_range("Rack::tray: unknown tray " + id.to_string());
}

const Tray& Rack::tray(TrayId id) const { return const_cast<Rack*>(this)->tray(id); }

ComputeBrick& Rack::add_compute_brick(TrayId tray_id, const ComputeBrickConfig& config) {
  const BrickId id = next_brick_id();
  auto brick = std::make_unique<ComputeBrick>(id, tray_id, config);
  auto& ref = *brick;
  tray(tray_id).plug(id);
  bricks_.emplace(id, std::move(brick));
  return ref;
}

MemoryBrick& Rack::add_memory_brick(TrayId tray_id, const MemoryBrickConfig& config) {
  const BrickId id = next_brick_id();
  auto brick = std::make_unique<MemoryBrick>(id, tray_id, config);
  auto& ref = *brick;
  tray(tray_id).plug(id);
  bricks_.emplace(id, std::move(brick));
  return ref;
}

AcceleratorBrick& Rack::add_accelerator_brick(TrayId tray_id, const AccelBrickConfig& config) {
  const BrickId id = next_brick_id();
  auto brick = std::make_unique<AcceleratorBrick>(id, tray_id, config);
  auto& ref = *brick;
  tray(tray_id).plug(id);
  bricks_.emplace(id, std::move(brick));
  return ref;
}

void Rack::remove_brick(BrickId id) {
  auto it = bricks_.find(id);
  if (it == bricks_.end()) {
    throw std::out_of_range("Rack::remove_brick: unknown brick " + id.to_string());
  }
  Brick& b = *it->second;
  for (const auto& p : b.ports()) {
    if (p.connected) {
      throw std::logic_error("Rack::remove_brick: brick " + id.to_string() +
                             " has connected ports");
    }
  }
  if (b.kind() == BrickKind::kCompute && compute_brick(id).cores_in_use() > 0) {
    throw std::logic_error("Rack::remove_brick: compute brick has reserved cores");
  }
  if (b.kind() == BrickKind::kMemory && memory_brick(id).allocated_bytes() > 0) {
    throw std::logic_error("Rack::remove_brick: memory brick has live segments");
  }
  tray(b.tray()).unplug(id);
  bricks_.erase(it);
}

Brick& Rack::brick(BrickId id) {
  auto it = bricks_.find(id);
  if (it == bricks_.end()) {
    throw std::out_of_range("Rack::brick: unknown brick " + id.to_string());
  }
  return *it->second;
}

const Brick& Rack::brick(BrickId id) const { return const_cast<Rack*>(this)->brick(id); }

template <typename T>
T& Rack::typed_brick(BrickId id, BrickKind expected) {
  Brick& b = brick(id);
  if (b.kind() != expected) {
    throw std::logic_error("Rack: brick " + id.to_string() + " is a " + to_string(b.kind()) +
                           ", expected " + to_string(expected));
  }
  return static_cast<T&>(b);
}

ComputeBrick& Rack::compute_brick(BrickId id) {
  return typed_brick<ComputeBrick>(id, BrickKind::kCompute);
}
MemoryBrick& Rack::memory_brick(BrickId id) {
  return typed_brick<MemoryBrick>(id, BrickKind::kMemory);
}
AcceleratorBrick& Rack::accelerator_brick(BrickId id) {
  return typed_brick<AcceleratorBrick>(id, BrickKind::kAccelerator);
}
const ComputeBrick& Rack::compute_brick(BrickId id) const {
  return const_cast<Rack*>(this)->compute_brick(id);
}
const MemoryBrick& Rack::memory_brick(BrickId id) const {
  return const_cast<Rack*>(this)->memory_brick(id);
}
const AcceleratorBrick& Rack::accelerator_brick(BrickId id) const {
  return const_cast<Rack*>(this)->accelerator_brick(id);
}

std::vector<BrickId> Rack::bricks_of_kind(BrickKind kind) const {
  std::vector<BrickId> out;
  for (const auto& [id, b] : bricks_) {
    if (b->kind() == kind) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BrickId> Rack::all_bricks() const {
  std::vector<BrickId> out;
  out.reserve(bricks_.size());
  for (const auto& [id, b] : bricks_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Rack::total_compute_cores() const {
  std::size_t total = 0;
  for (const auto& [id, b] : bricks_) {
    if (b->kind() == BrickKind::kCompute) {
      total += static_cast<const ComputeBrick&>(*b).apu_cores();
    }
  }
  return total;
}

std::uint64_t Rack::total_pool_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : bricks_) {
    if (b->kind() == BrickKind::kMemory) {
      total += static_cast<const MemoryBrick&>(*b).capacity_bytes();
    }
  }
  return total;
}

double Rack::power_draw_watts(const PowerModel& model, std::size_t switch_ports_in_use) const {
  double watts = static_cast<double>(switch_ports_in_use) * model.optical_switch_port_w;
  for (const auto& [id, b] : bricks_) {
    const PowerState ps = b->power_state();
    if (ps == PowerState::kOff) {
      watts += model.powered_off_w;
      continue;
    }
    const bool active = ps == PowerState::kActive;
    switch (b->kind()) {
      case BrickKind::kCompute:
        watts += active ? model.compute_brick_active_w : model.compute_brick_idle_w;
        break;
      case BrickKind::kMemory:
        watts += active ? model.memory_brick_active_w : model.memory_brick_idle_w;
        break;
      case BrickKind::kAccelerator:
        watts += active ? model.accel_brick_active_w : model.accel_brick_idle_w;
        break;
    }
  }
  return watts;
}

std::string Rack::describe() const {
  std::size_t nc = bricks_of_kind(BrickKind::kCompute).size();
  std::size_t nm = bricks_of_kind(BrickKind::kMemory).size();
  std::size_t na = bricks_of_kind(BrickKind::kAccelerator).size();
  return "rack: " + std::to_string(trays_.size()) + " trays, " + std::to_string(nc) +
         " dCOMPUBRICKs, " + std::to_string(nm) + " dMEMBRICKs, " + std::to_string(na) +
         " dACCELBRICKs, " + std::to_string(total_compute_cores()) + " cores, " +
         std::to_string(total_pool_memory_bytes() >> 30) + " GiB pooled";
}

}  // namespace dredbox::hw
