#include "hw/memory_brick.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::hw {

std::string to_string(MemoryTechnology tech) {
  switch (tech) {
    case MemoryTechnology::kDdr4:
      return "DDR4";
    case MemoryTechnology::kHmc:
      return "HMC";
  }
  return "<unknown memory technology>";
}

MemoryBrick::MemoryBrick(BrickId id, TrayId tray, const MemoryBrickConfig& config)
    : Brick{id, BrickKind::kMemory, tray, config.transceiver_ports, config.port_rate_gbps},
      config_{config},
      next_segment_{(id.value << 16) | 1u} {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("MemoryBrick: capacity must be positive");
  }
  if (config.memory_controllers == 0) {
    throw std::invalid_argument("MemoryBrick: needs at least one memory controller");
  }
  free_list_.push_back(FreeExtent{0, config.capacity_bytes});
}

std::uint64_t MemoryBrick::largest_free_extent() const {
  std::uint64_t best = 0;
  for (const auto& e : free_list_) best = std::max(best, e.size);
  return best;
}

std::optional<MemorySegment> MemoryBrick::allocate(std::uint64_t size, BrickId owner) {
  if (size == 0) throw std::invalid_argument("MemoryBrick::allocate: zero size");
  if (failed()) return std::nullopt;  // a crashed brick carves nothing
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->size < size) continue;
    MemorySegment seg;
    seg.id = SegmentId{next_segment_++};
    seg.base = it->base;
    seg.size = size;
    seg.owner = owner;
    it->base += size;
    it->size -= size;
    if (it->size == 0) free_list_.erase(it);
    segments_.push_back(seg);
    allocated_bytes_ += size;
    set_active(allocated_bytes_ > 0);
    return seg;
  }
  return std::nullopt;
}

bool MemoryBrick::release(SegmentId segment) {
  auto it = std::find_if(segments_.begin(), segments_.end(),
                         [&](const MemorySegment& s) { return s.id == segment; });
  if (it == segments_.end()) return false;
  free_list_.push_back(FreeExtent{it->base, it->size});
  allocated_bytes_ -= it->size;
  segments_.erase(it);
  coalesce();
  // Releasing a segment on a crashed (powered-off) brick is pure
  // bookkeeping — the evacuation path reclaims the lost bytes without
  // waking the brick — so only drive the power state while powered.
  if (is_powered()) set_active(allocated_bytes_ > 0);
  return true;
}

bool MemoryBrick::reassign(SegmentId segment, BrickId new_owner) {
  for (auto& s : segments_) {
    if (s.id == segment) {
      s.owner = new_owner;
      return true;
    }
  }
  return false;
}

void MemoryBrick::coalesce() {
  std::sort(free_list_.begin(), free_list_.end(),
            [](const FreeExtent& a, const FreeExtent& b) { return a.base < b.base; });
  std::vector<FreeExtent> merged;
  for (const auto& e : free_list_) {
    if (!merged.empty() && merged.back().base + merged.back().size == e.base) {
      merged.back().size += e.size;
    } else {
      merged.push_back(e);
    }
  }
  free_list_ = std::move(merged);
}

std::optional<MemorySegment> MemoryBrick::find_segment(SegmentId segment) const {
  auto it = std::find_if(segments_.begin(), segments_.end(),
                         [&](const MemorySegment& s) { return s.id == segment; });
  if (it == segments_.end()) return std::nullopt;
  return *it;
}

std::uint64_t MemoryBrick::bytes_owned_by(BrickId owner) const {
  std::uint64_t total = 0;
  for (const auto& s : segments_) {
    if (s.owner == owner) total += s.size;
  }
  return total;
}

std::string MemoryBrick::describe_resources() const {
  return describe() + " " + to_string(config_.technology) +
         " used=" + std::to_string(allocated_bytes_ >> 20) + "MiB/" +
         std::to_string(config_.capacity_bytes >> 20) + "MiB segments=" +
         std::to_string(segments_.size());
}

}  // namespace dredbox::hw
