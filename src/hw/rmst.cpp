#include "hw/rmst.hpp"

#include <stdexcept>

#include "sim/contract.hpp"

namespace dredbox::hw {

Rmst::Rmst(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("Rmst: capacity must be positive");
  entries_.reserve(capacity);
}

void Rmst::insert(const RmstEntry& entry) {
  if (full()) {
    throw std::logic_error("Rmst::insert: table full (" + std::to_string(capacity_) +
                           " entries)");
  }
  if (entry.size == 0) throw std::invalid_argument("Rmst::insert: zero-sized segment");
  if (!entry.segment.valid()) throw std::invalid_argument("Rmst::insert: invalid segment id");
  if (entry.base + entry.size < entry.base) {
    throw std::invalid_argument("Rmst::insert: window wraps the address space");
  }
  for (const auto& e : entries_) {
    if (e.segment == entry.segment) {
      throw std::logic_error("Rmst::insert: duplicate segment id " + entry.segment.to_string());
    }
    const bool disjoint = entry.end() <= e.base || e.end() <= entry.base;
    if (!disjoint) {
      throw std::logic_error("Rmst::insert: window overlaps existing segment " +
                             e.segment.to_string());
    }
  }
  entries_.push_back(entry);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

bool Rmst::remove(SegmentId segment) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->segment == segment) {
      entries_.erase(it);
      DREDBOX_AUDIT_INVARIANT(check_invariants());
      return true;
    }
  }
  return false;
}

std::optional<RmstEntry> Rmst::lookup(std::uint64_t addr) const {
  for (const auto& e : entries_) {
    if (e.contains(addr)) return e;
  }
  return std::nullopt;
}

std::optional<RmstEntry> Rmst::find_segment(SegmentId segment) const {
  for (const auto& e : entries_) {
    if (e.segment == segment) return e;
  }
  return std::nullopt;
}

std::uint64_t Rmst::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.size;
  return total;
}

void Rmst::check_invariants() const {
  DREDBOX_INVARIANT(entries_.size() <= capacity_,
                    "RMST holds " + std::to_string(entries_.size()) +
                        " entries, exceeding its associativity bound of " +
                        std::to_string(capacity_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const RmstEntry& e = entries_[i];
    DREDBOX_INVARIANT(e.segment.valid(), "entry " + std::to_string(i) + " has an invalid segment id");
    DREDBOX_INVARIANT(e.size > 0, "segment " + e.segment.to_string() + " maps a zero-sized window");
    DREDBOX_INVARIANT(e.base + e.size >= e.base,
                      "segment " + e.segment.to_string() + " wraps the address space");
    // Pairwise: unique segment ids and disjoint windows. n is bounded by the
    // comparator budget (default 32), so O(n^2) is fine for an audit.
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      const RmstEntry& f = entries_[j];
      DREDBOX_INVARIANT(e.segment != f.segment,
                        "duplicate segment id " + e.segment.to_string());
      DREDBOX_INVARIANT(e.end() <= f.base || f.end() <= e.base,
                        "windows of segments " + e.segment.to_string() + " and " +
                            f.segment.to_string() + " overlap");
    }
  }
}

}  // namespace dredbox::hw
