#include "hw/rmst.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/contract.hpp"

namespace dredbox::hw {

Rmst::Rmst(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("Rmst: capacity must be positive");
  entries_.reserve(capacity);
  index_.reserve(capacity);
}

void Rmst::insert(const RmstEntry& entry) {
  // Validate the entry itself before inspecting table state, so that an
  // invalid insert into a full table reports the real defect.
  if (entry.size == 0) throw std::invalid_argument("Rmst::insert: zero-sized segment");
  if (!entry.segment.valid()) throw std::invalid_argument("Rmst::insert: invalid segment id");
  if (!window_fits(entry.base, entry.size)) {
    throw std::invalid_argument("Rmst::insert: window wraps the address space");
  }
  if (full()) {
    throw std::logic_error("Rmst::insert: table full (" + std::to_string(capacity_) +
                           " entries)");
  }
  for (const auto& e : entries_) {
    if (e.segment == entry.segment) {
      throw std::logic_error("Rmst::insert: duplicate segment id " + entry.segment.to_string());
    }
    if (!windows_disjoint(entry.base, entry.size, e.base, e.size)) {
      throw std::logic_error("Rmst::insert: window overlaps existing segment " +
                             e.segment.to_string());
    }
  }
  // reserve(capacity) in the constructor + the full() check above mean
  // this push_back never reallocates, so find()'s returned pointers are
  // only invalidated by the mutations documented to do so.
  entries_.push_back(entry);
  const auto pos = static_cast<std::uint32_t>(entries_.size() - 1);
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), entry.base,
      [](const auto& p, std::uint64_t base) { return p.first < base; });
  index_.insert(it, {entry.base, pos});
  mru_ = kNoEntry;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

bool Rmst::remove(SegmentId segment) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->segment == segment) {
      entries_.erase(it);
      rebuild_index();
      DREDBOX_AUDIT_INVARIANT(check_invariants());
      return true;
    }
  }
  return false;
}

void Rmst::clear() {
  entries_.clear();
  index_.clear();
  mru_ = kNoEntry;
}

void Rmst::rebuild_index() {
  // Erasing shifts the positions of every later entry, so rebuild from
  // scratch; n is bounded by the comparator budget (default 32).
  index_.clear();
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    index_.emplace_back(entries_[i].base, i);
  }
  std::sort(index_.begin(), index_.end());
  mru_ = kNoEntry;
}

const RmstEntry* Rmst::find(std::uint64_t addr) const {
  // TGL fast path: the segment that served the last access serves the
  // next one in the common (run-length clustered) case.
  if (mru_ != kNoEntry) {
    const RmstEntry& hit = entries_[mru_];
    if (hit.contains(addr)) return &hit;
  }
  // Windows are pairwise disjoint, so the entry with the greatest
  // base <= addr is the only possible match.
  const auto it = std::upper_bound(
      index_.begin(), index_.end(), addr,
      [](std::uint64_t a, const auto& p) { return a < p.first; });
  if (it == index_.begin()) return nullptr;
  const std::uint32_t pos = std::prev(it)->second;
  const RmstEntry& e = entries_[pos];
  if (!e.contains(addr)) return nullptr;
  mru_ = pos;
  return &e;
}

std::optional<RmstEntry> Rmst::lookup(std::uint64_t addr) const {
  if (const RmstEntry* e = find(addr)) return *e;
  return std::nullopt;
}

std::optional<RmstEntry> Rmst::find_segment(SegmentId segment) const {
  for (const auto& e : entries_) {
    if (e.segment == segment) return e;
  }
  return std::nullopt;
}

std::uint64_t Rmst::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.size;
  return total;
}

void Rmst::check_invariants() const {
  DREDBOX_INVARIANT(entries_.size() <= capacity_,
                    "RMST holds " + std::to_string(entries_.size()) +
                        " entries, exceeding its associativity bound of " +
                        std::to_string(capacity_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const RmstEntry& e = entries_[i];
    DREDBOX_INVARIANT(e.segment.valid(), "entry " + std::to_string(i) + " has an invalid segment id");
    DREDBOX_INVARIANT(e.size > 0, "segment " + e.segment.to_string() + " maps a zero-sized window");
    DREDBOX_INVARIANT(window_fits(e.base, e.size),
                      "segment " + e.segment.to_string() + " wraps the address space");
    // Pairwise: unique segment ids and disjoint windows. n is bounded by the
    // comparator budget (default 32), so O(n^2) is fine for an audit.
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      const RmstEntry& f = entries_[j];
      DREDBOX_INVARIANT(e.segment != f.segment,
                        "duplicate segment id " + e.segment.to_string());
      DREDBOX_INVARIANT(windows_disjoint(e.base, e.size, f.base, f.size),
                        "windows of segments " + e.segment.to_string() + " and " +
                            f.segment.to_string() + " overlap");
    }
  }

  // The interval index must be a base-sorted permutation of the entries,
  // and the MRU cache must reference a live slot (or nothing).
  DREDBOX_INVARIANT(index_.size() == entries_.size(),
                    "RMST index covers " + std::to_string(index_.size()) + " of " +
                        std::to_string(entries_.size()) + " entries");
  std::vector<bool> seen(entries_.size(), false);
  for (std::size_t k = 0; k < index_.size(); ++k) {
    const auto& [base, pos] = index_[k];
    DREDBOX_INVARIANT(pos < entries_.size(), "RMST index references a dead slot");
    DREDBOX_INVARIANT(!seen[pos], "RMST index references a slot twice");
    seen[pos] = true;
    DREDBOX_INVARIANT(entries_[pos].base == base,
                      "RMST index key diverges from the entry base of segment " +
                          entries_[pos].segment.to_string());
    DREDBOX_INVARIANT(k == 0 || index_[k - 1].first < base,
                      "RMST index is not strictly base-sorted");
  }
  DREDBOX_INVARIANT(mru_ == kNoEntry || mru_ < entries_.size(),
                    "RMST MRU cache references a dead slot");
}

}  // namespace dredbox::hw
