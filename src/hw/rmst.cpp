#include "hw/rmst.hpp"

#include <stdexcept>

namespace dredbox::hw {

Rmst::Rmst(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("Rmst: capacity must be positive");
  entries_.reserve(capacity);
}

void Rmst::insert(const RmstEntry& entry) {
  if (full()) {
    throw std::logic_error("Rmst::insert: table full (" + std::to_string(capacity_) +
                           " entries)");
  }
  if (entry.size == 0) throw std::invalid_argument("Rmst::insert: zero-sized segment");
  if (!entry.segment.valid()) throw std::invalid_argument("Rmst::insert: invalid segment id");
  if (entry.base + entry.size < entry.base) {
    throw std::invalid_argument("Rmst::insert: window wraps the address space");
  }
  for (const auto& e : entries_) {
    if (e.segment == entry.segment) {
      throw std::logic_error("Rmst::insert: duplicate segment id " + entry.segment.to_string());
    }
    const bool disjoint = entry.end() <= e.base || e.end() <= entry.base;
    if (!disjoint) {
      throw std::logic_error("Rmst::insert: window overlaps existing segment " +
                             e.segment.to_string());
    }
  }
  entries_.push_back(entry);
}

bool Rmst::remove(SegmentId segment) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->segment == segment) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<RmstEntry> Rmst::lookup(std::uint64_t addr) const {
  for (const auto& e : entries_) {
    if (e.contains(addr)) return e;
  }
  return std::nullopt;
}

std::optional<RmstEntry> Rmst::find_segment(SegmentId segment) const {
  for (const auto& e : entries_) {
    if (e.segment == segment) return e;
  }
  return std::nullopt;
}

std::uint64_t Rmst::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.size;
  return total;
}

}  // namespace dredbox::hw
