#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/ids.hpp"

namespace dredbox::hw {

enum class BrickKind : std::uint8_t {
  kCompute,     // dCOMPUBRICK
  kMemory,      // dMEMBRICK
  kAccelerator  // dACCELBRICK
};

std::string to_string(BrickKind kind);

enum class PowerState : std::uint8_t { kOff, kIdle, kActive };

std::string to_string(PowerState state);

/// One GTH high-speed transceiver port on a brick. Ports face either the
/// circuit-based network (CBN) or the packet-based network (PBN), matching
/// the dual substrate in Figs. 3-5.
struct TransceiverPort {
  PortId id;
  bool circuit_based = true;  // CBN when true, PBN otherwise
  double rate_gbps = 10.0;    // paper evaluates 10 Gb/s links (Fig. 7)
  bool connected = false;     // attached to a switch port / circuit
};

/// Common state shared by all brick types: identity, placement, power state
/// and transceiver inventory. Concrete brick classes (ComputeBrick,
/// MemoryBrick, AcceleratorBrick) add their resources on top.
class Brick {
 public:
  Brick(BrickId id, BrickKind kind, TrayId tray, std::size_t num_ports, double port_rate_gbps);
  virtual ~Brick() = default;

  Brick(const Brick&) = delete;
  Brick& operator=(const Brick&) = delete;
  Brick(Brick&&) = default;
  Brick& operator=(Brick&&) = default;

  BrickId id() const { return id_; }
  BrickKind kind() const { return kind_; }
  TrayId tray() const { return tray_; }

  PowerState power_state() const { return power_; }
  bool is_powered() const { return power_ != PowerState::kOff; }
  void power_on() { power_ = PowerState::kIdle; }
  void power_off();
  void set_active(bool active);

  // --- crash/restart fault model ---
  /// Marks the brick as crashed: power drops abruptly (no orderly circuit
  /// teardown — transceiver ports keep their connections; the light path
  /// just has no responder). The orchestrator is expected to evacuate
  /// attachments and the fabric fails transactions towards a failed brick.
  void fail() {
    failed_ = true;
    power_ = PowerState::kOff;
  }
  /// Brings a crashed brick back (cold boot into the idle state).
  void restore() {
    failed_ = false;
    power_ = PowerState::kIdle;
  }
  bool failed() const { return failed_; }

  std::size_t port_count() const { return ports_.size(); }
  const TransceiverPort& port(std::size_t i) const { return ports_.at(i); }
  TransceiverPort& port(std::size_t i) { return ports_.at(i); }
  const std::vector<TransceiverPort>& ports() const { return ports_; }

  /// First unconnected port of the requested substrate; nullptr if none.
  TransceiverPort* find_free_port(bool circuit_based);
  std::size_t free_port_count(bool circuit_based) const;

  /// Re-labels the first `n` ports as packet-based (PBN). The prototype
  /// carves its GTH lanes between circuit and packet substrates.
  void dedicate_packet_ports(std::size_t n);

  std::string describe() const;

 private:
  BrickId id_;
  BrickKind kind_;
  TrayId tray_;
  PowerState power_ = PowerState::kIdle;
  bool failed_ = false;
  std::vector<TransceiverPort> ports_;
};

}  // namespace dredbox::hw
