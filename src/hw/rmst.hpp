#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/ids.hpp"

namespace dredbox::hw {

/// One entry of the Remote Memory Segment Table: a large contiguous window
/// of the compute brick's physical address space that maps onto memory
/// hosted by a remote dMEMBRICK, reachable through a specific outgoing
/// high-speed port (and hence a pre-established circuit).
struct RmstEntry {
  SegmentId segment;
  std::uint64_t base = 0;   // brick-local physical base address
  std::uint64_t size = 0;   // bytes; entries identify *large* segments
  BrickId dest_brick;       // hosting dMEMBRICK
  std::uint64_t dest_base = 0;  // offset within the dMEMBRICK's pool
  PortId out_port;          // outgoing GTH port on the compute brick
  CircuitId circuit;        // circuit set up by orchestration

  bool contains(std::uint64_t addr) const { return addr >= base && addr - base < size; }
  std::uint64_t end() const { return base + size; }
};

/// The RMST is a fully associative structure (Section II): every lookup
/// compares the address against all valid entries. Capacity models the
/// limited number of comparators that fit in the PL; the prototype keeps
/// entries few and large.
class Rmst {
 public:
  explicit Rmst(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 32;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= capacity_; }

  /// Installs an entry. Throws std::logic_error when the table is full or
  /// the new window overlaps an existing one (hardware would mis-route).
  void insert(const RmstEntry& entry);

  /// Removes the entry for `segment`; returns false if absent.
  bool remove(SegmentId segment);

  /// Fully associative match of a physical address.
  std::optional<RmstEntry> lookup(std::uint64_t addr) const;

  std::optional<RmstEntry> find_segment(SegmentId segment) const;

  const std::vector<RmstEntry>& entries() const { return entries_; }

  /// Total remote bytes currently mapped.
  std::uint64_t mapped_bytes() const;

  void clear() { entries_.clear(); }

  /// Deep consistency audit: the associativity bound holds, every window is
  /// well-formed (non-zero, non-wrapping, valid ids) and no two windows
  /// overlap (overlap would mis-route in hardware). Throws
  /// ContractViolation on the first broken invariant. Wired into every
  /// mutation when built with -DDREDBOX_AUDIT=ON; callable directly in any
  /// build.
  void check_invariants() const;

 private:
  std::size_t capacity_;
  std::vector<RmstEntry> entries_;
};

}  // namespace dredbox::hw
