#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hw/ids.hpp"

namespace dredbox::hw {

/// One entry of the Remote Memory Segment Table: a large contiguous window
/// of the compute brick's physical address space that maps onto memory
/// hosted by a remote dMEMBRICK, reachable through a specific outgoing
/// high-speed port (and hence a pre-established circuit).
struct RmstEntry {
  SegmentId segment;
  std::uint64_t base = 0;   // brick-local physical base address
  std::uint64_t size = 0;   // bytes; entries identify *large* segments
  BrickId dest_brick;       // hosting dMEMBRICK
  std::uint64_t dest_base = 0;  // offset within the dMEMBRICK's pool
  PortId out_port;          // outgoing GTH port on the compute brick
  CircuitId circuit;        // circuit set up by orchestration

  bool contains(std::uint64_t addr) const { return addr >= base && addr - base < size; }
};

/// True when a window of `size` bytes starting at `base` fits the 64-bit
/// address space end-exclusively: base + size <= 2^64. A window ending
/// exactly at the top of the address space (base + size == 2^64) is valid
/// even though the naive sum wraps to 0; only windows whose *last byte*
/// would wrap are malformed. Requires size >= 1.
constexpr bool window_fits(std::uint64_t base, std::uint64_t size) {
  return size - 1 <= UINT64_MAX - base;
}

/// Overflow-safe disjointness of two half-open windows. Never computes
/// base + size, so windows ending exactly at the top of the address space
/// compare correctly. Requires both sizes >= 1.
constexpr bool windows_disjoint(std::uint64_t a_base, std::uint64_t a_size,
                                std::uint64_t b_base, std::uint64_t b_size) {
  return a_base < b_base ? b_base - a_base >= a_size : a_base - b_base >= b_size;
}

/// The RMST is a fully associative structure (Section II): every lookup
/// semantically compares the address against all valid entries. Capacity
/// models the limited number of comparators that fit in the PL; the
/// prototype keeps entries few and large.
///
/// The software model keeps those paper semantics but resolves lookups
/// through a base-sorted interval index (windows are disjoint, so the
/// greatest base <= addr is the only candidate — O(log n)) fronted by a
/// one-entry MRU "last hit" cache that models the TGL fast path: remote
/// traffic is heavily run-length clustered per segment, so the common
/// case costs one compare. Mutations (insert/remove/clear) rebuild the
/// index and drop the cached hit.
class Rmst {
 public:
  explicit Rmst(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 32;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= capacity_; }

  /// Installs an entry. Malformed entries (zero size, invalid segment id,
  /// window wrapping past the top of the address space) throw
  /// std::invalid_argument — before any state is inspected, so an invalid
  /// insert into a full table still reports the real defect. Conflicts
  /// with installed state (table full, duplicate segment id, overlapping
  /// window — hardware would mis-route) throw std::logic_error.
  void insert(const RmstEntry& entry);

  /// Removes the entry for `segment`; returns false if absent.
  bool remove(SegmentId segment);

  /// Fast-path associative match: MRU cache, then the base-sorted index.
  /// Returns a pointer into the table (no copy) that stays valid until
  /// the next mutation, or nullptr when no window covers `addr`.
  const RmstEntry* find(std::uint64_t addr) const;

  /// Copying convenience wrapper over find(), for call sites that hold
  /// the result across mutations.
  std::optional<RmstEntry> lookup(std::uint64_t addr) const;

  std::optional<RmstEntry> find_segment(SegmentId segment) const;

  const std::vector<RmstEntry>& entries() const { return entries_; }

  /// Total remote bytes currently mapped.
  std::uint64_t mapped_bytes() const;

  void clear();

  /// Deep consistency audit: the associativity bound holds, every window
  /// is well-formed (non-zero, non-wrapping, valid ids), no two windows
  /// overlap (overlap would mis-route in hardware), and the interval
  /// index is a base-sorted permutation of the entries. Throws
  /// ContractViolation on the first broken invariant. Wired into every
  /// mutation when built with -DDREDBOX_AUDIT=ON; callable directly in
  /// any build.
  void check_invariants() const;

 private:
  static constexpr std::uint32_t kNoEntry = UINT32_MAX;

  std::size_t capacity_;
  std::vector<RmstEntry> entries_;  // insertion order (the paper's valid-entry set)
  /// (base, position in entries_) sorted by base; lookup's O(log n) path.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> index_;
  /// Position of the last hit; kNoEntry when empty or after a mutation.
  mutable std::uint32_t mru_ = kNoEntry;

  void rebuild_index();
};

}  // namespace dredbox::hw
