#pragma once

#include "sim/time.hpp"

namespace dredbox::memsys {

/// Per-stage latencies of the mainline circuit-switched remote memory path
/// (Section III: "memory interconnection among modules occurs via
/// electrical resp. optical circuit-switching, as a means of minimizing
/// the critical KPI of remote access latency"). Compared with the packet
/// path there is no MAC framing and no per-hop arbitration: transactions
/// ride a pre-established transparent circuit through GTH serdes lanes.
struct CircuitPathLatencies {
  sim::Time tgl_lookup = sim::Time::ns(25);   // RMST associative match + forward
  sim::Time serdes = sim::Time::ns(50);       // GTH TX+RX pair per link traversal
  sim::Time glue_logic = sim::Time::ns(40);   // dMEMBRICK glue logic
  sim::Time ddr_access = sim::Time::ns(60);   // array latency (first word)
  sim::Time hmc_access = sim::Time::ns(45);
  // Array streaming bandwidth: large transactions occupy the controller
  // for latency + bytes/bandwidth.
  double ddr_bandwidth_gbps = 160.0;  // ~20 GB/s per controller
  double hmc_bandwidth_gbps = 320.0;

  double line_rate_gbps = 10.0;
  std::size_t framing_bytes = 4;  // lightweight circuit framing (no MAC)

  // Intra-tray electrical circuit (Section II: "Intra-tray bricks are
  // connected over a low latency/high-throughput electrical circuit").
  // No E/O conversion and centimetre-scale traces: the serdes pair is
  // lighter and propagation is negligible.
  sim::Time electrical_serdes = sim::Time::ns(30);
  sim::Time electrical_propagation = sim::Time::ns(2);  // ~30 cm backplane trace
  double electrical_rate_gbps = 16.0;  // backplane lanes clock higher
};

}  // namespace dredbox::memsys
