#include "memsys/remote_memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"
#include "sim/span.hpp"

namespace dredbox::memsys {

namespace {

// Interned breakdown components for the per-transaction datapath: resolved
// once at startup so execute_path() charges by 2-byte id instead of paying
// a registry scan per stage per transaction (ISSUE 9b).
const sim::ComponentId kBdTglLookup = sim::component_id("TGL lookup (RMST)");
const sim::ComponentId kBdCircuitWait = sim::component_id("circuit wait");
const sim::ComponentId kBdSerialization = sim::component_id("serialization");
const sim::ComponentId kBdSerdesTx = sim::component_id("GTH serdes (TX)");
const sim::ComponentId kBdSerdesRx = sim::component_id("GTH serdes (RX)");
const sim::ComponentId kBdSerdesReturn = sim::component_id("GTH serdes (return)");
const sim::ComponentId kBdOpticalProp = sim::component_id("optical propagation");
const sim::ComponentId kBdElectricalProp = sim::component_id("electrical propagation");
const sim::ComponentId kBdGlueLogic = sim::component_id("glue logic (dMEMBRICK)");
const sim::ComponentId kBdMcWait = sim::component_id("memory controller wait");
const sim::ComponentId kBdMemAccess = sim::component_id("memory access");
const sim::ComponentId kBdRetryBackoff = sim::component_id("retry backoff");
const sim::ComponentId kBdReprovision = sim::component_id("circuit re-provision");

}  // namespace

std::string to_string(TransactionKind kind) {
  return kind == TransactionKind::kRead ? "read" : "write";
}

std::string to_string(LinkMedium medium) {
  switch (medium) {
    case LinkMedium::kElectrical:
      return "electrical (intra-tray)";
    case LinkMedium::kOptical:
      return "optical (cross-tray)";
    case LinkMedium::kPacket:
      return "packet (fallback)";
  }
  return "<unknown link medium>";
}

std::string to_string(TransactionStatus status) {
  switch (status) {
    case TransactionStatus::kOk:
      return "ok";
    case TransactionStatus::kNoMapping:
      return "no-mapping";
    case TransactionStatus::kCircuitDown:
      return "circuit-down";
    case TransactionStatus::kCorruptMapping:
      return "corrupt-mapping";
    case TransactionStatus::kBrickFailed:
      return "brick-failed";
  }
  return "<unknown status>";
}

std::string to_string(AttachError err) {
  switch (err) {
    case AttachError::kNoMemory:
      return "no contiguous memory on dMEMBRICK";
    case AttachError::kNoComputePort:
      return "no free circuit port on dCOMPUBRICK";
    case AttachError::kNoMemoryPort:
      return "no free circuit port on dMEMBRICK";
    case AttachError::kNoSwitchPorts:
      return "optical switch out of ports";
    case AttachError::kRmstFull:
      return "RMST full";
    case AttachError::kBrickFailed:
      return "dMEMBRICK has failed";
  }
  return "<unknown attach error>";
}

RemoteMemoryFabric::RemoteMemoryFabric(hw::Rack& rack, optics::CircuitManager& circuits,
                                       const CircuitPathLatencies& latencies)
    : rack_{rack}, circuits_{circuits}, latencies_{latencies} {}

void RemoteMemoryFabric::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    attaches_metric_ = attach_failures_metric_ = detaches_metric_ = nullptr;
    transactions_metric_ = failed_tx_metric_ = nullptr;
    read_latency_metric_ = write_latency_metric_ = nullptr;
    rmst_entries_metric_ = rmst_mapped_metric_ = nullptr;
    retries_metric_ = retry_exhausted_metric_ = reprovisions_metric_ = nullptr;
    packet_failovers_metric_ = rmst_scrubs_metric_ = rmst_corruptions_metric_ = nullptr;
    relocations_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  attaches_metric_ = &m.counter("memsys.fabric.attaches");
  attach_failures_metric_ = &m.counter("memsys.fabric.attach_failures");
  detaches_metric_ = &m.counter("memsys.fabric.detaches");
  transactions_metric_ = &m.counter("memsys.fabric.transactions");
  failed_tx_metric_ = &m.counter("memsys.fabric.failed_transactions");
  // Round trips sit in the hundreds of ns (electrical / optical) up to a
  // few us (packet fallback); RunningStats inside the histogram keeps the
  // exact mean/min/max for out-of-range samples.
  read_latency_metric_ = &m.histogram("memsys.read.latency_ns", 0.0, 10000.0, 50);
  write_latency_metric_ = &m.histogram("memsys.write.latency_ns", 0.0, 10000.0, 50);
  rmst_entries_metric_ = &m.gauge("hw.rmst.entries");
  rmst_mapped_metric_ = &m.gauge("hw.rmst.mapped_bytes");
  retries_metric_ = &m.counter("memsys.fabric.retries");
  retry_exhausted_metric_ = &m.counter("memsys.fabric.retry_exhausted");
  reprovisions_metric_ = &m.counter("memsys.fabric.reprovisions");
  packet_failovers_metric_ = &m.counter("memsys.fabric.packet_failovers");
  rmst_scrubs_metric_ = &m.counter("memsys.fabric.rmst_scrubs");
  rmst_corruptions_metric_ = &m.counter("memsys.fabric.rmst_corruptions");
  relocations_metric_ = &m.counter("memsys.fabric.relocations");
}

bool RemoteMemoryFabric::same_tray(hw::BrickId a, hw::BrickId b) const {
  return rack_.brick(a).tray() == rack_.brick(b).tray();
}

const RemoteMemoryFabric::ElectricalLink* RemoteMemoryFabric::find_electrical(
    hw::CircuitId id) const {
  for (const auto& l : electrical_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

const RemoteMemoryFabric::PacketLink* RemoteMemoryFabric::find_packet(hw::CircuitId id) const {
  for (const auto& l : packet_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

std::optional<Attachment> RemoteMemoryFabric::attach(const AttachRequest& request,
                                                     sim::Time now) {
  auto result = attach_impl(request, now);
  if (telemetry_ != nullptr) {
    if (result) {
      attaches_metric_->add();
      rmst_entries_metric_->add(1.0);
      rmst_mapped_metric_->add(static_cast<double>(result->size));
      if (telemetry_->tracing()) {
        sim::Span span{telemetry_->tracer(), sim::TraceCategory::kFabric, "attach", now};
        span.arg("compute", std::to_string(request.compute.value))
            .arg("membrick", std::to_string(request.membrick.value))
            .arg("bytes", std::to_string(result->size))
            .arg("medium", to_string(result->medium));
        span.end(now);
      }
    } else {
      attach_failures_metric_->add();
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return result;
}

std::optional<Attachment> RemoteMemoryFabric::attach_impl(const AttachRequest& request,
                                                          sim::Time now) {
  auto& compute = rack_.compute_brick(request.compute);
  auto& membrick = rack_.memory_brick(request.membrick);

  if (membrick.failed()) {
    last_error_ = AttachError::kBrickFailed;
    return std::nullopt;
  }
  if (compute.tgl().rmst().full()) {
    last_error_ = AttachError::kRmstFull;
    return std::nullopt;
  }
  if (membrick.largest_free_extent() < request.bytes) {
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  const bool electrical =
      request.prefer_electrical_intra_tray && same_tray(request.compute, request.membrick);

  // Existing circuit between the pair can be shared by multiple segments;
  // otherwise wire a fresh one.
  hw::CircuitId circuit_id;
  LinkMedium medium = electrical ? LinkMedium::kElectrical : LinkMedium::kOptical;
  std::size_t lanes = std::max<std::size_t>(1, request.lanes);
  std::size_t hops = request.switch_hops;
  double fiber_m = request.fiber_length_m;
  for (const auto& a : attachments_) {
    if (a.compute == request.compute && a.membrick == request.membrick) {
      circuit_id = a.circuit;
      medium = a.medium;
      lanes = a.lanes;
      hops = a.switch_hops;
      fiber_m = a.fiber_length_m;
      break;
    }
  }

  // Packet-substrate fallback (Section III): when the system runs low on
  // physical circuit ports, the orchestrator programs packet-switch
  // lookup tables instead of a dedicated circuit.
  auto packet_fallback = [&]() -> bool {
    if (!request.allow_packet_fallback || packet_net_ == nullptr) return false;
    if (!packet_net_->has_brick(request.compute) || !packet_net_->has_brick(request.membrick)) {
      return false;
    }
    for (const auto& link : packet_) {
      if ((link.a == request.compute && link.b == request.membrick) ||
          (link.a == request.membrick && link.b == request.compute)) {
        circuit_id = link.id;
        medium = LinkMedium::kPacket;
        return true;
      }
    }
    if (!packet_net_->connected(request.compute, request.membrick)) {
      packet_net_->connect(request.compute, request.membrick, request.fiber_length_m);
    }
    circuit_id = hw::CircuitId{next_packet_id_++};
    packet_.push_back(PacketLink{circuit_id, request.compute, request.membrick});
    medium = LinkMedium::kPacket;
    return true;
  };

  hw::PortId first_out_port{0};
  if (!circuit_id.valid()) {
    // Enough free transceiver ports on both bricks for every lane?
    if (compute.free_port_count(true) < lanes) {
      last_error_ = AttachError::kNoComputePort;
      if (!packet_fallback()) return std::nullopt;
    } else if (membrick.free_port_count(true) < lanes) {
      last_error_ = AttachError::kNoMemoryPort;
      if (!packet_fallback()) return std::nullopt;
    }

    if (!circuit_id.valid()) {  // not in packet fallback
      if (electrical) {
        // Tray backplane cross-connect: no optical switch ports involved;
        // bond `lanes` backplane lanes.
        ElectricalLink link;
        link.id = hw::CircuitId{next_electrical_id_++};
        link.a = request.compute;
        link.b = request.membrick;
        for (std::size_t l = 0; l < lanes; ++l) {
          auto* cp = compute.find_free_port(true);
          auto* mp = membrick.find_free_port(true);
          cp->connected = true;
          mp->connected = true;
          link.a_ports.push_back(cp->id);
          link.b_ports.push_back(mp->id);
        }
        first_out_port = link.a_ports.front();
        circuit_id = link.id;
        electrical_.push_back(std::move(link));
      } else {
        // One optical circuit per lane; all bonded under the primary id.
        if (circuits_.optical_switch().free_ports() < 2 * request.switch_hops * lanes) {
          last_error_ = AttachError::kNoSwitchPorts;
          if (!packet_fallback()) return std::nullopt;
        }
        if (!circuit_id.valid()) {
          OpticalBond bond;
          std::vector<std::pair<hw::TransceiverPort*, hw::TransceiverPort*>> taken;
          for (std::size_t l = 0; l < lanes; ++l) {
            auto* cp = compute.find_free_port(true);
            auto* mp = membrick.find_free_port(true);
            cp->connected = true;
            mp->connected = true;
            taken.emplace_back(cp, mp);
            optics::CircuitRequest creq;
            creq.a = optics::CircuitEndpoint{request.compute, cp->id, -3.7, 1.2};
            creq.b = optics::CircuitEndpoint{request.membrick, mp->id, -3.7, 1.2};
            creq.hops = request.switch_hops;
            creq.fiber_length_m = request.fiber_length_m;
            auto circuit = circuits_.establish(creq);
            if (!circuit) {
              // Roll back everything wired so far.
              for (auto& [c, m] : taken) {
                c->connected = false;
                m->connected = false;
              }
              for (hw::CircuitId id : bond.all) circuits_.teardown(id);
              last_error_ = AttachError::kNoSwitchPorts;
              if (!packet_fallback()) return std::nullopt;
              bond.all.clear();
              break;
            }
            bond.all.push_back(circuit->id);
          }
          if (!bond.all.empty()) {
            bond.primary = bond.all.front();
            circuit_id = bond.primary;
            first_out_port = taken.front().first->id;
            if (bond.all.size() > 1) bonds_.push_back(std::move(bond));
          }
        }
      }
    }
  }

  auto segment = membrick.allocate(request.bytes, request.compute);
  if (!segment) {
    // largest_free_extent was checked above; reaching here means a race in
    // caller logic. Keep the invariant: undo the circuit if fresh.
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  hw::RmstEntry entry;
  entry.segment = segment->id;
  entry.base = compute.find_remote_window(request.bytes);
  entry.size = request.bytes;
  entry.dest_brick = request.membrick;
  entry.dest_base = segment->base;
  entry.out_port = first_out_port;
  entry.circuit = circuit_id;
  compute.tgl().rmst().insert(entry);

  Attachment a;
  a.compute = request.compute;
  a.membrick = request.membrick;
  a.segment = segment->id;
  a.compute_base = entry.base;
  a.size = request.bytes;
  a.circuit = circuit_id;
  a.medium = medium;
  a.lanes = medium == LinkMedium::kPacket ? 1 : lanes;
  a.switch_hops = hops;
  a.fiber_length_m = fiber_m;
  a.established_at = now;
  attachments_.push_back(a);
  return a;
}

bool RemoteMemoryFabric::detach(hw::BrickId compute, hw::SegmentId segment) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == segment;
  });
  if (it == attachments_.end()) return false;

  const Attachment removed = *it;
  attachments_.erase(it);

  auto& cb = rack_.compute_brick(removed.compute);
  cb.tgl().rmst().remove(segment);
  rack_.memory_brick(removed.membrick).release(segment);

  if (telemetry_ != nullptr) {
    detaches_metric_->add();
    rmst_entries_metric_->add(-1.0);
    rmst_mapped_metric_->add(-static_cast<double>(removed.size));
  }

  release_circuit_if_unused(removed);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

void RemoteMemoryFabric::release_circuit_if_unused(const Attachment& removed) {
  // Tear the circuit down when no other attachment rides it.
  const bool circuit_still_used =
      std::any_of(attachments_.begin(), attachments_.end(),
                  [&](const Attachment& a) { return a.circuit == removed.circuit; });
  if (circuit_still_used) return;
  if (removed.medium == LinkMedium::kPacket) {
    packet_.erase(std::remove_if(packet_.begin(), packet_.end(),
                                 [&](const PacketLink& l) { return l.id == removed.circuit; }),
                  packet_.end());
    circuit_busy_until_.erase(removed.circuit.value);
  } else if (removed.medium == LinkMedium::kElectrical) {
    const ElectricalLink* link = find_electrical(removed.circuit);
    if (link != nullptr) {
      for (std::size_t l = 0; l < link->lanes(); ++l) {
        rack_.brick(link->a).port(link->a_ports[l].value).connected = false;
        rack_.brick(link->b).port(link->b_ports[l].value).connected = false;
      }
      electrical_.erase(
          std::remove_if(electrical_.begin(), electrical_.end(),
                         [&](const ElectricalLink& l) { return l.id == removed.circuit; }),
          electrical_.end());
      circuit_busy_until_.erase(removed.circuit.value);
    }
  } else {
    // Optical: tear down every lane of the bond (single-lane links have
    // no bond record and tear down just the primary circuit).
    std::vector<hw::CircuitId> to_tear{removed.circuit};
    for (auto bit = bonds_.begin(); bit != bonds_.end(); ++bit) {
      if (bit->primary == removed.circuit) {
        to_tear = bit->all;
        bonds_.erase(bit);
        break;
      }
    }
    for (hw::CircuitId id : to_tear) {
      auto circuit = circuits_.find(id);
      if (circuit) {
        rack_.brick(circuit->a.brick).port(circuit->a.port.value).connected = false;
        rack_.brick(circuit->b.brick).port(circuit->b.port.value).connected = false;
        circuits_.teardown(id);
      }
      circuit_busy_until_.erase(id.value);
    }
  }
}

std::optional<RemoteMemoryFabric::MigratedAttachment> RemoteMemoryFabric::migrate_attachment(
    hw::SegmentId segment, hw::BrickId from, hw::BrickId to, sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == from && a.segment == segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  const Attachment old = *it;

  auto& new_compute = rack_.compute_brick(to);
  if (new_compute.tgl().rmst().full()) {
    last_error_ = AttachError::kRmstFull;
    return std::nullopt;
  }

  // Wire (or reuse) connectivity between the destination brick and the
  // serving dMEMBRICK before touching the source side, so failure leaves
  // the old attachment intact.
  hw::CircuitId new_circuit_id;
  LinkMedium new_medium = LinkMedium::kOptical;
  for (const auto& a : attachments_) {
    if (a.compute == to && a.membrick == old.membrick) {
      new_circuit_id = a.circuit;
      new_medium = a.medium;
      break;
    }
  }
  bool wired_fresh = false;
  if (!new_circuit_id.valid()) {
    hw::TransceiverPort* cport = new_compute.find_free_port(/*circuit_based=*/true);
    if (cport == nullptr) {
      last_error_ = AttachError::kNoComputePort;
      return std::nullopt;
    }
    hw::TransceiverPort* mport =
        rack_.memory_brick(old.membrick).find_free_port(/*circuit_based=*/true);
    if (mport == nullptr) {
      last_error_ = AttachError::kNoMemoryPort;
      return std::nullopt;
    }
    if (same_tray(to, old.membrick)) {
      new_medium = LinkMedium::kElectrical;
      new_circuit_id = hw::CircuitId{next_electrical_id_++};
      electrical_.push_back(
          ElectricalLink{new_circuit_id, to, old.membrick, {cport->id}, {mport->id}});
    } else {
      optics::CircuitRequest creq;
      creq.a = optics::CircuitEndpoint{to, cport->id, -3.7, 1.2};
      creq.b = optics::CircuitEndpoint{old.membrick, mport->id, -3.7, 1.2};
      auto circuit = circuits_.establish(creq);
      if (!circuit) {
        last_error_ = AttachError::kNoSwitchPorts;
        return std::nullopt;
      }
      new_medium = LinkMedium::kOptical;
      new_circuit_id = circuit->id;
    }
    cport->connected = true;
    mport->connected = true;
    wired_fresh = true;
  }

  // Move the RMST entry: remove at the source, install at the destination.
  auto& old_compute = rack_.compute_brick(from);
  const auto old_entry = old_compute.tgl().rmst().find_segment(segment);
  old_compute.tgl().rmst().remove(segment);

  hw::RmstEntry entry;
  entry.segment = segment;
  entry.base = new_compute.find_remote_window(old.size);
  entry.size = old.size;
  entry.dest_brick = old.membrick;
  entry.dest_base = old_entry ? old_entry->dest_base : 0;
  entry.circuit = new_circuit_id;
  new_compute.tgl().rmst().insert(entry);

  rack_.memory_brick(old.membrick).reassign(segment, to);

  // Update the attachment record in place.
  it->compute = to;
  it->compute_base = entry.base;
  it->circuit = new_circuit_id;
  it->medium = new_medium;
  it->established_at = now;
  const Attachment updated = *it;

  // Tear down the source-side circuit if this was its last rider.
  const bool old_circuit_used =
      std::any_of(attachments_.begin(), attachments_.end(),
                  [&](const Attachment& a) { return a.circuit == old.circuit; });
  if (!old_circuit_used) {
    if (old.medium == LinkMedium::kElectrical) {
      if (const ElectricalLink* link = find_electrical(old.circuit); link != nullptr) {
        for (std::size_t l = 0; l < link->lanes(); ++l) {
          rack_.brick(link->a).port(link->a_ports[l].value).connected = false;
          rack_.brick(link->b).port(link->b_ports[l].value).connected = false;
        }
        electrical_.erase(
            std::remove_if(electrical_.begin(), electrical_.end(),
                           [&](const ElectricalLink& l) { return l.id == old.circuit; }),
            electrical_.end());
      }
    } else if (auto circuit = circuits_.find(old.circuit)) {
      rack_.brick(circuit->a.brick).port(circuit->a.port.value).connected = false;
      rack_.brick(circuit->b.brick).port(circuit->b.port.value).connected = false;
      circuits_.teardown(old.circuit);
    }
    circuit_busy_until_.erase(old.circuit.value);
  }

  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return MigratedAttachment{updated, wired_fresh};
}

bool RemoteMemoryFabric::fail_circuit(hw::CircuitId circuit) {
  // Only the optical substrate is subject to this fault model (fibres and
  // beam-steering cross-connects); the tray backplane is passive copper.
  std::vector<hw::CircuitId> lanes{circuit};
  for (auto bit = bonds_.begin(); bit != bonds_.end(); ++bit) {
    if (bit->primary == circuit) {
      lanes = bit->all;
      bonds_.erase(bit);
      break;
    }
  }
  bool any = false;
  for (hw::CircuitId id : lanes) {
    auto live = circuits_.find(id);
    if (!live) continue;
    rack_.brick(live->a.brick).port(live->a.port.value).connected = false;
    rack_.brick(live->b.brick).port(live->b.port.value).connected = false;
    circuits_.teardown(id);
    circuit_busy_until_.erase(id.value);
    any = true;
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return any;
}

std::optional<Attachment> RemoteMemoryFabric::repair(hw::BrickId compute,
                                                     hw::SegmentId segment, sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  if (it->medium != LinkMedium::kOptical) return *it;      // nothing to repair
  if (circuits_.find(it->circuit).has_value()) return *it;  // circuit is healthy

  auto& cb = rack_.compute_brick(compute);
  auto& mb = rack_.memory_brick(it->membrick);

  // Rebuild the exact pre-failure link: same hop count, same fibre run,
  // re-bonding up to the original lane count (degrading gracefully to
  // fewer lanes when ports ran scarce in the meantime, never below one).
  const std::size_t want_lanes = std::max<std::size_t>(1, it->lanes);
  OpticalBond bond;
  std::vector<std::pair<hw::TransceiverPort*, hw::TransceiverPort*>> taken;
  for (std::size_t l = 0; l < want_lanes; ++l) {
    auto* cport = cb.find_free_port(/*circuit_based=*/true);
    auto* mport = mb.find_free_port(/*circuit_based=*/true);
    if (cport == nullptr || mport == nullptr) {
      last_error_ =
          cport == nullptr ? AttachError::kNoComputePort : AttachError::kNoMemoryPort;
      break;
    }
    optics::CircuitRequest creq;
    creq.a = optics::CircuitEndpoint{compute, cport->id, -3.7, 1.2};
    creq.b = optics::CircuitEndpoint{it->membrick, mport->id, -3.7, 1.2};
    creq.hops = it->switch_hops;
    creq.fiber_length_m = it->fiber_length_m;
    auto circuit = circuits_.establish(creq);
    if (!circuit) {
      last_error_ = AttachError::kNoSwitchPorts;
      break;
    }
    cport->connected = true;
    mport->connected = true;
    taken.emplace_back(cport, mport);
    bond.all.push_back(circuit->id);
  }
  if (bond.all.empty()) return std::nullopt;  // could not wire even one lane
  bond.primary = bond.all.front();
  if (bond.all.size() > 1) bonds_.push_back(bond);

  // Heal every attachment (and RMST entry) that rode the dead circuit. The
  // compute-side window must come back byte-identical: only the link
  // record changes, never base or size.
  const hw::CircuitId dead = it->circuit;
  const std::size_t healed_lanes = bond.all.size();
  for (auto& a : attachments_) {
    if (a.circuit != dead) continue;
    a.circuit = bond.primary;
    a.lanes = healed_lanes;
    a.established_at = now;
    auto& rmst = rack_.compute_brick(a.compute).tgl().rmst();
    auto entry = rmst.find_segment(a.segment);
    if (entry) {
      hw::RmstEntry updated = *entry;
      updated.circuit = bond.primary;
      updated.out_port = taken.front().first->id;
      rmst.remove(a.segment);
      rmst.insert(updated);
      DREDBOX_ENSURE(updated.base == a.compute_base && updated.size == a.size,
                     "repair changed the RMST window of segment " + a.segment.to_string());
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return *it;
}

void RemoteMemoryFabric::on_circuits_torn(const std::vector<optics::Circuit>& torn) {
  for (const auto& c : torn) {
    rack_.brick(c.a.brick).port(c.a.port.value).connected = false;
    rack_.brick(c.b.brick).port(c.b.port.value).connected = false;
    circuit_busy_until_.erase(c.id.value);
    // A bonded link dies as a whole: tear the surviving sibling lanes too.
    for (auto bit = bonds_.begin(); bit != bonds_.end(); ++bit) {
      if (std::find(bit->all.begin(), bit->all.end(), c.id) == bit->all.end()) continue;
      const OpticalBond bond = *bit;
      bonds_.erase(bit);
      for (hw::CircuitId id : bond.all) {
        if (id == c.id) continue;
        if (auto live = circuits_.find(id)) {
          rack_.brick(live->a.brick).port(live->a.port.value).connected = false;
          rack_.brick(live->b.brick).port(live->b.port.value).connected = false;
          circuits_.teardown(id);
        }
        circuit_busy_until_.erase(id.value);
      }
      break;
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

std::optional<Attachment> RemoteMemoryFabric::failover_to_packet(hw::BrickId compute,
                                                                 hw::SegmentId segment,
                                                                 sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  if (it->medium == LinkMedium::kPacket) return *it;  // already failed over
  if (packet_net_ == nullptr || !packet_net_->has_brick(compute) ||
      !packet_net_->has_brick(it->membrick)) {
    return std::nullopt;
  }

  // Reuse the pair's existing packet link or program a fresh lookup-table
  // path (the Section III control-plane role).
  hw::CircuitId packet_id;
  for (const auto& link : packet_) {
    if ((link.a == compute && link.b == it->membrick) ||
        (link.a == it->membrick && link.b == compute)) {
      packet_id = link.id;
      break;
    }
  }
  if (!packet_id.valid()) {
    if (!packet_net_->connected(compute, it->membrick)) {
      packet_net_->connect(compute, it->membrick, it->fiber_length_m);
    }
    packet_id = hw::CircuitId{next_packet_id_++};
    packet_.push_back(PacketLink{packet_id, compute, it->membrick});
  }

  // Re-point the RMST entry; window and backing bytes stay untouched.
  auto& rmst = rack_.compute_brick(compute).tgl().rmst();
  if (auto entry = rmst.find_segment(segment)) {
    hw::RmstEntry updated = *entry;
    updated.circuit = packet_id;
    rmst.remove(segment);
    rmst.insert(updated);
  }

  const Attachment old = *it;
  it->circuit = packet_id;
  it->medium = LinkMedium::kPacket;
  it->lanes = 1;
  it->established_at = now;
  const Attachment updated = *it;
  release_circuit_if_unused(old);
  if (packet_failovers_metric_ != nullptr) packet_failovers_metric_->add();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return updated;
}

std::optional<Attachment> RemoteMemoryFabric::relocate_segment(hw::BrickId compute,
                                                               hw::SegmentId old_segment,
                                                               hw::BrickId new_membrick,
                                                               sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == old_segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  if (it->membrick == new_membrick) return *it;  // already there

  auto& cb = rack_.compute_brick(compute);
  auto& new_mb = rack_.memory_brick(new_membrick);
  if (new_mb.failed()) {
    last_error_ = AttachError::kBrickFailed;
    return std::nullopt;
  }
  if (new_mb.largest_free_extent() < it->size) {
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  // Wire (or reuse) connectivity to the new dMEMBRICK before touching the
  // old side, so failure leaves the attachment intact. Preference order:
  // shared pair link, electrical intra-tray, optical, packet fallback.
  hw::CircuitId new_circuit;
  LinkMedium new_medium = LinkMedium::kOptical;
  std::size_t new_lanes = 1;
  hw::PortId new_out_port{0};
  bool fresh_port = false;
  for (const auto& a : attachments_) {
    if (a.compute == compute && a.membrick == new_membrick) {
      new_circuit = a.circuit;
      new_medium = a.medium;
      new_lanes = a.lanes;
      break;
    }
  }
  if (!new_circuit.valid()) {
    auto* cport = cb.find_free_port(/*circuit_based=*/true);
    auto* mport = new_mb.find_free_port(/*circuit_based=*/true);
    if (cport != nullptr && mport != nullptr) {
      if (same_tray(compute, new_membrick)) {
        new_medium = LinkMedium::kElectrical;
        new_circuit = hw::CircuitId{next_electrical_id_++};
        electrical_.push_back(
            ElectricalLink{new_circuit, compute, new_membrick, {cport->id}, {mport->id}});
        cport->connected = true;
        mport->connected = true;
        new_out_port = cport->id;
        fresh_port = true;
      } else {
        optics::CircuitRequest creq;
        creq.a = optics::CircuitEndpoint{compute, cport->id, -3.7, 1.2};
        creq.b = optics::CircuitEndpoint{new_membrick, mport->id, -3.7, 1.2};
        creq.hops = it->switch_hops;
        creq.fiber_length_m = it->fiber_length_m;
        if (auto circuit = circuits_.establish(creq)) {
          new_medium = LinkMedium::kOptical;
          new_circuit = circuit->id;
          cport->connected = true;
          mport->connected = true;
          new_out_port = cport->id;
          fresh_port = true;
        }
      }
    }
    if (!new_circuit.valid()) {
      // Circuit ports exhausted: packet substrate as the last resort.
      if (packet_net_ == nullptr || !packet_net_->has_brick(compute) ||
          !packet_net_->has_brick(new_membrick)) {
        last_error_ = AttachError::kNoSwitchPorts;
        return std::nullopt;
      }
      for (const auto& link : packet_) {
        if ((link.a == compute && link.b == new_membrick) ||
            (link.a == new_membrick && link.b == compute)) {
          new_circuit = link.id;
          break;
        }
      }
      if (!new_circuit.valid()) {
        if (!packet_net_->connected(compute, new_membrick)) {
          packet_net_->connect(compute, new_membrick, it->fiber_length_m);
        }
        new_circuit = hw::CircuitId{next_packet_id_++};
        packet_.push_back(PacketLink{new_circuit, compute, new_membrick});
      }
      new_medium = LinkMedium::kPacket;
    }
  }

  // Carve the replacement segment (ids are namespaced by the carving
  // brick, so relocation necessarily issues a new segment id).
  auto new_seg = new_mb.allocate(it->size, compute);
  if (!new_seg) {
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  // Re-point the RMST entry, keeping the compute-side window identical.
  auto& rmst = cb.tgl().rmst();
  const auto old_entry = rmst.find_segment(old_segment);
  hw::RmstEntry entry;
  entry.segment = new_seg->id;
  entry.base = it->compute_base;
  entry.size = it->size;
  entry.dest_brick = new_membrick;
  entry.dest_base = new_seg->base;
  entry.out_port = fresh_port || !old_entry ? new_out_port : old_entry->out_port;
  entry.circuit = new_circuit;
  rmst.remove(old_segment);
  rmst.insert(entry);

  const Attachment old = *it;
  it->membrick = new_membrick;
  it->segment = new_seg->id;
  it->circuit = new_circuit;
  it->medium = new_medium;
  it->lanes = new_medium == LinkMedium::kPacket ? 1 : new_lanes;
  it->established_at = now;
  const Attachment result = *it;

  // Release the old backing bytes and the old link when last rider.
  rack_.memory_brick(old.membrick).release(old_segment);
  release_circuit_if_unused(old);
  if (relocations_metric_ != nullptr) relocations_metric_->add();
  DREDBOX_ENSURE(result.compute_base == old.compute_base && result.size == old.size,
                 "relocation changed the compute-side window");
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return result;
}

bool RemoteMemoryFabric::corrupt_rmst(hw::BrickId compute, std::size_t ordinal) {
  auto& rmst = rack_.compute_brick(compute).tgl().rmst();
  std::size_t seen = 0;
  for (const auto& a : attachments_) {
    if (a.compute != compute) continue;
    if (seen++ != ordinal) continue;
    auto entry = rmst.find_segment(a.segment);
    if (!entry) return false;
    hw::RmstEntry mangled = *entry;
    // A modelled SEU in the PL's segment comparators: the destination
    // offset picks up flipped bits, scattering accesses over wrong bytes.
    mangled.dest_base ^= 0x5a5a000ull;
    rmst.remove(a.segment);
    rmst.insert(mangled);
    if (rmst_corruptions_metric_ != nullptr) rmst_corruptions_metric_->add();
    return true;
  }
  return false;
}

std::size_t RemoteMemoryFabric::scrub_rmst(hw::BrickId compute) {
  auto& rmst = rack_.compute_brick(compute).tgl().rmst();
  std::size_t rewritten = 0;
  for (const auto& a : attachments_) {
    if (a.compute != compute) continue;
    const auto backing = rack_.memory_brick(a.membrick).find_segment(a.segment);
    if (!backing) continue;
    const auto entry = rmst.find_segment(a.segment);
    hw::RmstEntry fixed;
    fixed.segment = a.segment;
    fixed.base = a.compute_base;
    fixed.size = a.size;
    fixed.dest_brick = a.membrick;
    fixed.dest_base = backing->base;
    fixed.out_port = entry ? entry->out_port : hw::PortId{0};
    fixed.circuit = a.circuit;
    rmst.remove(a.segment);
    rmst.insert(fixed);
    ++rewritten;
  }
  if (rewritten > 0 && rmst_scrubs_metric_ != nullptr) rmst_scrubs_metric_->add();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return rewritten;
}

std::vector<Attachment> RemoteMemoryFabric::attachments_of(hw::BrickId compute) const {
  std::vector<Attachment> out;
  for (const auto& a : attachments_) {
    if (a.compute == compute) out.push_back(a);
  }
  return out;
}

std::uint64_t RemoteMemoryFabric::attached_bytes(hw::BrickId compute) const {
  std::uint64_t total = 0;
  for (const auto& a : attachments_) {
    if (a.compute == compute) total += a.size;
  }
  return total;
}

sim::Time RemoteMemoryFabric::serialization_time(std::uint32_t bytes, LinkMedium medium,
                                                 std::size_t lanes) const {
  const double bits = static_cast<double>(bytes + latencies_.framing_bytes) * 8.0;
  const double rate = medium == LinkMedium::kElectrical ? latencies_.electrical_rate_gbps
                                                        : latencies_.line_rate_gbps;
  // Bonded lanes stripe the payload (aggregate-bandwidth mode, Section II).
  return sim::Time::ns(bits / (rate * static_cast<double>(std::max<std::size_t>(1, lanes))));
}

const Attachment* RemoteMemoryFabric::find_attachment(hw::BrickId compute,
                                                      std::uint64_t address) const {
  for (const auto& a : attachments_) {
    if (a.compute == compute && address >= a.compute_base &&
        address - a.compute_base < a.size) {
      return &a;
    }
  }
  return nullptr;
}

// dredbox-lint: hot-path-begin — execute()/execute_path() are the per-op
// datapath (one traversal per remote read/write, plus one per retry
// attempt); steady state must not allocate. Tracing-gated telemetry and
// the fault-recovery branches are cold and carry suppressions.
Transaction RemoteMemoryFabric::execute(TransactionKind kind, hw::BrickId compute,
                                        std::uint64_t address, std::uint32_t bytes,
                                        sim::Time when, const sim::TraceContext& parent) {
  // The fabric span's causal identity: nested under the caller's trace
  // when one was passed (workload op, DMA chunk), a fresh root otherwise.
  // Minting never draws from the simulation Rng, so tracing on/off leaves
  // the op stream and digests untouched.
  sim::TraceContext ctx;
  const bool tracing = telemetry_ != nullptr && telemetry_->tracing();
  if (tracing) {
    auto& tracer = telemetry_->tracer();
    ctx = parent.valid() ? tracer.child_of(parent) : tracer.begin_trace();
  }

  Transaction tx = execute_path(kind, compute, address, bytes, when, ctx);

  // Recovery loop: with a retry policy set, failed transactions back off
  // exponentially and attack the cause — scrub a corrupted RMST, wire a
  // replacement circuit, or fall back to the packet substrate. Attempts
  // are bounded by the policy (count and hard deadline), so a transaction
  // against a truly dead resource still completes, just not ok().
  if (!tx.ok() && retry_policy_.has_value()) {
    sim::BackoffSchedule schedule{*retry_policy_, when};
    sim::Breakdown accumulated = tx.breakdown;
    sim::Time t = tx.completed_at;
    std::uint32_t retries = 0;
    while (!tx.ok()) {
      // A crashed dMEMBRICK is not recoverable from the data plane; the
      // orchestrator has to evacuate the segment first.
      if (tx.status == TransactionStatus::kBrickFailed) break;
      const Attachment* a = find_attachment(compute, address);
      if (a == nullptr) break;  // genuine decode fault: no window installed

      const auto delay = schedule.next(t);
      if (!delay) {
        if (retry_exhausted_metric_ != nullptr) retry_exhausted_metric_->add();
        break;
      }
      accumulated.charge(kBdRetryBackoff, *delay);
      if (tracing) {
        telemetry_->tracer().record_span(t, t + *delay, sim::TraceCategory::kFabric,
                                         "retry backoff",
                                         {{"status", to_string(tx.status)}},
                                         telemetry_->tracer().child_of(ctx));
      }
      t += *delay;

      bool recovered = true;
      if (tx.status == TransactionStatus::kCorruptMapping ||
          tx.status == TransactionStatus::kNoMapping) {
        scrub_rmst(compute);
        if (tracing) {
          telemetry_->tracer().record_span(t, t, sim::TraceCategory::kFabric, "RMST scrub", {},
                                           telemetry_->tracer().child_of(ctx));
        }
      } else if (tx.status == TransactionStatus::kCircuitDown) {
        if (repair(compute, a->segment, t).has_value()) {
          accumulated.charge(kBdReprovision, circuits_.setup_time());
          if (tracing) {
            telemetry_->tracer().record_span(t, t + circuits_.setup_time(),
                                             sim::TraceCategory::kFabric,
                                             "circuit re-provision", {},
                                             telemetry_->tracer().child_of(ctx));
          }
          t += circuits_.setup_time();
          if (reprovisions_metric_ != nullptr) reprovisions_metric_->add();
        } else if (failover_to_packet(compute, a->segment, t).has_value()) {
          if (tracing) {
            telemetry_->tracer().record_span(t, t, sim::TraceCategory::kFabric,
                                             "packet failover", {},
                                             telemetry_->tracer().child_of(ctx));
          }
        } else {
          recovered = false;  // no optical spare, no packet path: give up
        }
      }
      if (!recovered) break;

      ++retries;
      if (retries_metric_ != nullptr) retries_metric_->add();
      Transaction attempt = execute_path(kind, compute, address, bytes, t, ctx);
      accumulated.merge(attempt.breakdown);
      tx = attempt;
      t = tx.completed_at;
    }
    tx.issued_at = when;
    tx.completed_at = std::max(tx.completed_at, t);
    tx.breakdown = accumulated;
    tx.retries = retries;
  }

  if (telemetry_ != nullptr) {
    transactions_metric_->add();
    if (tx.ok()) {
      auto* latency = kind == TransactionKind::kRead ? read_latency_metric_ : write_latency_metric_;
      latency->observe(tx.round_trip().as_ns());
    } else {
      failed_tx_metric_->add();
    }
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kFabric,
                     kind == TransactionKind::kRead ? "remote read" : "remote write", tx.issued_at};
      span.context(ctx);
      span.arg("bytes", std::to_string(tx.bytes)).arg("status", to_string(tx.status));  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
      // dredbox-lint: ignore[hot-path-alloc] tracing-gated
      if (tx.retries > 0) span.arg("retries", std::to_string(tx.retries));
      // Per-op critical-path breakdown, keyed on the span itself so a
      // report reader sees where this transaction's round trip went.
      for (const auto& [component, amount] : tx.breakdown.components()) {
        span.arg(std::string{"bd."}.append(component), sim::strformat("%.3f", amount.as_ns()));  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
      }
      span.end(tx.completed_at);
    }
  }
  tx.ctx = ctx;
  return tx;
}

Transaction RemoteMemoryFabric::execute_path(TransactionKind kind, hw::BrickId compute,
                                             std::uint64_t address, std::uint32_t bytes,
                                             sim::Time when, const sim::TraceContext& ctx) {
  Transaction tx;
  tx.kind = kind;
  tx.source = compute;
  tx.address = address;
  tx.bytes = bytes;
  tx.issued_at = when;

  auto& cb = rack_.compute_brick(compute);

  // The APU forwards the transaction to the TGL via its master ports; the
  // TGL identifies the remote segment (fully associative RMST match).
  tx.breakdown.charge(kBdTglLookup, latencies_.tgl_lookup);
  sim::Time t = when + latencies_.tgl_lookup;

  auto route = cb.tgl().route(address);
  if (!route) {
    tx.status = TransactionStatus::kNoMapping;
    tx.completed_at = t;
    return tx;
  }
  tx.destination = route->entry->dest_brick;
  tx.remote_address = route->remote_addr;

  // A crashed dMEMBRICK never answers: the transaction dies at the TGL
  // (the modelled equivalent of an AXI timeout back to the APU).
  if (rack_.brick(tx.destination).failed()) {
    tx.status = TransactionStatus::kBrickFailed;
    tx.completed_at = t;
    return tx;
  }

  // Cross-check the RMST entry against the dMEMBRICK's segment table: a
  // corrupted entry (SEU in the PL comparators) would scatter the access
  // over the wrong backing bytes, so it is refused instead.
  const auto backing = rack_.memory_brick(tx.destination).find_segment(route->entry->segment);
  if (!backing || backing->owner != compute || backing->base != route->entry->dest_base) {
    tx.status = TransactionStatus::kCorruptMapping;
    tx.completed_at = t;
    return tx;
  }

  // Packet-substrate attachments delegate the whole round trip to the
  // packet network model (NI, on-brick switches, MAC/PHY).
  if (find_packet(route->entry->circuit) != nullptr) {
    net::Packet pkt =
        kind == TransactionKind::kRead
            ? packet_net_->remote_read(compute, tx.destination, tx.remote_address, bytes, t,
                                       rack_.memory_brick(tx.destination).config().technology, ctx)
            : packet_net_->remote_write(compute, tx.destination, tx.remote_address, bytes, t,
                                        rack_.memory_brick(tx.destination).config().technology,
                                        ctx);
    tx.breakdown.merge(pkt.breakdown);
    tx.completed_at = pkt.delivered_at;
    return tx;
  }

  // Resolve the medium: intra-tray electrical links are tracked by the
  // fabric itself; optical circuits by the circuit manager.
  LinkMedium medium = LinkMedium::kOptical;
  sim::Time propagation;
  if (const ElectricalLink* link = find_electrical(route->entry->circuit); link != nullptr) {
    medium = LinkMedium::kElectrical;
    propagation = latencies_.electrical_propagation;
  } else {
    const optics::Circuit* circuit = circuits_.find_ref(route->entry->circuit);
    if (circuit == nullptr) {
      tx.status = TransactionStatus::kCircuitDown;
      tx.completed_at = t;
      return tx;
    }
    propagation = circuit->propagation_delay();
  }
  const sim::Time serdes =
      medium == LinkMedium::kElectrical ? latencies_.electrical_serdes : latencies_.serdes;
  const sim::ComponentId wire =
      medium == LinkMedium::kElectrical ? kBdElectricalProp : kBdOpticalProp;

  // Bonded-lane count for this circuit (attachments on the pair carry it).
  std::size_t lanes = 1;
  for (const auto& a : attachments_) {
    if (a.circuit == route->entry->circuit) {
      lanes = a.lanes;
      break;
    }
  }

  const auto tech = rack_.memory_brick(tx.destination).config().technology;
  // Array occupancy: first-word latency plus streaming time for the
  // payload at the controller's bandwidth.
  const bool hmc = tech == hw::MemoryTechnology::kHmc;
  const double array_gbps = hmc ? latencies_.hmc_bandwidth_gbps : latencies_.ddr_bandwidth_gbps;
  const sim::Time mem_access = (hmc ? latencies_.hmc_access : latencies_.ddr_access) +
                               sim::Time::ns(static_cast<double>(bytes) * 8.0 / array_gbps);

  // Outbound: request (write carries payload; read is header-only).
  const std::uint32_t out_bytes = kind == TransactionKind::kWrite ? bytes : 0;
  const sim::Time out_ser = serialization_time(out_bytes, medium, lanes);
  sim::Time& busy = circuit_busy_until_[route->entry->circuit.value];
  const sim::Time start = std::max(t, busy);
  tx.breakdown.charge(kBdCircuitWait, start - t);
  tx.breakdown.charge(kBdSerialization, out_ser);
  busy = start + out_ser;
  t = start + out_ser;

  tx.breakdown.charge(kBdSerdesTx, serdes);
  t += serdes;
  tx.breakdown.charge(wire, propagation);
  t += propagation;
  tx.breakdown.charge(kBdSerdesRx, serdes);
  t += serdes;

  // dMEMBRICK: glue logic steers the transaction to one of the brick's
  // memory controllers (address-interleaved); a busy controller delays
  // the access, so bricks dimensioned with more controllers sustain more
  // concurrent transactions (Section II).
  tx.breakdown.charge(kBdGlueLogic, latencies_.glue_logic);
  t += latencies_.glue_logic;
  const auto& mb = rack_.memory_brick(tx.destination);
  const std::size_t mc_count = mb.config().memory_controllers;
  const std::size_t mc =
      static_cast<std::size_t>((tx.remote_address >> 12)) % std::max<std::size_t>(1, mc_count);
  const std::uint64_t mc_key =
      (static_cast<std::uint64_t>(tx.destination.value) << 8) | static_cast<std::uint64_t>(mc);
  sim::Time& mc_busy = controller_busy_until_[mc_key];
  const sim::Time mc_start = std::max(t, mc_busy);
  tx.breakdown.charge(kBdMcWait, mc_start - t);
  tx.breakdown.charge(kBdMemAccess, mem_access);
  mc_busy = mc_start + mem_access;
  t = mc_start + mem_access;

  // Return: read carries payload back; write returns a short ack.
  const std::uint32_t back_bytes = kind == TransactionKind::kRead ? bytes : 0;
  const sim::Time back_ser = serialization_time(back_bytes, medium, lanes);
  tx.breakdown.charge(kBdSerialization, back_ser);
  tx.breakdown.charge(kBdSerdesReturn, serdes * 2);
  tx.breakdown.charge(wire, propagation);
  t += back_ser + serdes * 2 + propagation;

  tx.completed_at = t;
  return tx;
}
// dredbox-lint: hot-path-end

void RemoteMemoryFabric::check_invariants() const {
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    const Attachment& a = attachments_[i];
    DREDBOX_INVARIANT(a.size > 0, "attachment maps zero bytes");
    DREDBOX_INVARIANT(a.circuit.valid(), "attachment has no link record");
    for (std::size_t j = i + 1; j < attachments_.size(); ++j) {
      DREDBOX_INVARIANT(attachments_[j].compute != a.compute ||
                            attachments_[j].segment != a.segment,
                        "segment " + a.segment.to_string() + " attached twice to brick " +
                            a.compute.to_string());
    }

    // The consuming side: a live dCOMPUBRICK with the RMST entry installed.
    DREDBOX_INVARIANT(rack_.has_brick(a.compute) &&
                          rack_.brick(a.compute).kind() == hw::BrickKind::kCompute,
                      "attachment consumer " + a.compute.to_string() +
                          " is not a live dCOMPUBRICK");
    const auto entry = rack_.compute_brick(a.compute).tgl().rmst().find_segment(a.segment);
    DREDBOX_INVARIANT(entry.has_value(), "segment " + a.segment.to_string() +
                                             " has no RMST entry on brick " +
                                             a.compute.to_string());
    DREDBOX_INVARIANT(entry->base == a.compute_base && entry->size == a.size &&
                          entry->dest_brick == a.membrick,
                      "RMST entry for segment " + a.segment.to_string() +
                          " disagrees with the attachment record");

    // The serving side: every mapped segment is backed by a live dMEMBRICK
    // that still carves that segment for this consumer.
    DREDBOX_INVARIANT(rack_.has_brick(a.membrick) &&
                          rack_.brick(a.membrick).kind() == hw::BrickKind::kMemory,
                      "attachment server " + a.membrick.to_string() +
                          " is not a live dMEMBRICK");
    const auto segment = rack_.memory_brick(a.membrick).find_segment(a.segment);
    DREDBOX_INVARIANT(segment.has_value(), "segment " + a.segment.to_string() +
                                               " is not carved on dMEMBRICK " +
                                               a.membrick.to_string());
    DREDBOX_INVARIANT(segment->owner == a.compute && segment->size == a.size,
                      "dMEMBRICK segment " + a.segment.to_string() +
                          " disagrees with the attachment record");

    // The link record matches the medium. Optical circuits may be absent
    // (failed); electrical and packet links are fabric-owned and must exist.
    switch (a.medium) {
      case LinkMedium::kElectrical:
        DREDBOX_INVARIANT(find_electrical(a.circuit) != nullptr,
                          "electrical attachment without a backplane link record");
        break;
      case LinkMedium::kPacket:
        DREDBOX_INVARIANT(find_packet(a.circuit) != nullptr,
                          "packet attachment without a lookup-table link record");
        break;
      case LinkMedium::kOptical:
        break;
    }
  }

  // Fabric-owned link endpoints must still hold their transceiver ports.
  for (const auto& link : electrical_) {
    DREDBOX_INVARIANT(link.a_ports.size() == link.b_ports.size(),
                      "electrical link with unbalanced lane bundles");
    for (std::size_t l = 0; l < link.lanes(); ++l) {
      DREDBOX_INVARIANT(rack_.brick(link.a).port(link.a_ports[l].value).connected &&
                            rack_.brick(link.b).port(link.b_ports[l].value).connected,
                        "electrical link lane rides a disconnected transceiver port");
    }
  }
}

Transaction RemoteMemoryFabric::read(hw::BrickId compute, std::uint64_t address,
                                     std::uint32_t bytes, sim::Time when,
                                     const sim::TraceContext& ctx) {
  return execute(TransactionKind::kRead, compute, address, bytes, when, ctx);
}

Transaction RemoteMemoryFabric::write(hw::BrickId compute, std::uint64_t address,
                                      std::uint32_t bytes, sim::Time when,
                                      const sim::TraceContext& ctx) {
  return execute(TransactionKind::kWrite, compute, address, bytes, when, ctx);
}

}  // namespace dredbox::memsys
