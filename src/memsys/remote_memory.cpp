#include "memsys/remote_memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/span.hpp"

namespace dredbox::memsys {

std::string to_string(TransactionKind kind) {
  return kind == TransactionKind::kRead ? "read" : "write";
}

std::string to_string(LinkMedium medium) {
  switch (medium) {
    case LinkMedium::kElectrical:
      return "electrical (intra-tray)";
    case LinkMedium::kOptical:
      return "optical (cross-tray)";
    case LinkMedium::kPacket:
      return "packet (fallback)";
  }
  return "<unknown link medium>";
}

std::string to_string(TransactionStatus status) {
  switch (status) {
    case TransactionStatus::kOk:
      return "ok";
    case TransactionStatus::kNoMapping:
      return "no-mapping";
    case TransactionStatus::kCircuitDown:
      return "circuit-down";
  }
  return "<unknown status>";
}

std::string to_string(AttachError err) {
  switch (err) {
    case AttachError::kNoMemory:
      return "no contiguous memory on dMEMBRICK";
    case AttachError::kNoComputePort:
      return "no free circuit port on dCOMPUBRICK";
    case AttachError::kNoMemoryPort:
      return "no free circuit port on dMEMBRICK";
    case AttachError::kNoSwitchPorts:
      return "optical switch out of ports";
    case AttachError::kRmstFull:
      return "RMST full";
  }
  return "<unknown attach error>";
}

RemoteMemoryFabric::RemoteMemoryFabric(hw::Rack& rack, optics::CircuitManager& circuits,
                                       const CircuitPathLatencies& latencies)
    : rack_{rack}, circuits_{circuits}, latencies_{latencies} {}

void RemoteMemoryFabric::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    attaches_metric_ = attach_failures_metric_ = detaches_metric_ = nullptr;
    transactions_metric_ = failed_tx_metric_ = nullptr;
    read_latency_metric_ = write_latency_metric_ = nullptr;
    rmst_entries_metric_ = rmst_mapped_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  attaches_metric_ = &m.counter("memsys.fabric.attaches");
  attach_failures_metric_ = &m.counter("memsys.fabric.attach_failures");
  detaches_metric_ = &m.counter("memsys.fabric.detaches");
  transactions_metric_ = &m.counter("memsys.fabric.transactions");
  failed_tx_metric_ = &m.counter("memsys.fabric.failed_transactions");
  // Round trips sit in the hundreds of ns (electrical / optical) up to a
  // few us (packet fallback); RunningStats inside the histogram keeps the
  // exact mean/min/max for out-of-range samples.
  read_latency_metric_ = &m.histogram("memsys.read.latency_ns", 0.0, 10000.0, 50);
  write_latency_metric_ = &m.histogram("memsys.write.latency_ns", 0.0, 10000.0, 50);
  rmst_entries_metric_ = &m.gauge("hw.rmst.entries");
  rmst_mapped_metric_ = &m.gauge("hw.rmst.mapped_bytes");
}

bool RemoteMemoryFabric::same_tray(hw::BrickId a, hw::BrickId b) const {
  return rack_.brick(a).tray() == rack_.brick(b).tray();
}

const RemoteMemoryFabric::ElectricalLink* RemoteMemoryFabric::find_electrical(
    hw::CircuitId id) const {
  for (const auto& l : electrical_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

const RemoteMemoryFabric::PacketLink* RemoteMemoryFabric::find_packet(hw::CircuitId id) const {
  for (const auto& l : packet_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

std::optional<Attachment> RemoteMemoryFabric::attach(const AttachRequest& request,
                                                     sim::Time now) {
  auto result = attach_impl(request, now);
  if (telemetry_ != nullptr) {
    if (result) {
      attaches_metric_->add();
      rmst_entries_metric_->add(1.0);
      rmst_mapped_metric_->add(static_cast<double>(result->size));
      if (telemetry_->tracing()) {
        sim::Span span{telemetry_->tracer(), sim::TraceCategory::kFabric, "attach", now};
        span.arg("compute", std::to_string(request.compute.value))
            .arg("membrick", std::to_string(request.membrick.value))
            .arg("bytes", std::to_string(result->size))
            .arg("medium", to_string(result->medium));
        span.end(now);
      }
    } else {
      attach_failures_metric_->add();
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return result;
}

std::optional<Attachment> RemoteMemoryFabric::attach_impl(const AttachRequest& request,
                                                          sim::Time now) {
  auto& compute = rack_.compute_brick(request.compute);
  auto& membrick = rack_.memory_brick(request.membrick);

  if (compute.tgl().rmst().full()) {
    last_error_ = AttachError::kRmstFull;
    return std::nullopt;
  }
  if (membrick.largest_free_extent() < request.bytes) {
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  const bool electrical =
      request.prefer_electrical_intra_tray && same_tray(request.compute, request.membrick);

  // Existing circuit between the pair can be shared by multiple segments;
  // otherwise wire a fresh one.
  hw::CircuitId circuit_id;
  LinkMedium medium = electrical ? LinkMedium::kElectrical : LinkMedium::kOptical;
  std::size_t lanes = std::max<std::size_t>(1, request.lanes);
  for (const auto& a : attachments_) {
    if (a.compute == request.compute && a.membrick == request.membrick) {
      circuit_id = a.circuit;
      medium = a.medium;
      lanes = a.lanes;
      break;
    }
  }

  // Packet-substrate fallback (Section III): when the system runs low on
  // physical circuit ports, the orchestrator programs packet-switch
  // lookup tables instead of a dedicated circuit.
  auto packet_fallback = [&]() -> bool {
    if (!request.allow_packet_fallback || packet_net_ == nullptr) return false;
    if (!packet_net_->has_brick(request.compute) || !packet_net_->has_brick(request.membrick)) {
      return false;
    }
    for (const auto& link : packet_) {
      if ((link.a == request.compute && link.b == request.membrick) ||
          (link.a == request.membrick && link.b == request.compute)) {
        circuit_id = link.id;
        medium = LinkMedium::kPacket;
        return true;
      }
    }
    if (!packet_net_->connected(request.compute, request.membrick)) {
      packet_net_->connect(request.compute, request.membrick, request.fiber_length_m);
    }
    circuit_id = hw::CircuitId{next_packet_id_++};
    packet_.push_back(PacketLink{circuit_id, request.compute, request.membrick});
    medium = LinkMedium::kPacket;
    return true;
  };

  hw::PortId first_out_port{0};
  if (!circuit_id.valid()) {
    // Enough free transceiver ports on both bricks for every lane?
    if (compute.free_port_count(true) < lanes) {
      last_error_ = AttachError::kNoComputePort;
      if (!packet_fallback()) return std::nullopt;
    } else if (membrick.free_port_count(true) < lanes) {
      last_error_ = AttachError::kNoMemoryPort;
      if (!packet_fallback()) return std::nullopt;
    }

    if (!circuit_id.valid()) {  // not in packet fallback
      if (electrical) {
        // Tray backplane cross-connect: no optical switch ports involved;
        // bond `lanes` backplane lanes.
        ElectricalLink link;
        link.id = hw::CircuitId{next_electrical_id_++};
        link.a = request.compute;
        link.b = request.membrick;
        for (std::size_t l = 0; l < lanes; ++l) {
          auto* cp = compute.find_free_port(true);
          auto* mp = membrick.find_free_port(true);
          cp->connected = true;
          mp->connected = true;
          link.a_ports.push_back(cp->id);
          link.b_ports.push_back(mp->id);
        }
        first_out_port = link.a_ports.front();
        circuit_id = link.id;
        electrical_.push_back(std::move(link));
      } else {
        // One optical circuit per lane; all bonded under the primary id.
        if (circuits_.optical_switch().free_ports() < 2 * request.switch_hops * lanes) {
          last_error_ = AttachError::kNoSwitchPorts;
          if (!packet_fallback()) return std::nullopt;
        }
        if (!circuit_id.valid()) {
          OpticalBond bond;
          std::vector<std::pair<hw::TransceiverPort*, hw::TransceiverPort*>> taken;
          for (std::size_t l = 0; l < lanes; ++l) {
            auto* cp = compute.find_free_port(true);
            auto* mp = membrick.find_free_port(true);
            cp->connected = true;
            mp->connected = true;
            taken.emplace_back(cp, mp);
            optics::CircuitRequest creq;
            creq.a = optics::CircuitEndpoint{request.compute, cp->id, -3.7, 1.2};
            creq.b = optics::CircuitEndpoint{request.membrick, mp->id, -3.7, 1.2};
            creq.hops = request.switch_hops;
            creq.fiber_length_m = request.fiber_length_m;
            auto circuit = circuits_.establish(creq);
            if (!circuit) {
              // Roll back everything wired so far.
              for (auto& [c, m] : taken) {
                c->connected = false;
                m->connected = false;
              }
              for (hw::CircuitId id : bond.all) circuits_.teardown(id);
              last_error_ = AttachError::kNoSwitchPorts;
              if (!packet_fallback()) return std::nullopt;
              bond.all.clear();
              break;
            }
            bond.all.push_back(circuit->id);
          }
          if (!bond.all.empty()) {
            bond.primary = bond.all.front();
            circuit_id = bond.primary;
            first_out_port = taken.front().first->id;
            if (bond.all.size() > 1) bonds_.push_back(std::move(bond));
          }
        }
      }
    }
  }

  auto segment = membrick.allocate(request.bytes, request.compute);
  if (!segment) {
    // largest_free_extent was checked above; reaching here means a race in
    // caller logic. Keep the invariant: undo the circuit if fresh.
    last_error_ = AttachError::kNoMemory;
    return std::nullopt;
  }

  hw::RmstEntry entry;
  entry.segment = segment->id;
  entry.base = compute.find_remote_window(request.bytes);
  entry.size = request.bytes;
  entry.dest_brick = request.membrick;
  entry.dest_base = segment->base;
  entry.out_port = first_out_port;
  entry.circuit = circuit_id;
  compute.tgl().rmst().insert(entry);

  Attachment a;
  a.compute = request.compute;
  a.membrick = request.membrick;
  a.segment = segment->id;
  a.compute_base = entry.base;
  a.size = request.bytes;
  a.circuit = circuit_id;
  a.medium = medium;
  a.lanes = medium == LinkMedium::kPacket ? 1 : lanes;
  a.established_at = now;
  attachments_.push_back(a);
  return a;
}

bool RemoteMemoryFabric::detach(hw::BrickId compute, hw::SegmentId segment) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == segment;
  });
  if (it == attachments_.end()) return false;

  const Attachment removed = *it;
  attachments_.erase(it);

  auto& cb = rack_.compute_brick(removed.compute);
  cb.tgl().rmst().remove(segment);
  rack_.memory_brick(removed.membrick).release(segment);

  if (telemetry_ != nullptr) {
    detaches_metric_->add();
    rmst_entries_metric_->add(-1.0);
    rmst_mapped_metric_->add(-static_cast<double>(removed.size));
  }

  // Tear the circuit down when no other attachment rides it.
  const bool circuit_still_used =
      std::any_of(attachments_.begin(), attachments_.end(),
                  [&](const Attachment& a) { return a.circuit == removed.circuit; });
  if (!circuit_still_used) {
    if (removed.medium == LinkMedium::kPacket) {
      packet_.erase(std::remove_if(packet_.begin(), packet_.end(),
                                   [&](const PacketLink& l) { return l.id == removed.circuit; }),
                    packet_.end());
      circuit_busy_until_.erase(removed.circuit.value);
    } else if (removed.medium == LinkMedium::kElectrical) {
      const ElectricalLink* link = find_electrical(removed.circuit);
      if (link != nullptr) {
        for (std::size_t l = 0; l < link->lanes(); ++l) {
          rack_.brick(link->a).port(link->a_ports[l].value).connected = false;
          rack_.brick(link->b).port(link->b_ports[l].value).connected = false;
        }
        electrical_.erase(
            std::remove_if(electrical_.begin(), electrical_.end(),
                           [&](const ElectricalLink& l) { return l.id == removed.circuit; }),
            electrical_.end());
        circuit_busy_until_.erase(removed.circuit.value);
      }
    } else {
      // Optical: tear down every lane of the bond (single-lane links have
      // no bond record and tear down just the primary circuit).
      std::vector<hw::CircuitId> to_tear{removed.circuit};
      for (auto bit = bonds_.begin(); bit != bonds_.end(); ++bit) {
        if (bit->primary == removed.circuit) {
          to_tear = bit->all;
          bonds_.erase(bit);
          break;
        }
      }
      for (hw::CircuitId id : to_tear) {
        auto circuit = circuits_.find(id);
        if (circuit) {
          rack_.brick(circuit->a.brick).port(circuit->a.port.value).connected = false;
          rack_.brick(circuit->b.brick).port(circuit->b.port.value).connected = false;
          circuits_.teardown(id);
        }
        circuit_busy_until_.erase(id.value);
      }
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

std::optional<RemoteMemoryFabric::MigratedAttachment> RemoteMemoryFabric::migrate_attachment(
    hw::SegmentId segment, hw::BrickId from, hw::BrickId to, sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == from && a.segment == segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  const Attachment old = *it;

  auto& new_compute = rack_.compute_brick(to);
  if (new_compute.tgl().rmst().full()) {
    last_error_ = AttachError::kRmstFull;
    return std::nullopt;
  }

  // Wire (or reuse) connectivity between the destination brick and the
  // serving dMEMBRICK before touching the source side, so failure leaves
  // the old attachment intact.
  hw::CircuitId new_circuit_id;
  LinkMedium new_medium = LinkMedium::kOptical;
  for (const auto& a : attachments_) {
    if (a.compute == to && a.membrick == old.membrick) {
      new_circuit_id = a.circuit;
      new_medium = a.medium;
      break;
    }
  }
  bool wired_fresh = false;
  if (!new_circuit_id.valid()) {
    hw::TransceiverPort* cport = new_compute.find_free_port(/*circuit_based=*/true);
    if (cport == nullptr) {
      last_error_ = AttachError::kNoComputePort;
      return std::nullopt;
    }
    hw::TransceiverPort* mport =
        rack_.memory_brick(old.membrick).find_free_port(/*circuit_based=*/true);
    if (mport == nullptr) {
      last_error_ = AttachError::kNoMemoryPort;
      return std::nullopt;
    }
    if (same_tray(to, old.membrick)) {
      new_medium = LinkMedium::kElectrical;
      new_circuit_id = hw::CircuitId{next_electrical_id_++};
      electrical_.push_back(
          ElectricalLink{new_circuit_id, to, old.membrick, {cport->id}, {mport->id}});
    } else {
      optics::CircuitRequest creq;
      creq.a = optics::CircuitEndpoint{to, cport->id, -3.7, 1.2};
      creq.b = optics::CircuitEndpoint{old.membrick, mport->id, -3.7, 1.2};
      auto circuit = circuits_.establish(creq);
      if (!circuit) {
        last_error_ = AttachError::kNoSwitchPorts;
        return std::nullopt;
      }
      new_medium = LinkMedium::kOptical;
      new_circuit_id = circuit->id;
    }
    cport->connected = true;
    mport->connected = true;
    wired_fresh = true;
  }

  // Move the RMST entry: remove at the source, install at the destination.
  auto& old_compute = rack_.compute_brick(from);
  const auto old_entry = old_compute.tgl().rmst().find_segment(segment);
  old_compute.tgl().rmst().remove(segment);

  hw::RmstEntry entry;
  entry.segment = segment;
  entry.base = new_compute.find_remote_window(old.size);
  entry.size = old.size;
  entry.dest_brick = old.membrick;
  entry.dest_base = old_entry ? old_entry->dest_base : 0;
  entry.circuit = new_circuit_id;
  new_compute.tgl().rmst().insert(entry);

  rack_.memory_brick(old.membrick).reassign(segment, to);

  // Update the attachment record in place.
  it->compute = to;
  it->compute_base = entry.base;
  it->circuit = new_circuit_id;
  it->medium = new_medium;
  it->established_at = now;
  const Attachment updated = *it;

  // Tear down the source-side circuit if this was its last rider.
  const bool old_circuit_used =
      std::any_of(attachments_.begin(), attachments_.end(),
                  [&](const Attachment& a) { return a.circuit == old.circuit; });
  if (!old_circuit_used) {
    if (old.medium == LinkMedium::kElectrical) {
      if (const ElectricalLink* link = find_electrical(old.circuit); link != nullptr) {
        for (std::size_t l = 0; l < link->lanes(); ++l) {
          rack_.brick(link->a).port(link->a_ports[l].value).connected = false;
          rack_.brick(link->b).port(link->b_ports[l].value).connected = false;
        }
        electrical_.erase(
            std::remove_if(electrical_.begin(), electrical_.end(),
                           [&](const ElectricalLink& l) { return l.id == old.circuit; }),
            electrical_.end());
      }
    } else if (auto circuit = circuits_.find(old.circuit)) {
      rack_.brick(circuit->a.brick).port(circuit->a.port.value).connected = false;
      rack_.brick(circuit->b.brick).port(circuit->b.port.value).connected = false;
      circuits_.teardown(old.circuit);
    }
    circuit_busy_until_.erase(old.circuit.value);
  }

  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return MigratedAttachment{updated, wired_fresh};
}

bool RemoteMemoryFabric::fail_circuit(hw::CircuitId circuit) {
  // Only the optical substrate is subject to this fault model (fibres and
  // beam-steering cross-connects); the tray backplane is passive copper.
  std::vector<hw::CircuitId> lanes{circuit};
  for (auto bit = bonds_.begin(); bit != bonds_.end(); ++bit) {
    if (bit->primary == circuit) {
      lanes = bit->all;
      bonds_.erase(bit);
      break;
    }
  }
  bool any = false;
  for (hw::CircuitId id : lanes) {
    auto live = circuits_.find(id);
    if (!live) continue;
    rack_.brick(live->a.brick).port(live->a.port.value).connected = false;
    rack_.brick(live->b.brick).port(live->b.port.value).connected = false;
    circuits_.teardown(id);
    circuit_busy_until_.erase(id.value);
    any = true;
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return any;
}

std::optional<Attachment> RemoteMemoryFabric::repair(hw::BrickId compute,
                                                     hw::SegmentId segment, sim::Time now) {
  auto it = std::find_if(attachments_.begin(), attachments_.end(), [&](const Attachment& a) {
    return a.compute == compute && a.segment == segment;
  });
  if (it == attachments_.end()) return std::nullopt;
  if (it->medium != LinkMedium::kOptical) return *it;      // nothing to repair
  if (circuits_.find(it->circuit).has_value()) return *it;  // circuit is healthy

  auto& cb = rack_.compute_brick(compute);
  auto& mb = rack_.memory_brick(it->membrick);
  auto* cport = cb.find_free_port(/*circuit_based=*/true);
  auto* mport = mb.find_free_port(/*circuit_based=*/true);
  if (cport == nullptr) {
    last_error_ = AttachError::kNoComputePort;
    return std::nullopt;
  }
  if (mport == nullptr) {
    last_error_ = AttachError::kNoMemoryPort;
    return std::nullopt;
  }
  optics::CircuitRequest creq;
  creq.a = optics::CircuitEndpoint{compute, cport->id, -3.7, 1.2};
  creq.b = optics::CircuitEndpoint{it->membrick, mport->id, -3.7, 1.2};
  auto circuit = circuits_.establish(creq);
  if (!circuit) {
    last_error_ = AttachError::kNoSwitchPorts;
    return std::nullopt;
  }
  cport->connected = true;
  mport->connected = true;

  // Heal every attachment (and RMST entry) that rode the dead circuit.
  const hw::CircuitId dead = it->circuit;
  for (auto& a : attachments_) {
    if (a.circuit != dead) continue;
    a.circuit = circuit->id;
    a.lanes = 1;  // repaired as a single fresh lane
    a.established_at = now;
    auto& rmst = rack_.compute_brick(a.compute).tgl().rmst();
    auto entry = rmst.find_segment(a.segment);
    if (entry) {
      hw::RmstEntry updated = *entry;
      updated.circuit = circuit->id;
      updated.out_port = cport->id;
      rmst.remove(a.segment);
      rmst.insert(updated);
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return *it;
}

std::vector<Attachment> RemoteMemoryFabric::attachments_of(hw::BrickId compute) const {
  std::vector<Attachment> out;
  for (const auto& a : attachments_) {
    if (a.compute == compute) out.push_back(a);
  }
  return out;
}

std::uint64_t RemoteMemoryFabric::attached_bytes(hw::BrickId compute) const {
  std::uint64_t total = 0;
  for (const auto& a : attachments_) {
    if (a.compute == compute) total += a.size;
  }
  return total;
}

sim::Time RemoteMemoryFabric::serialization_time(std::uint32_t bytes, LinkMedium medium,
                                                 std::size_t lanes) const {
  const double bits = static_cast<double>(bytes + latencies_.framing_bytes) * 8.0;
  const double rate = medium == LinkMedium::kElectrical ? latencies_.electrical_rate_gbps
                                                        : latencies_.line_rate_gbps;
  // Bonded lanes stripe the payload (aggregate-bandwidth mode, Section II).
  return sim::Time::ns(bits / (rate * static_cast<double>(std::max<std::size_t>(1, lanes))));
}

const Attachment* RemoteMemoryFabric::find_attachment(hw::BrickId compute,
                                                      std::uint64_t address) const {
  for (const auto& a : attachments_) {
    if (a.compute == compute && address >= a.compute_base &&
        address - a.compute_base < a.size) {
      return &a;
    }
  }
  return nullptr;
}

Transaction RemoteMemoryFabric::execute(TransactionKind kind, hw::BrickId compute,
                                        std::uint64_t address, std::uint32_t bytes,
                                        sim::Time when) {
  Transaction tx = execute_path(kind, compute, address, bytes, when);
  if (telemetry_ != nullptr) {
    transactions_metric_->add();
    if (tx.ok()) {
      auto* latency = kind == TransactionKind::kRead ? read_latency_metric_ : write_latency_metric_;
      latency->observe(tx.round_trip().as_ns());
    } else {
      failed_tx_metric_->add();
    }
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kFabric,
                     kind == TransactionKind::kRead ? "remote read" : "remote write", tx.issued_at};
      span.arg("bytes", std::to_string(tx.bytes)).arg("status", to_string(tx.status));
      span.end(tx.completed_at);
    }
  }
  return tx;
}

Transaction RemoteMemoryFabric::execute_path(TransactionKind kind, hw::BrickId compute,
                                             std::uint64_t address, std::uint32_t bytes,
                                             sim::Time when) {
  Transaction tx;
  tx.kind = kind;
  tx.source = compute;
  tx.address = address;
  tx.bytes = bytes;
  tx.issued_at = when;

  auto& cb = rack_.compute_brick(compute);

  // The APU forwards the transaction to the TGL via its master ports; the
  // TGL identifies the remote segment (fully associative RMST match).
  tx.breakdown.charge("TGL lookup (RMST)", latencies_.tgl_lookup);
  sim::Time t = when + latencies_.tgl_lookup;

  auto route = cb.tgl().route(address);
  if (!route) {
    tx.status = TransactionStatus::kNoMapping;
    tx.completed_at = t;
    return tx;
  }
  tx.destination = route->entry.dest_brick;
  tx.remote_address = route->remote_addr;

  // Packet-substrate attachments delegate the whole round trip to the
  // packet network model (NI, on-brick switches, MAC/PHY).
  if (find_packet(route->entry.circuit) != nullptr) {
    net::Packet pkt =
        kind == TransactionKind::kRead
            ? packet_net_->remote_read(compute, tx.destination, tx.remote_address, bytes, t,
                                       rack_.memory_brick(tx.destination).config().technology)
            : packet_net_->remote_write(compute, tx.destination, tx.remote_address, bytes, t,
                                        rack_.memory_brick(tx.destination).config().technology);
    tx.breakdown.merge(pkt.breakdown);
    tx.completed_at = pkt.delivered_at;
    return tx;
  }

  // Resolve the medium: intra-tray electrical links are tracked by the
  // fabric itself; optical circuits by the circuit manager.
  LinkMedium medium = LinkMedium::kOptical;
  sim::Time propagation;
  if (const ElectricalLink* link = find_electrical(route->entry.circuit); link != nullptr) {
    medium = LinkMedium::kElectrical;
    propagation = latencies_.electrical_propagation;
  } else {
    auto circuit = circuits_.find(route->entry.circuit);
    if (!circuit) {
      tx.status = TransactionStatus::kCircuitDown;
      tx.completed_at = t;
      return tx;
    }
    propagation = circuit->propagation_delay();
  }
  const sim::Time serdes =
      medium == LinkMedium::kElectrical ? latencies_.electrical_serdes : latencies_.serdes;
  const char* wire = medium == LinkMedium::kElectrical ? "electrical propagation"
                                                       : "optical propagation";

  // Bonded-lane count for this circuit (attachments on the pair carry it).
  std::size_t lanes = 1;
  for (const auto& a : attachments_) {
    if (a.circuit == route->entry.circuit) {
      lanes = a.lanes;
      break;
    }
  }

  const auto tech = rack_.memory_brick(tx.destination).config().technology;
  // Array occupancy: first-word latency plus streaming time for the
  // payload at the controller's bandwidth.
  const bool hmc = tech == hw::MemoryTechnology::kHmc;
  const double array_gbps = hmc ? latencies_.hmc_bandwidth_gbps : latencies_.ddr_bandwidth_gbps;
  const sim::Time mem_access = (hmc ? latencies_.hmc_access : latencies_.ddr_access) +
                               sim::Time::ns(static_cast<double>(bytes) * 8.0 / array_gbps);

  // Outbound: request (write carries payload; read is header-only).
  const std::uint32_t out_bytes = kind == TransactionKind::kWrite ? bytes : 0;
  const sim::Time out_ser = serialization_time(out_bytes, medium, lanes);
  sim::Time& busy = circuit_busy_until_[route->entry.circuit.value];
  const sim::Time start = std::max(t, busy);
  tx.breakdown.charge("circuit wait", start - t);
  tx.breakdown.charge("serialization", out_ser);
  busy = start + out_ser;
  t = start + out_ser;

  tx.breakdown.charge("GTH serdes (TX)", serdes);
  t += serdes;
  tx.breakdown.charge(wire, propagation);
  t += propagation;
  tx.breakdown.charge("GTH serdes (RX)", serdes);
  t += serdes;

  // dMEMBRICK: glue logic steers the transaction to one of the brick's
  // memory controllers (address-interleaved); a busy controller delays
  // the access, so bricks dimensioned with more controllers sustain more
  // concurrent transactions (Section II).
  tx.breakdown.charge("glue logic (dMEMBRICK)", latencies_.glue_logic);
  t += latencies_.glue_logic;
  const auto& mb = rack_.memory_brick(tx.destination);
  const std::size_t mc_count = mb.config().memory_controllers;
  const std::size_t mc =
      static_cast<std::size_t>((tx.remote_address >> 12)) % std::max<std::size_t>(1, mc_count);
  const std::uint64_t mc_key =
      (static_cast<std::uint64_t>(tx.destination.value) << 8) | static_cast<std::uint64_t>(mc);
  sim::Time& mc_busy = controller_busy_until_[mc_key];
  const sim::Time mc_start = std::max(t, mc_busy);
  tx.breakdown.charge("memory controller wait", mc_start - t);
  tx.breakdown.charge("memory access", mem_access);
  mc_busy = mc_start + mem_access;
  t = mc_start + mem_access;

  // Return: read carries payload back; write returns a short ack.
  const std::uint32_t back_bytes = kind == TransactionKind::kRead ? bytes : 0;
  const sim::Time back_ser = serialization_time(back_bytes, medium, lanes);
  tx.breakdown.charge("serialization", back_ser);
  tx.breakdown.charge("GTH serdes (return)", serdes * 2);
  tx.breakdown.charge(wire, propagation);
  t += back_ser + serdes * 2 + propagation;

  tx.completed_at = t;
  return tx;
}

void RemoteMemoryFabric::check_invariants() const {
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    const Attachment& a = attachments_[i];
    DREDBOX_INVARIANT(a.size > 0, "attachment maps zero bytes");
    DREDBOX_INVARIANT(a.circuit.valid(), "attachment has no link record");
    for (std::size_t j = i + 1; j < attachments_.size(); ++j) {
      DREDBOX_INVARIANT(attachments_[j].compute != a.compute ||
                            attachments_[j].segment != a.segment,
                        "segment " + a.segment.to_string() + " attached twice to brick " +
                            a.compute.to_string());
    }

    // The consuming side: a live dCOMPUBRICK with the RMST entry installed.
    DREDBOX_INVARIANT(rack_.has_brick(a.compute) &&
                          rack_.brick(a.compute).kind() == hw::BrickKind::kCompute,
                      "attachment consumer " + a.compute.to_string() +
                          " is not a live dCOMPUBRICK");
    const auto entry = rack_.compute_brick(a.compute).tgl().rmst().find_segment(a.segment);
    DREDBOX_INVARIANT(entry.has_value(), "segment " + a.segment.to_string() +
                                             " has no RMST entry on brick " +
                                             a.compute.to_string());
    DREDBOX_INVARIANT(entry->base == a.compute_base && entry->size == a.size &&
                          entry->dest_brick == a.membrick,
                      "RMST entry for segment " + a.segment.to_string() +
                          " disagrees with the attachment record");

    // The serving side: every mapped segment is backed by a live dMEMBRICK
    // that still carves that segment for this consumer.
    DREDBOX_INVARIANT(rack_.has_brick(a.membrick) &&
                          rack_.brick(a.membrick).kind() == hw::BrickKind::kMemory,
                      "attachment server " + a.membrick.to_string() +
                          " is not a live dMEMBRICK");
    const auto segment = rack_.memory_brick(a.membrick).find_segment(a.segment);
    DREDBOX_INVARIANT(segment.has_value(), "segment " + a.segment.to_string() +
                                               " is not carved on dMEMBRICK " +
                                               a.membrick.to_string());
    DREDBOX_INVARIANT(segment->owner == a.compute && segment->size == a.size,
                      "dMEMBRICK segment " + a.segment.to_string() +
                          " disagrees with the attachment record");

    // The link record matches the medium. Optical circuits may be absent
    // (failed); electrical and packet links are fabric-owned and must exist.
    switch (a.medium) {
      case LinkMedium::kElectrical:
        DREDBOX_INVARIANT(find_electrical(a.circuit) != nullptr,
                          "electrical attachment without a backplane link record");
        break;
      case LinkMedium::kPacket:
        DREDBOX_INVARIANT(find_packet(a.circuit) != nullptr,
                          "packet attachment without a lookup-table link record");
        break;
      case LinkMedium::kOptical:
        break;
    }
  }

  // Fabric-owned link endpoints must still hold their transceiver ports.
  for (const auto& link : electrical_) {
    DREDBOX_INVARIANT(link.a_ports.size() == link.b_ports.size(),
                      "electrical link with unbalanced lane bundles");
    for (std::size_t l = 0; l < link.lanes(); ++l) {
      DREDBOX_INVARIANT(rack_.brick(link.a).port(link.a_ports[l].value).connected &&
                            rack_.brick(link.b).port(link.b_ports[l].value).connected,
                        "electrical link lane rides a disconnected transceiver port");
    }
  }
}

Transaction RemoteMemoryFabric::read(hw::BrickId compute, std::uint64_t address,
                                     std::uint32_t bytes, sim::Time when) {
  return execute(TransactionKind::kRead, compute, address, bytes, when);
}

Transaction RemoteMemoryFabric::write(hw::BrickId compute, std::uint64_t address,
                                      std::uint32_t bytes, sim::Time when) {
  return execute(TransactionKind::kWrite, compute, address, bytes, when);
}

}  // namespace dredbox::memsys
