#pragma once

#include <cstdint>
#include <string>

#include "hw/ids.hpp"
#include "sim/breakdown.hpp"
#include "sim/contract.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace dredbox::memsys {

enum class TransactionKind : std::uint8_t { kRead, kWrite };

std::string to_string(TransactionKind kind);

enum class TransactionStatus : std::uint8_t {
  kOk,
  kNoMapping,      // address missed the RMST (decode fault back to the APU)
  kCircuitDown,    // mapped segment's circuit was torn down
  kCorruptMapping, // RMST entry disagrees with the dMEMBRICK's backing segment
  kBrickFailed,    // serving dMEMBRICK has crashed
};

std::string to_string(TransactionStatus status);

/// One remote memory transaction and its measured round trip.
struct Transaction {
  TransactionKind kind = TransactionKind::kRead;
  TransactionStatus status = TransactionStatus::kOk;
  hw::BrickId source;          // issuing dCOMPUBRICK
  hw::BrickId destination;     // serving dMEMBRICK (when mapped)
  std::uint64_t address = 0;   // brick-physical address at the source
  std::uint64_t remote_address = 0;  // translated pool address
  std::uint32_t bytes = 64;

  sim::Time issued_at;
  sim::Time completed_at;
  sim::Breakdown breakdown;
  /// Recovery attempts the fabric made beyond the first issue (retry with
  /// backoff, RMST scrub, circuit re-provision, packet failover).
  std::uint32_t retries = 0;
  /// Causal identity of the fabric span recorded for this transaction
  /// (child of the caller's context when one was passed; invalid when
  /// tracing is off). Callers nest deeper work under it.
  sim::TraceContext ctx;

  bool ok() const { return status == TransactionStatus::kOk; }

  /// Issue-to-completion latency. Failed transactions still have a real
  /// duration (completed_at is stamped with the failure time), but a
  /// transaction that was never completed at all (completed_at still
  /// default-initialized before issued_at) has no round trip: asking for
  /// one returns zero instead of an underflowed Time, and trips
  /// DREDBOX_REQUIRE under -DDREDBOX_AUDIT=ON so reducers averaging it
  /// in are caught in audit runs.
  sim::Time round_trip() const {
    DREDBOX_REQUIRE(completed_at >= issued_at,
                    "Transaction::round_trip on a never-completed transaction");
    if (completed_at < issued_at) return sim::Time::zero();
    return completed_at - issued_at;
  }
};

}  // namespace dredbox::memsys
