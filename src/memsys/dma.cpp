#include "memsys/dma.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/contract.hpp"
#include "sim/span.hpp"

namespace dredbox::memsys {

DmaEngine::DmaEngine(sim::Simulator& sim, RemoteMemoryFabric& fabric, hw::BrickId compute,
                     std::size_t channels, std::uint32_t chunk_bytes)
    : sim_{sim}, fabric_{fabric}, compute_{compute}, chunk_bytes_{chunk_bytes} {
  if (channels == 0) throw std::invalid_argument("DmaEngine: needs at least one channel");
  if (chunk_bytes == 0) throw std::invalid_argument("DmaEngine: chunk size must be positive");
  channels_.resize(channels);
}

sim::Telemetry* DmaEngine::bind_telemetry() {
  sim::Telemetry* telemetry = fabric_.telemetry();
  if (telemetry == wired_telemetry_) return telemetry;
  wired_telemetry_ = telemetry;
  if (telemetry == nullptr) {
    transfers_metric_ = bytes_metric_ = retries_metric_ = failed_metric_ = nullptr;
    return nullptr;
  }
  auto& m = telemetry->metrics();
  transfers_metric_ = &m.counter("memsys.dma.transfers");
  bytes_metric_ = &m.counter("memsys.dma.bytes");
  retries_metric_ = &m.counter("memsys.dma.retries");
  failed_metric_ = &m.counter("memsys.dma.failed_transfers");
  return telemetry;
}

std::size_t DmaEngine::in_flight() const {
  return static_cast<std::size_t>(
      std::count_if(channels_.begin(), channels_.end(), [](const Channel& c) { return c.busy; }));
}

// dredbox-lint: hot-path-begin — enqueue/pump/step/finish run once (or
// more) per transfer chunk in steady state and must stay allocation-free;
// cold branches below carry per-line suppressions.
void DmaEngine::enqueue(const DmaDescriptor& descriptor, Callback callback) {
  if (descriptor.bytes == 0) {
    throw std::invalid_argument("DmaEngine::enqueue: zero-byte transfer");
  }
  const auto [job, slot] = jobs_.create(Job{descriptor, std::move(callback), sim_.now()});
  (void)job;
  queue_.push_back(JobHandle{slot, jobs_.generation(slot)});
  pump();
}

void DmaEngine::pump() {
  for (std::size_t c = 0; c < channels_.size() && queue_head_ < queue_.size(); ++c) {
    if (channels_[c].busy) continue;
    const JobHandle handle = queue_[queue_head_++];
    channels_[c].busy = true;
    step(c, handle, 0, 0);
  }
  if (queue_head_ == queue_.size() && queue_head_ != 0) {
    queue_.clear();  // rewind; capacity is kept, so steady state is alloc-free
    queue_head_ = 0;
  }
}

DmaEngine::Job& DmaEngine::job_ref(JobHandle handle) {
  Job* job = jobs_.get(handle.slot);
  DREDBOX_INVARIANT(job != nullptr && jobs_.generation(handle.slot) == handle.generation,
                    "DmaEngine: stale job handle fired — a scheduled chunk event "
                    "outlived its pooled job");
  return *job;
}

void DmaEngine::finish(std::size_t channel, JobHandle handle, const DmaCompletion& done) {
  // Reclaim the slot before delivering the completion: the callback may
  // reentrantly enqueue (closed-loop workloads do) and is entitled to
  // reuse the slot; the moved-out callback survives the destroy.
  Callback callback = std::move(job_ref(handle).callback);
  jobs_.destroy(handle.slot);
  channels_[channel].busy = false;
  if (callback) callback(done);
  pump();
}

void DmaEngine::step(std::size_t channel, JobHandle handle, std::uint64_t offset,
                     std::size_t chunks) {
  Job& job = job_ref(handle);
  if (offset >= job.descriptor.bytes) {
    DmaCompletion done;
    done.ok = true;
    done.bytes = job.descriptor.bytes;
    done.chunks = chunks;
    done.retries = job.retries;
    done.enqueued_at = job.enqueued_at;
    done.completed_at = sim_.now();
    ++completed_;
    // Transfer-grained telemetry (inherited from the fabric; the per-chunk
    // transactions already land in the memsys.* histograms). Reads the job,
    // so it runs before finish() reclaims the slot.
    if (sim::Telemetry* telemetry = bind_telemetry(); telemetry != nullptr) {
      transfers_metric_->add();
      bytes_metric_->add(done.bytes);
      if (telemetry->tracing()) {  // cold: tracing is opt-in, off on measured runs
        sim::Span span{telemetry->tracer(), sim::TraceCategory::kFabric, "dma transfer",
                       done.enqueued_at};
        span.context(telemetry->tracer().child_of(job.descriptor.ctx));
        span.arg("bytes", std::to_string(done.bytes))  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
            .arg("chunks", std::to_string(done.chunks))  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
            .arg("direction", to_string(job.descriptor.direction));
        // dredbox-lint: ignore[hot-path-alloc] tracing-gated
        if (done.retries > 0) span.arg("retries", std::to_string(done.retries));
        span.end(done.completed_at);
      }
    }
    finish(channel, handle, done);
    return;
  }

  const auto span = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunk_bytes_, job.descriptor.bytes - offset));
  const std::uint64_t addr = job.descriptor.address + offset;
  const Transaction tx = job.descriptor.direction == TransactionKind::kWrite
                             ? fabric_.write(compute_, addr, span, sim_.now(), job.descriptor.ctx)
                             : fabric_.read(compute_, addr, span, sim_.now(), job.descriptor.ctx);
  if (!tx.ok()) {
    // Event-scheduled chunk retry: unlike the fabric's synchronous loop,
    // waiting on the simulator timeline lets queued recovery (a fault
    // plan's flap expiring, an orchestrator repair) land between attempts.
    if (fabric_.retry_policy().has_value()) {
      if (!job.backoff.has_value()) {
        job.backoff.emplace(*fabric_.retry_policy(), sim_.now());
      }
      if (const auto delay = job.backoff->next(sim_.now())) {
        ++job.retries;
        if (bind_telemetry() != nullptr) retries_metric_->add();
        sim_.after(*delay, [this, channel, handle, offset, chunks] {
          step(channel, handle, offset, chunks);
        }, "memsys.dma.retry");
        return;
      }
    }
    DmaCompletion failed;
    failed.ok = false;
    // dredbox-lint: ignore[hot-path-alloc] cold: retry-exhausted failure, not steady state
    failed.error = "chunk at 0x" + std::to_string(addr) + " failed: " + to_string(tx.status);
    failed.bytes = offset;
    failed.chunks = chunks;
    failed.retries = job.retries;
    failed.enqueued_at = job.enqueued_at;
    failed.completed_at = sim_.now();
    if (bind_telemetry() != nullptr) failed_metric_->add();
    finish(channel, handle, failed);
    return;
  }

  // Issue the next chunk the moment this one's round trip completes; the
  // chunk landed, so the next one starts with a fresh backoff budget.
  job.backoff.reset();
  sim_.at(tx.completed_at, [this, channel, handle, offset, span, chunks] {
    step(channel, handle, offset + span, chunks + 1);
  }, "memsys.dma.step");
}
// dredbox-lint: hot-path-end

}  // namespace dredbox::memsys
