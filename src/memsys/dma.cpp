#include "memsys/dma.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/span.hpp"

namespace dredbox::memsys {

DmaEngine::DmaEngine(sim::Simulator& sim, RemoteMemoryFabric& fabric, hw::BrickId compute,
                     std::size_t channels, std::uint32_t chunk_bytes)
    : sim_{sim}, fabric_{fabric}, compute_{compute}, chunk_bytes_{chunk_bytes} {
  if (channels == 0) throw std::invalid_argument("DmaEngine: needs at least one channel");
  if (chunk_bytes == 0) throw std::invalid_argument("DmaEngine: chunk size must be positive");
  channels_.resize(channels);
}

sim::Telemetry* DmaEngine::bind_telemetry() {
  sim::Telemetry* telemetry = fabric_.telemetry();
  if (telemetry == wired_telemetry_) return telemetry;
  wired_telemetry_ = telemetry;
  if (telemetry == nullptr) {
    transfers_metric_ = bytes_metric_ = retries_metric_ = failed_metric_ = nullptr;
    return nullptr;
  }
  auto& m = telemetry->metrics();
  transfers_metric_ = &m.counter("memsys.dma.transfers");
  bytes_metric_ = &m.counter("memsys.dma.bytes");
  retries_metric_ = &m.counter("memsys.dma.retries");
  failed_metric_ = &m.counter("memsys.dma.failed_transfers");
  return telemetry;
}

std::size_t DmaEngine::in_flight() const {
  return static_cast<std::size_t>(
      std::count_if(channels_.begin(), channels_.end(), [](const Channel& c) { return c.busy; }));
}

void DmaEngine::enqueue(const DmaDescriptor& descriptor, Callback callback) {
  if (descriptor.bytes == 0) {
    throw std::invalid_argument("DmaEngine::enqueue: zero-byte transfer");
  }
  queue_.push_back(Job{descriptor, std::move(callback), sim_.now()});
  pump();
}

void DmaEngine::pump() {
  for (std::size_t c = 0; c < channels_.size() && !queue_.empty(); ++c) {
    if (channels_[c].busy) continue;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    channels_[c].busy = true;
    run_job(c, std::move(job));
  }
}

void DmaEngine::run_job(std::size_t channel, Job job) {
  step(channel, std::move(job), 0, 0);
}

void DmaEngine::step(std::size_t channel, Job job, std::uint64_t offset, std::size_t chunks) {
  if (offset >= job.descriptor.bytes) {
    DmaCompletion done;
    done.ok = true;
    done.bytes = job.descriptor.bytes;
    done.chunks = chunks;
    done.retries = job.retries;
    done.enqueued_at = job.enqueued_at;
    done.completed_at = sim_.now();
    channels_[channel].busy = false;
    ++completed_;
    // Transfer-grained telemetry (inherited from the fabric; the per-chunk
    // transactions already land in the memsys.* histograms).
    if (sim::Telemetry* telemetry = bind_telemetry(); telemetry != nullptr) {
      transfers_metric_->add();
      bytes_metric_->add(done.bytes);
      if (telemetry->tracing()) {
        sim::Span span{telemetry->tracer(), sim::TraceCategory::kFabric, "dma transfer",
                       done.enqueued_at};
        span.context(telemetry->tracer().child_of(job.descriptor.ctx));
        span.arg("bytes", std::to_string(done.bytes))
            .arg("chunks", std::to_string(done.chunks))
            .arg("direction", to_string(job.descriptor.direction));
        if (done.retries > 0) span.arg("retries", std::to_string(done.retries));
        span.end(done.completed_at);
      }
    }
    if (job.callback) job.callback(done);
    pump();
    return;
  }

  const auto span = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunk_bytes_, job.descriptor.bytes - offset));
  const std::uint64_t addr = job.descriptor.address + offset;
  const Transaction tx = job.descriptor.direction == TransactionKind::kWrite
                             ? fabric_.write(compute_, addr, span, sim_.now(), job.descriptor.ctx)
                             : fabric_.read(compute_, addr, span, sim_.now(), job.descriptor.ctx);
  if (!tx.ok()) {
    // Event-scheduled chunk retry: unlike the fabric's synchronous loop,
    // waiting on the simulator timeline lets queued recovery (a fault
    // plan's flap expiring, an orchestrator repair) land between attempts.
    if (fabric_.retry_policy().has_value()) {
      if (!job.backoff.has_value()) {
        job.backoff.emplace(*fabric_.retry_policy(), sim_.now());
      }
      if (const auto delay = job.backoff->next(sim_.now())) {
        ++job.retries;
        if (bind_telemetry() != nullptr) retries_metric_->add();
        sim_.after(*delay, [this, channel, job = std::move(job), offset, chunks]() mutable {
          step(channel, std::move(job), offset, chunks);
        }, "memsys.dma.retry");
        return;
      }
    }
    DmaCompletion failed;
    failed.ok = false;
    failed.error = "chunk at 0x" + std::to_string(addr) + " failed: " + to_string(tx.status);
    failed.bytes = offset;
    failed.chunks = chunks;
    failed.retries = job.retries;
    failed.enqueued_at = job.enqueued_at;
    failed.completed_at = sim_.now();
    if (bind_telemetry() != nullptr) failed_metric_->add();
    channels_[channel].busy = false;
    if (job.callback) job.callback(failed);
    pump();
    return;
  }

  // Issue the next chunk the moment this one's round trip completes; the
  // chunk landed, so the next one starts with a fresh backoff budget.
  job.backoff.reset();
  sim_.at(tx.completed_at, [this, channel, job = std::move(job), offset, span, chunks]() mutable {
    step(channel, std::move(job), offset + span, chunks + 1);
  }, "memsys.dma.step");
}

}  // namespace dredbox::memsys
