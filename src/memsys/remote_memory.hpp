#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/rack.hpp"
#include "memsys/circuit_path.hpp"
#include "memsys/transaction.hpp"
#include "net/packet_network.hpp"
#include "optics/circuit.hpp"
#include "sim/metrics.hpp"
#include "sim/retry.hpp"

namespace dredbox::memsys {

/// Physical medium carrying an attachment's traffic: intra-tray pairs ride
/// the tray's electrical circuit; cross-tray pairs ride an optical circuit
/// through the rack switch (Section II); and when the system runs low on
/// physical switch ports, traffic falls back to the packet-based network
/// with orchestrator-programmed lookup tables (Section III).
enum class LinkMedium : std::uint8_t { kElectrical, kOptical, kPacket };

std::string to_string(LinkMedium medium);

/// A live attachment of remote memory to a dCOMPUBRICK: the dMEMBRICK
/// segment, the RMST entry installed at the compute side, and the circuit
/// carrying the traffic.
struct Attachment {
  hw::BrickId compute;
  hw::BrickId membrick;
  hw::SegmentId segment;        // id on the dMEMBRICK
  std::uint64_t compute_base = 0;  // brick-physical window at the source
  std::uint64_t size = 0;
  hw::CircuitId circuit;
  LinkMedium medium = LinkMedium::kOptical;
  /// Parallel lanes bonded into this pair's link (Section II: multiple
  /// links "can be used to provide more aggregate bandwidth").
  std::size_t lanes = 1;
  /// Link parameters of the original provisioning, kept so repair() can
  /// rebuild the exact pre-failure path (hop count and fibre run).
  std::size_t switch_hops = 1;
  double fiber_length_m = 10.0;
  sim::Time established_at;
};

struct AttachRequest {
  hw::BrickId compute;
  hw::BrickId membrick;
  std::uint64_t bytes = 1ull << 30;
  std::size_t switch_hops = 1;
  double fiber_length_m = 10.0;
  /// Lanes to bond for aggregate bandwidth; each lane consumes one
  /// transceiver port per brick (plus switch ports when optical). Ignored
  /// when an existing link between the pair is reused.
  std::size_t lanes = 1;
  /// When true (default) the fabric uses the tray's electrical circuit for
  /// intra-tray pairs instead of burning optical switch ports.
  bool prefer_electrical_intra_tray = true;
  /// When true and a circuit cannot be wired (switch or brick ports
  /// exhausted), the attachment falls back to the packet substrate
  /// (requires a PacketNetwork attached to the fabric).
  bool allow_packet_fallback = false;
};

/// Why an attach failed — surfaced to the orchestrator so it can pick a
/// different dMEMBRICK or fall back to the packet substrate.
enum class AttachError {
  kNoMemory,        // dMEMBRICK cannot carve a contiguous segment
  kNoComputePort,   // requesting brick has no free circuit-facing port
  kNoMemoryPort,    // serving brick has no free circuit-facing port
  kNoSwitchPorts,   // optical switch exhausted ("running low in terms of
                    //  physical ports", Section III)
  kRmstFull,        // compute brick's segment table is full
  kBrickFailed,     // serving dMEMBRICK has crashed
};

std::string to_string(AttachError err);

/// The remote-memory fabric: control plane (attach/detach — carve a
/// segment, wire a circuit, install the RMST entry) and data plane
/// (read/write transactions with per-stage latency attribution) over the
/// mainline circuit-switched interconnect.
class RemoteMemoryFabric {
 public:
  RemoteMemoryFabric(hw::Rack& rack, optics::CircuitManager& circuits,
                     const CircuitPathLatencies& latencies = {});

  /// Attaches the exploratory packet substrate so attach() can fall back
  /// to it when circuits are unavailable. Both bricks of a fallback pair
  /// must be registered in the network; the fabric programs the lookup
  /// tables (the Section III control-path role) on first use.
  void set_packet_network(net::PacketNetwork* network) { packet_net_ = network; }
  std::size_t packet_links() const { return packet_.size(); }

  /// Wires rack-wide telemetry in: attach/detach counters, per-access
  /// round-trip histograms ("memsys.read.latency_ns" — the Fig. 8
  /// quantity), RMST occupancy gauges and kFabric trace spans. Null
  /// detaches telemetry again. Instrument pointers are cached here so the
  /// data-plane hot path never does a name lookup.
  void set_telemetry(sim::Telemetry* telemetry);
  /// The wired telemetry bundle (null when uninstrumented). Components
  /// layered on top of the fabric (e.g. the DMA engine) inherit it.
  sim::Telemetry* telemetry() const { return telemetry_; }

  // --- control plane ---
  std::optional<Attachment> attach(const AttachRequest& request, sim::Time now);
  AttachError last_error() const { return last_error_; }

  /// Detaches one attachment (removes RMST entry, frees the segment,
  /// tears the circuit down when it was the last user). Returns false
  /// when the segment is unknown for that compute brick.
  bool detach(hw::BrickId compute, hw::SegmentId segment);

  /// Result of re-pointing an attachment during VM migration.
  struct MigratedAttachment {
    Attachment attachment;     // updated record (new compute brick/window)
    bool new_circuit = false;  // a fresh cross-connect had to be wired
  };

  /// Re-points an attachment from one dCOMPUBRICK to another *without
  /// touching the data*: the dMEMBRICK segment stays where it is; only
  /// the RMST entry moves and a circuit to the new brick is wired (or
  /// reused). This is the disaggregation dividend for VM migration —
  /// remote memory never gets copied. Returns nullopt (state unchanged)
  /// when the new brick lacks ports/RMST slots or the switch lacks ports.
  std::optional<MigratedAttachment> migrate_attachment(hw::SegmentId segment,
                                                       hw::BrickId from, hw::BrickId to,
                                                       sim::Time now);

  // --- failure injection / repair ---
  /// Simulates a fault on an optical circuit (fibre cut, switch failure):
  /// the cross-connects drop and the endpoint transceivers lose link.
  /// Subsequent transactions over attachments riding it complete with
  /// TransactionStatus::kCircuitDown. Returns false for unknown ids or
  /// non-optical links.
  bool fail_circuit(hw::CircuitId circuit);

  /// Repairs a failed attachment by wiring a fresh circuit (reusing the
  /// surviving segment and RMST window). Every attachment that shared the
  /// dead circuit is healed at once. Returns the repaired attachment, or
  /// nullopt when no spare ports exist.
  std::optional<Attachment> repair(hw::BrickId compute, hw::SegmentId segment, sim::Time now);

  /// Reacts to circuits the CircuitManager tore down behind the fabric's
  /// back (insertion-loss drift, switch-port failure): releases the brick
  /// transceiver ports of every torn circuit, tears sibling lanes of any
  /// bond a torn circuit belonged to (a bonded link dies as a whole) and
  /// drops stale occupancy records. Attachments stay installed — their
  /// transactions report kCircuitDown until repaired.
  void on_circuits_torn(const std::vector<optics::Circuit>& torn);

  /// Moves one attachment's traffic to the packet substrate (Section III
  /// fallback) without touching the data: the RMST window, segment and
  /// backing bytes are preserved; only the link record changes. Used when
  /// a circuit cannot be re-provisioned. Returns the updated attachment or
  /// nullopt (state unchanged) when no packet path exists.
  std::optional<Attachment> failover_to_packet(hw::BrickId compute, hw::SegmentId segment,
                                               sim::Time now);

  /// Evacuates one attachment off its dMEMBRICK onto `new_membrick`: a new
  /// segment is carved there, connectivity is wired (reusing any existing
  /// pair link, else electrical/optical/packet in order of preference) and
  /// the RMST entry is re-pointed while keeping the compute-side window
  /// byte-identical. The old segment is released and its circuit torn when
  /// last rider. The segment id changes (ids are brick-namespaced); the
  /// returned attachment carries the new one. Nullopt => state unchanged.
  std::optional<Attachment> relocate_segment(hw::BrickId compute, hw::SegmentId old_segment,
                                             hw::BrickId new_membrick, sim::Time now);

  // --- fault injection: RMST corruption & scrubbing ---
  /// Flips dest_base bits of the `ordinal`-th RMST entry installed for
  /// `compute` (a modelled SEU in the PL's segment table). Subsequent
  /// transactions through the entry report kCorruptMapping until the table
  /// is scrubbed. Returns false when the brick has no such entry.
  bool corrupt_rmst(hw::BrickId compute, std::size_t ordinal = 0);

  /// Rebuilds every RMST entry of `compute` from the fabric's attachment
  /// records and the dMEMBRICK segment tables (the ground truth the
  /// orchestrator holds). Returns the number of entries rewritten.
  std::size_t scrub_rmst(hw::BrickId compute);

  /// Retry policy for the data plane. Unset (default) => transactions fail
  /// fast exactly as before; set => execute() retries recoverable statuses
  /// with exponential backoff, scrubs corrupt RMST entries, re-provisions
  /// dead circuits and falls back to the packet substrate.
  void set_retry_policy(std::optional<sim::RetryPolicy> policy) { retry_policy_ = policy; }
  const std::optional<sim::RetryPolicy>& retry_policy() const { return retry_policy_; }

  std::vector<Attachment> attachments_of(hw::BrickId compute) const;
  const std::vector<Attachment>& all_attachments() const { return attachments_; }
  std::uint64_t attached_bytes(hw::BrickId compute) const;
  std::size_t attachment_count() const { return attachments_.size(); }

  // --- data plane ---
  /// `ctx`, when valid, parents the recorded fabric span (and every
  /// recovery event of the retry loop) under the caller's trace — the
  /// workload-op → transaction → retry/fallback → completion chain. The
  /// default (invalid) context makes each traced transaction its own
  /// trace root.
  Transaction read(hw::BrickId compute, std::uint64_t address, std::uint32_t bytes,
                   sim::Time when, const sim::TraceContext& ctx = {});
  Transaction write(hw::BrickId compute, std::uint64_t address, std::uint32_t bytes,
                    sim::Time when, const sim::TraceContext& ctx = {});

  const CircuitPathLatencies& latencies() const { return latencies_; }

  /// Number of live electrical intra-tray links (for introspection).
  std::size_t electrical_links() const { return electrical_.size(); }

  /// Deep consistency audit of the control-plane state: every attachment
  /// references live bricks of the right kinds, its segment is really
  /// carved on the dMEMBRICK for the attached dCOMPUBRICK, the matching
  /// RMST entry is installed at the compute side, link records agree with
  /// the medium, and no (compute, segment) pair is attached twice.
  /// Optical circuits are allowed to be absent (fail_circuit() models
  /// fibre cuts; transactions then report kCircuitDown). Throws
  /// ContractViolation on the first broken invariant. Wired into every
  /// control-plane mutation when built with -DDREDBOX_AUDIT=ON; callable
  /// directly in any build.
  void check_invariants() const;

 private:
  /// Intra-tray electrical cross-connect (fixed backplane wiring; no
  /// optical switch ports involved). May bond several backplane lanes.
  struct ElectricalLink {
    hw::CircuitId id;
    hw::BrickId a;
    hw::BrickId b;
    std::vector<hw::PortId> a_ports;
    std::vector<hw::PortId> b_ports;
    std::size_t lanes() const { return a_ports.size(); }
  };

  /// Bond of parallel optical circuits between one pair (primary id is
  /// what attachments reference; siblings are torn down with it).
  struct OpticalBond {
    hw::CircuitId primary;
    std::vector<hw::CircuitId> all;  // includes primary
  };

  /// Packet-substrate fallback link (no dedicated circuit; lookup-table
  /// entries multiplex many destinations over the PBN ports).
  struct PacketLink {
    hw::CircuitId id;
    hw::BrickId a;
    hw::BrickId b;
  };

  hw::Rack& rack_;
  optics::CircuitManager& circuits_;
  CircuitPathLatencies latencies_;
  net::PacketNetwork* packet_net_ = nullptr;
  std::vector<Attachment> attachments_;
  std::vector<ElectricalLink> electrical_;
  std::vector<OpticalBond> bonds_;
  std::vector<PacketLink> packet_;
  /// Per-circuit cable occupancy for serialization contention.
  std::unordered_map<std::uint32_t, sim::Time> circuit_busy_until_;
  /// Per-(dMEMBRICK, controller) occupancy: a brick dimensioned with more
  /// memory controllers serves more concurrent transactions (Section II).
  std::unordered_map<std::uint64_t, sim::Time> controller_busy_until_;
  AttachError last_error_ = AttachError::kNoMemory;
  std::optional<sim::RetryPolicy> retry_policy_;
  /// Electrical and packet link ids live in ranges the optical manager
  /// never uses.
  std::uint32_t next_electrical_id_ = 0x40000000u;
  std::uint32_t next_packet_id_ = 0x80000000u;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* attaches_metric_ = nullptr;
  sim::metrics::Counter* attach_failures_metric_ = nullptr;
  sim::metrics::Counter* detaches_metric_ = nullptr;
  sim::metrics::Counter* transactions_metric_ = nullptr;
  sim::metrics::Counter* failed_tx_metric_ = nullptr;
  sim::metrics::Histogram* read_latency_metric_ = nullptr;
  sim::metrics::Histogram* write_latency_metric_ = nullptr;
  sim::metrics::Gauge* rmst_entries_metric_ = nullptr;
  sim::metrics::Gauge* rmst_mapped_metric_ = nullptr;
  sim::metrics::Counter* retries_metric_ = nullptr;
  sim::metrics::Counter* retry_exhausted_metric_ = nullptr;
  sim::metrics::Counter* reprovisions_metric_ = nullptr;
  sim::metrics::Counter* packet_failovers_metric_ = nullptr;
  sim::metrics::Counter* rmst_scrubs_metric_ = nullptr;
  sim::metrics::Counter* rmst_corruptions_metric_ = nullptr;
  sim::metrics::Counter* relocations_metric_ = nullptr;

  std::optional<Attachment> attach_impl(const AttachRequest& request, sim::Time now);
  /// Tears the link behind `removed` when no surviving attachment rides it
  /// (all three media; optical bonds die whole). Shared by detach /
  /// relocate / failover.
  void release_circuit_if_unused(const Attachment& removed);
  Transaction execute(TransactionKind kind, hw::BrickId compute, std::uint64_t address,
                      std::uint32_t bytes, sim::Time when, const sim::TraceContext& parent);
  Transaction execute_path(TransactionKind kind, hw::BrickId compute, std::uint64_t address,
                           std::uint32_t bytes, sim::Time when, const sim::TraceContext& ctx);
  sim::Time serialization_time(std::uint32_t bytes, LinkMedium medium,
                               std::size_t lanes) const;
  const Attachment* find_attachment(hw::BrickId compute, std::uint64_t address) const;
  const ElectricalLink* find_electrical(hw::CircuitId id) const;
  const PacketLink* find_packet(hw::CircuitId id) const;
  bool same_tray(hw::BrickId a, hw::BrickId b) const;
};

}  // namespace dredbox::memsys
