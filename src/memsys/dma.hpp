#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memsys/remote_memory.hpp"
#include "sim/arena.hpp"
#include "sim/inplace_action.hpp"
#include "sim/retry.hpp"
#include "sim/simulator.hpp"

namespace dredbox::memsys {

/// One bulk-copy request handed to a DMA engine.
struct DmaDescriptor {
  std::uint64_t address = 0;   // brick-physical address in the remote window
  std::uint64_t bytes = 0;
  TransactionKind direction = TransactionKind::kWrite;  // write = push to remote
  /// Caller's trace context; when valid, the transfer span and every
  /// chunk's fabric span nest under it.
  sim::TraceContext ctx;
};

/// Completion report delivered to the requester's callback.
struct DmaCompletion {
  bool ok = false;
  std::string error;
  std::uint64_t bytes = 0;
  std::size_t chunks = 0;
  /// Chunk retries the engine scheduled over the whole transfer (0 when
  /// every chunk landed first try or no retry policy is set).
  std::size_t retries = 0;
  sim::Time enqueued_at;
  sim::Time completed_at;

  double effective_gbps() const {
    const double secs = (completed_at - enqueued_at).as_sec();
    return secs > 0 ? static_cast<double>(bytes) * 8.0 / secs / 1e9 : 0.0;
  }
};

/// The dCOMPUBRICK's DMA engines (Fig. 3 shows two per brick, hanging off
/// the AXI interconnect next to the TGL). Software queues descriptors;
/// each engine streams its transfer through the remote-memory fabric in
/// MTU-sized chunks, fully event-driven on the shared simulator timeline.
/// Multiple engines drain the queue concurrently, so bulk traffic
/// overlaps the way the hardware's dual engines allow.
///
/// Jobs are pooled through sim::IndexedArena (ISSUE 9c): the scheduled
/// chunk events carry a (slot, generation) handle instead of moving the
/// whole Job through the event queue, so steady-state transfers allocate
/// nothing and an abandoned transfer (fault-exhausted retries) reclaims
/// its slot with a generation bump — a stale handle to the slot's next
/// tenant is an invariant violation, not a silent misfire.
class DmaEngine {
 public:
  /// Completion callbacks ride the same inline-storage budget as event
  /// actions: a capture list over 48 bytes is a compile error at the
  /// enqueue site, never a heap fallback.
  using Callback = sim::InplaceFunction<void(const DmaCompletion&)>;

  DmaEngine(sim::Simulator& sim, RemoteMemoryFabric& fabric, hw::BrickId compute,
            std::size_t channels = 2, std::uint32_t chunk_bytes = 4096);

  /// Queues a transfer; the callback fires (on the simulator timeline)
  /// when the last chunk completes. Run the simulator to make progress.
  void enqueue(const DmaDescriptor& descriptor, Callback callback);

  std::size_t channels() const { return channels_.size(); }
  std::size_t queued() const { return queue_.size() - queue_head_; }
  std::size_t in_flight() const;
  std::uint64_t completed_transfers() const { return completed_; }

  /// Jobs currently pooled (queued + in flight). Test hook for the
  /// fault-abandonment suite: after a failed transfer's callback fires,
  /// its slot must be reclaimed, i.e. this drops back to zero.
  std::size_t jobs_live() const { return jobs_.live(); }
  /// Current generation of a job slot (test hook; see IndexedArena).
  std::uint32_t job_generation(std::uint32_t slot) const { return jobs_.generation(slot); }

 private:
  struct Job {
    DmaDescriptor descriptor;
    Callback callback;
    sim::Time enqueued_at;
    /// Backoff state for the chunk currently in flight; reset on every
    /// chunk that completes, so each chunk gets the policy's full budget.
    std::optional<sim::BackoffSchedule> backoff;
    std::size_t retries = 0;
  };
  /// Generation-checked handle to a pooled Job — what the queue and the
  /// scheduled chunk events carry instead of the Job itself.
  struct JobHandle {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  struct Channel {
    bool busy = false;
  };

  sim::Simulator& sim_;
  RemoteMemoryFabric& fabric_;
  hw::BrickId compute_;
  std::uint32_t chunk_bytes_;
  std::vector<Channel> channels_;
  sim::IndexedArena<Job> jobs_;
  /// FIFO over a recycled vector: pop advances queue_head_, and the
  /// vector rewinds (clear, keep capacity) once drained. A std::deque
  /// here allocates a fresh node block every ~64 push/pop cycles as the
  /// cursor walks forward, which breaks the 0-allocs/op steady state.
  std::vector<JobHandle> queue_;
  std::size_t queue_head_ = 0;
  std::uint64_t completed_ = 0;

  /// Cached instrument handles, re-resolved only when the fabric's
  /// telemetry bundle changes — the per-transfer/per-retry path must not
  /// pay a name lookup in the registry map.
  sim::Telemetry* wired_telemetry_ = nullptr;
  sim::metrics::Counter* transfers_metric_ = nullptr;
  sim::metrics::Counter* bytes_metric_ = nullptr;
  sim::metrics::Counter* retries_metric_ = nullptr;
  sim::metrics::Counter* failed_metric_ = nullptr;

  void pump();
  /// Resolves a handle to its live Job; a dangling or stale-generation
  /// handle is an invariant violation (the engine never leaves one in
  /// flight past the job's destruction).
  Job& job_ref(JobHandle handle);
  /// Destroys the pooled job, frees its channel, and delivers `done` to
  /// the moved-out callback (after the slot is reclaimed, so a reentrant
  /// enqueue from the callback can reuse it immediately).
  void finish(std::size_t channel, JobHandle handle, const DmaCompletion& done);
  void step(std::size_t channel, JobHandle handle, std::uint64_t offset, std::size_t chunks);
  /// Returns the fabric's current telemetry (null when uninstrumented),
  /// rebinding the cached counter handles when it changed.
  sim::Telemetry* bind_telemetry();
};

}  // namespace dredbox::memsys
