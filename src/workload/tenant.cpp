#include "workload/tenant.hpp"

#include <cmath>

#include "sim/format.hpp"

namespace dredbox::workload {

std::string to_string(LoopMode mode) {
  return mode == LoopMode::kOpen ? "open" : "closed";
}

std::string to_string(ArrivalProcess process) {
  return process == ArrivalProcess::kPoisson ? "poisson" : "mmpp";
}

std::vector<std::string> TenantSpec::errors() const {
  std::vector<std::string> out;
  const auto bad = [&](const char* field, const std::string& why) {
    out.push_back(name + "." + field + ": " + why);
  };
  if (name.empty()) out.push_back("name: tenant class needs a non-empty name");
  if (vms == 0) bad("vms", "tenant class must boot at least one VM");
  if (vcpus == 0) bad("vcpus", "VMs need at least one vCPU");
  if (local_bytes == 0) bad("local_bytes", "VMs need a non-empty boot footprint");
  if (remote_bytes == 0) {
    bad("remote_bytes", "requests target the disaggregated window; it must be non-empty");
  }
  if (!(rate_hz > 0.0)) bad("rate_hz", sim::strformat("rate must be positive, got %g", rate_hz));
  if (loop == LoopMode::kClosed && outstanding == 0) {
    bad("outstanding", "closed loop needs at least one request window");
  }
  if (!(mix.total() > 0.0)) bad("mix", "read+write+dma weights must be positive");
  if (mix.read < 0.0 || mix.write < 0.0 || mix.dma < 0.0) {
    bad("mix", "individual weights must be non-negative");
  }
  if (op_bytes == 0) bad("op_bytes", "reads/writes must move at least one byte");
  if (mix.dma > 0.0 && dma_bytes == 0) {
    bad("dma_bytes", "DMA transfers must move at least one byte");
  }
  if (op_bytes > remote_bytes) bad("op_bytes", "request larger than the remote window");
  if (mix.dma > 0.0 && dma_bytes > remote_bytes) {
    bad("dma_bytes", "DMA transfer larger than the remote window");
  }
  if (cross_rack_share.has_value() &&
      (std::isnan(*cross_rack_share) || *cross_rack_share < 0.0 || *cross_rack_share > 1.0)) {
    bad("cross_rack_share", sim::strformat("share must lie in [0, 1], got %g",
                                           *cross_rack_share));
  }
  if (arrivals == ArrivalProcess::kMmpp) {
    if (!(mmpp.burst_multiplier >= 1.0)) {
      bad("mmpp.burst_multiplier", "burst state must be at least the quiet rate");
    }
    if (mmpp.mean_burst <= sim::Time::zero() || mmpp.mean_quiet <= sim::Time::zero()) {
      bad("mmpp", "state dwell times must be positive");
    }
  }
  return out;
}

ArrivalClock::ArrivalClock(const TenantSpec& spec, sim::Rng rng)
    : spec_{spec}, rng_{rng} {}

double ArrivalClock::current_rate(sim::Time now) {
  if (spec_.arrivals != ArrivalProcess::kMmpp) return spec_.rate_hz;
  // Advance the two-state modulation chain past `now`, drawing each
  // state's dwell from its exponential. Multiple expirations are replayed
  // in order so the state at `now` is exactly what a continuous chain
  // would be in.
  while (state_until_ <= now) {
    if (started_) in_burst_ = !in_burst_;  // entering the other state
    started_ = true;
    const sim::Time dwell = in_burst_ ? spec_.mmpp.mean_burst : spec_.mmpp.mean_quiet;
    state_until_ += sim::Time::sec(rng_.exponential(dwell.as_sec()));
  }
  return in_burst_ ? spec_.rate_hz * spec_.mmpp.burst_multiplier : spec_.rate_hz;
}

sim::Time ArrivalClock::next_gap(sim::Time now) {
  const double rate = current_rate(now);
  return sim::Time::sec(rng_.exponential(1.0 / rate));
}

}  // namespace dredbox::workload
