#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/parallel_runner.hpp"
#include "sim/time.hpp"
#include "workload/engine.hpp"

namespace dredbox::workload {

/// Everything a multi-rack load session measured: one WorkloadResult per
/// rack plus cluster-level reductions. `digest` folds every rack's op
/// stream, every rack's *served* cross-traffic schedule and the spine
/// link counters in rack order, so a parallel run matches the sequential
/// reference iff the two coupled schedules were byte-identical.
struct ClusterResult {
  std::vector<WorkloadResult> racks;

  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t cross_ops = 0;
  /// Spine totals across racks.
  std::uint64_t spine_tx_messages = 0;
  std::uint64_t spine_fail_fast = 0;

  std::uint64_t digest = 0;
  core::ParallelRunReport run;
  std::size_t threads = 1;
  double duration_s = 0.0;

  double throughput_hz() const {
    return duration_s > 0.0 ? static_cast<double>(completed) / duration_s : 0.0;
  }

  std::string summary() const;
};

/// Drives one WorkloadConfig against a core::Cluster: tenants land on
/// their home_rack, each rack gets its own WorkloadEngine wired to the
/// rack's spine NIC, and the coupled window runs on the partitioned
/// kernel — sequentially for threads=1, in conservative-lookahead
/// parallel rounds otherwise, with a byte-identical schedule either way.
class ClusterEngine {
 public:
  /// Throws std::invalid_argument listing every config error (including
  /// tenants placed on racks the cluster doesn't have).
  ClusterEngine(core::Cluster& cluster, WorkloadConfig config);

  const WorkloadConfig& config() const { return config_; }

  /// Boots, generates, drains, reduces, once. `threads` == 0 uses the
  /// cluster config's partitions setting.
  ClusterResult run(std::size_t threads = 0);

 private:
  core::Cluster& cluster_;
  WorkloadConfig config_;
  /// One engine per rack that hosts at least one tenant (index = rack).
  std::vector<std::unique_ptr<WorkloadEngine>> engines_;
  bool ran_ = false;
};

}  // namespace dredbox::workload
