#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dredbox::workload {

/// How a tenant's request stream is paced.
///
/// kOpen: requests arrive from "outside" at a configured rate regardless
/// of how fast the rack serves them (the YCSB/memcached-pressure shape the
/// paper's Fig. 10-12 experiments imply — millions of users do not wait
/// for each other).
///
/// kClosed: each in-flight window issues its next request only after the
/// previous one completed plus an exponentially distributed think time
/// (the classic closed-loop client).
enum class LoopMode : std::uint8_t { kOpen, kClosed };

/// Arrival process for open-loop tenants (and think-time draws for closed
/// ones).
///
/// kPoisson: memoryless arrivals at rate_hz.
///
/// kMmpp: two-state Markov-modulated Poisson process — a bursty stream
/// that alternates between a quiet state at rate_hz and a burst state at
/// rate_hz * burst_multiplier, with exponentially distributed dwell times.
/// Bursty tenants are what make multi-tenant interference interesting.
enum class ArrivalProcess : std::uint8_t { kPoisson, kMmpp };

std::string to_string(LoopMode mode);
std::string to_string(ArrivalProcess process);

/// Request type mix. Fractions are weights (they need not sum to 1; only
/// their ratio matters) over single-word reads, single-word writes and
/// bulk DMA transfers through the brick's DMA engines.
struct OpMix {
  double read = 0.70;
  double write = 0.25;
  double dma = 0.05;

  double total() const { return read + write + dma; }
};

/// Two-state MMPP modulation parameters (used when arrivals == kMmpp).
struct MmppParams {
  /// Burst-state arrival rate as a multiple of the quiet rate_hz.
  double burst_multiplier = 8.0;
  /// Mean dwell time in the burst state.
  sim::Time mean_burst = sim::Time::ms(2);
  /// Mean dwell time in the quiet state.
  sim::Time mean_quiet = sim::Time::ms(8);
};

/// One tenant class: how many VMs it boots, their footprint (local DDR at
/// boot plus a disaggregated scale-up), and the request stream each VM
/// drives against its remote memory. A WorkloadConfig holds one spec per
/// tenant class; the engine expands specs into per-VM drivers.
struct TenantSpec {
  std::string name = "tenant";
  std::size_t vms = 1;
  std::size_t vcpus = 1;
  /// Booted footprint, served from the dCOMPUBRICK's local DDR.
  std::uint64_t local_bytes = 1ull << 30;
  /// Disaggregated footprint, attached through the Scale-up API right
  /// after boot; all requests target this window.
  std::uint64_t remote_bytes = 1ull << 30;

  LoopMode loop = LoopMode::kClosed;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Per-VM request rate: open-loop arrival rate, or the closed loop's
  /// think rate (mean think time = 1/rate_hz).
  double rate_hz = 20000.0;
  /// Closed loop only: concurrent request windows per VM.
  std::size_t outstanding = 1;
  MmppParams mmpp;

  OpMix mix;
  /// Bytes per read/write request (a cache-line-ish touch).
  std::uint32_t op_bytes = 64;
  /// Bytes per DMA transfer (bulk traffic through the DMA engines).
  std::uint64_t dma_bytes = 64ull << 10;

  /// Placement: which rack of a multi-rack cluster this tenant's VMs boot
  /// on. Single-rack engines ignore it (the cluster engine validates it
  /// against the actual rack count).
  std::size_t home_rack = 0;
  /// Fraction of the read/write stream redirected to a *peer* rack's
  /// gateway window over the spine instead of the tenant's own remote
  /// window. Unset (the default) inherits the deployment-wide
  /// SpineSpec::cross_share; it only takes effect when a cross-rack port
  /// is installed, so single-rack runs are unaffected either way.
  std::optional<double> cross_rack_share;

  /// Field-naming validation errors; empty means the spec is runnable.
  std::vector<std::string> errors() const;
};

/// Per-VM arrival pacing state: owns the VM's decorrelated RNG stream and
/// draws the next inter-arrival (or think) gap according to the spec's
/// process, flipping MMPP states as their dwell times expire.
class ArrivalClock {
 public:
  ArrivalClock(const TenantSpec& spec, sim::Rng rng);

  /// Time gap to the next arrival, drawn at `now`. Advances the MMPP
  /// modulation state as a side effect.
  sim::Time next_gap(sim::Time now);

  /// The VM's private RNG stream (address picks, op-kind draws).
  sim::Rng& rng() { return rng_; }

  bool in_burst() const { return in_burst_; }

 private:
  const TenantSpec& spec_;
  sim::Rng rng_;
  bool in_burst_ = false;
  bool started_ = false;
  /// When the current MMPP state expires (zero until first use).
  sim::Time state_until_;

  double current_rate(sim::Time now);
};

}  // namespace dredbox::workload
