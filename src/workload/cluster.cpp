#include "workload/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "sim/digest.hpp"
#include "sim/format.hpp"

namespace dredbox::workload {

std::string ClusterResult::summary() const {
  std::string out = sim::strformat(
      "cluster: %zu racks, %zu threads, %zu rounds, %llu cross-partition messages\n"
      "offered %llu, completed %llu (%.0f req/s), failed %llu, cross-rack %llu "
      "(spine tx %llu, fail-fast %llu)\n",
      racks.size(), threads, run.kernel.rounds,
      static_cast<unsigned long long>(run.kernel.messages),
      static_cast<unsigned long long>(offered), static_cast<unsigned long long>(completed),
      throughput_hz(), static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(cross_ops),
      static_cast<unsigned long long>(spine_tx_messages),
      static_cast<unsigned long long>(spine_fail_fast));
  out += sim::strformat("wall %.3f s  digest %016llx", run.wall_seconds,
                        static_cast<unsigned long long>(digest));
  return out;
}

ClusterEngine::ClusterEngine(core::Cluster& cluster, WorkloadConfig config)
    : cluster_{cluster}, config_{std::move(config)} {
  auto errors = config_.errors();
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    if (config_.tenants[i].home_rack >= cluster_.size()) {
      errors.push_back(sim::strformat(
          "tenants[%zu].home_rack: rack %zu does not exist (cluster has %zu racks)", i,
          config_.tenants[i].home_rack, cluster_.size()));
    }
  }
  if (!errors.empty()) {
    std::string message = "invalid cluster WorkloadConfig:";
    for (const auto& e : errors) message += "\n  - " + e;
    throw std::invalid_argument(message);
  }

  // One engine per populated rack, each seeing only its own tenants and
  // wired to its rack's spine NIC.
  engines_.resize(cluster_.size());
  const double default_share = cluster_.config().spine.cross_share;
  for (std::size_t r = 0; r < cluster_.size(); ++r) {
    WorkloadConfig rack_config = config_;
    rack_config.tenants.clear();
    for (const auto& tenant : config_.tenants) {
      if (tenant.home_rack == r) rack_config.tenants.push_back(tenant);
    }
    if (rack_config.tenants.empty()) continue;
    engines_[r] = std::make_unique<WorkloadEngine>(cluster_.rack(r), std::move(rack_config));
    engines_[r]->install_cross_port(&cluster_.port(r), default_share);
  }
}

ClusterResult ClusterEngine::run(std::size_t threads) {
  if (ran_) throw std::logic_error("ClusterEngine::run() may only be called once");
  ran_ = true;

  ClusterResult result;
  result.racks.resize(cluster_.size());

  // Phase 1 — control plane, each rack on its own clock (no cross-rack
  // traffic exists yet, so the racks are still independent).
  for (auto& engine : engines_) {
    if (engine) engine->prepare();
  }

  // Synchronize every rack to one shared window start: the latest boot
  // completion across the cluster. Cross-rack messages always land at or
  // after t0 + propagation, so no rack ever sees traffic from its past.
  sim::Time t0 = sim::Time::zero();
  for (std::size_t r = 0; r < cluster_.size(); ++r) {
    const sim::Time now = cluster_.rack(r).simulator().now();
    if (now > t0) t0 = now;
    if (engines_[r] && engines_[r]->boot_ready() > t0) t0 = engines_[r]->boot_ready();
  }
  for (std::size_t r = 0; r < cluster_.size(); ++r) cluster_.rack(r).advance_to(t0);

  // Phase 2 — the coupled window + drain, on the partitioned kernel.
  // Spine faults count from the window start, so "0.5 ms in" means the
  // same thing no matter how long the control plane took to boot.
  if (!cluster_.spine_faults_armed()) cluster_.arm_spine_faults(t0);
  for (auto& engine : engines_) {
    if (engine) engine->begin_window(t0);
  }
  core::ParallelRunner runner{cluster_, threads};
  result.threads = runner.threads();
  result.run = runner.advance_to(t0 + config_.duration + config_.drain_grace);

  // Phase 3 — reduce. The combined digest covers each source rack's op
  // stream, each target rack's served schedule and the spine counters,
  // all in rack order: equal digests mean equal coupled schedules.
  sim::Digest digest;
  for (std::size_t r = 0; r < cluster_.size(); ++r) {
    if (engines_[r]) {
      result.racks[r] = engines_[r]->finish();
    } else {
      result.racks[r].duration_s = config_.duration.as_sec();
    }
    const WorkloadResult& rack = result.racks[r];
    result.offered += rack.offered;
    result.completed += rack.completed;
    result.failed += rack.failed;
    result.retries += rack.retries;
    result.cross_ops += rack.cross_ops;
    const core::RackLinkStats stats = cluster_.link_stats(r);
    result.spine_tx_messages += stats.tx_messages;
    result.spine_fail_fast += stats.fail_fast;
    digest.update("rack")
        .update(static_cast<std::uint64_t>(r))
        .update(rack.digest)
        .update(cluster_.served_digest(r))
        .update(stats.tx_messages)
        .update(stats.rx_messages)
        .update(stats.fail_fast);
  }
  result.digest = digest.value();
  result.duration_s = config_.duration.as_sec();
  return result;
}

}  // namespace dredbox::workload
