#include "workload/engine.hpp"

#include <stdexcept>
#include <utility>

#include "sim/format.hpp"
#include "sim/span.hpp"

namespace dredbox::workload {

namespace {

/// Uniform 64-byte-aligned offset so a request of `bytes` fits inside a
/// window of `size`. Validation guarantees bytes <= size.
std::uint64_t aligned_offset(sim::Rng& rng, std::uint64_t size, std::uint64_t bytes) {
  const std::uint64_t span = (size - bytes) / 64;
  return static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(span))) * 64;
}

}  // namespace

std::vector<std::string> WorkloadConfig::errors() const {
  std::vector<std::string> out;
  if (tenants.empty()) out.push_back("tenants: workload needs at least one tenant class");
  if (duration <= sim::Time::zero()) {
    out.push_back("duration: generation window must be positive");
  }
  if (drain_grace < sim::Time::zero()) {
    out.push_back("drain_grace: drain window cannot be negative");
  }
  if (sample_period < sim::Time::zero()) {
    out.push_back("sample_period: sampling period cannot be negative");
  }
  for (const auto& tenant : tenants) {
    auto tenant_errors = tenant.errors();
    out.insert(out.end(), tenant_errors.begin(), tenant_errors.end());
  }
  return out;
}

std::string WorkloadResult::summary() const {
  std::string out = sim::strformat(
      "vms %zu/%zu booted (%zu boot, %zu scale-up failures)\n"
      "offered %llu requests (%.0f req/s), completed %llu (%.0f req/s), failed %llu, "
      "retries %llu\n"
      "mix: %llu reads, %llu writes, %llu DMA transfers\n",
      vms_booted, vms_requested, boot_failures, scale_up_failures,
      static_cast<unsigned long long>(offered), offered_rate_hz(),
      static_cast<unsigned long long>(completed), throughput_hz(),
      static_cast<unsigned long long>(failed), static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(reads), static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(dmas));
  if (!latency_us.empty()) {
    out += sim::strformat("read/write latency: p50 %.2f us  p95 %.2f us  p99 %.2f us\n",
                          latency_us.percentile(50), latency_us.percentile(95),
                          latency_us.percentile(99));
  }
  if (cross_ops > 0) {
    out += sim::strformat("cross-rack: %llu ops", static_cast<unsigned long long>(cross_ops));
    if (!cross_latency_us.empty()) {
      out += sim::strformat("  p50 %.2f us  p99 %.2f us", cross_latency_us.percentile(50),
                            cross_latency_us.percentile(99));
    }
    out += "\n";
  }
  if (!dma_latency_us.empty()) {
    out += sim::strformat("DMA latency: p50 %.2f us  p95 %.2f us  p99 %.2f us\n",
                          dma_latency_us.percentile(50), dma_latency_us.percentile(95),
                          dma_latency_us.percentile(99));
  }
  if (!power_w.empty()) {
    out += sim::strformat("rack power: mean %.1f W  max %.1f W\n", power_w.mean(),
                          power_w.max());
  }
  out += sim::strformat("digest %016llx", static_cast<unsigned long long>(digest));
  return out;
}

WorkloadEngine::WorkloadEngine(core::Datacenter& dc, WorkloadConfig config)
    : dc_{dc}, config_{std::move(config)} {
  const auto errors = config_.errors();
  if (!errors.empty()) {
    std::string message = "invalid WorkloadConfig:";
    for (const auto& e : errors) message += "\n  - " + e;
    throw std::invalid_argument(message);
  }
}

void WorkloadEngine::boot_tenants() {
  sim::Time ready = dc_.simulator().now();
  for (const auto& spec : config_.tenants) {
    for (std::size_t i = 0; i < spec.vms; ++i) {
      ++result_.vms_requested;
      const std::string vm_name = spec.name + "-" + std::to_string(i);
      const auto boot = dc_.boot_vm(vm_name, spec.vcpus, spec.local_bytes);
      if (!boot.ok) {
        ++result_.boot_failures;
        digest_.update("boot-failed").update(vm_name);
        continue;
      }
      const auto up = dc_.scale_up(boot.vm, boot.compute, spec.remote_bytes);
      if (!up.ok) {
        ++result_.scale_up_failures;
        digest_.update("scale-up-failed").update(vm_name);
        continue;
      }
      // Locate the window the scale-up installed: the attachment whose
      // segment the SDM-C reported back.
      auto driver = std::make_unique<VmDriver>(spec, ArrivalClock{spec, dc_.simulator().fork_rng()});
      driver->vm = boot.vm;
      driver->compute = boot.compute;
      for (const auto& attachment : dc_.fabric().attachments_of(boot.compute)) {
        if (attachment.segment == up.segment && attachment.membrick == up.membrick) {
          driver->window_base = attachment.compute_base;
          driver->window_size = attachment.size;
        }
      }
      if (driver->window_size == 0) {
        // Scale-up reported ok but the attachment is not visible — treat
        // as a scale-up failure rather than issuing unmapped traffic.
        ++result_.scale_up_failures;
        digest_.update("window-missing").update(vm_name);
        continue;
      }
      if (spec.mix.dma > 0.0) {
        // DMA engines are per-brick hardware (Fig. 3: two per dCOMPUBRICK),
        // so tenants co-located on a brick share one engine and contend for
        // its channels — exactly the multi-tenant interference of interest.
        auto& engine = dma_engines_[driver->compute];
        if (!engine) {
          engine = std::make_unique<memsys::DmaEngine>(dc_.simulator(), dc_.fabric(),
                                                       driver->compute);
        }
        driver->dma = engine.get();
      }
      ++result_.vms_booted;
      if (up.completed_at > ready) ready = up.completed_at;
      if (boot.completed_at > ready) ready = boot.completed_at;
      driver->index = static_cast<std::uint32_t>(drivers_.size());
      if (cross_port_ != nullptr) {
        driver->cross_share = spec.cross_rack_share.value_or(cross_default_share_);
      }
      digest_.update("vm").update(vm_name).update(driver->window_base)
          .update(driver->window_size);
      drivers_.push_back(std::move(driver));
    }
  }
  boot_ready_ = ready;
}

void WorkloadEngine::start_streams(sim::Time t0) {
  auto& sim = dc_.simulator();
  // Collect every initial issue first, then coalesce ties: issues that
  // land on the same tick become ONE scheduled event dispatching the
  // whole group in FIFO order — the same tie-batching the schedule
  // auditor applies at the kernel (ISSUE 9d). Order is unchanged (the
  // kernel would fire tied events in this exact insertion order), so the
  // op stream and digest cannot move; the queue just carries one node
  // per distinct start tick instead of one per VM window.
  std::vector<InitialIssue> issues;
  for (auto& owned : drivers_) {
    VmDriver* driver = owned.get();
    if (driver->spec.loop == LoopMode::kOpen) {
      const sim::Time first = t0 + driver->clock.next_gap(t0);
      if (first < end_) issues.push_back(InitialIssue{first, driver, /*closed_loop=*/false});
    } else {
      for (std::size_t window = 0; window < driver->spec.outstanding; ++window) {
        const sim::Time first = t0 + driver->clock.next_gap(t0);
        if (first < end_) issues.push_back(InitialIssue{first, driver, /*closed_loop=*/true});
      }
    }
  }
  std::stable_sort(issues.begin(), issues.end(),
                   [](const InitialIssue& a, const InitialIssue& b) { return a.when < b.when; });
  for (std::size_t i = 0; i < issues.size();) {
    std::size_t j = i + 1;
    while (j < issues.size() && issues[j].when == issues[i].when) ++j;
    if (j == i + 1) {
      VmDriver* driver = issues[i].driver;
      if (issues[i].closed_loop) {
        sim.at(issues[i].when, [this, driver] { closed_issue(*driver); },
               "workload.closed_issue");
      } else {
        sim.at(issues[i].when, [this, driver] { open_arrival(*driver); },
               "workload.open_arrival");
      }
    } else {
      start_batches_.emplace_back(issues.begin() + static_cast<std::ptrdiff_t>(i),
                                  issues.begin() + static_cast<std::ptrdiff_t>(j));
      const std::size_t batch = start_batches_.size() - 1;
      sim.at(issues[i].when, [this, batch] {
        for (const InitialIssue& issue : start_batches_[batch]) {
          if (issue.closed_loop) {
            closed_issue(*issue.driver);
          } else {
            open_arrival(*issue.driver);
          }
        }
      }, "workload.start_batch");
    }
    i = j;
  }
}

void WorkloadEngine::schedule_power_samples(sim::Time t0) {
  if (config_.power_samples == 0) return;
  auto& sim = dc_.simulator();
  const auto n = static_cast<std::int64_t>(config_.power_samples);
  for (std::int64_t j = 1; j <= n; ++j) {
    sim.at(t0 + config_.duration * j / n, [this] {
      const double watts = dc_.power_draw_watts();
      result_.power_w.add(watts);
      digest_.update("power").update(static_cast<std::uint64_t>(watts * 1e3));
    }, "workload.power_sample");
  }
}

// dredbox-lint: hot-path-begin — the per-op issue/record loop: every
// offered op runs one of these; steady state must not touch the heap
// (trace spans are gated on ctx.valid(), which is off on measured runs).
void WorkloadEngine::open_arrival(VmDriver& driver) {
  auto& sim = dc_.simulator();
  const sim::Time now = sim.now();
  if (now >= end_) return;
  // Chain the next arrival first so pacing is independent of what this
  // request turns out to be.
  const sim::Time next = now + driver.clock.next_gap(now);
  if (next < end_) {
    sim.at(next, [this, d = &driver] { open_arrival(*d); }, "workload.open_arrival");
  }
  perform_op(driver, /*closed_loop=*/false);
}

void WorkloadEngine::closed_issue(VmDriver& driver) {
  if (dc_.simulator().now() >= end_) return;
  perform_op(driver, /*closed_loop=*/true);
}

void WorkloadEngine::perform_op(VmDriver& driver, bool closed_loop) {
  auto& sim = dc_.simulator();
  auto& rng = driver.clock.rng();
  const sim::Time now = sim.now();
  ++result_.offered;

  // Root of the op's causal tree: the fabric transaction, its retries,
  // fallbacks, and packet or DMA legs all nest under this trace id. The
  // id stream is separate from the workload Rng, so tracing on/off never
  // moves a random draw.
  sim::TraceContext ctx;
  sim::Telemetry& telemetry = dc_.telemetry();
  if (telemetry.tracing()) ctx = telemetry.tracer().begin_trace();

  const auto& mix = driver.spec.mix;
  const std::size_t kind = rng.weighted_index({mix.read, mix.write, mix.dma});

  // Cross-rack leg: a share of the read/write stream goes to a peer
  // rack's gateway window over the spine. The branch draws from the RNG
  // only when the share is armed, so single-rack runs (share 0, or no
  // port) keep a byte-identical op stream and digest.
  if (kind != 2 && driver.cross_share > 0.0 && rng.chance(driver.cross_share)) {
    issue_cross(driver, closed_loop, /*write=*/kind == 1);
    return;
  }

  if (kind == 2) {
    // Bulk transfer through the brick's shared DMA engines. Direction
    // follows the read/write ratio of the mix (pull vs push).
    ++result_.dmas;
    memsys::DmaDescriptor descriptor;
    descriptor.address =
        driver.window_base + aligned_offset(rng, driver.window_size, driver.spec.dma_bytes);
    descriptor.bytes = driver.spec.dma_bytes;
    const double rw = mix.read + mix.write;
    const bool pull = rw > 0.0 ? rng.chance(mix.read / rw) : false;
    descriptor.direction =
        pull ? memsys::TransactionKind::kRead : memsys::TransactionKind::kWrite;
    descriptor.ctx = ctx;
    // Capture budget (InplaceFunction, 48 bytes): this + driver + ctx +
    // closed_loop fit exactly; the issue time is not captured — it is the
    // completion's enqueued_at, stamped by the engine at this same instant.
    driver.dma->enqueue(
        descriptor,
        [this, d = &driver, closed_loop, ctx](const memsys::DmaCompletion& done) {
          record_dma(*d, done);
          if (ctx.valid()) {
            sim::Span span{dc_.telemetry().tracer(), sim::TraceCategory::kApplication,
                           "op dma", done.enqueued_at};
            span.context(ctx);
            span.arg("vm", d->vm.to_string()).arg("ok", done.ok ? "yes" : "no");
            span.end(done.completed_at);
          }
          if (closed_loop) {
            const sim::Time next = done.completed_at + d->clock.next_gap(done.completed_at);
            if (next < end_) {
              dc_.simulator().at(next, [this, d] { closed_issue(*d); },
                                 "workload.closed_issue");
            }
          }
        });
    return;
  }

  const std::uint64_t address =
      driver.window_base + aligned_offset(rng, driver.window_size, driver.spec.op_bytes);
  memsys::Transaction tx;
  if (kind == 0) {
    ++result_.reads;
    tx = dc_.fabric().read(driver.compute, address, driver.spec.op_bytes, now, ctx);
  } else {
    ++result_.writes;
    tx = dc_.fabric().write(driver.compute, address, driver.spec.op_bytes, now, ctx);
  }
  record_sync_op(tx);
  if (ctx.valid()) {
    sim::Span span{telemetry.tracer(), sim::TraceCategory::kApplication,
                   kind == 0 ? "op read" : "op write", now};
    span.context(ctx);
    span.arg("vm", driver.vm.to_string()).arg("status", memsys::to_string(tx.status));
    span.end(tx.completed_at);
  }
  if (closed_loop) {
    const sim::Time done = tx.completed_at > now ? tx.completed_at : now;
    const sim::Time next = done + driver.clock.next_gap(done);
    if (next < end_) {
      sim.at(next, [this, d = &driver] { closed_issue(*d); }, "workload.closed_issue");
    }
  }
}

void WorkloadEngine::issue_cross(VmDriver& driver, bool closed_loop, bool write) {
  auto& rng = driver.clock.rng();
  if (write) {
    ++result_.writes;
  } else {
    ++result_.reads;
  }
  ++result_.cross_ops;
  const std::size_t peers = cross_port_->peer_count();
  const std::size_t peer =
      peers > 1 ? static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(peers) - 1))
                : 0;
  const std::uint64_t offset =
      aligned_offset(rng, cross_port_->window_bytes(peer), driver.spec.op_bytes);
  // The completion — success or fail-fast — always comes back through
  // complete_cross() as an event on this rack's own queue.
  cross_port_->issue(peer, offset, driver.spec.op_bytes, write, driver.index, closed_loop);
}

void WorkloadEngine::complete_cross(const core::CrossCompletion& done) {
  VmDriver& driver = *drivers_[done.token];
  if (done.ok) {
    ++result_.completed;
    const double us = done.round_trip().as_us();
    result_.latency_us.add(us);
    result_.cross_latency_us.add(us);
  } else {
    ++result_.failed;
  }
  digest_.update("x")
      .update(done.address)
      .update(static_cast<std::uint64_t>(done.ok ? 1 : 0))
      .update(static_cast<std::uint64_t>(done.round_trip().ticks()));
  if (done.closed_loop) {
    const sim::Time next = done.completed_at + driver.clock.next_gap(done.completed_at);
    if (next < end_) {
      dc_.simulator().at(next, [this, d = &driver] { closed_issue(*d); },
                         "workload.closed_issue");
    }
  }
}

void WorkloadEngine::record_sync_op(const memsys::Transaction& tx) {
  result_.retries += tx.retries;
  if (tx.ok()) {
    ++result_.completed;
    result_.latency_us.add(tx.round_trip().as_us());
  } else {
    ++result_.failed;
  }
  digest_.update(tx.kind == memsys::TransactionKind::kRead ? "r" : "w")
      .update(tx.address)
      .update(static_cast<std::uint64_t>(tx.status))
      .update(static_cast<std::uint64_t>(tx.round_trip().ticks()));
}

void WorkloadEngine::record_dma(VmDriver& driver, const memsys::DmaCompletion& done) {
  result_.retries += done.retries;
  if (done.ok) {
    ++result_.completed;
    result_.dma_latency_us.add((done.completed_at - done.enqueued_at).as_us());
  } else {
    ++result_.failed;
  }
  digest_.update("d")
      .update(driver.window_base)
      .update(done.bytes)
      .update(static_cast<std::uint64_t>(done.ok ? 1 : 0))
      .update(static_cast<std::uint64_t>((done.completed_at - done.enqueued_at).ticks()));
}
// dredbox-lint: hot-path-end

void WorkloadEngine::install_cross_port(core::CrossRackPort* port, double default_share) {
  if (prepared_) {
    throw std::logic_error("install_cross_port() must precede prepare()/run()");
  }
  if (port == nullptr || port->peer_count() == 0) return;  // nothing to cross to
  cross_port_ = port;
  cross_default_share_ = default_share;
  cross_port_->set_handler(
      [this](const core::CrossCompletion& done) { complete_cross(done); });
}

void WorkloadEngine::prepare() {
  if (prepared_) throw std::logic_error("WorkloadEngine::prepare() may only be called once");
  prepared_ = true;
  boot_tenants();
}

void WorkloadEngine::begin_window(sim::Time t0) {
  if (!prepared_ || started_) {
    throw std::logic_error("begin_window() must follow prepare(), once");
  }
  started_ = true;
  end_ = t0 + config_.duration;

  if (config_.sample_period > sim::Time::zero()) {
    sampler_ = std::make_unique<sim::TimeSeriesSampler>(dc_.simulator(), dc_.metrics(),
                                                        config_.sample_period);
    sampler_->start(end_ + config_.drain_grace);
  }
  schedule_power_samples(t0);
  start_streams(t0);
}

WorkloadResult WorkloadEngine::finish() {
  if (!started_ || finished_) {
    throw std::logic_error("finish() must follow begin_window(), once");
  }
  finished_ = true;
  if (sampler_ != nullptr) {
    result_.timeseries = sampler_->take();
    sampler_.reset();
  }
  result_.duration_s = config_.duration.as_sec();
  digest_.update("totals")
      .update(result_.offered)
      .update(result_.completed)
      .update(result_.failed)
      .update(result_.retries);
  result_.digest = digest_.value();
  return result_;
}

WorkloadResult WorkloadEngine::run() {
  prepare();
  dc_.advance_to(boot_ready_);
  begin_window(dc_.simulator().now());
  dc_.advance_to(end_ + config_.drain_grace);
  return finish();
}

sim::RunReport make_run_report(const core::Datacenter& dc, const WorkloadConfig& config,
                               const WorkloadResult& result, const std::string& tag,
                               const std::string& fault_plan) {
  sim::RunReport report;
  report.tag(tag)
      .seed(dc.config().seed)
      .config_digest(dc.config().digest())
      .determinism_digest(result.digest)
      .fault_plan(fault_plan)
      .duration(dc.simulator().now())
      .note("vms_booted", static_cast<std::uint64_t>(result.vms_booted))
      .note("offered", result.offered)
      .note("completed", result.completed)
      .note("failed", result.failed)
      .note("reads", result.reads)
      .note("writes", result.writes)
      .note("dmas", result.dmas)
      .note("retries", result.retries)
      .metrics(dc.metrics())
      .traces(dc.tracer());
  if (!result.timeseries.empty()) {
    report.timeseries(result.timeseries, config.sample_period);
  }
  return report;
}

}  // namespace dredbox::workload
