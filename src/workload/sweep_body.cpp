#include "workload/sweep_body.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::workload {

core::CellStats reduce_to_cell_stats(const WorkloadResult& result) {
  core::CellStats stats;
  stats.digest = result.digest;
  stats.offered = result.offered;
  stats.completed = result.completed;
  stats.failed = result.failed;
  stats.offered_rate_hz = result.offered_rate_hz();
  stats.throughput_hz = result.throughput_hz();
  if (!result.latency_us.empty()) {
    stats.p50_us = result.latency_us.percentile(50);
    stats.p95_us = result.latency_us.percentile(95);
    stats.p99_us = result.latency_us.percentile(99);
  }
  if (!result.dma_latency_us.empty()) {
    stats.dma_p99_us = result.dma_latency_us.percentile(99);
  }
  if (!result.power_w.empty()) {
    stats.power_mean_w = result.power_w.mean();
    stats.power_max_w = result.power_w.max();
  }
  return stats;
}

core::SweepRunner::CellBody make_sweep_body(SweepWorkload shape) {
  if (shape.align_bytes == 0 || shape.footprint_bytes < 2 * shape.align_bytes) {
    throw std::invalid_argument(
        "SweepWorkload: footprint_bytes must cover at least two align_bytes blocks "
        "(one local, one remote)");
  }
  return [shape](const core::SweepCell& cell, core::Datacenter& dc) {
    WorkloadConfig config;
    config.duration = shape.duration;
    config.drain_grace = shape.drain_grace;
    config.power_samples = shape.power_samples;
    config.tenants.reserve(shape.tenants.size());
    for (TenantSpec spec : shape.tenants) {
      const std::uint64_t align = shape.align_bytes;
      auto blocks = static_cast<std::uint64_t>(
          static_cast<double>(shape.footprint_bytes) * cell.remote_ratio /
              static_cast<double>(align) +
          0.5);
      const std::uint64_t total_blocks = shape.footprint_bytes / align;
      blocks = std::clamp<std::uint64_t>(blocks, 1, total_blocks - 1);
      spec.remote_bytes = blocks * align;
      spec.local_bytes = shape.footprint_bytes - spec.remote_bytes;
      config.tenants.push_back(std::move(spec));
    }
    WorkloadEngine engine{dc, config};
    return reduce_to_cell_stats(engine.run());
  };
}

}  // namespace dredbox::workload
