#pragma once

#include <cstdint>
#include <vector>

#include "core/sweep.hpp"
#include "workload/engine.hpp"

namespace dredbox::workload {

/// Shape of the standard sweep workload: tenant classes whose per-VM
/// footprint is split between local DDR and disaggregated memory by each
/// cell's remote_ratio (the local_bytes/remote_bytes of the specs are
/// overridden per cell; everything else is taken as declared).
struct SweepWorkload {
  std::vector<TenantSpec> tenants;
  /// Per-VM total footprint a cell splits into local + remote.
  std::uint64_t footprint_bytes = 4ull << 30;
  /// Granularity the remote half is rounded to: the disaggregated window
  /// is hotplugged into the guest kernel, which only accepts block-aligned
  /// sizes (os/hotplug.hpp, 1 GiB blocks). Both halves are clamped to at
  /// least one block, so ratio 0 or 1 still yields a constructible VM
  /// with a non-empty remote window to drive.
  std::uint64_t align_bytes = 1ull << 30;
  sim::Time duration = sim::Time::ms(10);
  sim::Time drain_grace = sim::Time::ms(5);
  std::size_t power_samples = 8;
};

/// Reduces a finished workload run to the sweep's per-cell stats.
core::CellStats reduce_to_cell_stats(const WorkloadResult& result);

/// The standard sweep cell body: instantiates the shaped workload against
/// the cell's Datacenter and reduces the result. The returned callable is
/// re-entrant (all state lives on the stack of each invocation), as
/// SweepRunner requires.
core::SweepRunner::CellBody make_sweep_body(SweepWorkload shape);

}  // namespace dredbox::workload
