#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cross_port.hpp"
#include "core/datacenter.hpp"
#include "memsys/dma.hpp"
#include "sim/digest.hpp"
#include "sim/run_report.hpp"
#include "sim/stats.hpp"
#include "sim/timeseries.hpp"
#include "workload/tenant.hpp"

namespace dredbox::workload {

/// A whole multi-tenant load session: the tenant classes to expand into
/// VMs plus the generation window.
struct WorkloadConfig {
  std::vector<TenantSpec> tenants;
  /// Length of the request-generation window (measured in simulated time,
  /// starting after every tenant booted and scaled up).
  sim::Time duration = sim::Time::ms(20);
  /// Extra simulated time after the window for in-flight DMA transfers and
  /// closed-loop tails to land.
  sim::Time drain_grace = sim::Time::ms(5);
  /// Rack power-draw samples taken across the window (0 disables).
  std::size_t power_samples = 8;
  /// Sim-clock period of the metric time-series sampler (zero disables,
  /// the default). When set, every registered instrument is snapshotted
  /// into ring-buffered series each period across the window plus drain;
  /// the result lands in WorkloadResult::timeseries. Sampling draws
  /// nothing from the Rng, so it never changes the op stream or digest.
  sim::Time sample_period = sim::Time::zero();

  /// Field-naming validation errors; empty means the config is runnable.
  std::vector<std::string> errors() const;
};

/// Everything a load session measured. The digest is an exact FNV-1a fold
/// of the full op stream (kind, VM, address, status, latency ticks), so
/// two runs are byte-identical iff their digests match — the property the
/// sweep runner's sequential-vs-parallel check rests on.
struct WorkloadResult {
  std::size_t vms_requested = 0;
  std::size_t vms_booted = 0;
  std::size_t boot_failures = 0;
  std::size_t scale_up_failures = 0;

  /// Requests generated inside the window (open-loop arrivals plus
  /// closed-loop issues).
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t dmas = 0;
  /// Reads/writes that went to a peer rack over the spine (a subset of
  /// reads + writes; zero unless a cross-rack port is installed).
  std::uint64_t cross_ops = 0;
  /// Data-plane recovery attempts the fabric charged across all requests.
  std::uint64_t retries = 0;

  /// Read/write round trips, microseconds.
  sim::SampleSet latency_us;
  /// Cross-rack round trips, microseconds (also counted in latency_us).
  sim::SampleSet cross_latency_us;
  /// DMA enqueue-to-completion, microseconds.
  sim::SampleSet dma_latency_us;
  /// Rack power draw sampled across the window, watts.
  sim::SampleSet power_w;
  /// Metric time series sampled at WorkloadConfig::sample_period (empty
  /// when sampling was disabled). Export with to_openmetrics()/write_csv().
  sim::TimeSeriesSet timeseries;

  double duration_s = 0.0;
  std::uint64_t digest = 0;

  double offered_rate_hz() const {
    return duration_s > 0.0 ? static_cast<double>(offered) / duration_s : 0.0;
  }
  double throughput_hz() const {
    return duration_s > 0.0 ? static_cast<double>(completed) / duration_s : 0.0;
  }

  /// Human-readable block for examples and reports.
  std::string summary() const;
};

/// Drives a declared multi-tenant workload against one Datacenter: boots
/// every tenant VM through the OpenStack front-end, attaches its
/// disaggregated footprint through the SDM-C (exactly the control path a
/// real tenant exercises), then generates the request streams on the
/// simulation's event queue so arrivals, faults and recoveries interleave
/// on one timeline.
///
/// The engine owns no threads and touches nothing outside the Datacenter
/// it was handed, so any number of engines may run concurrently against
/// fully independent Datacenters (the sweep runner does exactly that).
class WorkloadEngine {
 public:
  /// Throws std::invalid_argument listing every config error.
  WorkloadEngine(core::Datacenter& dc, WorkloadConfig config);

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  const WorkloadConfig& config() const { return config_; }

  /// Points a share of every tenant's read/write stream at peer racks
  /// through `port` (a rack NIC of a core::Cluster). `default_share` is
  /// the deployment-wide cross-rack fraction; a TenantSpec's
  /// cross_rack_share overrides it per tenant. Must be called before
  /// prepare()/run(); a port with no peers is ignored. The engine takes
  /// over the port's completion handler.
  void install_cross_port(core::CrossRackPort* port, double default_share);

  /// Boots, generates, drains, reduces. One call per engine. Equivalent
  /// to the phase sequence below with this rack's own clock advanced
  /// between phases — the single-Datacenter call pattern.
  WorkloadResult run();

  // --- phase API ---
  // The cluster engine drives each rack's engine through these so the
  // *coupled* advance between begin_window() and finish() can run on the
  // partitioned kernel instead of each rack's private clock: prepare()
  // every rack, advance every rack to the global max boot_ready(),
  // begin_window() every rack, advance the cluster to the shared horizon,
  // finish() every rack.

  /// Phase 1: boots and scales up every tenant VM (control plane only).
  void prepare();
  /// When the last boot/scale-up completed; valid after prepare().
  sim::Time boot_ready() const { return boot_ready_; }
  /// Phase 2: schedules the request streams across [t0, t0 + duration).
  /// The caller must have advanced this rack's clock to exactly t0.
  void begin_window(sim::Time t0);
  /// Phase 3: reduces totals into the result. The caller must have
  /// advanced this rack past t0 + duration + drain_grace.
  WorkloadResult finish();

 private:
  /// One booted VM driving requests: placement, its remote window, its
  /// pacing clock and its brick's DMA engine.
  struct VmDriver {
    const TenantSpec& spec;
    hw::VmId vm;
    hw::BrickId compute;
    std::uint64_t window_base = 0;
    std::uint64_t window_size = 0;
    ArrivalClock clock;
    /// The hosting brick's shared DMA engine (null when the mix has no DMA).
    memsys::DmaEngine* dma = nullptr;
    /// Index in drivers_ — the token echoed back by cross-rack completions.
    std::uint32_t index = 0;
    /// Resolved cross-rack fraction (0 when no port is installed).
    double cross_share = 0.0;

    VmDriver(const TenantSpec& s, ArrivalClock c) : spec{s}, clock{std::move(c)} {}
  };

  /// One initial request issue, used by start_streams to coalesce
  /// same-timestamp issues into a single scheduled event (ISSUE 9d).
  struct InitialIssue {
    sim::Time when;
    VmDriver* driver;
    bool closed_loop;
  };

  core::Datacenter& dc_;
  WorkloadConfig config_;
  std::vector<std::unique_ptr<VmDriver>> drivers_;
  /// Same-timestamp groups of initial issues; each scheduled start event
  /// captures an index into this vector, keeping the capture inside the
  /// InplaceAction budget regardless of group size.
  std::vector<std::vector<InitialIssue>> start_batches_;
  /// One DMA engine per dCOMPUBRICK, shared by all co-located tenants
  /// (never iterated — lookup only, so no ordering nondeterminism).
  std::unordered_map<hw::BrickId, std::unique_ptr<memsys::DmaEngine>> dma_engines_;
  WorkloadResult result_;
  sim::Digest digest_;
  sim::Time boot_ready_;
  sim::Time end_;
  bool prepared_ = false;
  bool started_ = false;
  bool finished_ = false;
  /// Peer-rack NIC (null on single-rack runs) and the deployment-wide
  /// cross-rack share tenants inherit when they don't set their own.
  core::CrossRackPort* cross_port_ = nullptr;
  double cross_default_share_ = 0.0;
  /// Live only while run() executes and sample_period > 0.
  std::unique_ptr<sim::TimeSeriesSampler> sampler_;

  void boot_tenants();
  void start_streams(sim::Time t0);
  void schedule_power_samples(sim::Time t0);
  void open_arrival(VmDriver& driver);
  void closed_issue(VmDriver& driver);
  /// Issues one request at the current simulated time; closed-loop callers
  /// get their next issue chained off the completion.
  void perform_op(VmDriver& driver, bool closed_loop);
  /// Issues one read/write against a peer rack's gateway window.
  void issue_cross(VmDriver& driver, bool closed_loop, bool write);
  /// Cross-rack completion handler (runs on this rack's event queue).
  void complete_cross(const core::CrossCompletion& done);
  void record_sync_op(const memsys::Transaction& tx);
  void record_dma(VmDriver& driver, const memsys::DmaCompletion& done);
};

/// Builds the standardized dredbox-report/v1 artifact for one finished
/// load session: config + determinism digests, every metric final, the
/// sampled time series (when WorkloadConfig::sample_period was set) and
/// the slowest causal span trees. Callers write it with
/// RunReport::maybe_write() or embed to_json() in a larger document.
/// `fault_plan` is the spec string the run was injected with ("" =
/// healthy).
sim::RunReport make_run_report(const core::Datacenter& dc, const WorkloadConfig& config,
                               const WorkloadResult& result, const std::string& tag,
                               const std::string& fault_plan = "");

}  // namespace dredbox::workload
