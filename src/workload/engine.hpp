#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/datacenter.hpp"
#include "memsys/dma.hpp"
#include "sim/digest.hpp"
#include "sim/run_report.hpp"
#include "sim/stats.hpp"
#include "sim/timeseries.hpp"
#include "workload/tenant.hpp"

namespace dredbox::workload {

/// A whole multi-tenant load session: the tenant classes to expand into
/// VMs plus the generation window.
struct WorkloadConfig {
  std::vector<TenantSpec> tenants;
  /// Length of the request-generation window (measured in simulated time,
  /// starting after every tenant booted and scaled up).
  sim::Time duration = sim::Time::ms(20);
  /// Extra simulated time after the window for in-flight DMA transfers and
  /// closed-loop tails to land.
  sim::Time drain_grace = sim::Time::ms(5);
  /// Rack power-draw samples taken across the window (0 disables).
  std::size_t power_samples = 8;
  /// Sim-clock period of the metric time-series sampler (zero disables,
  /// the default). When set, every registered instrument is snapshotted
  /// into ring-buffered series each period across the window plus drain;
  /// the result lands in WorkloadResult::timeseries. Sampling draws
  /// nothing from the Rng, so it never changes the op stream or digest.
  sim::Time sample_period = sim::Time::zero();

  /// Field-naming validation errors; empty means the config is runnable.
  std::vector<std::string> errors() const;
};

/// Everything a load session measured. The digest is an exact FNV-1a fold
/// of the full op stream (kind, VM, address, status, latency ticks), so
/// two runs are byte-identical iff their digests match — the property the
/// sweep runner's sequential-vs-parallel check rests on.
struct WorkloadResult {
  std::size_t vms_requested = 0;
  std::size_t vms_booted = 0;
  std::size_t boot_failures = 0;
  std::size_t scale_up_failures = 0;

  /// Requests generated inside the window (open-loop arrivals plus
  /// closed-loop issues).
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t dmas = 0;
  /// Data-plane recovery attempts the fabric charged across all requests.
  std::uint64_t retries = 0;

  /// Read/write round trips, microseconds.
  sim::SampleSet latency_us;
  /// DMA enqueue-to-completion, microseconds.
  sim::SampleSet dma_latency_us;
  /// Rack power draw sampled across the window, watts.
  sim::SampleSet power_w;
  /// Metric time series sampled at WorkloadConfig::sample_period (empty
  /// when sampling was disabled). Export with to_openmetrics()/write_csv().
  sim::TimeSeriesSet timeseries;

  double duration_s = 0.0;
  std::uint64_t digest = 0;

  double offered_rate_hz() const {
    return duration_s > 0.0 ? static_cast<double>(offered) / duration_s : 0.0;
  }
  double throughput_hz() const {
    return duration_s > 0.0 ? static_cast<double>(completed) / duration_s : 0.0;
  }

  /// Human-readable block for examples and reports.
  std::string summary() const;
};

/// Drives a declared multi-tenant workload against one Datacenter: boots
/// every tenant VM through the OpenStack front-end, attaches its
/// disaggregated footprint through the SDM-C (exactly the control path a
/// real tenant exercises), then generates the request streams on the
/// simulation's event queue so arrivals, faults and recoveries interleave
/// on one timeline.
///
/// The engine owns no threads and touches nothing outside the Datacenter
/// it was handed, so any number of engines may run concurrently against
/// fully independent Datacenters (the sweep runner does exactly that).
class WorkloadEngine {
 public:
  /// Throws std::invalid_argument listing every config error.
  WorkloadEngine(core::Datacenter& dc, WorkloadConfig config);

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  const WorkloadConfig& config() const { return config_; }

  /// Boots, generates, drains, reduces. One call per engine.
  WorkloadResult run();

 private:
  /// One booted VM driving requests: placement, its remote window, its
  /// pacing clock and its brick's DMA engine.
  struct VmDriver {
    const TenantSpec& spec;
    hw::VmId vm;
    hw::BrickId compute;
    std::uint64_t window_base = 0;
    std::uint64_t window_size = 0;
    ArrivalClock clock;
    /// The hosting brick's shared DMA engine (null when the mix has no DMA).
    memsys::DmaEngine* dma = nullptr;

    VmDriver(const TenantSpec& s, ArrivalClock c) : spec{s}, clock{std::move(c)} {}
  };

  /// One initial request issue, used by start_streams to coalesce
  /// same-timestamp issues into a single scheduled event (ISSUE 9d).
  struct InitialIssue {
    sim::Time when;
    VmDriver* driver;
    bool closed_loop;
  };

  core::Datacenter& dc_;
  WorkloadConfig config_;
  std::vector<std::unique_ptr<VmDriver>> drivers_;
  /// Same-timestamp groups of initial issues; each scheduled start event
  /// captures an index into this vector, keeping the capture inside the
  /// InplaceAction budget regardless of group size.
  std::vector<std::vector<InitialIssue>> start_batches_;
  /// One DMA engine per dCOMPUBRICK, shared by all co-located tenants
  /// (never iterated — lookup only, so no ordering nondeterminism).
  std::unordered_map<hw::BrickId, std::unique_ptr<memsys::DmaEngine>> dma_engines_;
  WorkloadResult result_;
  sim::Digest digest_;
  sim::Time boot_ready_;
  sim::Time end_;
  bool ran_ = false;
  /// Live only while run() executes and sample_period > 0.
  std::unique_ptr<sim::TimeSeriesSampler> sampler_;

  void boot_tenants();
  void start_streams(sim::Time t0);
  void schedule_power_samples(sim::Time t0);
  void open_arrival(VmDriver& driver);
  void closed_issue(VmDriver& driver);
  /// Issues one request at the current simulated time; closed-loop callers
  /// get their next issue chained off the completion.
  void perform_op(VmDriver& driver, bool closed_loop);
  void record_sync_op(const memsys::Transaction& tx);
  void record_dma(VmDriver& driver, const memsys::DmaCompletion& done);
};

/// Builds the standardized dredbox-report/v1 artifact for one finished
/// load session: config + determinism digests, every metric final, the
/// sampled time series (when WorkloadConfig::sample_period was set) and
/// the slowest causal span trees. Callers write it with
/// RunReport::maybe_write() or embed to_json() in a larger document.
/// `fault_plan` is the spec string the run was injected with ("" =
/// healthy).
sim::RunReport make_run_report(const core::Datacenter& dc, const WorkloadConfig& config,
                               const WorkloadResult& result, const std::string& tag,
                               const std::string& fault_plan = "");

}  // namespace dredbox::workload
