#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::optics {

/// Shape of the inter-rack optical spine switch (ROADMAP item 2): the
/// rack-to-rack circuit layer sitting above every rack's own beam-steering
/// switch. Racks attach with one duplex port each; rack pairs are
/// provisioned as static circuits at datacenter wiring time (the spine is
/// circuit-switched like the intra-rack fabric, but its circuits live for
/// the deployment, not per attachment).
struct SpineSwitchConfig {
  /// Duplex port radix; one port per rack.
  std::size_t ports = 64;
  /// Circuit setup cost charged per provisioned rack pair at wiring.
  sim::Time switching_time = sim::Time::us(25);
  double per_port_power_w = 1.5;
  /// Loss added to any rack-to-rack light path crossing the spine.
  double insertion_loss_db = 1.5;
};

/// Wiring-time model of the spine: port accounting, provisioned rack-pair
/// circuits and the power/loss the device contributes to the TCO and
/// link-budget stories. Deliberately holds no simulation-time state — the
/// time-varying side of the spine (per-direction link health, in-flight
/// messages) lives in the per-rack net::InterRackLink objects each
/// partition shard owns, so nothing here is ever touched concurrently.
class SpineSwitch {
 public:
  explicit SpineSwitch(const SpineSwitchConfig& config = {});

  const SpineSwitchConfig& config() const { return config_; }

  /// Attaches rack `rack` to the next free port; returns the port index.
  /// Throws std::runtime_error when the radix is exhausted.
  std::uint32_t attach_rack(std::uint32_t rack);

  /// Records a provisioned duplex circuit between two attached racks and
  /// returns the cumulative setup time charged so far (each pair costs
  /// config().switching_time once, at wiring).
  sim::Time provision(std::uint32_t rack_a, std::uint32_t rack_b);

  std::size_t ports_used() const { return attached_.size(); }
  std::size_t circuits() const { return circuits_; }
  bool attached(std::uint32_t rack) const;

  /// Static power of the lit ports.
  double power_draw_watts() const {
    return static_cast<double>(attached_.size()) * config_.per_port_power_w;
  }

  std::string describe() const;

 private:
  SpineSwitchConfig config_;
  std::vector<std::uint32_t> attached_;  // rack id per used port, in attach order
  std::size_t circuits_ = 0;
  sim::Time setup_charged_ = sim::Time::zero();
};

}  // namespace dredbox::optics
