#include "optics/mbo.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::optics {

MidBoardOptics::MidBoardOptics(const MboConfig& config, sim::Rng& rng) : config_{config} {
  if (config.channels == 0) throw std::invalid_argument("MidBoardOptics: zero channels");
  channels_.reserve(config.channels);
  for (std::size_t i = 0; i < config.channels; ++i) {
    MboChannel ch;
    ch.index = i;
    ch.launch_dbm = config.mean_launch_dbm + rng.normal(0.0, config.channel_spread_db);
    ch.rate_gbps = config.rate_gbps;
    channels_.push_back(ch);
  }
}

MboChannel* MidBoardOptics::acquire_channel() {
  for (auto& ch : channels_) {
    if (!ch.in_use) {
      ch.in_use = true;
      return &ch;
    }
  }
  return nullptr;
}

void MidBoardOptics::release_channel(std::size_t i) {
  auto& ch = channels_.at(i);
  if (!ch.in_use) throw std::logic_error("MidBoardOptics::release_channel: channel not in use");
  ch.in_use = false;
}

std::size_t MidBoardOptics::channels_in_use() const {
  return static_cast<std::size_t>(std::count_if(channels_.begin(), channels_.end(),
                                                [](const MboChannel& c) { return c.in_use; }));
}

}  // namespace dredbox::optics
