#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/ids.hpp"
#include "optics/link_budget.hpp"
#include "optics/optical_switch.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace dredbox::optics {

/// One endpoint of a circuit: a transceiver port on a brick plus its
/// launch power (taken from the brick's MBO channel).
struct CircuitEndpoint {
  hw::BrickId brick;
  hw::PortId port;
  double launch_dbm = -3.7;
  double coupling_loss_db = 1.2;  // MBO facet coupling at this end
};

/// A bidirectional circuit-switched optical path between two bricks,
/// traversing the optical switch `hops` times (the testbed of Fig. 7
/// emulates longer rack topologies by patching six to eight hops).
struct Circuit {
  hw::CircuitId id;
  CircuitEndpoint a;
  CircuitEndpoint b;
  std::size_t hops = 1;
  double fiber_length_m = 10.0;
  std::vector<std::size_t> switch_ports;  // 2 per hop

  /// One-way propagation delay over the fibre.
  sim::Time propagation_delay() const {
    return sim::Time::ns(fiber_length_m * kPropagationNsPerMeter);
  }

  static constexpr double kPropagationNsPerMeter = 5.0;
};

/// Request for a new circuit.
struct CircuitRequest {
  CircuitEndpoint a;
  CircuitEndpoint b;
  std::size_t hops = 1;
  double fiber_length_m = 10.0;
  double connector_loss_db = 0.3;  // patch connectors at each endpoint
};

/// Allocates and tears down circuits on one optical switch, tracking the
/// switch-port inventory. This is the data-plane half of "software-defined
/// wiring"; the SDM controller drives it from the control plane.
class CircuitManager {
 public:
  explicit CircuitManager(OpticalSwitch& sw) : switch_{sw} {}

  /// Establishes a circuit, consuming 2*hops switch ports. Returns nullopt
  /// when the switch lacks free ports (the condition that motivates the
  /// packet-switched fallback in Section III).
  std::optional<Circuit> establish(const CircuitRequest& request);

  /// Tears a circuit down, releasing its switch ports. Returns false when
  /// the id is unknown.
  bool teardown(hw::CircuitId id);

  // --- fault model ---
  /// Tears down every circuit whose link budget no longer closes (either
  /// direction received below the FEC-correctable floor) — the reaction to
  /// insertion-loss drift. All dead circuits are removed in one pass so the
  /// audit never observes a half-cleaned table. Returns the torn circuits;
  /// the caller (fabric) must release the brick-side transceiver ports.
  std::vector<Circuit> teardown_below_floor();

  /// One beam-steering switch port dies: every circuit crossing it is torn
  /// down and the port is taken out of service (excluded from future
  /// establish calls). Returns the torn circuits for brick-side cleanup.
  std::vector<Circuit> fail_switch_port(std::size_t port);

  /// Returns a failed switch port to service. Returns false when the port
  /// was healthy.
  bool repair_switch_port(std::size_t port) { return switch_.repair_port(port); }

  std::optional<Circuit> find(hw::CircuitId id) const;
  /// Allocation-free lookup for the per-op datapath: a pointer into the
  /// manager's storage (stable until the circuit is torn down), nullptr
  /// when the circuit is gone. find() copies the Circuit — including its
  /// switch_ports vector, one heap allocation — so hot callers that only
  /// read the stored record must use this instead.
  const Circuit* find_ref(hw::CircuitId id) const;
  std::size_t active_circuits() const { return circuits_.size(); }

  /// Time to program the cross-connections for a new circuit; all hops are
  /// configured in parallel so one switch reconfiguration dominates.
  sim::Time setup_time() const { return switch_.config().reconfiguration_time; }

  /// Link budget for the direction a->b (or b->a when `from_a` is false).
  LinkBudget budget(const Circuit& circuit, bool from_a) const;

  OpticalSwitch& optical_switch() { return switch_; }

  /// Wires rack-wide telemetry in: establish/teardown counters, the
  /// active-circuit and switch-port-occupancy gauges and a path-length
  /// (hops) histogram. Null detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

  /// Worst pre-FEC BER the link-layer FEC can still correct; circuits whose
  /// budget lands the received power below the power this BER requires are
  /// dead links and fail the invariant audit.
  static constexpr double kWorstCorrectablePreFecBer = 1e-3;

  /// Deep consistency audit: every circuit owns 2*hops switch ports, no
  /// port is allocated to two circuits, every owned port is actually
  /// cross-connected in the switch, and both directions of every circuit
  /// are received above the FEC-correctable floor (the optical power
  /// budget closes). Throws ContractViolation on the first broken
  /// invariant. Wired into establish/teardown when built with
  /// -DDREDBOX_AUDIT=ON; callable directly in any build.
  void check_invariants() const;

 private:
  OpticalSwitch& switch_;
  std::unordered_map<std::uint32_t, Circuit> circuits_;
  std::uint32_t next_id_ = 1;
  double connector_loss_db_ = 0.3;

  sim::metrics::Counter* established_metric_ = nullptr;
  sim::metrics::Counter* rejected_metric_ = nullptr;
  sim::metrics::Counter* torn_down_metric_ = nullptr;
  sim::metrics::Gauge* active_metric_ = nullptr;
  sim::metrics::Gauge* ports_in_use_metric_ = nullptr;
  sim::metrics::Histogram* hops_metric_ = nullptr;
};

}  // namespace dredbox::optics
