#pragma once

#include <string>

#include "sim/time.hpp"

namespace dredbox::optics {

/// Forward-error-correction options for the brick-to-brick links. The
/// dReDBox architecture *requires a FEC-free interface* because FEC can
/// add more than 100 ns of latency, degrading a disaggregated system
/// (Section III). These models exist to quantify that trade-off in the
/// ablation bench: coding gain vs added latency.
enum class FecScheme {
  kNone,      // dReDBox mainline: FEC-free
  kRsLight,   // RS(528,514)-class "fire-code" FEC
  kRsStrong,  // RS(544,514)-class heavier FEC
};

std::string to_string(FecScheme scheme);

class FecModel {
 public:
  explicit FecModel(FecScheme scheme = FecScheme::kNone);

  FecScheme scheme() const { return scheme_; }

  /// Encode+decode latency added to every traversal of the link.
  sim::Time added_latency() const { return latency_; }

  /// Pre-FEC BER below which the decoder output is effectively error-free.
  double correction_threshold() const { return threshold_; }

  /// Post-FEC output BER given the raw line BER. Hard-decision RS decoding
  /// has a steep waterfall: below threshold the output floor applies,
  /// above it correction collapses and the raw BER passes through.
  double post_fec_ber(double pre_fec_ber) const;

 private:
  FecScheme scheme_;
  sim::Time latency_;
  double threshold_;
  double floor_;
};

}  // namespace dredbox::optics
