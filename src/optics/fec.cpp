#include "optics/fec.hpp"

namespace dredbox::optics {

std::string to_string(FecScheme scheme) {
  switch (scheme) {
    case FecScheme::kNone:
      return "FEC-free";
    case FecScheme::kRsLight:
      return "RS(528,514)";
    case FecScheme::kRsStrong:
      return "RS(544,514)";
  }
  return "<unknown FEC scheme>";
}

FecModel::FecModel(FecScheme scheme) : scheme_{scheme} {
  switch (scheme) {
    case FecScheme::kNone:
      latency_ = sim::Time::zero();
      threshold_ = 0.0;
      floor_ = 1.0;  // pass-through
      break;
    case FecScheme::kRsLight:
      latency_ = sim::Time::ns(120);  // "more than 100 ns" (Section III)
      threshold_ = 2.4e-4;            // KR4-class correction threshold
      floor_ = 1e-15;
      break;
    case FecScheme::kRsStrong:
      latency_ = sim::Time::ns(250);
      threshold_ = 1.1e-3;  // KP4-class correction threshold
      floor_ = 1e-15;
      break;
  }
}

double FecModel::post_fec_ber(double pre_fec_ber) const {
  if (scheme_ == FecScheme::kNone) return pre_fec_ber;
  if (pre_fec_ber <= threshold_) return floor_;
  return pre_fec_ber;
}

}  // namespace dredbox::optics
