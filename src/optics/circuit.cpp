#include "optics/circuit.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "optics/receiver.hpp"
#include "sim/contract.hpp"

namespace dredbox::optics {

void CircuitManager::set_telemetry(sim::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    established_metric_ = rejected_metric_ = torn_down_metric_ = nullptr;
    active_metric_ = ports_in_use_metric_ = nullptr;
    hops_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  established_metric_ = &m.counter("optics.circuits.established");
  rejected_metric_ = &m.counter("optics.circuits.rejected");
  torn_down_metric_ = &m.counter("optics.circuits.torn_down");
  active_metric_ = &m.gauge("optics.circuits.active");
  ports_in_use_metric_ = &m.gauge("optics.switch.ports_in_use");
  // The Fig. 7 testbed patches six to eight hops; one bin per hop count.
  hops_metric_ = &m.histogram("optics.circuit.hops", 0.0, 8.0, 8);
}

std::optional<Circuit> CircuitManager::establish(const CircuitRequest& request) {
  if (request.hops == 0) throw std::invalid_argument("CircuitManager: zero-hop circuit");
  const std::size_t needed = 2 * request.hops;
  auto ports = switch_.find_free_ports(needed);
  if (ports.empty()) {
    if (rejected_metric_ != nullptr) rejected_metric_->add();
    return std::nullopt;
  }

  // Each hop pairs ports (2i, 2i+1); inter-hop patches are fixed fibre.
  for (std::size_t i = 0; i < request.hops; ++i) {
    switch_.connect(ports[2 * i], ports[2 * i + 1]);
  }

  Circuit c;
  c.id = hw::CircuitId{next_id_++};
  c.a = request.a;
  c.b = request.b;
  c.hops = request.hops;
  c.fiber_length_m = request.fiber_length_m;
  c.switch_ports = std::move(ports);
  connector_loss_db_ = request.connector_loss_db;
  circuits_.emplace(c.id.value, c);
  if (established_metric_ != nullptr) {
    established_metric_->add();
    active_metric_->set(static_cast<double>(circuits_.size()));
    ports_in_use_metric_->set(static_cast<double>(switch_.ports_in_use()));
    hops_metric_->observe(static_cast<double>(c.hops));
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return c;
}

bool CircuitManager::teardown(hw::CircuitId id) {
  auto it = circuits_.find(id.value);
  if (it == circuits_.end()) return false;
  const Circuit& c = it->second;
  for (std::size_t i = 0; i < c.hops; ++i) {
    switch_.disconnect(c.switch_ports[2 * i]);
  }
  circuits_.erase(it);
  if (torn_down_metric_ != nullptr) {
    torn_down_metric_->add();
    active_metric_->set(static_cast<double>(circuits_.size()));
    ports_in_use_metric_->set(static_cast<double>(switch_.ports_in_use()));
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

std::vector<Circuit> CircuitManager::teardown_below_floor() {
  const double floor_dbm = ReceiverModel{}.required_power_dbm(kWorstCorrectablePreFecBer);
  std::vector<Circuit> torn;
  // Collect first (deterministically, by id), erase after: the audit runs
  // once at the end, never against a table where one dead circuit is gone
  // and its equally-dead sibling still fails the budget-floor invariant.
  std::vector<std::uint32_t> dead;
  // dredbox-lint: ignore[unordered-iteration] -- ids are sorted below.
  for (const auto& [id, c] : circuits_) {
    if (budget(c, true).received_dbm() < floor_dbm ||
        budget(c, false).received_dbm() < floor_dbm) {
      dead.push_back(id);
    }
  }
  std::sort(dead.begin(), dead.end());
  for (std::uint32_t id : dead) {
    auto it = circuits_.find(id);
    torn.push_back(it->second);
    for (std::size_t i = 0; i < it->second.hops; ++i) {
      switch_.disconnect(it->second.switch_ports[2 * i]);
    }
    circuits_.erase(it);
    if (torn_down_metric_ != nullptr) torn_down_metric_->add();
  }
  if (active_metric_ != nullptr && !torn.empty()) {
    active_metric_->set(static_cast<double>(circuits_.size()));
    ports_in_use_metric_->set(static_cast<double>(switch_.ports_in_use()));
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return torn;
}

std::vector<Circuit> CircuitManager::fail_switch_port(std::size_t port) {
  std::vector<Circuit> torn;
  std::vector<std::uint32_t> dead;
  // dredbox-lint: ignore[unordered-iteration] -- ids are sorted below.
  for (const auto& [id, c] : circuits_) {
    if (std::find(c.switch_ports.begin(), c.switch_ports.end(), port) !=
        c.switch_ports.end()) {
      dead.push_back(id);
    }
  }
  std::sort(dead.begin(), dead.end());
  for (std::uint32_t id : dead) {
    auto it = circuits_.find(id);
    torn.push_back(it->second);
    for (std::size_t i = 0; i < it->second.hops; ++i) {
      switch_.disconnect(it->second.switch_ports[2 * i]);
    }
    circuits_.erase(it);
    if (torn_down_metric_ != nullptr) torn_down_metric_->add();
  }
  switch_.fail_port(port);
  if (active_metric_ != nullptr && !torn.empty()) {
    active_metric_->set(static_cast<double>(circuits_.size()));
    ports_in_use_metric_->set(static_cast<double>(switch_.ports_in_use()));
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return torn;
}

std::optional<Circuit> CircuitManager::find(hw::CircuitId id) const {
  auto it = circuits_.find(id.value);
  if (it == circuits_.end()) return std::nullopt;
  return it->second;
}

const Circuit* CircuitManager::find_ref(hw::CircuitId id) const {
  auto it = circuits_.find(id.value);
  return it == circuits_.end() ? nullptr : &it->second;
}

LinkBudget CircuitManager::budget(const Circuit& circuit, bool from_a) const {
  const CircuitEndpoint& tx = from_a ? circuit.a : circuit.b;
  const CircuitEndpoint& rx = from_a ? circuit.b : circuit.a;
  LinkBudget lb{tx.launch_dbm};
  lb.add_loss("TX MBO coupling", tx.coupling_loss_db);
  lb.add_loss("TX connector", connector_loss_db_);
  lb.add_switch_hops(circuit.hops, switch_.insertion_loss_db());
  // Standard SMF attenuation is ~0.35 dB/km at 1310 nm; in-rack runs are
  // metres, so this term is tiny but kept for completeness.
  lb.add_loss("fibre", circuit.fiber_length_m * 0.35e-3);
  lb.add_loss("RX connector", connector_loss_db_);
  lb.add_loss("RX MBO coupling", rx.coupling_loss_db);
  return lb;
}

void CircuitManager::check_invariants() const {
  // Received power below this and even FEC cannot recover the link; the
  // floor uses the calibrated receiver of the Fig. 7 testbed.
  const double floor_dbm = ReceiverModel{}.required_power_dbm(kWorstCorrectablePreFecBer);
  std::vector<bool> allocated(switch_.port_count(), false);
  std::size_t ports_owned = 0;
  // Order-independent audit over the circuit table.
  // dredbox-lint: ignore[unordered-iteration]
  for (const auto& [id, c] : circuits_) {
    DREDBOX_INVARIANT(c.id.value == id, "circuit table key disagrees with the circuit id");
    DREDBOX_INVARIANT(c.hops >= 1, "circuit " + c.id.to_string() + " has zero hops");
    DREDBOX_INVARIANT(c.switch_ports.size() == 2 * c.hops,
                      "circuit " + c.id.to_string() + " owns " +
                          std::to_string(c.switch_ports.size()) + " switch ports for " +
                          std::to_string(c.hops) + " hops");
    for (std::size_t port : c.switch_ports) {
      DREDBOX_INVARIANT(port < allocated.size(),
                        "circuit " + c.id.to_string() + " references switch port " +
                            std::to_string(port) + " beyond the port count");
      DREDBOX_INVARIANT(!allocated[port], "switch port " + std::to_string(port) +
                                              " is allocated to two circuits");
      allocated[port] = true;
      ++ports_owned;
      DREDBOX_INVARIANT(switch_.peer(port).has_value(),
                        "switch port " + std::to_string(port) + " owned by circuit " +
                            c.id.to_string() + " is not cross-connected");
    }
    for (const bool from_a : {true, false}) {
      const double received = budget(c, from_a).received_dbm();
      DREDBOX_INVARIANT(received >= floor_dbm,
                        "circuit " + c.id.to_string() + " is received at " +
                            std::to_string(received) + " dBm, below the FEC-correctable " +
                            std::to_string(floor_dbm) + " dBm floor");
    }
  }
  DREDBOX_INVARIANT(switch_.ports_in_use() >= ports_owned,
                    "switch reports fewer connected ports than circuits own");
}

}  // namespace dredbox::optics
