#include "optics/spine.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::optics {

SpineSwitch::SpineSwitch(const SpineSwitchConfig& config) : config_{config} {
  if (config_.ports == 0) {
    throw std::invalid_argument("SpineSwitch: port radix must be positive");
  }
}

std::uint32_t SpineSwitch::attach_rack(std::uint32_t rack) {
  if (attached_.size() >= config_.ports) {
    throw std::runtime_error(sim::strformat(
        "SpineSwitch: out of ports attaching rack %u (radix %zu)", rack, config_.ports));
  }
  if (attached(rack)) {
    throw std::invalid_argument(
        sim::strformat("SpineSwitch: rack %u is already attached", rack));
  }
  attached_.push_back(rack);
  return static_cast<std::uint32_t>(attached_.size() - 1);
}

bool SpineSwitch::attached(std::uint32_t rack) const {
  return std::find(attached_.begin(), attached_.end(), rack) != attached_.end();
}

sim::Time SpineSwitch::provision(std::uint32_t rack_a, std::uint32_t rack_b) {
  if (rack_a == rack_b) {
    throw std::invalid_argument("SpineSwitch: cannot provision a rack to itself");
  }
  if (!attached(rack_a) || !attached(rack_b)) {
    throw std::invalid_argument("SpineSwitch: provision requires both racks attached");
  }
  ++circuits_;
  setup_charged_ = setup_charged_ + config_.switching_time;
  return setup_charged_;
}

std::string SpineSwitch::describe() const {
  return sim::strformat(
      "spine switch: %zu/%zu ports lit, %zu rack-pair circuits, %.1f W, %.1f dB insertion",
      ports_used(), config_.ports, circuits_, power_draw_watts(), config_.insertion_loss_db);
}

}  // namespace dredbox::optics
