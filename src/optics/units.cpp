#include "optics/units.hpp"

#include <stdexcept>

namespace dredbox::optics {

double q_from_ber(double ber) {
  if (ber <= 0.0 || ber >= 0.5) {
    throw std::invalid_argument("q_from_ber: BER must be in (0, 0.5)");
  }
  double lo = 0.0, hi = 40.0;  // erfc underflows well before Q=40
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ber_from_q(mid) > ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace dredbox::optics
