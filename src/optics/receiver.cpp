#include "optics/receiver.hpp"

#include <stdexcept>

#include "optics/units.hpp"

namespace dredbox::optics {

ReceiverModel::ReceiverModel(double sensitivity_dbm, double rate_gbps)
    : sensitivity_dbm_{sensitivity_dbm},
      rate_gbps_{rate_gbps},
      q_ref_{q_from_ber(1e-12)},
      sens_mw_{dbm_to_mw(sensitivity_dbm)} {
  if (rate_gbps <= 0) throw std::invalid_argument("ReceiverModel: rate must be positive");
}

double ReceiverModel::q_factor(double received_dbm) const {
  return q_ref_ * dbm_to_mw(received_dbm) / sens_mw_;
}

double ReceiverModel::ber(double received_dbm) const {
  return ber_from_q(q_factor(received_dbm));
}

double ReceiverModel::expected_errors(double received_dbm, double seconds) const {
  return ber(received_dbm) * rate_gbps_ * 1e9 * seconds;
}

double ReceiverModel::required_power_dbm(double target_ber) const {
  const double q_needed = q_from_ber(target_ber);
  return mw_to_dbm(sens_mw_ * q_needed / q_ref_);
}

}  // namespace dredbox::optics
