#pragma once

#include <cstddef>

namespace dredbox::optics {

/// Thermal-noise-limited direct-detection receiver model for the 10 Gb/s
/// OOK links of Fig. 7.
///
/// The receiver is calibrated by one intuitive parameter — its sensitivity,
/// i.e. the received average power at which BER = 1e-12 — instead of raw
/// noise current densities. With a constant (thermal) noise floor the
/// Q-factor scales linearly with received power in mW:
///
///     Q(P) = Q_ref * P_mW / P_sens_mW,  Q_ref = q_from_ber(1e-12) = 7.03
///
/// which captures the Fig. 7 behaviour: BER degrades steeply as switch
/// hops eat the budget, and links received above sensitivity measure
/// "error-free" (BER floor bounded by measurement time).
class ReceiverModel {
 public:
  /// `sensitivity_dbm`: average power for BER = 1e-12 at `rate_gbps`.
  explicit ReceiverModel(double sensitivity_dbm = -14.0, double rate_gbps = 10.0);

  double sensitivity_dbm() const { return sensitivity_dbm_; }
  double rate_gbps() const { return rate_gbps_; }

  /// Q-factor at the given received average power.
  double q_factor(double received_dbm) const;

  /// Bit error rate at the given received average power.
  double ber(double received_dbm) const;

  /// Expected bit errors when observing the link for `seconds`.
  double expected_errors(double received_dbm, double seconds) const;

  /// Power (dBm) needed to reach a target BER — the receiver's sensitivity
  /// curve inverted; useful for budget planning in the orchestrator.
  double required_power_dbm(double target_ber) const;

 private:
  double sensitivity_dbm_;
  double rate_gbps_;
  double q_ref_;        // Q at sensitivity (7.03 for 1e-12)
  double sens_mw_;      // sensitivity in mW
};

}  // namespace dredbox::optics
