#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.hpp"

namespace dredbox::optics {

/// One transceiver channel of the mid-board optics module.
struct MboChannel {
  std::size_t index = 0;
  double launch_dbm = -3.7;
  double rate_gbps = 10.0;
  bool in_use = false;
};

struct MboConfig {
  std::size_t channels = 8;            // total of 8 transceivers (Section III)
  double mean_launch_dbm = -3.7;       // average per-channel output power
  double channel_spread_db = 0.25;     // channel-to-channel launch variation
  double wavelength_nm = 1310.0;       // shared laser
  double rate_gbps = 10.0;             // evaluated line rate (Fig. 7)
  double coupling_loss_db = 1.2;       // fibre coupling at the MBO, per facet
};

/// SiP Mid-Board Optics module (Section III): 8 transceivers with external
/// modulation sharing one 1310 nm laser. Per-channel launch power varies
/// slightly around the -3.7 dBm average; the variation is drawn once at
/// construction (it is a device property, not per-measurement noise).
class MidBoardOptics {
 public:
  MidBoardOptics(const MboConfig& config, sim::Rng& rng);

  const MboConfig& config() const { return config_; }
  std::size_t channel_count() const { return channels_.size(); }

  const MboChannel& channel(std::size_t i) const { return channels_.at(i); }
  MboChannel& channel(std::size_t i) { return channels_.at(i); }

  /// First free channel; nullptr when all are in use.
  MboChannel* acquire_channel();
  void release_channel(std::size_t i);

  std::size_t channels_in_use() const;

  double wavelength_nm() const { return config_.wavelength_nm; }
  double coupling_loss_db() const { return config_.coupling_loss_db; }

 private:
  MboConfig config_;
  std::vector<MboChannel> channels_;
};

}  // namespace dredbox::optics
