#include "optics/link_budget.hpp"

#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::optics {

LinkBudget& LinkBudget::add_loss(std::string name, double db) {
  if (db < 0) throw std::invalid_argument("LinkBudget::add_loss: negative loss");
  losses_.emplace_back(std::move(name), db);
  return *this;
}

LinkBudget& LinkBudget::add_switch_hops(std::size_t hops, double db_per_hop) {
  for (std::size_t i = 0; i < hops; ++i) {
    add_loss("switch hop " + std::to_string(i + 1), db_per_hop);
  }
  return *this;
}

double LinkBudget::total_loss_db() const {
  double total = 0;
  for (const auto& [name, db] : losses_) total += db;
  return total;
}

std::string LinkBudget::to_string() const {
  std::string out = sim::strformat("launch %.2f dBm", launch_dbm_);
  for (const auto& [name, db] : losses_) {
    out += sim::strformat(" - %.2f dB (%s)", db, name.c_str());
  }
  out += sim::strformat(" => %.2f dBm received", received_dbm());
  return out;
}

}  // namespace dredbox::optics
