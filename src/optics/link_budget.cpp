#include "optics/link_budget.hpp"

#include <cstdio>
#include <stdexcept>

namespace dredbox::optics {

LinkBudget& LinkBudget::add_loss(std::string name, double db) {
  if (db < 0) throw std::invalid_argument("LinkBudget::add_loss: negative loss");
  losses_.emplace_back(std::move(name), db);
  return *this;
}

LinkBudget& LinkBudget::add_switch_hops(std::size_t hops, double db_per_hop) {
  for (std::size_t i = 0; i < hops; ++i) {
    add_loss("switch hop " + std::to_string(i + 1), db_per_hop);
  }
  return *this;
}

double LinkBudget::total_loss_db() const {
  double total = 0;
  for (const auto& [name, db] : losses_) total += db;
  return total;
}

std::string LinkBudget::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "launch %.2f dBm", launch_dbm_);
  std::string out = buf;
  for (const auto& [name, db] : losses_) {
    std::snprintf(buf, sizeof buf, " - %.2f dB (%s)", db, name.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof buf, " => %.2f dBm received", received_dbm());
  out += buf;
  return out;
}

}  // namespace dredbox::optics
