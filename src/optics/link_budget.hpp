#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dredbox::optics {

/// Accumulates the optical power budget of one link: a launch power and an
/// ordered list of named loss elements (coupling, connectors, switch hops).
/// Fig. 7's x-axis is exactly the received power this computes.
class LinkBudget {
 public:
  explicit LinkBudget(double launch_dbm) : launch_dbm_{launch_dbm} {}

  /// Adds a named attenuation element (positive dB = loss).
  LinkBudget& add_loss(std::string name, double db);

  /// Adds `hops` passes through the optical switch at `db_per_hop` each
  /// (paper: ~1 dB per hop through the Polatis module).
  LinkBudget& add_switch_hops(std::size_t hops, double db_per_hop = 1.0);

  double launch_dbm() const { return launch_dbm_; }
  double total_loss_db() const;
  double received_dbm() const { return launch_dbm_ - total_loss_db(); }

  const std::vector<std::pair<std::string, double>>& losses() const { return losses_; }

  std::string to_string() const;

 private:
  double launch_dbm_;
  std::vector<std::pair<std::string, double>> losses_;
};

}  // namespace dredbox::optics
