#pragma once

#include <cmath>
#include <numbers>

namespace dredbox::optics {

/// dBm <-> mW conversions used throughout the optical substrate.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Gaussian-noise BER for a decision variable with Q-factor `q`:
/// BER = 0.5 * erfc(Q / sqrt(2)).
inline double ber_from_q(double q) {
  if (q <= 0) return 0.5;
  return 0.5 * std::erfc(q / std::numbers::sqrt2);
}

/// Q-factor that yields a target BER (inverse of ber_from_q), found by
/// bisection; used to calibrate receiver sensitivity ("Q = 7.03 at 1e-12").
double q_from_ber(double ber);

/// Speed of light in standard single-mode fibre: ~2.0e8 m/s, i.e. ~5 ns/m.
inline constexpr double kFiberNsPerMeter = 5.0;

}  // namespace dredbox::optics
