#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::optics {

struct OpticalSwitchConfig {
  std::size_t ports = 48;            // HUBER+SUHNER Polatis 48-port module
  double insertion_loss_db = 1.0;    // ~1 dB attenuation per hop
  double power_per_port_w = 0.1;     // ~100 mW/port
  /// Beam-steering reconfiguration time for establishing a new cross
  /// connection; charged by the orchestrator when circuits change.
  sim::Time reconfiguration_time = sim::Time::ms(25);
};

/// All-optical circuit switch: a port-to-port crossbar with no O/E/O
/// conversion. A "hop" through the switch connects one ingress port to one
/// egress port and costs the insertion loss; data passes transparently at
/// any rate. Connections are bidirectional (the Polatis module is a
/// piezo/beam-steering space switch).
class OpticalSwitch {
 public:
  explicit OpticalSwitch(const OpticalSwitchConfig& config = {});

  const OpticalSwitchConfig& config() const { return config_; }
  std::size_t port_count() const { return peer_.size(); }

  bool port_free(std::size_t port) const;
  std::size_t free_ports() const;
  /// Ports carrying a cross-connection (failed-but-idle ports count as
  /// neither free nor in use).
  std::size_t ports_in_use() const;

  /// Cross-connects two free ports. Throws when either is busy or out of
  /// range, or when a == b.
  void connect(std::size_t a, std::size_t b);

  /// Tears down the connection at `port` (and its peer). Returns false
  /// when the port was not connected.
  bool disconnect(std::size_t port);

  /// Peer of a connected port.
  std::optional<std::size_t> peer(std::size_t port) const;

  /// Finds `n` free ports (lowest-numbered first). Empty when scarce.
  std::vector<std::size_t> find_free_ports(std::size_t n) const;

  // --- fault model ---
  /// Marks a port as failed: it is excluded from free-port searches and
  /// connect() refuses it. A connected port stays cross-connected — the
  /// CircuitManager is responsible for tearing the circuits that ride it
  /// (CircuitManager::fail_switch_port does both in one step). Returns
  /// false when the port was already failed.
  bool fail_port(std::size_t port);
  /// Returns a failed port to service. Returns false when it was healthy.
  bool repair_port(std::size_t port);
  bool port_failed(std::size_t port) const { return failed_.at(port); }
  std::size_t failed_ports() const;

  /// Uniform insertion-loss drift added on top of the nominal per-hop loss
  /// (ageing/misalignment of the beam-steering elements). Negative drift is
  /// clamped to the nominal loss floor.
  void set_insertion_loss_drift_db(double drift_db) { loss_drift_db_ = drift_db; }
  double insertion_loss_drift_db() const { return loss_drift_db_; }

  double insertion_loss_db() const {
    const double loss = config_.insertion_loss_db + loss_drift_db_;
    return loss > 0.0 ? loss : 0.0;
  }
  double power_draw_watts() const {
    return static_cast<double>(ports_in_use()) * config_.power_per_port_w;
  }

  std::string describe() const;

 private:
  OpticalSwitchConfig config_;
  std::vector<std::optional<std::size_t>> peer_;
  std::vector<bool> failed_;
  double loss_drift_db_ = 0.0;
};

}  // namespace dredbox::optics
