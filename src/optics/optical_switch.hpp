#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::optics {

struct OpticalSwitchConfig {
  std::size_t ports = 48;            // HUBER+SUHNER Polatis 48-port module
  double insertion_loss_db = 1.0;    // ~1 dB attenuation per hop
  double power_per_port_w = 0.1;     // ~100 mW/port
  /// Beam-steering reconfiguration time for establishing a new cross
  /// connection; charged by the orchestrator when circuits change.
  sim::Time reconfiguration_time = sim::Time::ms(25);
};

/// All-optical circuit switch: a port-to-port crossbar with no O/E/O
/// conversion. A "hop" through the switch connects one ingress port to one
/// egress port and costs the insertion loss; data passes transparently at
/// any rate. Connections are bidirectional (the Polatis module is a
/// piezo/beam-steering space switch).
class OpticalSwitch {
 public:
  explicit OpticalSwitch(const OpticalSwitchConfig& config = {});

  const OpticalSwitchConfig& config() const { return config_; }
  std::size_t port_count() const { return peer_.size(); }

  bool port_free(std::size_t port) const;
  std::size_t free_ports() const;
  std::size_t ports_in_use() const { return port_count() - free_ports(); }

  /// Cross-connects two free ports. Throws when either is busy or out of
  /// range, or when a == b.
  void connect(std::size_t a, std::size_t b);

  /// Tears down the connection at `port` (and its peer). Returns false
  /// when the port was not connected.
  bool disconnect(std::size_t port);

  /// Peer of a connected port.
  std::optional<std::size_t> peer(std::size_t port) const;

  /// Finds `n` free ports (lowest-numbered first). Empty when scarce.
  std::vector<std::size_t> find_free_ports(std::size_t n) const;

  double insertion_loss_db() const { return config_.insertion_loss_db; }
  double power_draw_watts() const {
    return static_cast<double>(ports_in_use()) * config_.power_per_port_w;
  }

  std::string describe() const;

 private:
  OpticalSwitchConfig config_;
  std::vector<std::optional<std::size_t>> peer_;
};

}  // namespace dredbox::optics
