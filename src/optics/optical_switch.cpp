#include "optics/optical_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::optics {

OpticalSwitch::OpticalSwitch(const OpticalSwitchConfig& config) : config_{config} {
  if (config.ports < 2) throw std::invalid_argument("OpticalSwitch: needs at least two ports");
  peer_.resize(config.ports);
  failed_.resize(config.ports, false);
}

bool OpticalSwitch::port_free(std::size_t port) const {
  return !peer_.at(port).has_value() && !failed_.at(port);
}

std::size_t OpticalSwitch::free_ports() const {
  std::size_t n = 0;
  for (std::size_t p = 0; p < peer_.size(); ++p) {
    if (port_free(p)) ++n;
  }
  return n;
}

void OpticalSwitch::connect(std::size_t a, std::size_t b) {
  if (a >= peer_.size() || b >= peer_.size()) {
    throw std::out_of_range("OpticalSwitch::connect: port out of range");
  }
  if (a == b) throw std::invalid_argument("OpticalSwitch::connect: cannot loop a port to itself");
  if (peer_[a] || peer_[b]) {
    throw std::logic_error("OpticalSwitch::connect: port already connected");
  }
  if (failed_[a] || failed_[b]) {
    throw std::logic_error("OpticalSwitch::connect: port is out of service");
  }
  peer_[a] = b;
  peer_[b] = a;
}

std::size_t OpticalSwitch::ports_in_use() const {
  return static_cast<std::size_t>(
      std::count_if(peer_.begin(), peer_.end(), [](const auto& p) { return p.has_value(); }));
}

bool OpticalSwitch::fail_port(std::size_t port) {
  if (port >= failed_.size()) {
    throw std::out_of_range("OpticalSwitch::fail_port: port out of range");
  }
  if (failed_[port]) return false;
  failed_[port] = true;
  return true;
}

bool OpticalSwitch::repair_port(std::size_t port) {
  if (port >= failed_.size()) {
    throw std::out_of_range("OpticalSwitch::repair_port: port out of range");
  }
  if (!failed_[port]) return false;
  failed_[port] = false;
  return true;
}

std::size_t OpticalSwitch::failed_ports() const {
  return static_cast<std::size_t>(std::count(failed_.begin(), failed_.end(), true));
}

bool OpticalSwitch::disconnect(std::size_t port) {
  if (port >= peer_.size()) throw std::out_of_range("OpticalSwitch::disconnect: port out of range");
  if (!peer_[port]) return false;
  const std::size_t other = *peer_[port];
  peer_[port].reset();
  peer_[other].reset();
  return true;
}

std::optional<std::size_t> OpticalSwitch::peer(std::size_t port) const { return peer_.at(port); }

std::vector<std::size_t> OpticalSwitch::find_free_ports(std::size_t n) const {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < peer_.size() && out.size() < n; ++p) {
    if (port_free(p)) out.push_back(p);
  }
  if (out.size() < n) out.clear();
  return out;
}

std::string OpticalSwitch::describe() const {
  return "optical switch: " + std::to_string(ports_in_use()) + "/" +
         std::to_string(port_count()) + " ports in use, " +
         std::to_string(power_draw_watts()) + " W";
}

}  // namespace dredbox::optics
