#include "optics/optical_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::optics {

OpticalSwitch::OpticalSwitch(const OpticalSwitchConfig& config) : config_{config} {
  if (config.ports < 2) throw std::invalid_argument("OpticalSwitch: needs at least two ports");
  peer_.resize(config.ports);
}

bool OpticalSwitch::port_free(std::size_t port) const { return !peer_.at(port).has_value(); }

std::size_t OpticalSwitch::free_ports() const {
  return static_cast<std::size_t>(
      std::count_if(peer_.begin(), peer_.end(), [](const auto& p) { return !p.has_value(); }));
}

void OpticalSwitch::connect(std::size_t a, std::size_t b) {
  if (a >= peer_.size() || b >= peer_.size()) {
    throw std::out_of_range("OpticalSwitch::connect: port out of range");
  }
  if (a == b) throw std::invalid_argument("OpticalSwitch::connect: cannot loop a port to itself");
  if (peer_[a] || peer_[b]) {
    throw std::logic_error("OpticalSwitch::connect: port already connected");
  }
  peer_[a] = b;
  peer_[b] = a;
}

bool OpticalSwitch::disconnect(std::size_t port) {
  if (port >= peer_.size()) throw std::out_of_range("OpticalSwitch::disconnect: port out of range");
  if (!peer_[port]) return false;
  const std::size_t other = *peer_[port];
  peer_[port].reset();
  peer_[other].reset();
  return true;
}

std::optional<std::size_t> OpticalSwitch::peer(std::size_t port) const { return peer_.at(port); }

std::vector<std::size_t> OpticalSwitch::find_free_ports(std::size_t n) const {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < peer_.size() && out.size() < n; ++p) {
    if (!peer_[p]) out.push_back(p);
  }
  if (out.size() < n) out.clear();
  return out;
}

std::string OpticalSwitch::describe() const {
  return "optical switch: " + std::to_string(ports_in_use()) + "/" +
         std::to_string(port_count()) + " ports in use, " +
         std::to_string(power_draw_watts()) + " W";
}

}  // namespace dredbox::optics
