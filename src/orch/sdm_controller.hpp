#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <vector>

#include "hw/rack.hpp"
#include "memsys/remote_memory.hpp"
#include "orch/demand_registry.hpp"
#include "orch/power_manager.hpp"
#include "orch/sdm_agent.hpp"
#include "orch/sdm_types.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// The Software-Defined Memory Controller (SDM-C, Section IV-C): an
/// autonomous service integrated with the OpenStack front-end that
/// (a) receives VM/bare-metal allocation requests,
/// (b) safely inspects availability and makes a power-consumption
///     conscious selection of resources,
/// (c) safely reserves the selected resources, and
/// (d) generates and pushes configurations to all involved devices
///     (circuit switches via their control plane, glue logic and kernels
///     via the per-brick SDM agents).
///
/// Concurrency model: the inspect+reserve transaction is serialized inside
/// the service (safety), the optical-switch control plane programs one
/// reconfiguration at a time, and kernel hotplug serializes per brick
/// while distinct bricks proceed in parallel. These three queues are what
/// shapes the concurrency curves of Fig. 10.
class SdmController {
 public:
  SdmController(hw::Rack& rack, memsys::RemoteMemoryFabric& fabric,
                optics::CircuitManager& circuits, const SdmTiming& timing = {});

  void register_agent(SdmAgent& agent);

  /// Optional: with a power manager attached, the SDM-C pays a realistic
  /// wake latency when its selection lands on a powered-off brick (and
  /// reports activity so idle bricks can be swept). Without one, bricks
  /// power on instantly (the Fig. 10 configuration).
  void set_power_manager(PowerManager* manager) { power_mgr_ = manager; }

  /// When on, attachments are wired as optical circuits even for
  /// intra-tray pairs (switch programmed, ports burned) instead of riding
  /// the tray's electrical wiring. See DatacenterConfig::prefer_optical_attach.
  void set_prefer_optical(bool on) { prefer_optical_ = on; }
  SdmAgent& agent_for(hw::BrickId compute);
  bool has_agent(hw::BrickId compute) const { return agents_.count(compute) != 0; }

  // --- role (a): VM allocation ---
  AllocationResult allocate_vm(const AllocationRequest& request, sim::Time now);

  // --- Scale-up API path (Fig. 10) ---
  ScaleUpResult scale_up(const ScaleUpRequest& request);
  ScaleUpResult scale_down(hw::VmId vm, hw::BrickId compute, hw::SegmentId segment,
                           sim::Time now);

  /// Balloon-based redistribution (the revisited ballooning subsystem):
  /// reclaims `bytes` from a donor VM and hands them to a recipient VM on
  /// the same dCOMPUBRICK. No circuit setup and no kernel hotplug are
  /// involved, so this is the fastest elasticity tier — used when a
  /// co-located guest is over-provisioned.
  ScaleUpResult rebalance(hw::VmId donor, hw::VmId recipient, hw::BrickId compute,
                          std::uint64_t bytes, sim::Time now);

  /// Demand-aware scale-up: when a recent usage report shows a co-located
  /// guest with enough slack, the grant is served from the balloon tier
  /// (no circuits, no hotplug); otherwise the normal attach path runs.
  /// Feed the registry through demand_registry().report(...) — the same
  /// balloon-stats channel the OOM guard uses.
  ScaleUpResult scale_up_smart(const ScaleUpRequest& request);

  MemoryDemandRegistry& demand_registry() { return demand_; }
  /// Reports older than this are distrusted by scale_up_smart.
  sim::Time demand_staleness_limit() const { return sim::Time::sec(30); }

  /// Agent-side entry point for the periodic balloon-stats report: keeps
  /// the demand registry current so scale_up_smart can find donors.
  /// Usable-bytes is read from the hypervisor, so callers only pass what
  /// the guest actually uses.
  void report_guest_usage(hw::VmId vm, hw::BrickId compute, std::uint64_t used_bytes,
                          sim::Time now);

  // --- role (b): power-conscious selection ---
  /// Picks the dMEMBRICK to serve `bytes` for `compute`. Preference order:
  /// bricks already wired to this compute brick (no switch programming),
  /// then already-active bricks (packing keeps others off), then idle
  /// powered bricks, then powered-off bricks (powered on on demand).
  /// Within each class, same-tray bricks win (the tray's electrical
  /// circuit is lower-latency and burns no optical switch ports), and
  /// ties break best-fit.
  std::optional<hw::BrickId> select_membrick(std::uint64_t bytes, hw::BrickId compute) const;

  /// Picks a hosting dCOMPUBRICK for a VM, packing active bricks first.
  std::optional<hw::BrickId> select_compute(std::size_t vcpus) const;

  // --- fault reaction (graceful degradation) ---
  /// SDM-C service stall (software fault / overload in the controller
  /// node): the serialized inspect+reserve queue stops draining for
  /// `duration`; requests arriving meanwhile queue up behind it.
  void stall(sim::Time now, sim::Time duration);

  /// Reaction to a dMEMBRICK crash: walks every attachment served by
  /// `membrick` (deterministically, by compute-brick id) and relocates its
  /// segment to a replacement brick chosen by the usual power-conscious
  /// policy. Guests whose DIMMs rode an evacuated segment are re-bound;
  /// segments with no replacement brick are reported lost to the
  /// hypervisor, which degrades the owning VM instead of killing it.
  /// Returns the number of segments successfully evacuated.
  std::size_t evacuate_membrick(hw::BrickId membrick, sim::Time now);

  /// A crashed dMEMBRICK came back (restart): refreshes the degraded-mode
  /// gauge and lifts degradation from VMs whose segments still live there.
  void note_brick_recovered(hw::BrickId membrick);

  const SdmTiming& timing() const { return timing_; }
  std::uint64_t completed_scale_ups() const { return completed_scale_ups_; }

  /// Wires rack-wide telemetry in: decision counters (allocations,
  /// scale-ups/-downs, balloon rebalances), the end-to-end scale-up
  /// latency histogram (the Fig. 10 quantity) and kOrchestration /
  /// kHotplug trace spans. Null detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

  /// Point-in-time view of one brick in the resource database.
  struct BrickStatus {
    hw::BrickId brick;
    hw::BrickKind kind = hw::BrickKind::kCompute;
    hw::TrayId tray;
    hw::PowerState power = hw::PowerState::kIdle;
    // Compute bricks.
    std::size_t cores_total = 0;
    std::size_t cores_used = 0;
    std::size_t vms = 0;
    // Memory bricks.
    std::uint64_t memory_total = 0;
    std::uint64_t memory_used = 0;
    std::size_t segments = 0;
    // Both.
    std::size_t ports_total = 0;
    std::size_t ports_used = 0;
  };

  /// Snapshot of the whole resource database (role (b)'s "safely inspect
  /// resource availability" made visible) — what an operator dashboard or
  /// the rack_report example renders.
  std::vector<BrickStatus> inventory() const;

  /// Resets the pipeline queues (between experiment repetitions).
  void reset_queues();

 private:
  hw::Rack& rack_;
  memsys::RemoteMemoryFabric& fabric_;
  optics::CircuitManager& circuits_;
  SdmTiming timing_;
  PowerManager* power_mgr_ = nullptr;
  bool prefer_optical_ = false;
  MemoryDemandRegistry demand_;
  // Ordered by id: rack-wide agent sweeps must be deterministic.
  std::map<hw::BrickId, SdmAgent*> agents_;
  sim::Time controller_busy_until_;
  sim::Time switch_ctl_busy_until_;
  std::uint64_t completed_scale_ups_ = 0;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* allocations_metric_ = nullptr;
  sim::metrics::Counter* allocation_failures_metric_ = nullptr;
  sim::metrics::Counter* scale_ups_metric_ = nullptr;
  sim::metrics::Counter* scale_up_failures_metric_ = nullptr;
  sim::metrics::Counter* scale_downs_metric_ = nullptr;
  sim::metrics::Counter* rebalances_metric_ = nullptr;
  sim::metrics::Histogram* scale_up_latency_metric_ = nullptr;
  sim::metrics::Counter* stalls_metric_ = nullptr;
  sim::metrics::Counter* evacuated_metric_ = nullptr;
  sim::metrics::Counter* evacuation_failures_metric_ = nullptr;
  sim::metrics::Gauge* degraded_membricks_metric_ = nullptr;

  void refresh_degraded_membricks();

  AllocationResult allocate_vm_impl(const AllocationRequest& request, sim::Time now);
  ScaleUpResult scale_up_impl(const ScaleUpRequest& request, const sim::TraceContext& ctx);

  /// Serialized inspect+reserve step; returns the time it completes and
  /// charges queueing + service into `breakdown`.
  sim::Time controller_transaction(sim::Time arrival, sim::Breakdown& breakdown);

  /// Serialized optical-switch programming; no-op charge when the circuit
  /// already exists.
  sim::Time program_switch(sim::Time ready, bool new_circuit, sim::Breakdown& breakdown);

  /// Powers a brick on (through the power manager when attached, paying
  /// the wake latency). Returns the adjusted ready time.
  sim::Time wake_brick(hw::BrickId brick, sim::Time ready, sim::Breakdown& breakdown);

  bool circuit_exists(hw::BrickId compute, hw::BrickId membrick) const;
};

}  // namespace dredbox::orch
