#include "orch/oom_guard.hpp"

#include <stdexcept>

namespace dredbox::orch {

OomGuard::OomGuard(SdmController& sdm, const OomGuardConfig& config)
    : sdm_{sdm}, config_{config} {
  if (config.pressure_threshold <= 0.0 || config.pressure_threshold > 1.0) {
    throw std::invalid_argument("OomGuard: pressure threshold outside (0, 1]");
  }
  if (config.relax_threshold < 0.0 || config.relax_threshold >= config.pressure_threshold) {
    throw std::invalid_argument("OomGuard: relax threshold must sit below pressure threshold");
  }
}

void OomGuard::watch(hw::VmId vm, hw::BrickId compute) {
  guests_[vm] = Guest{compute, sim::Time::zero() - sim::Time::sec(3600), {}};
}

std::optional<ScaleUpResult> OomGuard::report_usage(hw::VmId vm, std::uint64_t used_bytes,
                                                    sim::Time now) {
  auto it = guests_.find(vm);
  if (it == guests_.end()) return std::nullopt;
  Guest& guest = it->second;
  if (now - guest.last_action < config_.cooldown) return std::nullopt;

  auto& hv = sdm_.agent_for(guest.compute).hypervisor();
  const std::uint64_t usable = hv.vm(vm).usable_bytes();
  if (usable == 0) return std::nullopt;
  const double pressure = static_cast<double>(used_bytes) / static_cast<double>(usable);

  if (pressure >= config_.pressure_threshold) {
    ScaleUpRequest request;
    request.vm = vm;
    request.compute = guest.compute;
    request.bytes = config_.scale_chunk_bytes;
    request.posted_at = now;
    ScaleUpResult result = sdm_.scale_up(request);
    if (result.ok) {
      guest.granted.push_back(result.segment);
      guest.last_action = now;
      ++interventions_;
    }
    return result;
  }

  if (pressure < config_.relax_threshold && !guest.granted.empty()) {
    const hw::SegmentId segment = guest.granted.back();
    ScaleUpResult result = sdm_.scale_down(vm, guest.compute, segment, now);
    if (result.ok) {
      guest.granted.pop_back();
      guest.last_action = now;
      ++releases_;
    }
    return result;
  }

  return std::nullopt;
}

}  // namespace dredbox::orch
