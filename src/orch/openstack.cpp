#include "orch/openstack.hpp"

namespace dredbox::orch {

AllocationResult OpenStackFrontend::boot(const std::string& name, std::size_t vcpus,
                                         std::uint64_t memory_bytes, sim::Time now) {
  AllocationRequest request;
  request.vcpus = vcpus;
  request.memory_bytes = memory_bytes;
  AllocationResult result = sdm_.allocate_vm(request, now);
  if (result.ok) {
    instances_.push_back(Instance{name, result});
  }
  return result;
}

std::size_t OpenStackFrontend::active_instances() const { return instances_.size(); }

}  // namespace dredbox::orch
