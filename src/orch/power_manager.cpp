#include "orch/power_manager.hpp"

#include <cmath>

#include "sim/contract.hpp"

namespace dredbox::orch {

PowerManager::PowerManager(hw::Rack& rack, const PowerPolicyConfig& config)
    : rack_{rack}, config_{config} {}

void PowerManager::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    wake_ups_metric_ = power_offs_metric_ = sweeps_metric_ = nullptr;
    bricks_off_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  wake_ups_metric_ = &m.counter("orch.power.wake_ups");
  power_offs_metric_ = &m.counter("orch.power.power_offs");
  sweeps_metric_ = &m.counter("orch.power.sweeps");
  bricks_off_metric_ = &m.gauge("orch.power.bricks_off");
}

void PowerManager::note_activity(hw::BrickId brick, sim::Time now) {
  last_active_[brick] = now;
}

sim::Time PowerManager::ensure_powered(hw::BrickId brick, sim::Time now) {
  hw::Brick& b = rack_.brick(brick);
  note_activity(brick, now);
  if (b.power_state() != hw::PowerState::kOff) return sim::Time::zero();
  b.power_on();
  ++wake_ups_;
  if (wake_ups_metric_ != nullptr) {
    wake_ups_metric_->add();
    bricks_off_metric_->set(static_cast<double>(powered_off_bricks()));
    if (telemetry_->tracing()) {
      telemetry_->tracer().record(now, sim::TraceCategory::kPower,
                                  "wake brick " + brick.to_string());
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return config_.wake_latency;
}

bool PowerManager::eligible_for_poweroff(const hw::Brick& brick) const {
  if (brick.power_state() != hw::PowerState::kIdle) return false;
  if (config_.keep_compute_bricks_on && brick.kind() == hw::BrickKind::kCompute) return false;
  // A brick with connected ports still carries circuits; leave it on.
  for (const auto& port : brick.ports()) {
    if (port.connected) return false;
  }
  return true;
}

std::size_t PowerManager::tick(sim::Time now) {
  std::size_t swept = 0;
  for (hw::BrickId id : rack_.all_bricks()) {
    hw::Brick& b = rack_.brick(id);
    if (!eligible_for_poweroff(b)) continue;
    const auto it = last_active_.find(id);
    const sim::Time last = it == last_active_.end() ? sim::Time::zero() : it->second;
    if (now - last >= config_.idle_timeout) {
      b.power_off();
      ++power_offs_;
      ++swept;
    }
  }
  if (telemetry_ != nullptr) {
    sweeps_metric_->add();
    power_offs_metric_->add(swept);
    bricks_off_metric_->set(static_cast<double>(powered_off_bricks()));
    if (swept > 0 && telemetry_->tracing()) {
      telemetry_->tracer().record(now, sim::TraceCategory::kPower,
                                  "idle sweep powered off " + std::to_string(swept) +
                                      " brick(s)");
    }
  }
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return swept;
}

std::size_t PowerManager::powered_off_bricks() const {
  std::size_t n = 0;
  for (hw::BrickId id : rack_.all_bricks()) {
    if (rack_.brick(id).power_state() == hw::PowerState::kOff) ++n;
  }
  return n;
}

void PowerManager::check_invariants() const {
  const double draw = rack_.power_draw_watts(hw::PowerModel{});
  DREDBOX_INVARIANT(std::isfinite(draw) && draw >= 0.0,
                    "rack power draw is " + std::to_string(draw) + " W");
  for (hw::BrickId id : rack_.all_bricks()) {
    const hw::Brick& b = rack_.brick(id);
    if (b.power_state() != hw::PowerState::kOff) continue;
    for (const auto& port : b.ports()) {
      DREDBOX_INVARIANT(!port.connected,
                        "powered-off brick " + id.to_string() +
                            " still has connected port " + port.id.to_string());
    }
  }
  DREDBOX_INVARIANT(powered_off_bricks() <= rack_.brick_count(),
                    "more powered-off bricks than bricks");
  // Order-independent audit of the activity table.
  // dredbox-lint: ignore[unordered-iteration]
  for (const auto& [id, last] : last_active_) {
    DREDBOX_INVARIANT(rack_.has_brick(id),
                      "activity record for unknown brick " + id.to_string());
    DREDBOX_INVARIANT(last >= sim::Time::zero() && !last.is_infinite(),
                      "activity record for brick " + id.to_string() + " at invalid time");
  }
}

}  // namespace dredbox::orch
