#include "orch/power_manager.hpp"

namespace dredbox::orch {

PowerManager::PowerManager(hw::Rack& rack, const PowerPolicyConfig& config)
    : rack_{rack}, config_{config} {}

void PowerManager::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    wake_ups_metric_ = power_offs_metric_ = sweeps_metric_ = nullptr;
    bricks_off_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  wake_ups_metric_ = &m.counter("orch.power.wake_ups");
  power_offs_metric_ = &m.counter("orch.power.power_offs");
  sweeps_metric_ = &m.counter("orch.power.sweeps");
  bricks_off_metric_ = &m.gauge("orch.power.bricks_off");
}

void PowerManager::note_activity(hw::BrickId brick, sim::Time now) {
  last_active_[brick] = now;
}

sim::Time PowerManager::ensure_powered(hw::BrickId brick, sim::Time now) {
  hw::Brick& b = rack_.brick(brick);
  note_activity(brick, now);
  if (b.power_state() != hw::PowerState::kOff) return sim::Time::zero();
  b.power_on();
  ++wake_ups_;
  if (wake_ups_metric_ != nullptr) {
    wake_ups_metric_->add();
    bricks_off_metric_->set(static_cast<double>(powered_off_bricks()));
    if (telemetry_->tracing()) {
      telemetry_->tracer().record(now, sim::TraceCategory::kPower,
                                  "wake brick " + brick.to_string());
    }
  }
  return config_.wake_latency;
}

bool PowerManager::eligible_for_poweroff(const hw::Brick& brick) const {
  if (brick.power_state() != hw::PowerState::kIdle) return false;
  if (config_.keep_compute_bricks_on && brick.kind() == hw::BrickKind::kCompute) return false;
  // A brick with connected ports still carries circuits; leave it on.
  for (const auto& port : brick.ports()) {
    if (port.connected) return false;
  }
  return true;
}

std::size_t PowerManager::tick(sim::Time now) {
  std::size_t swept = 0;
  for (hw::BrickId id : rack_.all_bricks()) {
    hw::Brick& b = rack_.brick(id);
    if (!eligible_for_poweroff(b)) continue;
    const auto it = last_active_.find(id);
    const sim::Time last = it == last_active_.end() ? sim::Time::zero() : it->second;
    if (now - last >= config_.idle_timeout) {
      b.power_off();
      ++power_offs_;
      ++swept;
    }
  }
  if (telemetry_ != nullptr) {
    sweeps_metric_->add();
    power_offs_metric_->add(swept);
    bricks_off_metric_->set(static_cast<double>(powered_off_bricks()));
    if (swept > 0 && telemetry_->tracing()) {
      telemetry_->tracer().record(now, sim::TraceCategory::kPower,
                                  "idle sweep powered off " + std::to_string(swept) +
                                      " brick(s)");
    }
  }
  return swept;
}

std::size_t PowerManager::powered_off_bricks() const {
  std::size_t n = 0;
  for (hw::BrickId id : rack_.all_bricks()) {
    if (rack_.brick(id).power_state() == hw::PowerState::kOff) ++n;
  }
  return n;
}

}  // namespace dredbox::orch
