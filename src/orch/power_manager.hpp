#pragma once

#include <cstdint>
#include <unordered_map>

#include "hw/rack.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// Policy knobs for rack-level power management (project objective:
/// "fine-grained power management and aggressive power-aware resource
/// management/scheduling").
struct PowerPolicyConfig {
  /// A brick idle for this long gets powered off.
  sim::Time idle_timeout = sim::Time::sec(60);
  /// Cost of bringing a powered-off brick back: power sequencing, PL
  /// configuration and link training before the first transaction.
  sim::Time wake_latency = sim::Time::sec(2);
  /// Bricks that must never be powered off (e.g. the orchestrator's own).
  bool keep_compute_bricks_on = false;
};

/// Tracks per-brick activity and powers off unutilized units, the
/// mechanism behind the Fig. 12/13 energy savings. The SDM-C calls
/// ensure_powered() before handing a brick out (paying the wake latency)
/// and note_activity() whenever it touches one; tick() sweeps idle bricks.
class PowerManager {
 public:
  explicit PowerManager(hw::Rack& rack, const PowerPolicyConfig& config = {});

  const PowerPolicyConfig& config() const { return config_; }

  /// Marks a brick as busy at `now` (resets its idle clock).
  void note_activity(hw::BrickId brick, sim::Time now);

  /// Powers the brick on if it is off. Returns the wake latency the
  /// caller must absorb (zero when already powered).
  sim::Time ensure_powered(hw::BrickId brick, sim::Time now);

  /// Sweeps the rack: powers off bricks that have been idle (power state
  /// kIdle, no reservations) beyond the timeout. Returns how many were
  /// turned off in this sweep.
  std::size_t tick(sim::Time now);

  std::size_t power_offs() const { return power_offs_; }
  std::size_t wake_ups() const { return wake_ups_; }
  std::size_t powered_off_bricks() const;

  /// Wires rack-wide telemetry in: wake/power-off counters, the
  /// bricks-off gauge and a kPower trace event per sweep that turned
  /// anything off. Null detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

  /// Deep consistency audit: the rack power budget stays non-negative and
  /// finite, every powered-off brick really is quiescent (no connected
  /// ports — powering off a brick that still carries circuits would sever
  /// live attachments), and every activity record points at a brick that
  /// exists. Throws ContractViolation on the first broken invariant. Wired
  /// into tick()/ensure_powered() when built with -DDREDBOX_AUDIT=ON;
  /// callable directly in any build.
  void check_invariants() const;

 private:
  hw::Rack& rack_;
  PowerPolicyConfig config_;
  std::unordered_map<hw::BrickId, sim::Time> last_active_;
  std::size_t power_offs_ = 0;
  std::size_t wake_ups_ = 0;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* wake_ups_metric_ = nullptr;
  sim::metrics::Counter* power_offs_metric_ = nullptr;
  sim::metrics::Counter* sweeps_metric_ = nullptr;
  sim::metrics::Gauge* bricks_off_metric_ = nullptr;

  bool eligible_for_poweroff(const hw::Brick& brick) const;
};

}  // namespace dredbox::orch
