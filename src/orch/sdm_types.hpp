#pragma once

#include <cstdint>
#include <string>

#include "hw/ids.hpp"
#include "sim/breakdown.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// VM/bare-metal allocation request as received from the OpenStack
/// front-end (Section IV-C, role (a) of the SDM-C).
struct AllocationRequest {
  std::size_t vcpus = 1;
  std::uint64_t memory_bytes = 1ull << 30;
};

/// Result of placing a VM.
struct AllocationResult {
  bool ok = false;
  std::string error;
  hw::VmId vm;
  hw::BrickId compute;        // hosting dCOMPUBRICK
  std::uint64_t local_bytes = 0;   // backed by brick-local DDR
  std::uint64_t remote_bytes = 0;  // backed by disaggregated segments
  sim::Time completed_at;
};

/// A dynamic memory scale-up request posted through the Scale-up API by an
/// application running inside a VM (Section IV: the application notifies
/// the Scaleup controller, which relays to the SDM controller).
struct ScaleUpRequest {
  hw::VmId vm;
  hw::BrickId compute;
  std::uint64_t bytes = 1ull << 30;
  sim::Time posted_at;
  /// Permit the packet-substrate fallback when circuit ports are
  /// exhausted (Section III).
  bool allow_packet_fallback = false;
};

/// Completed scale-up (or scale-down) with the full control-path latency
/// attribution; Fig. 10 plots the mean of (completed_at - posted_at).
struct ScaleUpResult {
  bool ok = false;
  std::string error;
  hw::VmId vm;
  hw::SegmentId segment;       // the backing segment that was attached
  hw::BrickId membrick;
  sim::Time posted_at;
  sim::Time completed_at;
  sim::Breakdown breakdown;

  sim::Time delay() const { return completed_at - posted_at; }
};

/// Control-path service times of the orchestration pipeline. The SDM-C
/// runs as an autonomous service and must *safely* inspect and reserve
/// resources, so the inspect+reserve step is serialized inside the
/// service; the optical switch's control plane likewise programs one
/// reconfiguration at a time. Hotplug work on distinct bricks proceeds in
/// parallel.
struct SdmTiming {
  sim::Time api_relay = sim::Time::ms(1);             // app -> scale-up ctl -> SDM-C
  sim::Time inspect_and_select = sim::Time::ms(8);    // resource DB txn, serialized
  sim::Time agent_rpc = sim::Time::ms(2);             // config push to the SDM agent
  sim::Time glue_configure = sim::Time::ms(1);        // programming the h/w glue logic
  sim::Time hypervisor_handoff = sim::Time::ms(1);    // control back to scale-up ctl
};

}  // namespace dredbox::orch
