#include "orch/consolidator.hpp"

#include <algorithm>

namespace dredbox::orch {

Consolidator::Consolidator(hw::Rack& rack, SdmController& sdm, MigrationEngine& engine,
                           PowerManager& power, const Config& config)
    : rack_{rack}, sdm_{sdm}, engine_{engine}, power_{power}, config_{config} {}

double Consolidator::utilisation(hw::BrickId brick) const {
  const auto& cb = rack_.compute_brick(brick);
  return static_cast<double>(cb.cores_in_use()) / static_cast<double>(cb.apu_cores());
}

ConsolidationReport Consolidator::consolidate(sim::Time now) {
  ConsolidationReport report;
  sim::Time t = now;

  // Candidate donors: lightly loaded bricks, emptiest first (cheapest to
  // evacuate). Anything above the threshold is a potential target.
  std::vector<hw::BrickId> bricks = rack_.bricks_of_kind(hw::BrickKind::kCompute);
  std::sort(bricks.begin(), bricks.end(), [&](hw::BrickId a, hw::BrickId b) {
    return utilisation(a) < utilisation(b);
  });

  for (hw::BrickId donor : bricks) {
    if (report.migrations >= config_.max_migrations_per_pass) break;
    const double donor_util = utilisation(donor);
    if (donor_util == 0.0 || donor_util > config_.donor_utilisation_max) continue;
    if (!sdm_.has_agent(donor)) continue;

    // Evacuate every VM on the donor, most loaded targets first so slack
    // concentrates (and the donor itself is never a target).
    auto& donor_hv = sdm_.agent_for(donor).hypervisor();
    const auto vms = donor_hv.vms();
    bool all_moved = true;
    for (hw::VmId vm : vms) {
      if (report.migrations >= config_.max_migrations_per_pass) {
        all_moved = false;
        break;
      }
      const std::size_t vcpus = donor_hv.vm(vm).vcpus();

      hw::BrickId best;
      double best_util = -1.0;
      for (hw::BrickId target : bricks) {
        if (target == donor || !sdm_.has_agent(target)) continue;
        const auto& cb = rack_.compute_brick(target);
        if (cb.power_state() == hw::PowerState::kOff) continue;  // defeats the purpose
        if (cb.cores_free() < vcpus) continue;
        const double util = utilisation(target);
        if (util > config_.target_utilisation_max) continue;
        if (util > best_util) {
          best_util = util;
          best = target;
        }
      }
      if (!best.valid()) {
        all_moved = false;
        continue;
      }

      MigrationResult move = engine_.migrate(vm, donor, best, t);
      if (!move.ok) {
        all_moved = false;
        continue;
      }
      t += move.total_time;
      report.total_migration_time += move.total_time;
      ++report.migrations;
      report.moves.push_back(std::move(move));
    }
    if (all_moved && donor_hv.vm_count() == 0) ++report.bricks_emptied;
  }

  // Hand the emptied bricks to the power manager.
  report.bricks_powered_off = power_.tick(t + power_.config().idle_timeout);
  return report;
}

}  // namespace dredbox::orch
