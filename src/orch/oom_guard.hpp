#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "orch/sdm_controller.hpp"
#include "orch/sdm_types.hpp"

namespace dredbox::orch {

/// Policy for the guest out-of-memory guard (Section IV-B: "in the
/// future, the guest memory hotplug support will be enhanced to
/// automatically protect the guest from running out-of-memory").
struct OomGuardConfig {
  /// Usage fraction of the guest's usable memory above which the guard
  /// posts a scale-up on the guest's behalf.
  double pressure_threshold = 0.9;
  /// How much to grow by per intervention.
  std::uint64_t scale_chunk_bytes = 1ull << 30;
  /// Guard against thrash: minimum spacing between interventions per VM.
  sim::Time cooldown = sim::Time::sec(5);
  /// Optional shrink side: when usage drops below this fraction and the
  /// VM holds hotplugged memory, the guard may release one chunk.
  double relax_threshold = 0.4;
};

/// Watches guest memory pressure reports and automatically expands (or
/// relaxes) the guest's memory through the SDM-C before the guest OOMs.
class OomGuard {
 public:
  OomGuard(SdmController& sdm, const OomGuardConfig& config = {});

  /// Registers a guest for protection.
  void watch(hw::VmId vm, hw::BrickId compute);
  bool is_watched(hw::VmId vm) const { return guests_.count(vm) != 0; }
  void unwatch(hw::VmId vm) { guests_.erase(vm); }

  /// The guest's balloon/agent reports current usage. Returns the
  /// intervention the guard performed, if any.
  std::optional<ScaleUpResult> report_usage(hw::VmId vm, std::uint64_t used_bytes,
                                            sim::Time now);

  std::size_t interventions() const { return interventions_; }
  std::size_t releases() const { return releases_; }
  const OomGuardConfig& config() const { return config_; }

 private:
  struct Guest {
    hw::BrickId compute;
    sim::Time last_action = sim::Time::zero() - sim::Time::sec(3600);
    std::vector<hw::SegmentId> granted;  // segments the guard attached
  };

  SdmController& sdm_;
  OomGuardConfig config_;
  std::unordered_map<hw::VmId, Guest> guests_;
  std::size_t interventions_ = 0;
  std::size_t releases_ = 0;
};

}  // namespace dredbox::orch
