#pragma once

#include "hw/ids.hpp"
#include "hyp/hypervisor.hpp"
#include "memsys/remote_memory.hpp"
#include "os/baremetal_os.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// SDM Agent: the per-dCOMPUBRICK daemon the SDM-C interacts with
/// (Section IV-C). It owns the local halves of the attach protocol: after
/// the controller reserves resources and programs the circuit switch, the
/// agent configures the brick's glue logic, asks the baremetal OS to
/// hotplug the new physical range, and finally tells the hypervisor to
/// expand the guest.
class SdmAgent {
 public:
  SdmAgent(hyp::Hypervisor& hypervisor, os::BareMetalOs& os);

  hw::BrickId brick() const { return os_.brick(); }

  hyp::Hypervisor& hypervisor() { return hypervisor_; }
  os::BareMetalOs& os() { return os_; }

  /// Baremetal attach: online the hot-added range. Returns kernel latency.
  sim::Time attach_physical(const memsys::Attachment& attachment);

  /// Guest expansion: plug the DIMM and online it in the guest. `ctx`
  /// nests the hypervisor's DIMM-add span under the caller's trace.
  sim::Time expand_guest(hw::VmId vm, const memsys::Attachment& attachment, sim::Time now,
                         const sim::TraceContext& ctx = {});

  /// Reverse path for scale-down: shrink guest, offline the range.
  sim::Time shrink_guest(hw::VmId vm, const memsys::Attachment& attachment);

  /// Agent-side busy tracking: hotplug work on one brick is serialized by
  /// the kernel's memory hotplug lock, while distinct bricks are parallel.
  sim::Time busy_until() const { return busy_until_; }
  void set_busy_until(sim::Time t) { busy_until_ = t; }

 private:
  hyp::Hypervisor& hypervisor_;
  os::BareMetalOs& os_;
  sim::Time busy_until_;
};

}  // namespace dredbox::orch
