#include "orch/migration.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/span.hpp"

namespace dredbox::orch {

MigrationEngine::MigrationEngine(hw::Rack& rack, memsys::RemoteMemoryFabric& fabric,
                                 SdmController& sdm, const MigrationConfig& config)
    : rack_{rack}, fabric_{fabric}, sdm_{sdm}, config_{config} {
  if (config.network_bandwidth_gbps <= 0) {
    throw std::invalid_argument("MigrationEngine: bandwidth must be positive");
  }
  if (config.dirty_rate_bytes_per_sec >= config.network_bandwidth_gbps * 1e9 / 8.0) {
    throw std::invalid_argument(
        "MigrationEngine: dirty rate at or above network bandwidth never converges");
  }
}

sim::Time MigrationEngine::conventional_copy_time(std::uint64_t total_bytes) const {
  // Same pre-copy recurrence applied to the whole footprint.
  const double bw = bandwidth_bytes_per_sec();
  double remaining = static_cast<double>(total_bytes);
  double seconds = 0.0;
  for (std::size_t i = 0; i < config_.max_precopy_iterations; ++i) {
    const double t = remaining / bw;
    seconds += t;
    remaining = config_.dirty_rate_bytes_per_sec * t;
    if (remaining <= static_cast<double>(config_.downtime_threshold_bytes)) break;
  }
  seconds += remaining / bw;  // stop-and-copy
  return sim::Time::sec(seconds) + config_.pause_resume;
}

void MigrationEngine::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    completed_metric_ = failed_metric_ = repointed_bytes_metric_ = nullptr;
    downtime_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  completed_metric_ = &m.counter("orch.migration.completed");
  failed_metric_ = &m.counter("orch.migration.failed");
  repointed_bytes_metric_ = &m.counter("orch.migration.repointed_bytes");
  // Downtime is pause/resume plus the residual stop-and-copy: tens of ms.
  downtime_metric_ = &m.histogram("orch.migration.downtime_ms", 0.0, 200.0, 40);
}

MigrationResult MigrationEngine::migrate(hw::VmId vm, hw::BrickId from, hw::BrickId to,
                                         sim::Time now) {
  MigrationResult result = migrate_impl(vm, from, to, now);
  if (telemetry_ != nullptr) {
    if (result.ok) {
      completed_metric_->add();
      repointed_bytes_metric_->add(result.repointed_bytes);
      downtime_metric_->observe(result.downtime.as_ms());
    } else {
      failed_metric_->add();
    }
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kMigration, "live migration", now};
      span.arg("vm", vm.to_string())
          .arg("from", from.to_string())
          .arg("to", to.to_string())
          .arg("ok", result.ok ? "yes" : "no");
      if (result.ok) {
        span.arg("copied_bytes", std::to_string(result.copied_bytes))
            .arg("repointed_bytes", std::to_string(result.repointed_bytes))
            .arg("downtime_ms", std::to_string(result.downtime.as_ms()));
      }
      span.end(now + result.total_time);
    }
  }
  return result;
}

MigrationResult MigrationEngine::migrate_impl(hw::VmId vm, hw::BrickId from, hw::BrickId to,
                                              sim::Time now) {
  MigrationResult result;
  result.vm = vm;
  result.from = from;
  result.to = to;

  if (from == to) {
    result.error = "source and destination brick are the same";
    return result;
  }
  auto& src_hv = sdm_.agent_for(from).hypervisor();
  auto& dst_agent = sdm_.agent_for(to);
  auto& dst_hv = dst_agent.hypervisor();
  if (!src_hv.has_vm(vm)) {
    result.error = "VM " + vm.to_string() + " is not hosted on brick " + from.to_string();
    return result;
  }

  const auto& guest = src_hv.vm(vm);
  const std::uint64_t total = guest.installed_bytes();

  // Split the footprint: disaggregated DIMMs are re-pointed, local DIMMs
  // are copied.
  std::uint64_t remote_backed = 0;
  std::vector<hw::SegmentId> segments;
  for (const auto& dimm : guest.dimms()) {
    if (dimm.hotplugged && dimm.backing_segment.valid()) {
      remote_backed += dimm.size;
      segments.push_back(dimm.backing_segment);
    }
  }
  const std::uint64_t local = total - remote_backed;

  // Destination must fit the vCPUs and the *local* portion only.
  if (dst_hv.brick() != to) {
    result.error = "destination agent mismatch";
    return result;
  }
  if (rack_.compute_brick(to).cores_free() < guest.vcpus()) {
    result.error = "destination brick lacks " + std::to_string(guest.vcpus()) + " free cores";
    return result;
  }
  if (dst_hv.available_bytes() < local) {
    result.error = "destination brick lacks " + std::to_string(local >> 20) +
                   " MiB of host memory for the local portion";
    return result;
  }

  const double bw = bandwidth_bytes_per_sec();

  // --- create the destination instance up front (QEMU starts the
  // destination process before streaming begins) ---
  auto new_vm = dst_hv.create_vm(guest.vcpus(), std::max<std::uint64_t>(local, 1ull << 20));
  if (!new_vm) {
    result.error = "destination hypervisor rejected the instance";
    return result;
  }
  result.new_vm = *new_vm;

  // Remember the source-side windows so the source kernel can hot-remove
  // them after the cutover.
  struct OldWindow {
    std::uint64_t base;
    std::uint64_t size;
  };
  std::vector<OldWindow> old_windows;
  for (const auto& a : fabric_.attachments_of(from)) {
    if (std::find(segments.begin(), segments.end(), a.segment) != segments.end()) {
      old_windows.push_back(OldWindow{a.compute_base, a.size});
    }
  }

  // --- preparation phase, overlapped with pre-copy: wire destination
  // circuits, hot-add the re-pointed ranges into the destination kernel
  // and stage the guest DIMMs. The real hardware stages shadow RMST/glue
  // state and flips it atomically at cutover; the simulation applies the
  // state move eagerly while accounting its latency to this overlapped
  // phase. ---
  sim::Time prep = sim::Time::zero();
  bool switch_programmed = false;
  for (hw::SegmentId segment : segments) {
    auto moved = fabric_.migrate_attachment(segment, from, to, now);
    if (!moved) {
      dst_hv.destroy_vm(*new_vm);
      result.error = "segment re-point failed: " + memsys::to_string(fabric_.last_error());
      return result;
    }
    if (moved->new_circuit && moved->attachment.medium == memsys::LinkMedium::kOptical &&
        !switch_programmed) {
      // Circuits are programmed in parallel by the switch controller; one
      // reconfiguration latency covers the batch.
      prep += sdm_.timing().agent_rpc + sim::Time::ms(25);
      switch_programmed = true;
    }
    const memsys::Attachment& a = moved->attachment;
    const sim::Time hp = dst_agent.attach_physical(a);
    const sim::Time hv_add = dst_agent.expand_guest(*new_vm, a, now + prep + hp);
    prep += hp + hv_add;
    result.repointed_bytes += a.size;
  }
  result.breakdown.charge("re-point preparation (overlapped)", prep);

  // --- pre-copy rounds over the local portion (guest keeps running) ---
  double remaining = static_cast<double>(local);
  double copied = 0.0;
  std::size_t iterations = 0;
  sim::Time precopy = sim::Time::zero();
  while (iterations < config_.max_precopy_iterations &&
         remaining > static_cast<double>(config_.downtime_threshold_bytes)) {
    const double round_s = remaining / bw;
    copied += remaining;
    remaining = config_.dirty_rate_bytes_per_sec * round_s;
    precopy += sim::Time::sec(round_s);
    ++iterations;
  }
  result.precopy_iterations = iterations;
  result.breakdown.charge("pre-copy (local memory)", precopy);

  // Elapsed so far: preparation and pre-copy proceed concurrently.
  sim::Time t = now + std::max(prep, precopy);

  // --- cutover: guest pauses, residual dirty pages drain, the glue-logic
  // state flips to the staged entries, guest resumes at the destination ---
  const sim::Time downtime_start = t;
  t += config_.pause_resume / 2;
  const sim::Time residual = sim::Time::sec(remaining / bw);
  result.breakdown.charge("stop-and-copy (residual)", residual);
  t += residual;
  copied += remaining;
  result.breakdown.charge("glue-logic switchover", sdm_.timing().glue_configure);
  t += sdm_.timing().glue_configure;
  t += config_.pause_resume / 2;
  result.breakdown.charge("pause/resume", config_.pause_resume);
  result.downtime = t - downtime_start;

  src_hv.destroy_vm(vm);
  // Source kernel offlines the now-unmapped remote windows (off the
  // critical path; not charged to downtime).
  auto& src_agent = sdm_.agent_for(from);
  for (const auto& w : old_windows) {
    src_agent.os().detach_remote_memory(w.base, w.size);
  }

  result.ok = true;
  result.copied_bytes = static_cast<std::uint64_t>(copied);
  result.total_time = t - now;
  ++completed_;
  return result;
}

}  // namespace dredbox::orch
