#include "orch/accel_manager.hpp"

#include <stdexcept>

namespace dredbox::orch {

AcceleratorManager::AcceleratorManager(hw::Rack& rack, const Config& config)
    : rack_{rack}, config_{config} {
  if (config.transfer_gbps <= 0 || config.near_data_gbps <= 0) {
    throw std::invalid_argument("AcceleratorManager: rates must be positive");
  }
}

std::size_t AcceleratorManager::free_count() const {
  std::size_t n = 0;
  for (hw::BrickId id : rack_.bricks_of_kind(hw::BrickKind::kAccelerator)) {
    if (!is_reserved(id)) ++n;
  }
  return n;
}

std::optional<AccelDeployment> AcceleratorManager::deploy(hw::BrickId owner,
                                                          const hw::Bitstream& bitstream,
                                                          sim::Time now) {
  for (hw::BrickId id : rack_.bricks_of_kind(hw::BrickKind::kAccelerator)) {
    if (is_reserved(id)) continue;
    auto& accel = rack_.accelerator_brick(id);
    if (!accel.is_powered()) accel.power_on();

    AccelDeployment deployment;
    deployment.accel = id;
    deployment.bitstream = bitstream.name;
    deployment.owner = owner;

    // Middleware step (i): the remote dCOMPUBRICK pushes the bitstream.
    const sim::Time push = transfer_time(bitstream.size_bytes);
    deployment.breakdown.charge("bitstream transfer", push);
    accel.store_bitstream(bitstream);

    // Middleware step (ii): PL reconfiguration through the PCAP port.
    const sim::Time pcap = sim::Time::sec(accel.reconfigure(bitstream.name));
    deployment.breakdown.charge("PCAP reconfiguration", pcap);

    deployment.ready_at = now + push + pcap;
    reservations_[id] = owner;
    return deployment;
  }
  return std::nullopt;
}

bool AcceleratorManager::release(hw::BrickId accel) {
  if (reservations_.erase(accel) == 0) return false;
  rack_.accelerator_brick(accel).set_active(false);
  return true;
}

OffloadResult AcceleratorManager::offload(hw::BrickId accel, std::uint64_t items,
                                          std::uint64_t data_bytes, sim::Time now) {
  OffloadResult result;
  if (!is_reserved(accel)) {
    result.error = "accelerator brick " + accel.to_string() + " is not reserved";
    return result;
  }
  auto& brick = rack_.accelerator_brick(accel);
  if (brick.active_bitstream() == nullptr) {
    result.error = "no accelerator loaded in the dynamic slot";
    return result;
  }

  sim::Time t = now;
  // Descriptor out.
  const sim::Time desc = transfer_time(config_.descriptor_bytes);
  result.breakdown.charge("descriptor transfer", desc);
  t += desc;

  // Kernel streams the data through its near memory; whichever is slower
  // of data streaming and kernel compute bounds the phase.
  const sim::Time stream =
      sim::Time::ns(static_cast<double>(data_bytes) * 8.0 / config_.near_data_gbps);
  const sim::Time kernel = sim::Time::sec(brick.offload(items));
  const sim::Time phase = std::max(stream, kernel);
  result.breakdown.charge("near-data processing", phase);
  t += phase;

  // Result back.
  const sim::Time res = transfer_time(config_.result_bytes);
  result.breakdown.charge("result transfer", res);
  t += res;

  result.ok = true;
  result.completed_at = t;
  result.network_bytes = config_.descriptor_bytes + config_.result_bytes;
  return result;
}

bool AcceleratorManager::link_memory(hw::BrickId accel, hw::BrickId membrick,
                                     std::size_t lanes, optics::CircuitManager& circuits) {
  if (!is_reserved(accel) || lanes == 0) return false;
  if (has_memory_link(accel)) return false;
  auto& ab = rack_.accelerator_brick(accel);
  auto& mb = rack_.memory_brick(membrick);
  if (ab.free_port_count(true) < lanes || mb.free_port_count(true) < lanes) return false;

  MemoryLink link;
  link.membrick = membrick;
  for (std::size_t l = 0; l < lanes; ++l) {
    auto* ap = ab.find_free_port(true);
    auto* mp = mb.find_free_port(true);
    optics::CircuitRequest creq;
    creq.a = optics::CircuitEndpoint{accel, ap->id, -3.7, 1.2};
    creq.b = optics::CircuitEndpoint{membrick, mp->id, -3.7, 1.2};
    auto circuit = circuits.establish(creq);
    if (!circuit) {
      // Roll back the lanes wired so far.
      for (hw::CircuitId id : link.circuits) circuits.teardown(id);
      for (std::size_t i = 0; i < link.accel_ports.size(); ++i) {
        ab.port(link.accel_ports[i].value).connected = false;
        mb.port(link.mem_ports[i].value).connected = false;
      }
      return false;
    }
    ap->connected = true;
    mp->connected = true;
    link.circuits.push_back(circuit->id);
    link.accel_ports.push_back(ap->id);
    link.mem_ports.push_back(mp->id);
  }
  links_.emplace(accel, std::move(link));
  return true;
}

OffloadResult AcceleratorManager::offload_from_membrick(hw::BrickId accel,
                                                        std::uint64_t items,
                                                        std::uint64_t data_bytes,
                                                        sim::Time now) {
  OffloadResult result;
  auto it = links_.find(accel);
  if (it == links_.end()) {
    result.error = "accelerator has no direct dMEMBRICK link";
    return result;
  }
  if (!is_reserved(accel)) {
    result.error = "accelerator brick " + accel.to_string() + " is not reserved";
    return result;
  }
  auto& brick = rack_.accelerator_brick(accel);
  if (brick.active_bitstream() == nullptr) {
    result.error = "no accelerator loaded in the dynamic slot";
    return result;
  }

  sim::Time t = now;
  const sim::Time desc = transfer_time(config_.descriptor_bytes);
  result.breakdown.charge("descriptor transfer", desc);
  t += desc;

  // Data streams over the bonded direct circuits at line rate x lanes;
  // the kernel bounds the phase when it is the slower side.
  const double lane_gbps = config_.transfer_gbps * static_cast<double>(it->second.lanes());
  const sim::Time stream = sim::Time::ns(static_cast<double>(data_bytes) * 8.0 / lane_gbps);
  const sim::Time kernel = sim::Time::sec(brick.offload(items));
  const sim::Time phase = std::max(stream, kernel);
  result.breakdown.charge("stream from dMEMBRICK", phase);
  t += phase;

  const sim::Time res = transfer_time(config_.result_bytes);
  result.breakdown.charge("result transfer", res);
  t += res;

  result.ok = true;
  result.completed_at = t;
  // Data moved accel<->membrick over dedicated circuits; the *shared*
  // rack network only carried the descriptor and the result.
  result.network_bytes = config_.descriptor_bytes + config_.result_bytes;
  return result;
}

bool AcceleratorManager::unlink_memory(hw::BrickId accel, optics::CircuitManager& circuits) {
  auto it = links_.find(accel);
  if (it == links_.end()) return false;
  auto& ab = rack_.accelerator_brick(accel);
  auto& mb = rack_.memory_brick(it->second.membrick);
  for (hw::CircuitId id : it->second.circuits) circuits.teardown(id);
  for (std::size_t i = 0; i < it->second.accel_ports.size(); ++i) {
    ab.port(it->second.accel_ports[i].value).connected = false;
    mb.port(it->second.mem_ports[i].value).connected = false;
  }
  links_.erase(it);
  return true;
}

OffloadResult AcceleratorManager::process_on_compute(std::uint64_t data_bytes, double cpu_gbps,
                                                     sim::Time now) const {
  OffloadResult result;
  sim::Time t = now;
  const sim::Time haul = transfer_time(data_bytes);
  result.breakdown.charge("data transfer to dCOMPUBRICK", haul);
  t += haul;
  const sim::Time compute = sim::Time::ns(static_cast<double>(data_bytes) * 8.0 / cpu_gbps);
  result.breakdown.charge("CPU processing", compute);
  t += compute;
  result.ok = true;
  result.completed_at = t;
  result.network_bytes = data_bytes;
  return result;
}

}  // namespace dredbox::orch
