#include "orch/sdm_agent.hpp"

#include <stdexcept>

namespace dredbox::orch {

SdmAgent::SdmAgent(hyp::Hypervisor& hypervisor, os::BareMetalOs& os)
    : hypervisor_{hypervisor}, os_{os} {
  if (hypervisor.brick() != os.brick()) {
    throw std::invalid_argument("SdmAgent: hypervisor and OS belong to different bricks");
  }
}

sim::Time SdmAgent::attach_physical(const memsys::Attachment& attachment) {
  return os_.attach_remote_memory(attachment.compute_base, attachment.size);
}

sim::Time SdmAgent::expand_guest(hw::VmId vm, const memsys::Attachment& attachment,
                                 sim::Time now, const sim::TraceContext& ctx) {
  return hypervisor_.expand_vm_memory(vm, attachment.size, attachment.segment, now, ctx);
}

sim::Time SdmAgent::shrink_guest(hw::VmId vm, const memsys::Attachment& attachment) {
  const sim::Time hyp_latency = hypervisor_.shrink_vm_memory(vm, attachment.segment);
  const sim::Time os_latency =
      os_.detach_remote_memory(attachment.compute_base, attachment.size);
  return hyp_latency + os_latency;
}

}  // namespace dredbox::orch
