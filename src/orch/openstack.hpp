#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orch/sdm_controller.hpp"
#include "orch/sdm_types.hpp"

namespace dredbox::orch {

/// Minimal OpenStack-like compute front-end: accepts boot requests from
/// tenants and forwards them to the SDM-C (which is "integrated with
/// OpenStack" per Section IV-C). Keeps a ledger of instances so examples
/// and tests can enumerate what was placed where.
class OpenStackFrontend {
 public:
  explicit OpenStackFrontend(SdmController& sdm) : sdm_{sdm} {}

  struct Instance {
    std::string name;
    AllocationResult placement;
  };

  /// Boots an instance; returns the allocation result (ok=false + error
  /// when the rack cannot host it).
  AllocationResult boot(const std::string& name, std::size_t vcpus,
                        std::uint64_t memory_bytes, sim::Time now);

  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t active_instances() const;

 private:
  SdmController& sdm_;
  std::vector<Instance> instances_;
};

}  // namespace dredbox::orch
