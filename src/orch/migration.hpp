#pragma once

#include <cstdint>
#include <string>

#include "hw/rack.hpp"
#include "memsys/remote_memory.hpp"
#include "orch/sdm_controller.hpp"
#include "sim/breakdown.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// Pre-copy live-migration model parameters.
struct MigrationConfig {
  /// Inter-brick bandwidth available to the migration stream.
  double network_bandwidth_gbps = 10.0;
  /// Rate at which the running guest dirties its *local* memory.
  double dirty_rate_bytes_per_sec = 150e6;
  std::size_t max_precopy_iterations = 12;
  /// Remaining-dirty cutoff that triggers the stop-and-copy phase.
  std::uint64_t downtime_threshold_bytes = 64ull << 20;
  /// Fixed pause/resume overhead around the stop-and-copy phase.
  sim::Time pause_resume = sim::Time::ms(30);
};

/// Outcome of one live migration.
struct MigrationResult {
  bool ok = false;
  std::string error;
  hw::VmId vm;       // id at the source (retired on success)
  hw::VmId new_vm;   // id at the destination
  hw::BrickId from;
  hw::BrickId to;

  std::uint64_t copied_bytes = 0;            // local memory actually moved
  std::uint64_t repointed_bytes = 0;         // disaggregated memory: zero-copy
  std::size_t precopy_iterations = 0;
  sim::Time total_time;
  sim::Time downtime;                        // guest-visible blackout
  sim::Breakdown breakdown;
};

/// Live VM migration between dCOMPUBRICKs (project objective: "enhanced
/// elasticity and improved process/virtual machine migration within the
/// datacenter"). The disaggregation dividend: only the guest's *local*
/// DIMMs are pre-copied; every disaggregated segment is re-pointed by
/// moving its RMST entry and circuit to the destination brick — the data
/// on the dMEMBRICK never moves. A conventional server would have to
/// stream all of it.
class MigrationEngine {
 public:
  MigrationEngine(hw::Rack& rack, memsys::RemoteMemoryFabric& fabric, SdmController& sdm,
                  const MigrationConfig& config = {});

  /// Migrates `vm` from `from` to `to`. On success the VM is running on
  /// `to` under `new_vm` and the source instance is destroyed.
  MigrationResult migrate(hw::VmId vm, hw::BrickId from, hw::BrickId to, sim::Time now);

  /// Wires rack-wide telemetry in: completion/failure counters, the
  /// guest-visible downtime histogram, the zero-copy dividend (re-pointed
  /// bytes) and a kMigration trace span per move. Null detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

  /// What-if: predicted copy time if all of the VM's memory were local
  /// (the conventional mainboard-as-a-unit baseline).
  sim::Time conventional_copy_time(std::uint64_t total_bytes) const;

  const MigrationConfig& config() const { return config_; }
  std::size_t completed() const { return completed_; }

 private:
  hw::Rack& rack_;
  memsys::RemoteMemoryFabric& fabric_;
  SdmController& sdm_;
  MigrationConfig config_;
  std::size_t completed_ = 0;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* completed_metric_ = nullptr;
  sim::metrics::Counter* failed_metric_ = nullptr;
  sim::metrics::Counter* repointed_bytes_metric_ = nullptr;
  sim::metrics::Histogram* downtime_metric_ = nullptr;

  MigrationResult migrate_impl(hw::VmId vm, hw::BrickId from, hw::BrickId to, sim::Time now);

  double bandwidth_bytes_per_sec() const { return config_.network_bandwidth_gbps * 1e9 / 8.0; }
};

}  // namespace dredbox::orch
