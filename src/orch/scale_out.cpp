#include "orch/scale_out.hpp"

#include <algorithm>
#include <cmath>

namespace dredbox::orch {

ScaleOutResult ScaleOutBaseline::spawn(sim::Time posted, sim::Rng& rng) {
  // Serialized placement + image service.
  const sim::Time start = std::max(posted, scheduler_busy_until_);
  const sim::Time service = timing_.placement_service;
  scheduler_busy_until_ = start + service;

  // Image provisioning and guest boot run on the target host; add
  // multiplicative jitter (clamped to stay positive).
  const double jitter =
      std::max(0.1, 1.0 + rng.normal(0.0, timing_.jitter_fraction));
  const sim::Time host_work = sim::scale(timing_.image_provision + timing_.guest_boot, jitter);

  ScaleOutResult result;
  result.posted_at = posted;
  result.completed_at = scheduler_busy_until_ + host_work;
  return result;
}

}  // namespace dredbox::orch
