#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/rack.hpp"
#include "orch/migration.hpp"
#include "orch/power_manager.hpp"
#include "orch/sdm_controller.hpp"

namespace dredbox::orch {

/// One consolidation pass's outcome.
struct ConsolidationReport {
  std::size_t migrations = 0;
  std::size_t bricks_emptied = 0;     // compute bricks left with no VMs
  std::size_t bricks_powered_off = 0; // emptied bricks the sweeper turned off
  sim::Time total_migration_time;
  std::vector<MigrationResult> moves;
};

/// Power-aware VM consolidation (project objective: "aggressive
/// power-aware resource management/scheduling"). Periodically packs VMs
/// from lightly-loaded dCOMPUBRICKs onto busier ones — cheap in dReDBox
/// because disaggregated memory is re-pointed rather than copied — and
/// hands the emptied bricks to the power manager.
struct ConsolidatorConfig {
  /// Bricks at or below this core utilisation are evacuation candidates.
  double donor_utilisation_max = 0.5;
  /// Never migrate onto a brick beyond this utilisation.
  double target_utilisation_max = 1.0;
  /// Upper bound on moves per pass (bounds control-plane churn).
  std::size_t max_migrations_per_pass = 8;
};

class Consolidator {
 public:
  using Config = ConsolidatorConfig;

  Consolidator(hw::Rack& rack, SdmController& sdm, MigrationEngine& engine,
               PowerManager& power, const Config& config = {});

  /// Runs one consolidation pass at `now`: picks donor bricks (fewest
  /// running vCPUs first), migrates their VMs into the remaining bricks
  /// (most-loaded feasible target first), then sweeps power.
  ConsolidationReport consolidate(sim::Time now);

  const Config& config() const { return config_; }

 private:
  hw::Rack& rack_;
  SdmController& sdm_;
  MigrationEngine& engine_;
  PowerManager& power_;
  Config config_;

  double utilisation(hw::BrickId brick) const;
};

}  // namespace dredbox::orch
