#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "hw/rack.hpp"
#include "optics/circuit.hpp"
#include "sim/breakdown.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// A reserved dACCELBRICK with a loaded accelerator.
struct AccelDeployment {
  hw::BrickId accel;
  std::string bitstream;
  hw::BrickId owner;  // reserving dCOMPUBRICK
  sim::Time ready_at;
  sim::Breakdown breakdown;  // bitstream transfer + PCAP reconfiguration
};

/// Result of one near-data offload.
struct OffloadResult {
  bool ok = false;
  std::string error;
  sim::Time completed_at;
  sim::Breakdown breakdown;
  /// Bytes that crossed the rack network for this job (the near-data win:
  /// descriptors and results instead of the dataset).
  std::uint64_t network_bytes = 0;
};

/// Orchestrates the accelerator pool (Section II): remote dCOMPUBRICKs
/// push bitstreams to a dACCELBRICK's middleware, the PL slot is
/// reconfigured via PCAP, and data is processed near where it lives
/// instead of being hauled to the compute brick — "improving performance
/// and at the same time reducing network utilization".
struct AcceleratorManagerConfig {
  /// Rate of the bitstream push over the system interconnect.
  double transfer_gbps = 10.0;
  /// Descriptor/result sizes for an offload round trip.
  std::uint64_t descriptor_bytes = 256;
  std::uint64_t result_bytes = 4096;
  /// Effective bandwidth of the accelerator's local/near access to the
  /// data (AXI DDR controller in the wrapper template).
  double near_data_gbps = 100.0;
};

class AcceleratorManager {
 public:
  using Config = AcceleratorManagerConfig;

  explicit AcceleratorManager(hw::Rack& rack, const Config& config = {});

  /// Reserves a free dACCELBRICK for `owner`, pushes the bitstream and
  /// reconfigures the slot. nullopt when no accelerator brick is free.
  std::optional<AccelDeployment> deploy(hw::BrickId owner, const hw::Bitstream& bitstream,
                                        sim::Time now);

  /// Releases a reservation; returns false when not reserved.
  bool release(hw::BrickId accel);

  bool is_reserved(hw::BrickId accel) const { return reservations_.count(accel) != 0; }
  std::size_t reserved_count() const { return reservations_.size(); }
  std::size_t free_count() const;

  /// Near-data offload: the owner sends a descriptor; the accelerator
  /// streams `data_bytes` from its near memory through the kernel
  /// (processing `items` work units) and returns a result.
  OffloadResult offload(hw::BrickId accel, std::uint64_t items, std::uint64_t data_bytes,
                        sim::Time now);

  /// Baseline for the ablation: the same job done the conventional way —
  /// haul `data_bytes` to the compute brick over the interconnect and
  /// process at `cpu_gbps` there.
  OffloadResult process_on_compute(std::uint64_t data_bytes, double cpu_gbps,
                                   sim::Time now) const;

  // --- direct dMEMBRICK links (Fig. 5: the wrapper template integrates
  // "a set of high-speed transceivers for direct communication with
  // external resources") ---

  /// Wires the accelerator's wrapper transceivers straight to a
  /// dMEMBRICK through the optical switch, bonding `lanes`. Requires a
  /// CircuitManager (see set_circuit_manager). Returns false when ports
  /// are short or no reservation exists.
  bool link_memory(hw::BrickId accel, hw::BrickId membrick, std::size_t lanes,
                   optics::CircuitManager& circuits);

  bool has_memory_link(hw::BrickId accel) const { return links_.count(accel) != 0; }

  /// Streams `data_bytes` residing on the linked dMEMBRICK through the
  /// kernel over the direct circuits — no dCOMPUBRICK on the data path.
  OffloadResult offload_from_membrick(hw::BrickId accel, std::uint64_t items,
                                      std::uint64_t data_bytes, sim::Time now);

  /// Drops the direct link, releasing ports and circuits.
  bool unlink_memory(hw::BrickId accel, optics::CircuitManager& circuits);

  const Config& config() const { return config_; }

 private:
  struct MemoryLink {
    hw::BrickId membrick;
    std::vector<hw::CircuitId> circuits;  // one per bonded lane
    std::vector<hw::PortId> accel_ports;
    std::vector<hw::PortId> mem_ports;
    std::size_t lanes() const { return circuits.size(); }
  };

  hw::Rack& rack_;
  Config config_;
  std::unordered_map<hw::BrickId, hw::BrickId> reservations_;  // accel -> owner
  std::unordered_map<hw::BrickId, MemoryLink> links_;          // accel -> link

  sim::Time transfer_time(std::uint64_t bytes) const {
    return sim::Time::ns(static_cast<double>(bytes) * 8.0 / config_.transfer_gbps);
  }
};

}  // namespace dredbox::orch
