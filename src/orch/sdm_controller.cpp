#include "orch/sdm_controller.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/span.hpp"

namespace dredbox::orch {

SdmController::SdmController(hw::Rack& rack, memsys::RemoteMemoryFabric& fabric,
                             optics::CircuitManager& circuits, const SdmTiming& timing)
    : rack_{rack}, fabric_{fabric}, circuits_{circuits}, timing_{timing} {}

void SdmController::register_agent(SdmAgent& agent) {
  agents_[agent.brick()] = &agent;
}

void SdmController::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    allocations_metric_ = allocation_failures_metric_ = nullptr;
    scale_ups_metric_ = scale_up_failures_metric_ = nullptr;
    scale_downs_metric_ = rebalances_metric_ = nullptr;
    scale_up_latency_metric_ = nullptr;
    stalls_metric_ = evacuated_metric_ = evacuation_failures_metric_ = nullptr;
    degraded_membricks_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  allocations_metric_ = &m.counter("orch.sdm.allocations");
  allocation_failures_metric_ = &m.counter("orch.sdm.allocation_failures");
  scale_ups_metric_ = &m.counter("orch.sdm.scale_ups");
  scale_up_failures_metric_ = &m.counter("orch.sdm.scale_up_failures");
  scale_downs_metric_ = &m.counter("orch.sdm.scale_downs");
  rebalances_metric_ = &m.counter("orch.sdm.rebalances");
  // End-to-end scale-up times are dominated by switch programming (25 ms)
  // and kernel hotplug, i.e. tens to hundreds of ms (Fig. 10).
  scale_up_latency_metric_ = &m.histogram("orch.scale_up.latency_ms", 0.0, 1000.0, 50);
  stalls_metric_ = &m.counter("orch.sdm.stalls");
  evacuated_metric_ = &m.counter("orch.sdm.evacuated_segments");
  evacuation_failures_metric_ = &m.counter("orch.sdm.evacuation_failures");
  degraded_membricks_metric_ = &m.gauge("orch.sdm.degraded_membricks");
}

SdmAgent& SdmController::agent_for(hw::BrickId compute) {
  auto it = agents_.find(compute);
  if (it == agents_.end()) {
    throw std::out_of_range("SdmController: no agent registered for brick " +
                            compute.to_string());
  }
  return *it->second;
}

sim::Time SdmController::controller_transaction(sim::Time arrival, sim::Breakdown& breakdown) {
  const sim::Time start = std::max(arrival, controller_busy_until_);
  breakdown.charge("SDM-C queueing", start - arrival);
  breakdown.charge("SDM-C inspect+reserve", timing_.inspect_and_select);
  controller_busy_until_ = start + timing_.inspect_and_select;
  return controller_busy_until_;
}

sim::Time SdmController::program_switch(sim::Time ready, bool new_circuit,
                                        sim::Breakdown& breakdown) {
  if (!new_circuit) {
    breakdown.charge("switch programming", sim::Time::zero());
    return ready;
  }
  const sim::Time setup = circuits_.setup_time();
  const sim::Time start = std::max(ready, switch_ctl_busy_until_);
  breakdown.charge("switch ctl queueing", start - ready);
  breakdown.charge("switch programming", setup);
  switch_ctl_busy_until_ = start + setup;
  return switch_ctl_busy_until_;
}

sim::Time SdmController::wake_brick(hw::BrickId brick, sim::Time ready,
                                    sim::Breakdown& breakdown) {
  if (power_mgr_ != nullptr) {
    const sim::Time wake = power_mgr_->ensure_powered(brick, ready);
    if (wake > sim::Time::zero()) breakdown.charge("brick wake-up", wake);
    return ready + wake;
  }
  if (rack_.brick(brick).power_state() == hw::PowerState::kOff) {
    rack_.brick(brick).power_on();
  }
  return ready;
}

bool SdmController::circuit_exists(hw::BrickId compute, hw::BrickId membrick) const {
  for (const auto& a : fabric_.attachments_of(compute)) {
    if (a.membrick == membrick) return true;
  }
  return false;
}

std::optional<hw::BrickId> SdmController::select_membrick(std::uint64_t bytes,
                                                          hw::BrickId compute) const {
  // Rank: wired < active < idle < off, and within each class same-tray
  // beats cross-tray (electrical circuit, no switch ports). Ties break
  // best fit (smallest sufficient free extent) so slack stays
  // concentrated and more bricks can be powered off later.
  std::optional<hw::BrickId> best;
  int best_rank = std::numeric_limits<int>::max();
  std::uint64_t best_extent = std::numeric_limits<std::uint64_t>::max();
  const hw::TrayId home_tray = rack_.brick(compute).tray();

  for (hw::BrickId id : rack_.bricks_of_kind(hw::BrickKind::kMemory)) {
    const auto& mb = rack_.memory_brick(id);
    if (mb.failed()) continue;  // crashed bricks serve nothing
    const std::uint64_t extent = mb.largest_free_extent();
    if (extent < bytes) continue;
    int base;
    if (circuit_exists(compute, id)) {
      base = 0;
    } else if (mb.power_state() == hw::PowerState::kActive) {
      base = 1;
    } else if (mb.power_state() == hw::PowerState::kIdle) {
      base = 2;
    } else {
      base = 3;
    }
    const int rank = base * 2 + (mb.tray() == home_tray ? 0 : 1);
    if (rank < best_rank || (rank == best_rank && extent < best_extent)) {
      best = id;
      best_rank = rank;
      best_extent = extent;
    }
  }
  return best;
}

std::optional<hw::BrickId> SdmController::select_compute(std::size_t vcpus) const {
  std::optional<hw::BrickId> best;
  int best_rank = std::numeric_limits<int>::max();
  std::size_t best_free = std::numeric_limits<std::size_t>::max();

  for (hw::BrickId id : rack_.bricks_of_kind(hw::BrickKind::kCompute)) {
    const auto& cb = rack_.compute_brick(id);
    if (cb.cores_free() < vcpus) continue;
    int rank;
    if (cb.power_state() == hw::PowerState::kActive) {
      rank = 0;
    } else if (cb.power_state() == hw::PowerState::kIdle) {
      rank = 1;
    } else {
      rank = 2;
    }
    if (rank < best_rank || (rank == best_rank && cb.cores_free() < best_free)) {
      best = id;
      best_rank = rank;
      best_free = cb.cores_free();
    }
  }
  return best;
}

AllocationResult SdmController::allocate_vm(const AllocationRequest& request, sim::Time now) {
  AllocationResult result = allocate_vm_impl(request, now);
  if (telemetry_ != nullptr) {
    (result.ok ? allocations_metric_ : allocation_failures_metric_)->add();
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kOrchestration, "allocate VM", now};
      span.context(telemetry_->tracer().begin_trace());
      span.arg("vcpus", std::to_string(request.vcpus))
          .arg("memory_mib", std::to_string(request.memory_bytes >> 20))
          .arg("ok", result.ok ? "yes" : "no");
      if (result.ok) {
        span.arg("compute", result.compute.to_string())
            .arg("remote_mib", std::to_string(result.remote_bytes >> 20));
      }
      span.end(result.completed_at);
    }
  }
  return result;
}

AllocationResult SdmController::allocate_vm_impl(const AllocationRequest& request,
                                                 sim::Time now) {
  AllocationResult result;
  sim::Breakdown breakdown;
  sim::Time t = controller_transaction(now + timing_.api_relay, breakdown);

  auto compute = select_compute(request.vcpus);
  if (!compute) {
    result.error = "no dCOMPUBRICK with " + std::to_string(request.vcpus) + " free cores";
    result.completed_at = t;
    return result;
  }
  t = wake_brick(*compute, t, breakdown);
  SdmAgent& agent = agent_for(*compute);
  auto& hv = agent.hypervisor();

  // Top up host memory with disaggregated segments when local DDR (plus
  // any previously attached remote memory) cannot back the guest.
  std::uint64_t deficit =
      request.memory_bytes > hv.available_bytes() ? request.memory_bytes - hv.available_bytes()
                                                  : 0;
  while (deficit > 0) {
    constexpr std::uint64_t kGib = 1ull << 30;
    const std::uint64_t chunk = ((deficit + kGib - 1) / kGib) * kGib;
    auto membrick = select_membrick(chunk, *compute);
    if (!membrick) {
      result.error = "no dMEMBRICK can back " + std::to_string(chunk >> 30) + " GiB";
      result.completed_at = t;
      return result;
    }
    t = wake_brick(*membrick, t, breakdown);
    // Intra-tray pairs ride the tray's fixed electrical wiring (nothing to
    // program on the optical switch) unless optical is preferred.
    const bool new_circuit =
        !circuit_exists(*compute, *membrick) &&
        (prefer_optical_ ||
         rack_.brick(*compute).tray() != rack_.brick(*membrick).tray());
    t = program_switch(t, new_circuit, breakdown);

    memsys::AttachRequest areq;
    areq.compute = *compute;
    areq.membrick = *membrick;
    areq.bytes = chunk;
    areq.prefer_electrical_intra_tray = !prefer_optical_;
    auto attachment = fabric_.attach(areq, t);
    if (!attachment) {
      result.error = "attach failed: " + memsys::to_string(fabric_.last_error());
      result.completed_at = t;
      return result;
    }
    t += timing_.agent_rpc + timing_.glue_configure;
    t += agent.attach_physical(*attachment);
    result.remote_bytes += chunk;
    deficit = request.memory_bytes > hv.available_bytes()
                  ? request.memory_bytes - hv.available_bytes()
                  : 0;
  }

  auto vm = hv.create_vm(request.vcpus, request.memory_bytes);
  if (!vm) {
    result.error = "hypervisor rejected the VM after reservation";
    result.completed_at = t;
    return result;
  }
  result.ok = true;
  result.vm = *vm;
  result.compute = *compute;
  result.local_bytes = request.memory_bytes - result.remote_bytes;
  result.completed_at = t;
  return result;
}

ScaleUpResult SdmController::scale_up(const ScaleUpRequest& request) {
  // Trace root for the whole control-plane flow: the kernel hot-add and
  // the hypervisor's DIMM-add spans nest under it.
  sim::TraceContext ctx;
  if (telemetry_ != nullptr && telemetry_->tracing()) {
    ctx = telemetry_->tracer().begin_trace();
  }
  ScaleUpResult result = scale_up_impl(request, ctx);
  if (telemetry_ != nullptr) {
    if (result.ok) {
      scale_ups_metric_->add();
      scale_up_latency_metric_->observe((result.completed_at - result.posted_at).as_ms());
    } else {
      scale_up_failures_metric_->add();
    }
    if (telemetry_->tracing()) {
      sim::Span span{telemetry_->tracer(), sim::TraceCategory::kOrchestration, "scale up",
                     result.posted_at};
      span.context(ctx);
      span.arg("vm", request.vm.to_string())
          .arg("bytes", std::to_string(request.bytes))
          .arg("ok", result.ok ? "yes" : "no");
      if (result.ok) span.arg("membrick", result.membrick.to_string());
      span.end(result.completed_at);
    }
  }
  return result;
}

ScaleUpResult SdmController::scale_up_impl(const ScaleUpRequest& request,
                                           const sim::TraceContext& ctx) {
  ScaleUpResult result;
  result.vm = request.vm;
  result.posted_at = request.posted_at;

  // Application -> Scale-up controller -> SDM-C relay.
  result.breakdown.charge("Scale-up API relay", timing_.api_relay);
  sim::Time t = controller_transaction(request.posted_at + timing_.api_relay, result.breakdown);

  auto membrick = select_membrick(request.bytes, request.compute);
  if (!membrick) {
    result.error = "no dMEMBRICK with " + std::to_string(request.bytes >> 30) +
                   " GiB contiguous free";
    result.completed_at = t;
    return result;
  }
  t = wake_brick(*membrick, t, result.breakdown);

  // Intra-tray pairs ride the tray's fixed electrical wiring (nothing to
  // program on the optical switch) unless optical is preferred.
  const bool new_circuit =
      !circuit_exists(request.compute, *membrick) &&
      (prefer_optical_ ||
       rack_.brick(request.compute).tray() != rack_.brick(*membrick).tray());
  t = program_switch(t, new_circuit, result.breakdown);

  memsys::AttachRequest areq;
  areq.compute = request.compute;
  areq.membrick = *membrick;
  areq.bytes = request.bytes;
  areq.prefer_electrical_intra_tray = !prefer_optical_;
  areq.allow_packet_fallback = request.allow_packet_fallback;
  auto attachment = fabric_.attach(areq, t);
  if (!attachment) {
    result.error = "attach failed: " + memsys::to_string(fabric_.last_error());
    result.completed_at = t;
    return result;
  }

  // Configuration push to the destination brick's glue logic via the agent.
  result.breakdown.charge("agent RPC + glue config", timing_.agent_rpc + timing_.glue_configure);
  t += timing_.agent_rpc + timing_.glue_configure;

  // Baremetal hotplug: serialized per brick (kernel hotplug lock),
  // parallel across bricks.
  SdmAgent& agent = agent_for(request.compute);
  const sim::Time hp_start = std::max(t, agent.busy_until());
  result.breakdown.charge("hotplug queueing (per brick)", hp_start - t);
  const sim::Time hp_latency = agent.attach_physical(*attachment);
  result.breakdown.charge("baremetal hotplug", hp_latency);
  agent.set_busy_until(hp_start + hp_latency);
  if (telemetry_ != nullptr && telemetry_->tracing()) {
    telemetry_->tracer().record_span(hp_start, hp_start + hp_latency,
                                     sim::TraceCategory::kHotplug, "kernel hot-add",
                                     {{"brick", request.compute.to_string()},
                                      {"bytes", std::to_string(request.bytes)}},
                                     telemetry_->tracer().child_of(ctx));
  }
  t = hp_start + hp_latency;

  // Control handed back to the scale-up controller, which configures the
  // hypervisor to expand the guest's physical memory.
  result.breakdown.charge("hypervisor handoff", timing_.hypervisor_handoff);
  t += timing_.hypervisor_handoff;
  const sim::Time hv_latency = agent.expand_guest(request.vm, *attachment, t, ctx);
  result.breakdown.charge("QEMU DIMM add + guest online", hv_latency);
  t += hv_latency;

  result.ok = true;
  result.segment = attachment->segment;
  result.membrick = *membrick;
  result.completed_at = t;
  ++completed_scale_ups_;
  return result;
}

ScaleUpResult SdmController::scale_down(hw::VmId vm, hw::BrickId compute,
                                        hw::SegmentId segment, sim::Time now) {
  ScaleUpResult result;
  result.vm = vm;
  result.posted_at = now;

  result.breakdown.charge("Scale-up API relay", timing_.api_relay);
  sim::Time t = controller_transaction(now + timing_.api_relay, result.breakdown);

  const auto attachments = fabric_.attachments_of(compute);
  auto it = std::find_if(attachments.begin(), attachments.end(),
                         [&](const memsys::Attachment& a) { return a.segment == segment; });
  if (it == attachments.end()) {
    result.error = "segment " + segment.to_string() + " is not attached to brick " +
                   compute.to_string();
    result.completed_at = t;
    return result;
  }

  SdmAgent& agent = agent_for(compute);
  const sim::Time hp_start = std::max(t, agent.busy_until());
  result.breakdown.charge("hotplug queueing (per brick)", hp_start - t);
  const sim::Time shrink_latency = agent.shrink_guest(vm, *it);
  result.breakdown.charge("guest shrink + hot-remove", shrink_latency);
  agent.set_busy_until(hp_start + shrink_latency);
  t = hp_start + shrink_latency;

  result.membrick = it->membrick;
  result.segment = segment;
  if (!fabric_.detach(compute, segment)) {
    result.error = "fabric detach failed";
    result.completed_at = t;
    return result;
  }
  result.ok = true;
  result.completed_at = t;
  if (scale_downs_metric_ != nullptr) scale_downs_metric_->add();
  return result;
}

ScaleUpResult SdmController::rebalance(hw::VmId donor, hw::VmId recipient,
                                       hw::BrickId compute, std::uint64_t bytes,
                                       sim::Time now) {
  ScaleUpResult result;
  result.vm = recipient;
  result.posted_at = now;

  result.breakdown.charge("Scale-up API relay", timing_.api_relay);
  sim::Time t = controller_transaction(now + timing_.api_relay, result.breakdown);

  SdmAgent& agent = agent_for(compute);
  auto& hv = agent.hypervisor();
  if (!hv.has_vm(donor) || !hv.has_vm(recipient)) {
    result.error = "donor or recipient VM is not hosted on brick " + compute.to_string();
    result.completed_at = t;
    return result;
  }
  if (hv.vm(donor).usable_bytes() < bytes) {
    result.error = "donor VM cannot give back " + std::to_string(bytes >> 20) + " MiB";
    result.completed_at = t;
    return result;
  }

  result.breakdown.charge("agent RPC", timing_.agent_rpc);
  t += timing_.agent_rpc;

  const sim::Time reclaim = hv.balloon_reclaim(donor, bytes);
  result.breakdown.charge("balloon reclaim (donor)", reclaim);
  t += reclaim;

  // Recipient gets a DIMM backed by the ballooned-out host pages (no
  // fabric segment involved).
  const sim::Time expand = hv.expand_vm_memory(recipient, bytes, hw::SegmentId{}, t);
  result.breakdown.charge("QEMU DIMM add + guest online", expand);
  t += expand;

  result.ok = true;
  result.membrick = hw::BrickId{};  // no dMEMBRICK involved
  result.completed_at = t;
  if (rebalances_metric_ != nullptr) rebalances_metric_->add();
  if (telemetry_ != nullptr && telemetry_->tracing()) {
    telemetry_->tracer().record_span(now, t, sim::TraceCategory::kOrchestration,
                                     "balloon rebalance",
                                     {{"donor", donor.to_string()},
                                      {"recipient", recipient.to_string()},
                                      {"bytes", std::to_string(bytes)}},
                                     telemetry_->tracer().begin_trace());
  }
  return result;
}

std::vector<SdmController::BrickStatus> SdmController::inventory() const {
  std::vector<BrickStatus> out;
  for (hw::BrickId id : rack_.all_bricks()) {
    const hw::Brick& b = rack_.brick(id);
    BrickStatus s;
    s.brick = id;
    s.kind = b.kind();
    s.tray = b.tray();
    s.power = b.power_state();
    s.ports_total = b.port_count();
    s.ports_used = b.port_count() - b.free_port_count(true) - b.free_port_count(false);
    if (b.kind() == hw::BrickKind::kCompute) {
      const auto& cb = rack_.compute_brick(id);
      s.cores_total = cb.apu_cores();
      s.cores_used = cb.cores_in_use();
      auto it = agents_.find(id);
      if (it != agents_.end()) s.vms = it->second->hypervisor().vm_count();
    } else if (b.kind() == hw::BrickKind::kMemory) {
      const auto& mb = rack_.memory_brick(id);
      s.memory_total = mb.capacity_bytes();
      s.memory_used = mb.allocated_bytes();
      s.segments = mb.segments().size();
    }
    out.push_back(s);
  }
  return out;
}

void SdmController::report_guest_usage(hw::VmId vm, hw::BrickId compute,
                                       std::uint64_t used_bytes, sim::Time now) {
  auto& hv = agent_for(compute).hypervisor();
  if (!hv.has_vm(vm)) {
    demand_.forget(vm);
    return;
  }
  MemoryDemandRegistry::Report report;
  report.compute = compute;
  report.used_bytes = used_bytes;
  report.usable_bytes = hv.vm(vm).usable_bytes();
  report.at = now;
  demand_.report(vm, report);
}

ScaleUpResult SdmController::scale_up_smart(const ScaleUpRequest& request) {
  const auto donor = demand_.best_donor(request.compute, request.bytes, request.vm,
                                        request.posted_at, demand_staleness_limit());
  if (donor) {
    ScaleUpResult result =
        rebalance(*donor, request.vm, request.compute, request.bytes, request.posted_at);
    if (result.ok) {
      // The donor just gave memory away: refresh its registry entry so a
      // burst of requests does not over-drain it.
      if (auto latest = demand_.latest(*donor)) {
        latest->usable_bytes =
            latest->usable_bytes > request.bytes ? latest->usable_bytes - request.bytes : 0;
        demand_.report(*donor, *latest);
      }
      return result;
    }
    // Donor path failed (raced away); fall through to the attach path.
  }
  return scale_up(request);
}

void SdmController::reset_queues() {
  controller_busy_until_ = sim::Time::zero();
  switch_ctl_busy_until_ = sim::Time::zero();
  for (auto& [id, agent] : agents_) agent->set_busy_until(sim::Time::zero());
}

void SdmController::stall(sim::Time now, sim::Time duration) {
  const sim::Time resume = now + duration;
  if (resume > controller_busy_until_) controller_busy_until_ = resume;
  if (stalls_metric_ != nullptr) stalls_metric_->add();
}

std::size_t SdmController::evacuate_membrick(hw::BrickId membrick, sim::Time now) {
  refresh_degraded_membricks();
  std::size_t evacuated = 0;
  std::size_t lost = 0;
  // Trace root for the whole fault response: each attachment's rebind (or
  // loss) is a child, so a report reader can follow a brick crash down to
  // the guests it touched.
  sim::TraceContext ctx;
  const bool tracing = telemetry_ != nullptr && telemetry_->tracing();
  if (tracing) ctx = telemetry_->tracer().begin_trace();
  // Deterministic sweep: compute bricks in id order, attachments in the
  // fabric's stable record order.
  for (hw::BrickId cb : rack_.bricks_of_kind(hw::BrickKind::kCompute)) {
    for (const auto& a : fabric_.attachments_of(cb)) {
      if (a.membrick != membrick) continue;
      const auto replacement = select_membrick(a.size, cb);
      std::optional<memsys::Attachment> moved;
      if (replacement) {
        sim::Breakdown breakdown;
        wake_brick(*replacement, now, breakdown);
        moved = fabric_.relocate_segment(cb, a.segment, *replacement, now);
      }
      if (moved) {
        ++evacuated;
        if (evacuated_metric_ != nullptr) evacuated_metric_->add();
        if (has_agent(cb)) {
          agent_for(cb).hypervisor().rebind_dimm_backing(a.segment, moved->segment);
        }
        if (tracing) {
          telemetry_->tracer().record_span(now, now, sim::TraceCategory::kOrchestration,
                                           "segment rebind",
                                           {{"compute", cb.to_string()},
                                            {"from", a.segment.to_string()},
                                            {"to", moved->segment.to_string()},
                                            {"membrick", moved->membrick.to_string()}},
                                           telemetry_->tracer().child_of(ctx));
        }
      } else {
        ++lost;
        if (evacuation_failures_metric_ != nullptr) evacuation_failures_metric_->add();
        if (has_agent(cb)) agent_for(cb).hypervisor().note_backing_lost(a.segment);
        if (tracing) {
          telemetry_->tracer().record_span(now, now, sim::TraceCategory::kOrchestration,
                                           "backing lost",
                                           {{"compute", cb.to_string()},
                                            {"segment", a.segment.to_string()}},
                                           telemetry_->tracer().child_of(ctx));
        }
      }
    }
  }
  if (tracing && (evacuated > 0 || lost > 0)) {
    telemetry_->tracer().record_span(now, now, sim::TraceCategory::kOrchestration,
                                     "evacuate membrick",
                                     {{"membrick", membrick.to_string()},
                                      {"evacuated", std::to_string(evacuated)},
                                      {"lost", std::to_string(lost)}},
                                     ctx);
  }
  return evacuated;
}

void SdmController::note_brick_recovered(hw::BrickId membrick) {
  refresh_degraded_membricks();
  // Segments that never got evacuated are served again: lift degradation.
  for (hw::BrickId cb : rack_.bricks_of_kind(hw::BrickKind::kCompute)) {
    if (!has_agent(cb)) continue;
    for (const auto& a : fabric_.attachments_of(cb)) {
      if (a.membrick == membrick) {
        agent_for(cb).hypervisor().note_backing_restored(a.segment);
      }
    }
  }
}

void SdmController::refresh_degraded_membricks() {
  if (degraded_membricks_metric_ == nullptr) return;
  std::size_t failed = 0;
  for (hw::BrickId id : rack_.bricks_of_kind(hw::BrickKind::kMemory)) {
    if (rack_.brick(id).failed()) ++failed;
  }
  degraded_membricks_metric_->set(static_cast<double>(failed));
}

}  // namespace dredbox::orch
