#include "orch/demand_registry.hpp"

#include <algorithm>

namespace dredbox::orch {

void MemoryDemandRegistry::report(hw::VmId vm, const Report& r) { reports_[vm] = r; }

std::optional<MemoryDemandRegistry::Report> MemoryDemandRegistry::latest(hw::VmId vm) const {
  auto it = reports_.find(vm);
  if (it == reports_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t MemoryDemandRegistry::slack_of(hw::VmId vm, sim::Time now, sim::Time max_age,
                                             double reserve_fraction) const {
  auto it = reports_.find(vm);
  if (it == reports_.end()) return 0;
  const Report& r = it->second;
  if (now - r.at > max_age) return 0;  // stale: don't trust it
  const auto reserved = static_cast<std::uint64_t>(
      static_cast<double>(r.used_bytes) * (1.0 + reserve_fraction));
  return r.usable_bytes > reserved ? r.usable_bytes - reserved : 0;
}

std::optional<hw::VmId> MemoryDemandRegistry::best_donor(hw::BrickId compute,
                                                         std::uint64_t bytes,
                                                         hw::VmId exclude, sim::Time now,
                                                         sim::Time max_age) const {
  std::optional<hw::VmId> best;
  std::uint64_t best_slack = 0;
  for (const auto& [vm, r] : reports_) {
    if (vm == exclude || r.compute != compute) continue;
    const std::uint64_t slack = slack_of(vm, now, max_age);
    if (slack >= bytes && slack > best_slack) {
      best = vm;
      best_slack = slack;
    }
  }
  return best;
}

}  // namespace dredbox::orch
