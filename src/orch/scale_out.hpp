#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// Timing of conventional scale-out elasticity: when an application needs
/// more memory, the cloud spawns additional VMs [13] (Mao & Humphrey
/// measured VM startup on public clouds at roughly a hundred seconds).
/// The placement scheduler and image service serialize per request; guest
/// boot proceeds in parallel.
struct ScaleOutTiming {
  sim::Time placement_service = sim::Time::sec(4);   // serialized scheduler txn
  sim::Time image_provision = sim::Time::sec(28);    // image copy to the host
  sim::Time guest_boot = sim::Time::sec(62);         // kernel + services + app ready
  double jitter_fraction = 0.12;                     // run-to-run variability
};

struct ScaleOutResult {
  sim::Time posted_at;
  sim::Time completed_at;
  sim::Time delay() const { return completed_at - posted_at; }
};

/// The conventional-elasticity baseline of Fig. 10: satisfying a memory
/// expansion by spawning one more VM instead of hot-attaching memory.
class ScaleOutBaseline {
 public:
  explicit ScaleOutBaseline(const ScaleOutTiming& timing = {}) : timing_{timing} {}

  /// Processes one spawn request posted at `posted`; `rng` provides the
  /// per-request jitter.
  ScaleOutResult spawn(sim::Time posted, sim::Rng& rng);

  void reset() { scheduler_busy_until_ = sim::Time::zero(); }

  const ScaleOutTiming& timing() const { return timing_; }

 private:
  ScaleOutTiming timing_;
  sim::Time scheduler_busy_until_;
};

}  // namespace dredbox::orch
