#pragma once

#include <cstdint>
#include <optional>
#include <map>

#include "hw/ids.hpp"
#include "sim/time.hpp"

namespace dredbox::orch {

/// Per-VM memory-demand bookkeeping inside the SDM-C's resource database.
/// SDM agents report each guest's actual usage (the same balloon-stats
/// channel the OOM guard consumes); the controller uses the reports to
/// find over-provisioned co-located donors so a scale-up can be satisfied
/// by the balloon tier instead of touching the fabric.
class MemoryDemandRegistry {
 public:
  struct Report {
    hw::BrickId compute;
    std::uint64_t used_bytes = 0;
    std::uint64_t usable_bytes = 0;
    sim::Time at;
  };

  /// Records a usage report (overwrites the previous one for the VM).
  void report(hw::VmId vm, const Report& report);

  std::optional<Report> latest(hw::VmId vm) const;

  /// Bytes the VM could give back while keeping `reserve_fraction` of its
  /// current usage as head-room. Zero when unknown or stale.
  std::uint64_t slack_of(hw::VmId vm, sim::Time now, sim::Time max_age,
                         double reserve_fraction = 0.25) const;

  /// Best donor on `compute` able to give `bytes` (largest slack wins),
  /// excluding `exclude` (the requester). Reports older than `max_age`
  /// are distrusted.
  std::optional<hw::VmId> best_donor(hw::BrickId compute, std::uint64_t bytes,
                                     hw::VmId exclude, sim::Time now,
                                     sim::Time max_age) const;

  void forget(hw::VmId vm) { reports_.erase(vm); }
  std::size_t tracked() const { return reports_.size(); }

 private:
  // Ordered by id: consolidation decisions scan all reports.
  std::map<hw::VmId, Report> reports_;
};

}  // namespace dredbox::orch
