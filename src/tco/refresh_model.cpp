#include "tco/refresh_model.hpp"

#include <cmath>
#include <stdexcept>

namespace dredbox::tco {

RefreshStudy::RefreshStudy(const TcoConfig& config, const RefreshCosts& costs)
    : config_{config}, costs_{costs}, study_{config} {
  if (costs.server_refresh_years <= 0 || costs.compute_brick_refresh_years <= 0 ||
      costs.memory_brick_refresh_years <= 0) {
    throw std::invalid_argument("RefreshStudy: refresh cadences must be positive");
  }
}

int RefreshStudy::cycles(double horizon_years, double cadence_years) {
  // A refresh lands at each full multiple of the cadence strictly inside
  // the horizon (refreshing in the final instant buys nothing).
  const double n = horizon_years / cadence_years;
  const double eps = 1e-9;
  int full = static_cast<int>(std::floor(n - eps));
  return full < 0 ? 0 : full;
}

double RefreshStudy::energy_usd(double watts, double horizon_years) const {
  const double hours = horizon_years * 365.0 * 24.0;
  return watts / 1000.0 * hours * costs_.usd_per_kwh;
}

TcoProjection RefreshStudy::conventional(WorkloadType workload, double horizon_years) const {
  TcoProjection p;
  const double n_servers = static_cast<double>(config_.servers);
  p.capex_usd = n_servers * costs_.server_cost;
  // Whole servers replaced every cadence, DRAM and chassis included.
  p.refresh_usd = cycles(horizon_years, costs_.server_refresh_years) * n_servers *
                  costs_.server_cost * (1.0 - costs_.salvage_fraction);
  p.energy_usd = energy_usd(study_.run_power(workload).conventional_watts, horizon_years);
  return p;
}

TcoProjection RefreshStudy::dredbox(WorkloadType workload, double horizon_years) const {
  TcoProjection p;
  const double n_compute = static_cast<double>(config_.compute_bricks());
  const double n_memory = static_cast<double>(config_.memory_bricks());
  p.capex_usd = n_compute * costs_.compute_brick_cost + n_memory * costs_.memory_brick_cost;
  // Component-level refresh: each brick class on its own cadence.
  p.refresh_usd = cycles(horizon_years, costs_.compute_brick_refresh_years) * n_compute *
                      costs_.compute_brick_cost * (1.0 - costs_.salvage_fraction) +
                  cycles(horizon_years, costs_.memory_brick_refresh_years) * n_memory *
                      costs_.memory_brick_cost * (1.0 - costs_.salvage_fraction);
  p.energy_usd = energy_usd(study_.run_power(workload).dredbox_watts, horizon_years);
  return p;
}

double RefreshStudy::savings(WorkloadType workload, double horizon_years) const {
  const double conv = conventional(workload, horizon_years).total();
  const double dd = dredbox(workload, horizon_years).total();
  return conv > 0 ? 1.0 - dd / conv : 0.0;
}

}  // namespace dredbox::tco
