#pragma once

#include <string>

#include "tco/tco_study.hpp"

namespace dredbox::tco {

/// Cost model for the TCO extension the paper leaves as on-going work
/// (Section VI): "the modularity and interchangeability of the dBRICKs
/// plays a significant role in lowering the price of the procurement, as
/// well in delivering technology refreshes at the component level instead
/// of the server level."
struct RefreshCosts {
  // Procurement (USD per unit). A COTS server bundles CPU, DRAM, board,
  // PSU and chassis; bricks unbundle them.
  double server_cost = 4200.0;          // 32-core / 32 GB class machine
  double compute_brick_cost = 480.0;    // 8-core SoC module
  double memory_brick_cost = 310.0;     // 8 GB module (DRAM-dominated)

  // Refresh cadence (years). Conventional refresh replaces whole servers
  // even when only the CPUs aged; dReDBox replaces the aged brick class.
  double server_refresh_years = 3.0;
  double compute_brick_refresh_years = 3.0;  // compute ages fast
  double memory_brick_refresh_years = 6.0;   // DRAM stays useful longer

  // Fraction of a replaced unit's price recovered (resale/salvage).
  double salvage_fraction = 0.10;

  // Energy.
  double usd_per_kwh = 0.12;
};

/// One datacenter's projected TCO over the horizon.
struct TcoProjection {
  double capex_usd = 0.0;     // initial procurement
  double refresh_usd = 0.0;   // technology refreshes over the horizon
  double energy_usd = 0.0;    // operating energy (from the Fig. 13 runs)
  double total() const { return capex_usd + refresh_usd + energy_usd; }
};

/// Projects multi-year TCO for both datacenter shapes of Fig. 11, using
/// the Fig. 13 power results for the energy term and the refresh model
/// above for CapEx. Workload-dependent only through energy.
class RefreshStudy {
 public:
  RefreshStudy(const TcoConfig& config = {}, const RefreshCosts& costs = {});

  TcoProjection conventional(WorkloadType workload, double horizon_years) const;
  TcoProjection dredbox(WorkloadType workload, double horizon_years) const;

  /// Savings of dReDBox vs conventional over the horizon (fraction of the
  /// conventional total).
  double savings(WorkloadType workload, double horizon_years) const;

  const TcoConfig& config() const { return config_; }
  const RefreshCosts& costs() const { return costs_; }

 private:
  TcoConfig config_;
  RefreshCosts costs_;
  TcoStudy study_;

  /// Completed refresh cycles within the horizon (the initial purchase is
  /// CapEx, not a refresh).
  static int cycles(double horizon_years, double cadence_years);
  double energy_usd(double watts, double horizon_years) const;
};

}  // namespace dredbox::tco
