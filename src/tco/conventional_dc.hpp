#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tco/workload.hpp"

namespace dredbox::tco {

/// A conventional datacenter built of commercial-off-the-shelf servers:
/// compute and memory coupled on a single mainboard. A VM must fit
/// entirely within one server's remaining cores *and* RAM — the coupling
/// that causes the fragmentation Section VI quantifies.
class ConventionalDatacenter {
 public:
  ConventionalDatacenter(std::size_t servers, std::size_t cores_per_server,
                         std::uint64_t ram_gb_per_server);

  std::size_t server_count() const { return servers_.size(); }
  std::size_t cores_per_server() const { return cores_per_server_; }
  std::uint64_t ram_gb_per_server() const { return ram_per_server_; }

  std::size_t total_cores() const { return server_count() * cores_per_server_; }
  std::uint64_t total_ram_gb() const {
    return static_cast<std::uint64_t>(server_count()) * ram_per_server_;
  }

  /// FCFS first-fit placement. Returns the hosting server index or nullopt
  /// when no server has both the cores and the RAM.
  std::optional<std::size_t> schedule(const VmSpec& vm);

  /// Servers hosting no VM: individually powered units that can be
  /// powered off.
  std::size_t idle_servers() const;
  std::size_t active_servers() const { return server_count() - idle_servers(); }
  double idle_fraction() const {
    return static_cast<double>(idle_servers()) / static_cast<double>(server_count());
  }

  std::size_t used_cores() const;
  std::uint64_t used_ram_gb() const;
  std::size_t scheduled_vms() const { return scheduled_vms_; }

  void reset();

 private:
  struct Server {
    std::size_t cores_used = 0;
    std::uint64_t ram_used = 0;
    std::size_t vms = 0;
  };

  std::size_t cores_per_server_;
  std::uint64_t ram_per_server_;
  std::vector<Server> servers_;
  std::size_t scheduled_vms_ = 0;
};

}  // namespace dredbox::tco
