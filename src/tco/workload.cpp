#include "tco/workload.hpp"

#include <stdexcept>

namespace dredbox::tco {

std::string to_string(WorkloadType type) {
  switch (type) {
    case WorkloadType::kRandom:
      return "Random";
    case WorkloadType::kHighRam:
      return "High RAM";
    case WorkloadType::kHighCpu:
      return "High CPU";
    case WorkloadType::kHalfHalf:
      return "Half Half";
    case WorkloadType::kMoreRam:
      return "More Ram";
    case WorkloadType::kMoreCpu:
      return "More CPU";
  }
  return "<unknown workload>";
}

std::vector<WorkloadType> all_workload_types() {
  return {WorkloadType::kRandom,   WorkloadType::kHighRam, WorkloadType::kHighCpu,
          WorkloadType::kHalfHalf, WorkloadType::kMoreRam, WorkloadType::kMoreCpu};
}

WorkloadRanges ranges_for(WorkloadType type) {
  switch (type) {
    case WorkloadType::kRandom:
      return {1, 32, 1, 32};
    case WorkloadType::kHighRam:
      return {1, 8, 24, 32};
    case WorkloadType::kHighCpu:
      return {24, 32, 1, 8};
    case WorkloadType::kHalfHalf:
      return {16, 16, 16, 16};
    case WorkloadType::kMoreRam:
      return {1, 6, 17, 32};
    case WorkloadType::kMoreCpu:
      return {17, 32, 1, 16};
  }
  throw std::invalid_argument("ranges_for: unknown workload type");
}

VmSpec WorkloadGenerator::next(sim::Rng& rng) const {
  VmSpec spec;
  spec.vcpus = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(ranges_.cpu_lo),
                      static_cast<std::int64_t>(ranges_.cpu_hi)));
  spec.ram_gb = static_cast<std::uint64_t>(
      rng.uniform_int(static_cast<std::int64_t>(ranges_.ram_lo_gb),
                      static_cast<std::int64_t>(ranges_.ram_hi_gb)));
  return spec;
}

std::vector<VmSpec> WorkloadGenerator::generate_bounded(sim::Rng& rng, std::size_t total_cores,
                                                        std::uint64_t total_ram_gb,
                                                        double target_utilization) const {
  if (target_utilization <= 0.0 || target_utilization > 1.0) {
    throw std::invalid_argument("generate_bounded: target utilization outside (0, 1]");
  }
  const auto core_budget =
      static_cast<std::size_t>(target_utilization * static_cast<double>(total_cores));
  const auto ram_budget =
      static_cast<std::uint64_t>(target_utilization * static_cast<double>(total_ram_gb));

  std::vector<VmSpec> workload;
  std::size_t cores = 0;
  std::uint64_t ram = 0;
  for (;;) {
    const VmSpec spec = next(rng);
    if (cores + spec.vcpus > core_budget || ram + spec.ram_gb > ram_budget) break;
    cores += spec.vcpus;
    ram += spec.ram_gb;
    workload.push_back(spec);
  }
  return workload;
}

}  // namespace dredbox::tco
