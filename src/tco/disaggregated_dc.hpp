#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tco/workload.hpp"

namespace dredbox::tco {

/// Where one VM's resources landed in the disaggregated datacenter.
struct DisaggregatedPlacement {
  std::vector<std::pair<std::size_t, std::size_t>> compute;   // (brick, cores)
  std::vector<std::pair<std::size_t, std::uint64_t>> memory;  // (brick, GB)
};

/// A dReDBox-like datacenter for the TCO study: independent pools of
/// compute bricks and memory bricks. Each resource is allocated
/// independently (Section VI), so a VM's cores and RAM are drawn from
/// whichever bricks have room — packing onto already-running bricks first
/// so unused bricks stay off. This is the scheduling-scale counterpart of
/// the full hw::Rack model (thousands of units, no data-path state).
class DisaggregatedDatacenter {
 public:
  DisaggregatedDatacenter(std::size_t compute_bricks, std::size_t cores_per_brick,
                          std::size_t memory_bricks, std::uint64_t ram_gb_per_brick);

  std::size_t compute_brick_count() const { return compute_.size(); }
  std::size_t memory_brick_count() const { return memory_.size(); }
  std::size_t total_cores() const { return compute_.size() * cores_per_brick_; }
  std::uint64_t total_ram_gb() const {
    return static_cast<std::uint64_t>(memory_.size()) * ram_per_brick_;
  }

  /// FCFS placement: packs cores into partially used compute bricks first
  /// (spilling across bricks as needed), and RAM into partially used
  /// memory bricks first. Returns nullopt — with no state change — when
  /// either pool lacks the aggregate capacity.
  std::optional<DisaggregatedPlacement> schedule(const VmSpec& vm);

  /// Unutilized, individually powered units that can be powered off.
  std::size_t idle_compute_bricks() const;
  std::size_t idle_memory_bricks() const;
  double idle_compute_fraction() const;
  double idle_memory_fraction() const;
  double idle_combined_fraction() const;

  std::size_t used_cores() const;
  std::uint64_t used_ram_gb() const;
  std::size_t scheduled_vms() const { return scheduled_vms_; }

  void reset();

 private:
  std::size_t cores_per_brick_;
  std::uint64_t ram_per_brick_;
  std::vector<std::size_t> compute_;   // cores used per brick
  std::vector<std::uint64_t> memory_;  // GB used per brick
  std::size_t scheduled_vms_ = 0;
};

}  // namespace dredbox::tco
