#include "tco/conventional_dc.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::tco {

ConventionalDatacenter::ConventionalDatacenter(std::size_t servers,
                                               std::size_t cores_per_server,
                                               std::uint64_t ram_gb_per_server)
    : cores_per_server_{cores_per_server}, ram_per_server_{ram_gb_per_server} {
  if (servers == 0) throw std::invalid_argument("ConventionalDatacenter: zero servers");
  if (cores_per_server == 0 || ram_gb_per_server == 0) {
    throw std::invalid_argument("ConventionalDatacenter: empty server configuration");
  }
  servers_.resize(servers);
}

std::optional<std::size_t> ConventionalDatacenter::schedule(const VmSpec& vm) {
  if (vm.vcpus > cores_per_server_ || vm.ram_gb > ram_per_server_) return std::nullopt;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    Server& s = servers_[i];
    if (s.cores_used + vm.vcpus <= cores_per_server_ &&
        s.ram_used + vm.ram_gb <= ram_per_server_) {
      s.cores_used += vm.vcpus;
      s.ram_used += vm.ram_gb;
      ++s.vms;
      ++scheduled_vms_;
      return i;
    }
  }
  return std::nullopt;
}

std::size_t ConventionalDatacenter::idle_servers() const {
  return static_cast<std::size_t>(std::count_if(
      servers_.begin(), servers_.end(), [](const Server& s) { return s.vms == 0; }));
}

std::size_t ConventionalDatacenter::used_cores() const {
  std::size_t total = 0;
  for (const auto& s : servers_) total += s.cores_used;
  return total;
}

std::uint64_t ConventionalDatacenter::used_ram_gb() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s.ram_used;
  return total;
}

void ConventionalDatacenter::reset() {
  for (auto& s : servers_) s = Server{};
  scheduled_vms_ = 0;
}

}  // namespace dredbox::tco
