#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace dredbox::tco {

/// The six VM workload mixes of Table I.
enum class WorkloadType : std::uint8_t {
  kRandom,    // 1-32 cores, 1-32 GB
  kHighRam,   // 1-8 cores, 24-32 GB
  kHighCpu,   // 24-32 cores, 1-8 GB
  kHalfHalf,  // 16 cores, 16 GB
  kMoreRam,   // 1-6 cores, 17-32 GB
  kMoreCpu,   // 17-32 cores, 1-16 GB
};

std::string to_string(WorkloadType type);
std::vector<WorkloadType> all_workload_types();

/// Inclusive vCPU/RAM ranges for one mix (the rows of Table I).
struct WorkloadRanges {
  std::size_t cpu_lo = 1;
  std::size_t cpu_hi = 32;
  std::uint64_t ram_lo_gb = 1;
  std::uint64_t ram_hi_gb = 32;
};

WorkloadRanges ranges_for(WorkloadType type);

/// Resource requirements of one VM in the TCO study.
struct VmSpec {
  std::size_t vcpus = 1;
  std::uint64_t ram_gb = 1;
};

/// Draws VM specs uniformly within a mix's ranges.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadType type) : type_{type}, ranges_{ranges_for(type)} {}

  WorkloadType type() const { return type_; }
  const WorkloadRanges& ranges() const { return ranges_; }

  VmSpec next(sim::Rng& rng) const;

  /// Generates VMs until admitting one more would push either aggregate
  /// vCPUs past `target_utilization * total_cores` or aggregate RAM past
  /// `target_utilization * total_ram_gb` — the "given workload" both
  /// datacenter types then schedule (Section VI).
  std::vector<VmSpec> generate_bounded(sim::Rng& rng, std::size_t total_cores,
                                       std::uint64_t total_ram_gb,
                                       double target_utilization) const;

 private:
  WorkloadType type_;
  WorkloadRanges ranges_;
};

}  // namespace dredbox::tco
