#include "tco/tco_study.hpp"

#include <stdexcept>

#include "sim/random.hpp"

namespace dredbox::tco {

TcoStudy::TcoStudy(const TcoConfig& config) : config_{config} {
  if (config.cores_per_server % config.cores_per_compute_brick != 0 ||
      config.ram_gb_per_server % config.ram_gb_per_memory_brick != 0) {
    throw std::invalid_argument(
        "TcoStudy: brick sizes must divide server sizes so the two datacenters hold "
        "equal aggregate resources (Fig. 11)");
  }
}

TcoStudy::RepetitionOutcome TcoStudy::run_once(WorkloadType type, std::uint64_t seed) const {
  sim::Rng rng{seed};
  ConventionalDatacenter conv{config_.servers, config_.cores_per_server,
                              config_.ram_gb_per_server};
  DisaggregatedDatacenter dd{config_.compute_bricks(), config_.cores_per_compute_brick,
                             config_.memory_bricks(), config_.ram_gb_per_memory_brick};

  WorkloadGenerator gen{type};
  const auto workload = gen.generate_bounded(rng, conv.total_cores(), conv.total_ram_gb(),
                                             config_.target_utilization);

  std::size_t conv_dropped = 0;
  std::size_t dd_dropped = 0;
  for (const VmSpec& vm : workload) {
    if (!conv.schedule(vm)) ++conv_dropped;
    if (!dd.schedule(vm)) ++dd_dropped;
  }

  RepetitionOutcome out{};
  out.conv_off = conv.idle_fraction();
  out.dd_compute_off = dd.idle_compute_fraction();
  out.dd_memory_off = dd.idle_memory_fraction();
  out.dd_combined_off = dd.idle_combined_fraction();
  out.vms = workload.size();
  out.conv_dropped = conv_dropped;
  out.dd_dropped = dd_dropped;

  const double active_servers = static_cast<double>(conv.active_servers());
  out.conv_power_w = active_servers * config_.server_equivalent_w();

  const double active_cb =
      static_cast<double>(config_.compute_bricks() - dd.idle_compute_bricks());
  const double active_mb =
      static_cast<double>(config_.memory_bricks() - dd.idle_memory_bricks());
  out.dd_power_w = active_cb * config_.power.compute_brick_w +
                   active_mb * config_.power.memory_brick_w +
                   (active_cb + active_mb) * config_.power.switch_share_per_active_brick_w;
  return out;
}

PowerOffRow TcoStudy::run_poweroff(WorkloadType type) const {
  PowerOffRow row;
  row.workload = type;
  for (std::size_t r = 0; r < config_.repetitions; ++r) {
    const auto out = run_once(type, config_.seed + r);
    row.conventional_off += out.conv_off;
    row.dd_compute_off += out.dd_compute_off;
    row.dd_memory_off += out.dd_memory_off;
    row.dd_combined_off += out.dd_combined_off;
    row.vms_scheduled += static_cast<double>(out.vms);
    row.conventional_dropped += static_cast<double>(out.conv_dropped);
    row.dd_dropped += static_cast<double>(out.dd_dropped);
  }
  const auto n = static_cast<double>(config_.repetitions);
  row.conventional_off /= n;
  row.dd_compute_off /= n;
  row.dd_memory_off /= n;
  row.dd_combined_off /= n;
  row.vms_scheduled /= n;
  row.conventional_dropped /= n;
  row.dd_dropped /= n;
  return row;
}

PowerRow TcoStudy::run_power(WorkloadType type) const {
  PowerRow row;
  row.workload = type;
  double conv_w = 0.0;
  double dd_w = 0.0;
  for (std::size_t r = 0; r < config_.repetitions; ++r) {
    const auto out = run_once(type, config_.seed + r);
    conv_w += out.conv_power_w;
    dd_w += out.dd_power_w;
  }
  row.conventional_norm = 1.0;
  row.dredbox_norm = conv_w > 0 ? dd_w / conv_w : 1.0;
  const auto n = static_cast<double>(config_.repetitions);
  row.conventional_watts = conv_w / n;
  row.dredbox_watts = dd_w / n;
  return row;
}

std::vector<PowerOffRow> TcoStudy::run_poweroff_all() const {
  std::vector<PowerOffRow> rows;
  for (WorkloadType type : all_workload_types()) rows.push_back(run_poweroff(type));
  return rows;
}

std::vector<PowerRow> TcoStudy::run_power_all() const {
  std::vector<PowerRow> rows;
  for (WorkloadType type : all_workload_types()) rows.push_back(run_power(type));
  return rows;
}

std::string TcoStudy::describe_datacenters() const {
  return "conventional: " + std::to_string(config_.servers) + " servers x (" +
         std::to_string(config_.cores_per_server) + " cores, " +
         std::to_string(config_.ram_gb_per_server) + " GB)\n" + "dReDBox:      " +
         std::to_string(config_.compute_bricks()) + " dCOMPUBRICKs x " +
         std::to_string(config_.cores_per_compute_brick) + " cores + " +
         std::to_string(config_.memory_bricks()) + " dMEMBRICKs x " +
         std::to_string(config_.ram_gb_per_memory_brick) + " GB  (equal aggregates: " +
         std::to_string(config_.servers * config_.cores_per_server) + " cores, " +
         std::to_string(static_cast<std::uint64_t>(config_.servers) *
                        config_.ram_gb_per_server) +
         " GB)";
}

}  // namespace dredbox::tco
