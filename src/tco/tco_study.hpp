#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tco/conventional_dc.hpp"
#include "tco/disaggregated_dc.hpp"
#include "tco/workload.hpp"

namespace dredbox::tco {

/// Per-unit power draw for the TCO energy study. To isolate the effect the
/// paper studies — energy saved by powering off unutilized units — the
/// conventional server is modelled as drawing exactly the power of its
/// brick-equivalent resource set (cores_per_server / cores_per_brick
/// compute bricks plus the analogous memory bricks). Any other choice
/// would mix an architectural power delta into the normalized Fig. 13
/// numbers.
struct TcoPowerModel {
  double compute_brick_w = 22.0;
  double memory_brick_w = 18.0;
  /// Optical switch share attributed to each *active* brick (2 ports at
  /// ~100 mW each, Section III).
  double switch_share_per_active_brick_w = 0.2;
};

/// Deployment shapes of Fig. 11: both datacenters hold the same aggregate
/// compute and memory.
struct TcoConfig {
  std::size_t servers = 64;
  std::size_t cores_per_server = 32;
  std::uint64_t ram_gb_per_server = 32;
  std::size_t cores_per_compute_brick = 8;
  std::uint64_t ram_gb_per_memory_brick = 8;
  /// Aggregate demand of the generated workload, as a fraction of the
  /// binding resource.
  double target_utilization = 0.85;
  std::size_t repetitions = 10;
  std::uint64_t seed = 42;
  TcoPowerModel power;

  std::size_t compute_bricks() const {
    return servers * cores_per_server / cores_per_compute_brick;
  }
  std::size_t memory_bricks() const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(servers) * ram_gb_per_server /
                                    ram_gb_per_memory_brick);
  }
  double server_equivalent_w() const {
    const double nc = static_cast<double>(cores_per_server) /
                      static_cast<double>(cores_per_compute_brick);
    const double nm = static_cast<double>(ram_gb_per_server) /
                      static_cast<double>(ram_gb_per_memory_brick);
    return nc * power.compute_brick_w + nm * power.memory_brick_w;
  }
};

/// One Fig. 12 row: fraction of individually powered units that can be
/// powered off after scheduling, averaged over repetitions.
struct PowerOffRow {
  WorkloadType workload;
  double conventional_off = 0.0;   // fraction of servers
  double dd_compute_off = 0.0;     // fraction of dCOMPUBRICKs
  double dd_memory_off = 0.0;      // fraction of dMEMBRICKs
  double dd_combined_off = 0.0;    // fraction of all bricks
  double vms_scheduled = 0.0;      // mean workload size
  double conventional_dropped = 0.0;  // VMs the conventional DC failed to place
  double dd_dropped = 0.0;
};

/// One Fig. 13 row: power normalized to the conventional datacenter
/// (plus the absolute draws, used by the refresh-TCO extension).
struct PowerRow {
  WorkloadType workload;
  double conventional_norm = 1.0;
  double dredbox_norm = 1.0;
  double conventional_watts = 0.0;
  double dredbox_watts = 0.0;
  double savings() const { return 1.0 - dredbox_norm; }
};

/// The Section VI simulation: FCFS-schedules the same bounded workload
/// onto both datacenter models and accounts for power-off opportunity and
/// resulting energy, per Table I mix.
class TcoStudy {
 public:
  explicit TcoStudy(const TcoConfig& config = {});

  const TcoConfig& config() const { return config_; }

  PowerOffRow run_poweroff(WorkloadType type) const;
  PowerRow run_power(WorkloadType type) const;

  std::vector<PowerOffRow> run_poweroff_all() const;
  std::vector<PowerRow> run_power_all() const;

  /// Fig. 11 summary of the two resource-equivalent deployments.
  std::string describe_datacenters() const;

 private:
  TcoConfig config_;

  struct RepetitionOutcome {
    double conv_off, dd_compute_off, dd_memory_off, dd_combined_off;
    double conv_power_w, dd_power_w;
    std::size_t vms, conv_dropped, dd_dropped;
  };
  RepetitionOutcome run_once(WorkloadType type, std::uint64_t seed) const;
};

}  // namespace dredbox::tco
