#include "tco/disaggregated_dc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dredbox::tco {

DisaggregatedDatacenter::DisaggregatedDatacenter(std::size_t compute_bricks,
                                                 std::size_t cores_per_brick,
                                                 std::size_t memory_bricks,
                                                 std::uint64_t ram_gb_per_brick)
    : cores_per_brick_{cores_per_brick}, ram_per_brick_{ram_gb_per_brick} {
  if (compute_bricks == 0 || memory_bricks == 0) {
    throw std::invalid_argument("DisaggregatedDatacenter: empty pools");
  }
  if (cores_per_brick == 0 || ram_gb_per_brick == 0) {
    throw std::invalid_argument("DisaggregatedDatacenter: empty brick configuration");
  }
  compute_.assign(compute_bricks, 0);
  memory_.assign(memory_bricks, 0);
}

std::optional<DisaggregatedPlacement> DisaggregatedDatacenter::schedule(const VmSpec& vm) {
  const std::size_t cores_free = total_cores() - used_cores();
  const std::uint64_t ram_free = total_ram_gb() - used_ram_gb();
  if (vm.vcpus > cores_free || vm.ram_gb > ram_free) return std::nullopt;

  DisaggregatedPlacement placement;

  // Cores: fill already-running (partially used) bricks first, then cold
  // bricks — the power-conscious packing of Section VI ("scheduling the
  // VMs on dBRICKs which are already running a VM").
  std::size_t need_cores = vm.vcpus;
  for (int pass = 0; pass < 2 && need_cores > 0; ++pass) {
    const bool want_warm = pass == 0;
    for (std::size_t i = 0; i < compute_.size() && need_cores > 0; ++i) {
      const bool warm = compute_[i] > 0;
      if (warm != want_warm) continue;
      const std::size_t avail = cores_per_brick_ - compute_[i];
      if (avail == 0) continue;
      const std::size_t take = std::min(avail, need_cores);
      compute_[i] += take;
      placement.compute.emplace_back(i, take);
      need_cores -= take;
    }
  }

  std::uint64_t need_ram = vm.ram_gb;
  for (int pass = 0; pass < 2 && need_ram > 0; ++pass) {
    const bool want_warm = pass == 0;
    for (std::size_t i = 0; i < memory_.size() && need_ram > 0; ++i) {
      const bool warm = memory_[i] > 0;
      if (warm != want_warm) continue;
      const std::uint64_t avail = ram_per_brick_ - memory_[i];
      if (avail == 0) continue;
      const std::uint64_t take = std::min(avail, need_ram);
      memory_[i] += take;
      placement.memory.emplace_back(i, take);
      need_ram -= take;
    }
  }

  ++scheduled_vms_;
  return placement;
}

std::size_t DisaggregatedDatacenter::idle_compute_bricks() const {
  return static_cast<std::size_t>(
      std::count(compute_.begin(), compute_.end(), std::size_t{0}));
}

std::size_t DisaggregatedDatacenter::idle_memory_bricks() const {
  return static_cast<std::size_t>(std::count(memory_.begin(), memory_.end(), std::uint64_t{0}));
}

double DisaggregatedDatacenter::idle_compute_fraction() const {
  return static_cast<double>(idle_compute_bricks()) / static_cast<double>(compute_.size());
}

double DisaggregatedDatacenter::idle_memory_fraction() const {
  return static_cast<double>(idle_memory_bricks()) / static_cast<double>(memory_.size());
}

double DisaggregatedDatacenter::idle_combined_fraction() const {
  const std::size_t idle = idle_compute_bricks() + idle_memory_bricks();
  return static_cast<double>(idle) / static_cast<double>(compute_.size() + memory_.size());
}

std::size_t DisaggregatedDatacenter::used_cores() const {
  return std::accumulate(compute_.begin(), compute_.end(), std::size_t{0});
}

std::uint64_t DisaggregatedDatacenter::used_ram_gb() const {
  return std::accumulate(memory_.begin(), memory_.end(), std::uint64_t{0});
}

void DisaggregatedDatacenter::reset() {
  std::fill(compute_.begin(), compute_.end(), 0);
  std::fill(memory_.begin(), memory_.end(), 0);
  scheduled_vms_ = 0;
}

}  // namespace dredbox::tco
