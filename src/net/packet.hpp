#pragma once

#include <cstdint>
#include <string>

#include "hw/ids.hpp"
#include "sim/breakdown.hpp"
#include "sim/contract.hpp"
#include "sim/time.hpp"

namespace dredbox::net {

enum class PacketType : std::uint8_t {
  kMemReadReq,
  kMemReadResp,
  kMemWriteReq,
  kMemWriteAck,
  kControl,
};

std::string to_string(PacketType type);

/// A memory transaction packet on the packet-based network. Each pipeline
/// stage charges its latency into `breakdown`, so a completed round trip
/// carries the Fig. 8 attribution with it.
struct Packet {
  std::uint64_t id = 0;
  PacketType type = PacketType::kMemReadReq;
  hw::BrickId src;
  hw::BrickId dst;
  std::uint64_t address = 0;
  std::uint32_t payload_bytes = 64;

  sim::Time injected_at;
  sim::Time delivered_at;
  sim::Breakdown breakdown;

  /// Injection-to-delivery latency. A packet that was never delivered
  /// (dropped; delivered_at still default-initialized before injected_at)
  /// has no latency: returns zero instead of an underflowed Time, and
  /// trips DREDBOX_REQUIRE under -DDREDBOX_AUDIT=ON so percentile sites
  /// cannot silently average garbage in.
  sim::Time latency() const {
    DREDBOX_REQUIRE(delivered_at >= injected_at,
                    "Packet::latency on an undelivered packet");
    if (delivered_at < injected_at) return sim::Time::zero();
    return delivered_at - injected_at;
  }
};

}  // namespace dredbox::net
