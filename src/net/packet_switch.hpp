#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/ids.hpp"
#include "sim/time.hpp"

namespace dredbox::net {

/// Brick-level packet switch implemented on the MPSoC PL (Section II).
/// Forwards memory transactions to on-brick destination ports in a
/// round-robin fashion; its lookup table maps destination bricks to output
/// ports and is programmed at runtime by dedicated orchestration resources
/// (Section III).
class PacketSwitch {
 public:
  PacketSwitch(std::size_t output_ports, sim::Time switching_latency);

  std::size_t output_ports() const { return busy_until_.size(); }
  sim::Time switching_latency() const { return switching_latency_; }

  // --- lookup table (control path) ---
  void program_route(hw::BrickId dest, std::size_t out_port);
  bool erase_route(hw::BrickId dest);
  std::optional<std::size_t> lookup(hw::BrickId dest) const;
  std::size_t table_size() const { return table_.size(); }

  /// Round-robin fallback used when several ports reach the destination
  /// (aggregate-bandwidth mode): callers program the same dest repeatedly
  /// with distinct ports via program_multipath.
  void program_multipath(hw::BrickId dest, const std::vector<std::size_t>& ports);

  // --- data path ---
  /// Accepts a packet at `arrival` bound for `dest`; returns the time the
  /// packet leaves the switch (arbitration + switching + waiting for the
  /// output port to drain) plus the chosen port, or nullopt when the
  /// destination is not in the lookup table.
  struct ForwardResult {
    sim::Time departure;
    std::size_t port;
    sim::Time queueing;  // time spent blocked behind earlier packets
  };
  std::optional<ForwardResult> forward(hw::BrickId dest, sim::Time arrival,
                                       sim::Time serialization);

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }

  void reset();

 private:
  sim::Time switching_latency_;
  std::vector<sim::Time> busy_until_;                 // per output port
  std::unordered_map<hw::BrickId, std::vector<std::size_t>> table_;
  std::unordered_map<hw::BrickId, std::size_t> rr_next_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dredbox::net
