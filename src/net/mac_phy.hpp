#pragma once

#include "net/latency_config.hpp"
#include "sim/time.hpp"

namespace dredbox::net {

/// MAC/PHY block pair on one brick edge. The prototype implements these on
/// the MPSoC PL; each traversal (TX or RX) costs the MAC and PHY pipeline
/// latencies, and TX additionally pays serialization at the line rate.
class MacPhy {
 public:
  explicit MacPhy(const PacketPathLatencies& cfg) : cfg_{cfg} {}

  sim::Time traversal_latency() const { return cfg_.mac + cfg_.phy; }

  sim::Time serialization_time(std::size_t payload_bytes) const {
    const double bits = static_cast<double>(payload_bytes + cfg_.header_bytes) * 8.0;
    return sim::Time::ns(bits / cfg_.line_rate_gbps);
  }

  const PacketPathLatencies& config() const { return cfg_; }

 private:
  PacketPathLatencies cfg_;
};

}  // namespace dredbox::net
