#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "hw/ids.hpp"
#include "hw/memory_brick.hpp"
#include "net/latency_config.hpp"
#include "net/mac_phy.hpp"
#include "net/packet.hpp"
#include "net/packet_switch.hpp"
#include "optics/fec.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace dredbox::net {

/// End-to-end packet-switched remote-memory path (the exploratory
/// interconnection mode of Sections II-III). Bricks get an NI plus a
/// brick-level packet switch; pairs of bricks are connected over the
/// optical substrate and the forwarding lookup-tables are programmed the
/// way the orchestrator would program them at runtime.
///
/// The data-path methods walk one memory transaction through every
/// hardware stage, charging each stage's latency into the packet's
/// Breakdown — this is exactly the instrumentation behind Fig. 8.
class PacketNetwork {
 public:
  explicit PacketNetwork(const PacketPathLatencies& latencies = {},
                         optics::FecModel fec = optics::FecModel{});

  const PacketPathLatencies& latencies() const { return latencies_; }
  const optics::FecModel& fec() const { return fec_; }

  /// Registers a brick with `pbn_ports` packet-facing ports.
  void add_brick(hw::BrickId brick, std::size_t pbn_ports = 2);
  bool has_brick(hw::BrickId brick) const { return switches_.count(brick) != 0; }

  /// Connects two bricks with a fibre of the given length and programs
  /// both lookup tables (single path, one port each way).
  void connect(hw::BrickId a, hw::BrickId b, double fiber_length_m = 10.0);

  /// True when a path between the pair has been programmed.
  bool connected(hw::BrickId a, hw::BrickId b) const;

  /// Multi-link variant: `ports` parallel links used round-robin for
  /// aggregate bandwidth (the dMEMBRICK multi-link mode of Section II).
  void connect_multipath(hw::BrickId a, hw::BrickId b, std::size_t ports,
                         double fiber_length_m = 10.0);

  PacketSwitch& switch_of(hw::BrickId brick);

  /// One remote read round trip: request out, `payload_bytes` back.
  /// `when` is the instant the APU issues the transaction. `ctx`, when
  /// valid, nests the recorded packet span under the caller's trace (the
  /// fabric passes its transaction span when a packet-substrate
  /// attachment delegates here).
  Packet remote_read(hw::BrickId src, hw::BrickId dst, std::uint64_t address,
                     std::uint32_t payload_bytes, sim::Time when,
                     hw::MemoryTechnology tech = hw::MemoryTechnology::kDdr4,
                     const sim::TraceContext& ctx = {});

  /// One remote write round trip: payload out, short ack back.
  Packet remote_write(hw::BrickId src, hw::BrickId dst, std::uint64_t address,
                      std::uint32_t payload_bytes, sim::Time when,
                      hw::MemoryTechnology tech = hw::MemoryTechnology::kDdr4,
                      const sim::TraceContext& ctx = {});

  std::uint64_t packets_sent() const { return next_packet_ - 1; }

  // --- fault model ---
  /// Congestion burst: scales the on-brick switch cost (arbitration +
  /// queueing + serialization) of every traversal by `factor` (>= 1; 1.0
  /// restores nominal service). The extra time is charged as its own
  /// "congestion" breakdown stage so Fig. 8-style reports show the burst.
  void set_congestion_factor(double factor);
  double congestion_factor() const { return congestion_factor_; }

  /// Loss burst: models `per_packet` link-layer retransmissions per
  /// traversal (deterministic mean-rate model, so faulty runs stay
  /// digest-reproducible). Each retransmission re-pays serialization plus
  /// the wire propagation. 0 restores a loss-free link.
  void set_loss_retransmissions(double per_packet);
  double loss_retransmissions() const { return loss_retransmissions_; }

  /// Wires rack-wide telemetry in: packet counter, end-to-end round-trip
  /// latency histogram and the on-brick switch queueing-delay histogram
  /// (the congestion signal of the exploratory packet mode). Null
  /// detaches telemetry.
  void set_telemetry(sim::Telemetry* telemetry);

 private:
  PacketPathLatencies latencies_;
  MacPhy mac_phy_;
  optics::FecModel fec_;
  std::unordered_map<hw::BrickId, std::unique_ptr<PacketSwitch>> switches_;
  std::unordered_map<hw::BrickId, std::unordered_map<hw::BrickId, double>> fiber_m_;
  std::uint64_t next_packet_ = 1;
  double congestion_factor_ = 1.0;
  double loss_retransmissions_ = 0.0;

  sim::Telemetry* telemetry_ = nullptr;
  sim::metrics::Counter* packets_metric_ = nullptr;
  sim::metrics::Counter* retransmissions_metric_ = nullptr;
  sim::metrics::Histogram* latency_metric_ = nullptr;
  sim::metrics::Histogram* queueing_metric_ = nullptr;
  sim::metrics::Gauge* congestion_metric_ = nullptr;

  sim::Time propagation(hw::BrickId a, hw::BrickId b) const;

  /// Walks one direction (src -> dst): NI/TGL inject, src on-brick switch,
  /// MAC/PHY TX (+FEC), wire, MAC/PHY RX (+FEC). Returns the arrival time
  /// at the destination's glue logic and charges `breakdown`.
  sim::Time traverse(hw::BrickId src, hw::BrickId dst, std::uint32_t bytes, sim::Time start,
                     bool from_compute, sim::Breakdown& breakdown);

  sim::Time memory_access_time(hw::MemoryTechnology tech) const;

  /// Records the delivered packet as a span nested under `ctx` (no-op when
  /// telemetry is detached or tracing is disabled).
  void record_packet_span(const Packet& pkt, const sim::TraceContext& ctx);
};

}  // namespace dredbox::net
