#include "net/packet_network.hpp"

#include <stdexcept>

#include "optics/circuit.hpp"
#include "sim/span.hpp"

namespace dredbox::net {

namespace {

// Interned breakdown components for the per-packet pipeline: resolved once
// at startup so traverse() charges by 2-byte id per stage (ISSUE 9b).
const sim::ComponentId kBdTglInject = sim::component_id("TGL / NI injection");
const sim::ComponentId kBdSwitchCompute = sim::component_id("on-brick switch (dCOMPUBRICK)");
const sim::ComponentId kBdSwitchMem = sim::component_id("on-brick switch (dMEMBRICK)");
const sim::ComponentId kBdSerialization = sim::component_id("serialization");
const sim::ComponentId kBdCongestion = sim::component_id("congestion penalty");
const sim::ComponentId kBdMacPhyCompute = sim::component_id("MAC/PHY (dCOMPUBRICK)");
const sim::ComponentId kBdMacPhyMem = sim::component_id("MAC/PHY (dMEMBRICK)");
const sim::ComponentId kBdFec = sim::component_id("FEC encode/decode");
const sim::ComponentId kBdOpticalProp = sim::component_id("optical propagation");
const sim::ComponentId kBdLossRetrans = sim::component_id("loss retransmissions");
const sim::ComponentId kBdGlueLogic = sim::component_id("glue logic (dMEMBRICK)");
const sim::ComponentId kBdMemAccess = sim::component_id("memory access");

}  // namespace


std::string to_string(PacketType type) {
  switch (type) {
    case PacketType::kMemReadReq:
      return "MemReadReq";
    case PacketType::kMemReadResp:
      return "MemReadResp";
    case PacketType::kMemWriteReq:
      return "MemWriteReq";
    case PacketType::kMemWriteAck:
      return "MemWriteAck";
    case PacketType::kControl:
      return "Control";
  }
  return "<unknown packet type>";
}

PacketNetwork::PacketNetwork(const PacketPathLatencies& latencies, optics::FecModel fec)
    : latencies_{latencies}, mac_phy_{latencies}, fec_{fec} {}

void PacketNetwork::set_telemetry(sim::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    packets_metric_ = retransmissions_metric_ = nullptr;
    latency_metric_ = queueing_metric_ = nullptr;
    congestion_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  packets_metric_ = &m.counter("net.packets.sent");
  retransmissions_metric_ = &m.counter("net.packets.retransmitted");
  // Packet round trips land in the single-digit-us range (Fig. 8's packet
  // column); queueing is sub-us unless an output port is congested.
  latency_metric_ = &m.histogram("net.packet.latency_ns", 0.0, 20000.0, 50);
  queueing_metric_ = &m.histogram("net.switch.queueing_ns", 0.0, 2000.0, 40);
  congestion_metric_ = &m.gauge("net.packet.congestion_factor");
  congestion_metric_->set(congestion_factor_);
}

void PacketNetwork::set_congestion_factor(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("PacketNetwork::set_congestion_factor: factor below 1");
  }
  congestion_factor_ = factor;
  if (congestion_metric_ != nullptr) congestion_metric_->set(factor);
}

void PacketNetwork::set_loss_retransmissions(double per_packet) {
  if (per_packet < 0.0) {
    throw std::invalid_argument("PacketNetwork::set_loss_retransmissions: negative rate");
  }
  loss_retransmissions_ = per_packet;
}

void PacketNetwork::add_brick(hw::BrickId brick, std::size_t pbn_ports) {
  if (has_brick(brick)) {
    throw std::logic_error("PacketNetwork::add_brick: brick already registered");
  }
  switches_.emplace(brick, std::make_unique<PacketSwitch>(
                               pbn_ports, latencies_.compubrick_switch));
}

PacketSwitch& PacketNetwork::switch_of(hw::BrickId brick) {
  auto it = switches_.find(brick);
  if (it == switches_.end()) {
    throw std::out_of_range("PacketNetwork: brick " + brick.to_string() + " not registered");
  }
  return *it->second;
}

void PacketNetwork::connect(hw::BrickId a, hw::BrickId b, double fiber_length_m) {
  switch_of(a).program_route(b, 0);
  switch_of(b).program_route(a, 0);
  fiber_m_[a][b] = fiber_length_m;
  fiber_m_[b][a] = fiber_length_m;
}

void PacketNetwork::connect_multipath(hw::BrickId a, hw::BrickId b, std::size_t ports,
                                      double fiber_length_m) {
  std::vector<std::size_t> port_list;
  for (std::size_t p = 0; p < ports; ++p) port_list.push_back(p);
  switch_of(a).program_multipath(b, port_list);
  switch_of(b).program_multipath(a, port_list);
  fiber_m_[a][b] = fiber_length_m;
  fiber_m_[b][a] = fiber_length_m;
}

bool PacketNetwork::connected(hw::BrickId a, hw::BrickId b) const {
  auto it = fiber_m_.find(a);
  return it != fiber_m_.end() && it->second.count(b) != 0;
}

sim::Time PacketNetwork::propagation(hw::BrickId a, hw::BrickId b) const {
  auto ita = fiber_m_.find(a);
  if (ita == fiber_m_.end() || ita->second.count(b) == 0) {
    throw std::logic_error("PacketNetwork: bricks " + a.to_string() + " and " + b.to_string() +
                           " are not connected");
  }
  return sim::Time::ns(ita->second.at(b) * optics::Circuit::kPropagationNsPerMeter);
}

sim::Time PacketNetwork::memory_access_time(hw::MemoryTechnology tech) const {
  return tech == hw::MemoryTechnology::kHmc ? latencies_.hmc_access : latencies_.ddr_access;
}

// dredbox-lint: hot-path-begin — traverse/remote_read/remote_write run
// once per packet; steady state is allocation-free (misrouted packets and
// tracing-gated spans are the cold exceptions, suppressed below).
sim::Time PacketNetwork::traverse(hw::BrickId src, hw::BrickId dst, std::uint32_t bytes,
                                  sim::Time start, bool from_compute,
                                  sim::Breakdown& breakdown) {
  // Static per-direction labels: building "... (side)" strings here would
  // allocate on every packet of the exploratory-path datapath.
  const sim::ComponentId switch_label = from_compute ? kBdSwitchCompute : kBdSwitchMem;
  const sim::ComponentId mac_phy_tx_label = from_compute ? kBdMacPhyCompute : kBdMacPhyMem;
  const sim::ComponentId mac_phy_rx_label = from_compute ? kBdMacPhyMem : kBdMacPhyCompute;
  sim::Time t = start;

  if (from_compute) {
    // TGL decode + NI injection only happens on the requesting brick.
    breakdown.charge(kBdTglInject, latencies_.tgl_inject);
    t += latencies_.tgl_inject;
  }

  // On-brick packet switch: round-robin arbitration + output queueing.
  const sim::Time serialization = mac_phy_.serialization_time(bytes);
  auto fwd = switch_of(src).forward(dst, t, serialization);
  if (!fwd) {
    throw std::logic_error("PacketNetwork: no route from " + src.to_string() + " to " +
                           dst.to_string() + " (lookup table not programmed)");
  }
  const sim::Time switch_cost = from_compute ? latencies_.compubrick_switch
                                             : latencies_.membrick_switch;
  if (queueing_metric_ != nullptr) queueing_metric_->observe(fwd->queueing.as_ns());
  breakdown.charge(switch_label, switch_cost + fwd->queueing);
  breakdown.charge(kBdSerialization, serialization);
  t = fwd->departure;

  // Congestion burst: the switch fabric services this packet slower than
  // nominal; the extra time shows up as its own breakdown stage.
  if (congestion_factor_ > 1.0) {
    const sim::Time penalty =
        sim::scale(switch_cost + fwd->queueing + serialization, congestion_factor_ - 1.0);
    breakdown.charge(kBdCongestion, penalty);
    t += penalty;
  }

  // MAC + PHY on the transmit side.
  breakdown.charge(mac_phy_tx_label, mac_phy_.traversal_latency());
  t += mac_phy_.traversal_latency();

  // Optional FEC encode (the architecture requires FEC-free; modelled for
  // the ablation study).
  if (fec_.added_latency() > sim::Time::zero()) {
    breakdown.charge(kBdFec, fec_.added_latency());
    t += fec_.added_latency();
  }

  // Optical path propagation.
  const sim::Time prop = propagation(src, dst);
  breakdown.charge(kBdOpticalProp, prop);
  t += prop;

  // Loss burst: each modelled retransmission re-pays serialization plus
  // the wire (deterministic mean-rate model, no per-packet dice).
  if (loss_retransmissions_ > 0.0) {
    const sim::Time penalty = sim::scale(serialization + prop, loss_retransmissions_);
    breakdown.charge(kBdLossRetrans, penalty);
    t += penalty;
    if (retransmissions_metric_ != nullptr) retransmissions_metric_->add();
  }

  // MAC + PHY on the receive side.
  breakdown.charge(mac_phy_rx_label, mac_phy_.traversal_latency());
  t += mac_phy_.traversal_latency();

  return t;
}

Packet PacketNetwork::remote_read(hw::BrickId src, hw::BrickId dst, std::uint64_t address,
                                  std::uint32_t payload_bytes, sim::Time when,
                                  hw::MemoryTechnology tech, const sim::TraceContext& ctx) {
  Packet pkt;
  pkt.id = next_packet_++;
  pkt.type = PacketType::kMemReadReq;
  pkt.src = src;
  pkt.dst = dst;
  pkt.address = address;
  pkt.payload_bytes = payload_bytes;
  pkt.injected_at = when;

  // Request: header-only packet to the dMEMBRICK.
  sim::Time t = traverse(src, dst, /*bytes=*/0, when, /*from_compute=*/true, pkt.breakdown);

  // dMEMBRICK glue logic forwards to the local memory controller
  // (Section II, ingress direction) and the array is accessed.
  pkt.breakdown.charge(kBdGlueLogic, latencies_.glue_logic);
  t += latencies_.glue_logic;
  pkt.breakdown.charge(kBdMemAccess, memory_access_time(tech));
  t += memory_access_time(tech);

  // Response: payload travels back through the local switch (egress).
  t = traverse(dst, src, payload_bytes, t, /*from_compute=*/false, pkt.breakdown);

  pkt.delivered_at = t;
  pkt.type = PacketType::kMemReadResp;
  if (packets_metric_ != nullptr) {
    packets_metric_->add();
    latency_metric_->observe((pkt.delivered_at - pkt.injected_at).as_ns());
  }
  record_packet_span(pkt, ctx);
  return pkt;
}

Packet PacketNetwork::remote_write(hw::BrickId src, hw::BrickId dst, std::uint64_t address,
                                   std::uint32_t payload_bytes, sim::Time when,
                                   hw::MemoryTechnology tech, const sim::TraceContext& ctx) {
  Packet pkt;
  pkt.id = next_packet_++;
  pkt.type = PacketType::kMemWriteReq;
  pkt.src = src;
  pkt.dst = dst;
  pkt.address = address;
  pkt.payload_bytes = payload_bytes;
  pkt.injected_at = when;

  // Request carries the payload.
  sim::Time t = traverse(src, dst, payload_bytes, when, /*from_compute=*/true, pkt.breakdown);

  pkt.breakdown.charge(kBdGlueLogic, latencies_.glue_logic);
  t += latencies_.glue_logic;
  pkt.breakdown.charge(kBdMemAccess, memory_access_time(tech));
  t += memory_access_time(tech);

  // Short acknowledgement back.
  t = traverse(dst, src, /*bytes=*/0, t, /*from_compute=*/false, pkt.breakdown);

  pkt.delivered_at = t;
  pkt.type = PacketType::kMemWriteAck;
  if (packets_metric_ != nullptr) {
    packets_metric_->add();
    latency_metric_->observe((pkt.delivered_at - pkt.injected_at).as_ns());
  }
  record_packet_span(pkt, ctx);
  return pkt;
}

void PacketNetwork::record_packet_span(const Packet& pkt, const sim::TraceContext& ctx) {
  if (telemetry_ == nullptr || !telemetry_->tracing()) return;
  sim::Span span{telemetry_->tracer(), sim::TraceCategory::kFabric, "packet round trip",
                 pkt.injected_at};
  span.context(telemetry_->tracer().child_of(ctx));
  span.arg("type", to_string(pkt.type))
      .arg("bytes", std::to_string(pkt.payload_bytes))  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
      .arg("src", std::to_string(pkt.src.value))  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
      .arg("dst", std::to_string(pkt.dst.value));  // dredbox-lint: ignore[hot-path-alloc] tracing-gated
  span.end(pkt.delivered_at);
}
// dredbox-lint: hot-path-end

}  // namespace dredbox::net
