#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dredbox::net {

/// Timing model of one direction of an inter-rack light path through the
/// optical spine: fixed propagation (fiber length plus the spine's
/// transit) and a serialization term from the line rate.
struct InterRackLinkConfig {
  /// One-way propagation, rack NIC to rack NIC through the spine. This is
  /// also the partitioned kernel's conservative lookahead for the link, so
  /// it must be strictly positive.
  sim::Time propagation = sim::Time::ns(500);
  double bandwidth_gbps = 100.0;
};

/// One direction of an inter-rack link, owned by the *sending* rack's
/// partition shard: its up/down state is flipped only by that shard's own
/// fault events and read only on that shard's send path, so the link needs
/// no locking — the spine's time-varying health is fully sharded.
///
/// Semantics mirror the intra-rack fabric's fail-fast story: a down link
/// rejects new requests at the sender; traffic already in flight (light
/// already launched) is never retroactively dropped.
class InterRackLink {
 public:
  explicit InterRackLink(const InterRackLinkConfig& config = {}) : config_{config} {}

  const InterRackLinkConfig& config() const { return config_; }

  /// Serialization delay of `bytes` at the configured line rate.
  sim::Time serialize(std::uint32_t bytes) const {
    // bits / (gbps * 1e9 / s) = bits * 1000 / gbps picoseconds.
    const double ps = static_cast<double>(bytes) * 8.0 * 1000.0 / config_.bandwidth_gbps;
    return sim::Time::ps(static_cast<std::int64_t>(ps));
  }

  /// Total one-way latency of a `bytes` message: propagation + wire time.
  sim::Time one_way(std::uint32_t bytes) const { return config_.propagation + serialize(bytes); }

  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Sender-side accounting, charged per accepted message.
  void on_send(std::uint32_t bytes) {
    ++tx_messages_;
    tx_bytes_ += bytes;
  }
  /// Charged per request refused because the link was down.
  void on_fail_fast() { ++fail_fast_; }

  std::uint64_t tx_messages() const { return tx_messages_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t fail_fast() const { return fail_fast_; }

 private:
  InterRackLinkConfig config_;
  bool up_ = true;
  std::uint64_t tx_messages_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t fail_fast_ = 0;
};

}  // namespace dredbox::net
