#include "net/packet_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::net {

PacketSwitch::PacketSwitch(std::size_t output_ports, sim::Time switching_latency)
    : switching_latency_{switching_latency} {
  if (output_ports == 0) throw std::invalid_argument("PacketSwitch: needs output ports");
  busy_until_.assign(output_ports, sim::Time::zero());
}

void PacketSwitch::program_route(hw::BrickId dest, std::size_t out_port) {
  if (out_port >= busy_until_.size()) {
    throw std::out_of_range("PacketSwitch::program_route: port out of range");
  }
  table_[dest] = {out_port};
  rr_next_[dest] = 0;
}

void PacketSwitch::program_multipath(hw::BrickId dest, const std::vector<std::size_t>& ports) {
  if (ports.empty()) throw std::invalid_argument("PacketSwitch::program_multipath: no ports");
  for (std::size_t p : ports) {
    if (p >= busy_until_.size()) {
      throw std::out_of_range("PacketSwitch::program_multipath: port out of range");
    }
  }
  table_[dest] = ports;
  rr_next_[dest] = 0;
}

bool PacketSwitch::erase_route(hw::BrickId dest) {
  rr_next_.erase(dest);
  return table_.erase(dest) != 0;
}

std::optional<std::size_t> PacketSwitch::lookup(hw::BrickId dest) const {
  auto it = table_.find(dest);
  if (it == table_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::optional<PacketSwitch::ForwardResult> PacketSwitch::forward(hw::BrickId dest,
                                                                 sim::Time arrival,
                                                                 sim::Time serialization) {
  auto it = table_.find(dest);
  if (it == table_.end() || it->second.empty()) {
    ++dropped_;
    return std::nullopt;
  }
  // Round-robin over the programmed ports (Section III).
  const auto& ports = it->second;
  std::size_t& rr = rr_next_[dest];
  const std::size_t port = ports[rr % ports.size()];
  rr = (rr + 1) % ports.size();

  const sim::Time ready = arrival + switching_latency_;
  const sim::Time start = std::max(ready, busy_until_[port]);
  const sim::Time departure = start + serialization;
  busy_until_[port] = departure;
  ++forwarded_;
  return ForwardResult{departure, port, start - ready};
}

void PacketSwitch::reset() {
  std::fill(busy_until_.begin(), busy_until_.end(), sim::Time::zero());
  forwarded_ = 0;
  dropped_ = 0;
}

}  // namespace dredbox::net
