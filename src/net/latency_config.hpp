#pragma once

#include "sim/time.hpp"

namespace dredbox::net {

/// Per-stage hardware latencies of the exploratory packet-switched remote
/// memory path (Section III, Fig. 8). Figures are in the range reported
/// for the prototype's PL-implemented blocks: the breakdown is dominated
/// by the on-brick switches and MAC/PHY blocks on both bricks, with a
/// small optical propagation contribution. All values are configurable so
/// the ablation benches can explore IP-design optimizations ("work is
/// on-going on further optimizing IP designs").
struct PacketPathLatencies {
  // dCOMPUBRICK side.
  sim::Time tgl_inject = sim::Time::ns(25);        // TGL decode + NI injection
  sim::Time compubrick_switch = sim::Time::ns(85); // on-brick packet switch
  sim::Time mac = sim::Time::ns(105);              // MAC block, per traversal
  sim::Time phy = sim::Time::ns(130);              // PHY incl. gearbox/CDR

  // dMEMBRICK side.
  sim::Time membrick_switch = sim::Time::ns(85);   // on-brick switch
  sim::Time glue_logic = sim::Time::ns(40);        // memory-brick glue logic
  sim::Time ddr_access = sim::Time::ns(60);        // DDR controller + array
  sim::Time hmc_access = sim::Time::ns(45);        // HMC is faster per access

  /// Serialization happens at the line rate; one 64 B flit plus header at
  /// 10 Gb/s adds ~58 ns per link traversal.
  double line_rate_gbps = 10.0;
  std::size_t header_bytes = 8;
};

}  // namespace dredbox::net
