#include "core/scenario.hpp"

#include <cstdlib>

namespace dredbox::core {

sim::Time Scenario::fault_horizon() const {
  return fault_plan_ ? fault_plan_->horizon() : sim::Time::zero();
}

void Scenario::run_fault_plan() {
  if (!fault_plan_) return;
  const sim::Time until = fault_horizon() + sim::Time::ms(1);
  if (cluster_ != nullptr) {
    cluster_->advance_all(until);
  } else {
    dc_->advance_to(until);
  }
}

ScenarioBuilder& ScenarioBuilder::trays(std::size_t n) {
  config_.trays = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::compute_bricks_per_tray(std::size_t n) {
  config_.compute_bricks_per_tray = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::memory_bricks_per_tray(std::size_t n) {
  config_.memory_bricks_per_tray = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::accelerator_bricks_per_tray(std::size_t n) {
  config_.accelerator_bricks_per_tray = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::racks(std::size_t trays, std::size_t compute_per_tray,
                                        std::size_t memory_per_tray,
                                        std::size_t accel_per_tray) {
  config_.trays = trays;
  config_.compute_bricks_per_tray = compute_per_tray;
  config_.memory_bricks_per_tray = memory_per_tray;
  config_.accelerator_bricks_per_tray = accel_per_tray;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::add_rack(const RackSpec& rack) {
  config_.racks.push_back(rack);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::add_racks(std::size_t n, const RackSpec& rack) {
  for (std::size_t i = 0; i < n; ++i) config_.racks.push_back(rack);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::spine(const SpineSpec& spec) {
  // Preserve any faults/share already declared through the dedicated
  // setters unless the caller's spec carries its own.
  auto faults = std::move(config_.spine.faults);
  config_.spine = spec;
  if (config_.spine.faults.empty()) config_.spine.faults = std::move(faults);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::partitions(std::size_t n) {
  config_.partitions = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cross_rack_share(double share) {
  config_.spine.cross_share = share;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::spine_fault(std::size_t rack, sim::Time at,
                                              sim::Time duration) {
  config_.spine.faults.push_back(SpineFaultSpec{rack, at, duration});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::compute_cores(std::size_t apu_cores) {
  config_.compute.apu_cores = apu_cores;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::compute_local_memory_bytes(std::uint64_t bytes) {
  config_.compute.local_memory_bytes = bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::memory_pool_bytes(std::uint64_t bytes) {
  config_.memory.capacity_bytes = bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::switch_ports(std::size_t ports) {
  config_.optical_switch.ports = ports;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::telemetry(bool on) {
  enable_telemetry_ = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::tracing(bool on) {
  enable_tracing_ = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::power_management(bool on) {
  config_.enable_power_management = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::prefer_optical(bool on) {
  config_.prefer_optical_attach = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fabric_retry(std::optional<sim::RetryPolicy> policy) {
  config_.fabric_retry = policy;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::oom_guard(const orch::OomGuardConfig& guard) {
  config_.oom_guard = guard;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::profile_kernel(bool on) {
  enable_profiling_ = on;
  profile_env_ = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::profile_kernel_from_env() {
  profile_env_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_plan(sim::FaultPlan plan) {
  fault_plan_ = std::move(plan);
  fault_spec_.reset();
  fault_plan_env_ = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_plan(const std::string& spec) {
  fault_spec_ = spec;
  fault_plan_.reset();
  fault_plan_env_ = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_plan_from_env() {
  fault_plan_env_ = true;
  fault_plan_.reset();
  fault_spec_.reset();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::configure(const std::function<void(DatacenterConfig&)>& fn) {
  fn(config_);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  // Resolve the fault plan first: a bad spec should fail the build before
  // a rack is assembled.
  std::optional<sim::FaultPlan> plan = fault_plan_;
  if (fault_spec_) plan = sim::FaultPlan::parse(*fault_spec_);
  if (fault_plan_env_) plan = sim::fault_plan_from_env();

  Scenario scenario;
  const bool profiling =
      enable_profiling_ || (profile_env_ && std::getenv(sim::kProfileEnv) != nullptr);
  if (!config_.racks.empty()) {
    // Multi-rack topology: everything declared for "the rack" applies to
    // every rack of the cluster, including the fault plan (each rack runs
    // its own injector on its own shard).
    scenario.cluster_ = std::make_unique<Cluster>(config_);  // ctor validates
    for (std::size_t r = 0; r < scenario.cluster_->size(); ++r) {
      Datacenter& dc = scenario.cluster_->rack(r);
      if (enable_telemetry_) {
        dc.telemetry().enable_all();
      } else if (enable_tracing_) {
        dc.tracer().enable();
      }
      if (profiling) dc.simulator().queue().enable_profiling();
    }
    if (plan) {
      scenario.fault_plan_ = std::move(plan);
      for (std::size_t r = 0; r < scenario.cluster_->size(); ++r) {
        scenario.faults_scheduled_ +=
            scenario.cluster_->rack(r).inject_faults(*scenario.fault_plan_);
      }
    }
    return scenario;
  }
  scenario.dc_ = std::make_unique<Datacenter>(config_);  // ctor validates
  if (enable_telemetry_) {
    scenario.dc_->telemetry().enable_all();
  } else if (enable_tracing_) {
    scenario.dc_->tracer().enable();
  }
  if (profiling) {
    scenario.dc_->simulator().queue().enable_profiling();
  }
  if (plan) {
    scenario.fault_plan_ = std::move(plan);
    scenario.faults_scheduled_ = scenario.dc_->inject_faults(*scenario.fault_plan_);
  }
  return scenario;
}

}  // namespace dredbox::core
