#pragma once

#include <cstddef>

#include "core/cluster.hpp"
#include "sim/partition.hpp"
#include "sim/time.hpp"

namespace dredbox::core {

/// What one ParallelRunner::advance_to did: the kernel's round accounting
/// plus the host wall-clock it took (the speedup numerator/denominator of
/// the scaling experiment).
struct ParallelRunReport {
  sim::PartitionRunStats kernel;
  double wall_seconds = 0.0;
};

/// Drives a Cluster's partitioned kernel with a uniform horizon — the one
/// call pattern whose repeated use is unconditionally safe under the
/// finished-shard rule (see PartitionedKernel::run). threads comes from
/// the constructor so sweep-style callers fix it once; threads=1 is the
/// sequential reference schedule every parallel run must reproduce
/// byte-for-byte.
class ParallelRunner {
 public:
  /// `threads` == 0 means "use config().partitions".
  explicit ParallelRunner(Cluster& cluster, std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  /// Advances every rack to `until` and accumulates round stats.
  ParallelRunReport advance_to(sim::Time until);

  /// Totals across every advance_to() so far.
  const ParallelRunReport& total() const { return total_; }

 private:
  Cluster& cluster_;
  std::size_t threads_;
  ParallelRunReport total_;
};

}  // namespace dredbox::core
