#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::core {

/// First-order memory-access profile of an application, in the style of
/// the studies the paper builds on (Rao & Porter [1], Gao et al. [2],
/// Lim et al. [3]): performance under disaggregation is governed by how
/// often the application leaves its local memory and how much latency
/// each remote access can hide.
struct AppProfile {
  std::string name;
  /// Fraction of memory accesses that fall in the *remote* portion of the
  /// working set (i.e. miss local DDR) when `remote_fraction` of the
  /// working set is disaggregated. Modeled as proportional:
  /// remote_access_fraction = miss_intensity * remote_fraction.
  double miss_intensity = 1.0;
  /// Remote-eligible memory accesses per second of useful work at native
  /// speed (no disaggregation).
  double accesses_per_sec = 2e7;
  /// Memory-level parallelism: outstanding remote accesses that overlap,
  /// hiding a share of the latency.
  double mlp = 4.0;
  /// Native local access latency.
  sim::Time local_latency = sim::Time::ns(100);
};

/// Predicted execution-time inflation when part of the working set lives
/// on dMEMBRICKs behind a given interconnect round-trip latency.
///
///   slowdown = 1 + A * f * max(0, Lr - Ll) / MLP
///
/// with A = accesses/s, f = fraction of accesses going remote, Lr/Ll the
/// remote/local latencies. This is the standard first-order model used to
/// argue feasibility of memory disaggregation; it is exactly the regime
/// where the paper's FEC-free, circuit-switched sub-microsecond design
/// point pays off.
class DisaggregationSlowdownModel {
 public:
  double remote_access_fraction(const AppProfile& app, double remote_fraction) const;

  double slowdown(const AppProfile& app, double remote_fraction,
                  sim::Time remote_latency) const;

  /// Remote latency at which the application's slowdown reaches `limit`
  /// for the given remote fraction (the latency *budget* the interconnect
  /// must meet). Found in closed form from the linear model.
  sim::Time latency_budget(const AppProfile& app, double remote_fraction,
                           double limit) const;

  /// Representative profiles for the paper's pilot domains.
  static std::vector<AppProfile> reference_profiles();
};

}  // namespace dredbox::core
