#include "core/scaleup_experiment.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::core {

DatacenterConfig Fig10Config::default_datacenter() {
  DatacenterConfig dc;
  dc.trays = 4;
  dc.compute_bricks_per_tray = 2;
  dc.memory_bricks_per_tray = 2;
  dc.compute.apu_cores = 4;
  dc.compute.local_memory_bytes = 4ull << 30;
  dc.memory.capacity_bytes = 32ull << 30;
  dc.optical_switch.ports = 48;
  return dc;
}

ScaleUpAgilityExperiment::ScaleUpAgilityExperiment(const Fig10Config& config)
    : config_{config} {
  if (config.concurrency_levels.empty()) {
    throw std::invalid_argument("ScaleUpAgilityExperiment: no concurrency levels");
  }
  if (config.repetitions == 0) {
    throw std::invalid_argument("ScaleUpAgilityExperiment: zero repetitions");
  }
}

void ScaleUpAgilityExperiment::run_repetition(std::size_t concurrency, std::uint64_t seed,
                                              LevelSample& out) const {
  DatacenterConfig dc_config = config_.datacenter;
  dc_config.seed = seed;
  Datacenter dc{dc_config};
  sim::Rng rng{seed ^ 0xD15A66E6ull};

  // Boot `concurrency` single-core VMs; the SDM-C packs them across the
  // compute bricks.
  struct Guest {
    hw::VmId vm;
    hw::BrickId brick;
  };
  std::vector<Guest> guests;
  for (std::size_t i = 0; i < concurrency; ++i) {
    auto result = dc.boot_vm("vm-" + std::to_string(i), 1, 1ull << 30);
    if (!result.ok) {
      throw std::runtime_error("Fig10: VM boot failed: " + result.error +
                               " (size the datacenter up for this concurrency)");
    }
    guests.push_back(Guest{result.vm, result.compute});
  }

  // Every VM posts one scale-up within the posting interval. Requests are
  // processed in posting order (FCFS at the SDM-C front door).
  struct Posting {
    sim::Time at;
    std::size_t guest;
  };
  std::vector<Posting> postings;
  postings.reserve(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i) {
    postings.push_back(Posting{sim::Time::sec(rng.uniform(0.0, config_.posting_interval_s)), i});
  }
  std::sort(postings.begin(), postings.end(),
            [](const Posting& a, const Posting& b) { return a.at < b.at; });

  dc.sdm().reset_queues();
  struct Granted {
    std::size_t guest;
    hw::SegmentId segment;
  };
  std::vector<Granted> granted;
  for (const Posting& p : postings) {
    orch::ScaleUpRequest request;
    request.vm = guests[p.guest].vm;
    request.compute = guests[p.guest].brick;
    request.bytes = config_.bytes_per_request;
    request.posted_at = p.at;
    const auto result = dc.sdm().scale_up(request);
    if (!result.ok) {
      throw std::runtime_error("Fig10: scale-up failed: " + result.error);
    }
    out.scale_up_s.add(result.delay().as_sec());
    granted.push_back(Granted{p.guest, result.segment});
  }

  // Scale-down phase: the same VMs release the memory, posted within an
  // interval starting after everything settled.
  dc.sdm().reset_queues();
  const sim::Time down_epoch = sim::Time::sec(120.0);
  std::vector<std::pair<sim::Time, std::size_t>> down_postings;
  for (std::size_t i = 0; i < granted.size(); ++i) {
    down_postings.emplace_back(
        down_epoch + sim::Time::sec(rng.uniform(0.0, config_.posting_interval_s)), i);
  }
  std::sort(down_postings.begin(), down_postings.end());
  for (const auto& [at, idx] : down_postings) {
    const Granted& g = granted[idx];
    const auto result = dc.sdm().scale_down(guests[g.guest].vm, guests[g.guest].brick,
                                            g.segment, at);
    if (!result.ok) {
      throw std::runtime_error("Fig10: scale-down failed: " + result.error);
    }
    out.scale_down_s.add(result.delay().as_sec());
  }

  // Conventional scale-out baseline: the same postings, but each request
  // spawns an additional VM instead of hot-attaching memory.
  orch::ScaleOutBaseline baseline{config_.scale_out};
  for (const Posting& p : postings) {
    const auto result = baseline.spawn(p.at, rng);
    out.scale_out_s.add(result.delay().as_sec());
  }
}

Fig10Row ScaleUpAgilityExperiment::run_level(std::size_t concurrency) const {
  LevelSample sample;
  for (std::size_t r = 0; r < config_.repetitions; ++r) {
    run_repetition(concurrency, config_.seed + r * 1000003ull, sample);
  }
  Fig10Row row;
  row.concurrency = concurrency;
  row.scale_up_avg_s = sample.scale_up_s.mean();
  row.scale_up_ci95_s = sample.scale_up_s.ci95_halfwidth();
  row.scale_up_p95_s = sample.scale_up_s.percentile(95.0);
  row.scale_down_avg_s = sample.scale_down_s.mean();
  row.scale_out_avg_s = sample.scale_out_s.mean();
  row.scale_out_ci95_s = sample.scale_out_s.ci95_halfwidth();
  return row;
}

std::vector<Fig10Row> ScaleUpAgilityExperiment::run() const {
  std::vector<Fig10Row> rows;
  for (std::size_t level : config_.concurrency_levels) rows.push_back(run_level(level));
  return rows;
}

}  // namespace dredbox::core
