#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>  // dredbox-lint: ignore[wall-clock] sweep speedup is a host-side quantity
#include <stdexcept>

#include "sim/format.hpp"
#include "sim/stats.hpp"
#include "sim/trace_export.hpp"
#include "sim/worker_pool.hpp"

namespace dredbox::core {

std::string SweepCell::label() const {
  std::string out = sim::strformat("seed=%llu trays=%zu remote=%.2f",
                                   static_cast<unsigned long long>(seed), trays, remote_ratio);
  if (!fault_plan.empty()) out += " faults=" + fault_plan;
  return out;
}

std::vector<std::string> SweepGrid::errors() const {
  std::vector<std::string> out;
  if (seeds.empty()) out.push_back("seeds: sweep needs at least one seed");
  if (rack_trays.empty()) out.push_back("rack_trays: sweep needs at least one rack size");
  if (remote_ratios.empty()) {
    out.push_back("remote_ratios: sweep needs at least one remote-memory ratio");
  }
  if (fault_plans.empty()) {
    out.push_back("fault_plans: sweep needs at least one entry (\"\" = no faults)");
  }
  for (std::size_t t : rack_trays) {
    if (t == 0) out.push_back("rack_trays: rack sizes must be at least one tray");
  }
  for (double r : remote_ratios) {
    if (!(r >= 0.0) || !(r <= 1.0)) {
      out.push_back(sim::strformat("remote_ratios: ratio %g outside [0, 1]", r));
    }
  }
  for (const auto& spec : fault_plans) {
    if (spec.empty()) continue;
    try {
      (void)sim::FaultPlan::parse(spec);
    } catch (const std::exception& e) {
      out.push_back("fault_plans: \"" + spec + "\": " + e.what());
    }
  }
  return out;
}

std::vector<SweepCell> SweepGrid::expand() const {
  std::vector<SweepCell> cells;
  cells.reserve(size());
  // Row-major, seeds outermost: indices are a pure function of the grid,
  // never of execution order.
  for (std::uint64_t seed : seeds) {
    for (std::size_t trays : rack_trays) {
      for (double ratio : remote_ratios) {
        for (const auto& plan : fault_plans) {
          SweepCell cell;
          cell.index = cells.size();
          cell.seed = seed;
          cell.trays = trays;
          cell.remote_ratio = ratio;
          cell.fault_plan = plan;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

std::size_t SweepReport::cells_ok() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.ok) ++n;
  }
  return n;
}

namespace {

std::string json_double(double v) { return sim::strformat("%.9g", v); }

std::string json_cell(const CellResult& r) {
  std::string out = "    {";
  out += sim::strformat(R"("index": %zu, "seed": %llu, "trays": %zu, "remote_ratio": %s, )",
                        r.cell.index, static_cast<unsigned long long>(r.cell.seed),
                        r.cell.trays, json_double(r.cell.remote_ratio).c_str());
  out += R"("fault_plan": ")" + sim::json_escape(r.cell.fault_plan) + R"(", )";
  out += sim::strformat(R"("ok": %s)", r.ok ? "true" : "false");
  if (!r.ok) {
    out += R"(, "error": ")" + sim::json_escape(r.error) + "\"}";
    return out;
  }
  const CellStats& s = r.stats;
  out += sim::strformat(R"(, "digest": "%016llx")", static_cast<unsigned long long>(s.digest));
  out += sim::strformat(R"(, "offered": %llu, "completed": %llu, "failed": %llu)",
                        static_cast<unsigned long long>(s.offered),
                        static_cast<unsigned long long>(s.completed),
                        static_cast<unsigned long long>(s.failed));
  out += sim::strformat(R"(, "offered_rate_hz": %s, "throughput_hz": %s)",
                        json_double(s.offered_rate_hz).c_str(),
                        json_double(s.throughput_hz).c_str());
  out += sim::strformat(R"(, "latency_us": {"p50": %s, "p95": %s, "p99": %s})",
                        json_double(s.p50_us).c_str(), json_double(s.p95_us).c_str(),
                        json_double(s.p99_us).c_str());
  out += sim::strformat(R"(, "dma_p99_us": %s)", json_double(s.dma_p99_us).c_str());
  out += sim::strformat(R"(, "power_w": {"mean": %s, "max": %s})",
                        json_double(s.power_mean_w).c_str(),
                        json_double(s.power_max_w).c_str());
  out += "}";
  return out;
}

template <typename T, typename Fn>
std::string json_array(const std::vector<T>& values, Fn render) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += render(values[i]);
  }
  return out + "]";
}

}  // namespace

std::string SweepReport::to_json() const {
  std::string out = "{\n";
  out += R"(  "schema": "dredbox-sweep/v1",)" "\n";
  out += "  \"grid\": {\n";
  out += "    \"seeds\": " +
         json_array(grid.seeds,
                    [](std::uint64_t s) {
                      return sim::strformat("%llu", static_cast<unsigned long long>(s));
                    }) +
         ",\n";
  out += "    \"rack_trays\": " +
         json_array(grid.rack_trays, [](std::size_t t) { return sim::strformat("%zu", t); }) +
         ",\n";
  out += "    \"remote_ratios\": " +
         json_array(grid.remote_ratios, [](double r) { return json_double(r); }) + ",\n";
  out += "    \"fault_plans\": " +
         json_array(grid.fault_plans,
                    [](const std::string& p) {
                      std::string quoted = "\"";
                      quoted += sim::json_escape(p);
                      quoted += '"';
                      return quoted;
                    }) +
         "\n  },\n";
  out += sim::strformat("  \"threads\": %zu,\n", threads);
  out += "  \"wall_seconds\": " + json_double(wall_seconds) + ",\n";

  sim::RunningStats throughput;
  sim::RunningStats p99;
  for (const auto& c : cells) {
    if (!c.ok) continue;
    throughput.add(c.stats.throughput_hz);
    if (c.stats.p99_us > 0.0) p99.add(c.stats.p99_us);
  }
  out += sim::strformat("  \"aggregate\": {\"cells\": %zu, \"cells_ok\": %zu", cells.size(),
                        cells_ok());
  out += sim::strformat(
      R"(, "throughput_hz": {"mean": %s, "min": %s, "max": %s})",
      json_double(throughput.mean()).c_str(), json_double(throughput.min()).c_str(),
      json_double(throughput.max()).c_str());
  out += sim::strformat(R"(, "p99_us": {"mean": %s, "max": %s}},)" "\n",
                        json_double(p99.mean()).c_str(), json_double(p99.max()).c_str());

  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += json_cell(cells[i]);
    out += i + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool digests_match(const SweepReport& a, const SweepReport& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].ok != b.cells[i].ok) return false;
    if (a.cells[i].ok && a.cells[i].stats.digest != b.cells[i].stats.digest) return false;
  }
  return true;
}

SweepRunner::SweepRunner(SweepGrid grid, CellBody body)
    : grid_{std::move(grid)}, body_{std::move(body)} {
  if (!body_) throw std::invalid_argument("SweepRunner: cell body must be callable");
  const auto errors = grid_.errors();
  if (!errors.empty()) {
    std::string message = "invalid SweepGrid:";
    for (const auto& e : errors) message += "\n  - " + e;
    throw std::invalid_argument(message);
  }
}

CellResult SweepRunner::run_cell(const SweepCell& cell) const {
  CellResult out;
  out.cell = cell;
  try {
    // A private copy of the base deployment, specialised to this cell.
    // build() assembles a fully independent Datacenter (own simulator,
    // RNG, telemetry), so concurrent cells share nothing.
    ScenarioBuilder builder = base_;
    builder.trays(cell.trays).seed(cell.seed);
    if (!cell.fault_plan.empty()) builder.fault_plan(cell.fault_plan);
    Scenario scenario = builder.build();
    out.stats = body_(cell, scenario.datacenter());
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

SweepReport SweepRunner::run(std::size_t threads) const {
  const std::vector<SweepCell> cells = grid_.expand();
  SweepReport report;
  report.grid = grid_;
  report.threads = std::max<std::size_t>(1, threads);
  report.cells.resize(cells.size());

  // Host wall-clock, not simulated time: the sweep's parallel speedup is a
  // property of the harness itself.
  const auto started = std::chrono::steady_clock::now();  // dredbox-lint: ignore[wall-clock] measures host-side sweep speedup

  if (report.threads == 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      report.cells[i] = run_cell(cells[i]);
    }
  } else {
    // Cells are claimed work-stealing style off the shared pool's cursor,
    // but each result lands at its grid index, so the report never depends
    // on which worker ran what.
    sim::WorkerPool pool{std::min(report.threads, cells.size())};
    sim::ResultStore<CellResult> results{cells.size()};
    pool.parallel_for(cells.size(),
                      [&](std::size_t i) { results.store(i, run_cell(cells[i])); });
    report.cells = results.take();
  }

  const auto ended = std::chrono::steady_clock::now();  // dredbox-lint: ignore[wall-clock] measures host-side sweep speedup
  report.wall_seconds = std::chrono::duration<double>(ended - started).count();
  return report;
}

}  // namespace dredbox::core
