#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

namespace dredbox::core {

/// Completion of one cross-rack request, delivered as an event on the
/// issuing rack's own queue (never synchronously from issue()).
struct CrossCompletion {
  /// The issuer's token, echoed back verbatim (the workload engine passes
  /// its driver index).
  std::uint32_t token = 0;
  /// Target-rack physical address the request landed on.
  std::uint64_t address = 0;
  bool write = false;
  /// Echoed issue-side flag (closed-loop issuers chain their next request
  /// off this completion).
  bool closed_loop = false;
  bool ok = false;
  sim::Time issued_at;
  sim::Time completed_at;

  sim::Time round_trip() const { return completed_at - issued_at; }
};

/// A rack's NIC onto the inter-rack spine, as seen by a workload driver:
/// enumerate reachable peers, issue reads/writes against a peer's exported
/// gateway window, receive completions back on this rack's timeline. The
/// workload layer programs against this interface so it never needs the
/// whole core::Cluster topology (and a single-rack engine simply has no
/// port installed).
class CrossRackPort {
 public:
  virtual ~CrossRackPort() = default;

  /// Reachable peer racks (0 on a single-rack deployment). Peer indices
  /// 0..peer_count()-1 enumerate the other racks in rack-index order.
  virtual std::size_t peer_count() const = 0;

  /// Size of the gateway window peer `peer` exports (issue offsets must
  /// stay below it).
  virtual std::uint64_t window_bytes(std::size_t peer) const = 0;

  /// Issues one request of `bytes` at `offset` into peer `peer`'s window.
  /// Must be called from this rack's execution context (one of its
  /// events). The completion — success, or fail-fast when the spine link
  /// is down — always arrives through the installed handler.
  virtual void issue(std::size_t peer, std::uint64_t offset, std::uint32_t bytes, bool write,
                     std::uint32_t token, bool closed_loop) = 0;

  /// Installs the completion handler (one per rack; the workload engine
  /// owns it). The handler runs on this rack's event queue.
  virtual void set_handler(sim::InplaceFunction<void(const CrossCompletion&)> handler) = 0;
};

}  // namespace dredbox::core
