#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace dredbox::core {

/// One point of a sweep's parameter grid. `index` is the cell's position
/// in the deterministic row-major expansion, which is also where its
/// result lands in the report — results never depend on completion order.
struct SweepCell {
  std::size_t index = 0;
  std::uint64_t seed = 1;
  std::size_t trays = 2;
  /// Fraction of each tenant VM's footprint served from disaggregated
  /// memory (interpreted by the cell body, e.g. the workload engine).
  double remote_ratio = 0.5;
  /// Fault-plan spec in the sim/fault.hpp mini-language; empty = none.
  std::string fault_plan;

  /// Compact "seed=3 trays=2 remote=0.50 faults=..." rendering.
  std::string label() const;
};

/// The sweep's parameter space: a cross product expanded in row-major
/// order (seeds outermost, fault plans innermost), so cell indices are
/// stable across runs and thread counts.
struct SweepGrid {
  std::vector<std::uint64_t> seeds = {1};
  std::vector<std::size_t> rack_trays = {2};
  std::vector<double> remote_ratios = {0.5};
  std::vector<std::string> fault_plans = {""};

  /// Field-naming validation errors; empty means the grid is runnable.
  std::vector<std::string> errors() const;
  std::size_t size() const {
    return seeds.size() * rack_trays.size() * remote_ratios.size() * fault_plans.size();
  }
  std::vector<SweepCell> expand() const;
};

/// What one cell measured, reduced to plain numbers so the report never
/// holds a Datacenter (and the runner can free each rack as its cell
/// finishes).
struct CellStats {
  /// Determinism fingerprint of the cell's full op stream. Equal seeds and
  /// parameters must produce equal digests regardless of thread count —
  /// the property test_sweep and the CI smoke job assert.
  std::uint64_t digest = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double offered_rate_hz = 0.0;
  double throughput_hz = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double dma_p99_us = 0.0;
  double power_mean_w = 0.0;
  double power_max_w = 0.0;
};

/// One finished cell: its parameters plus stats, or the error that broke
/// it (a throwing cell body fails the cell, not the sweep).
struct CellResult {
  SweepCell cell;
  CellStats stats;
  bool ok = false;
  std::string error;
};

/// A completed sweep: per-cell results in grid order plus how the sweep
/// itself ran.
struct SweepReport {
  SweepGrid grid;
  std::vector<CellResult> cells;
  std::size_t threads = 1;
  /// Host wall-clock of the run() call (the quantity the parallel-speedup
  /// acceptance check divides).
  double wall_seconds = 0.0;

  std::size_t cells_ok() const;

  /// Serializes to the "dredbox-sweep/v1" JSON schema consumed by
  /// scripts/bench_reduce.py (digests as fixed-width hex strings).
  std::string to_json() const;
};

/// True when both reports cover the same grid and every per-cell digest
/// matches (the sequential-vs-parallel equivalence check).
bool digests_match(const SweepReport& a, const SweepReport& b);

/// Fans a parameter grid across worker threads, one fully independent
/// Datacenter per cell.
///
/// Each cell copies the base ScenarioBuilder, applies the cell's trays /
/// seed / fault plan, builds a fresh rack and hands it to the cell body.
/// Nothing is shared between concurrent cells — a Datacenter owns its
/// simulator, RNG and telemetry, so per-seed determinism survives any
/// thread count. Cells are claimed from an atomic cursor but stored by
/// grid index, so the report is identical however threads interleave.
///
/// The cell body must be re-entrant: it is invoked concurrently from
/// worker threads, with distinct Datacenters. The standard body lives in
/// workload/sweep_body.hpp; tests substitute lightweight ones.
class SweepRunner {
 public:
  using CellBody = std::function<CellStats(const SweepCell&, Datacenter&)>;

  /// Throws std::invalid_argument listing every grid error.
  SweepRunner(SweepGrid grid, CellBody body);

  /// Base deployment every cell starts from (the cell then overrides
  /// trays, seed and fault plan). Defaults to ScenarioBuilder's defaults.
  void set_base(ScenarioBuilder base) { base_ = std::move(base); }

  const SweepGrid& grid() const { return grid_; }

  /// Runs every cell on `threads` workers (1 = inline on the calling
  /// thread) and reduces to a report. May be called repeatedly — e.g.
  /// once sequential and once parallel to compare digests.
  SweepReport run(std::size_t threads = 1) const;

 private:
  SweepGrid grid_;
  CellBody body_;
  ScenarioBuilder base_;

  CellResult run_cell(const SweepCell& cell) const;
};

}  // namespace dredbox::core
