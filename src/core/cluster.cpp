#include "core/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "net/interrack_link.hpp"
#include "sim/contract.hpp"
#include "sim/digest.hpp"
#include "sim/format.hpp"

namespace dredbox::core {

namespace {

/// Fixed spine message header (routing + transaction id on the wire).
constexpr std::uint32_t kHeaderBytes = 32;

/// Local DDR footprint of a gateway VM (it only fronts the exported
/// disaggregated window, so the local slice stays small).
constexpr std::uint64_t kGatewayLocalBytes = 64ull << 20;

/// splitmix64 finalizer: decorrelates per-rack seeds from the deployment
/// seed so racks never share RNG streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t rack) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (rack + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives rack r's standalone DatacenterConfig: the enclosing timing
/// models and behaviour flags verbatim, the shape from its RackSpec, a
/// decorrelated seed, and the multi-rack fields cleared (each rack is a
/// plain single-rack Datacenter from its own point of view).
DatacenterConfig rack_config(const DatacenterConfig& base, std::size_t r) {
  DatacenterConfig c = base;
  const RackSpec& spec = base.racks[r];
  c.trays = spec.trays;
  c.compute_bricks_per_tray = spec.compute_bricks_per_tray;
  c.memory_bricks_per_tray = spec.memory_bricks_per_tray;
  c.accelerator_bricks_per_tray = spec.accelerator_bricks_per_tray;
  c.seed = mix_seed(base.seed, r);
  c.racks.clear();
  c.spine = SpineSpec{};
  c.partitions = 1;
  return c;
}

/// Bytes on the wire for the request leg (writes carry the payload out)
/// and the reply leg (reads carry it back).
std::uint32_t request_bytes(std::uint32_t bytes, bool write) {
  return kHeaderBytes + (write ? bytes : 0);
}
std::uint32_t reply_bytes(std::uint32_t bytes, bool write) {
  return kHeaderBytes + (write ? 0 : bytes);
}

}  // namespace

/// One rack's NIC onto the spine. Owned-by-shard discipline: everything
/// here except `served_` and `rx_` is written only from the owning rack's
/// execution context (issue/complete events), and the target-side fields
/// are written only from the target's context — the partitioned kernel's
/// barrier rounds order those accesses, so no locking is needed.
class Cluster::RackPort final : public CrossRackPort {
 public:
  RackPort(Cluster& cluster, std::uint32_t rack) : cluster_{cluster}, rack_{rack} {}

  std::size_t peer_count() const override { return peers_.size(); }

  std::uint64_t window_bytes(std::size_t peer) const override {
    return cluster_.gateways_.at(peers_.at(peer).rack).size;
  }

  void issue(std::size_t peer, std::uint64_t offset, std::uint32_t bytes, bool write,
             std::uint32_t token, bool closed_loop) override {
    Peer& p = peers_.at(peer);
    const Gateway& gw = cluster_.gateways_[p.rack];
    DREDBOX_INVARIANT(offset + bytes <= gw.size, "cross-rack issue outside the gateway window");
    sim::Simulator& sim = cluster_.racks_[rack_]->simulator();
    const sim::Time now = sim.now();
    const std::uint64_t address = gw.base + offset;
    if (!p.link.up()) {
      // Fail fast at the sending NIC, as an event so the completion is
      // never synchronous with issue() (same contract as the success path).
      p.link.on_fail_fast();
      RackPort* self = this;
      sim.at(
          now,
          [self, token, address, write, closed_loop, now] {
            self->handler_(CrossCompletion{token, address, write, closed_loop, false, now, now});
          },
          "spine.fail_fast");
      return;
    }
    const std::uint32_t slot = alloc_pending(Pending{token, address, closed_loop, write, now});
    p.link.on_send(request_bytes(bytes, write));
    Cluster* cluster = &cluster_;
    const std::uint32_t target = p.rack;
    const std::uint32_t src = rack_;
    cluster_.kernel_.send(
        p.tx_link, now + p.link.one_way(request_bytes(bytes, write)),
        [cluster, target, src, slot, address, bytes, write] {
          cluster->serve(target, src, slot, address, bytes, write);
        },
        "spine.request");
  }

  void set_handler(sim::InplaceFunction<void(const CrossCompletion&)> handler) override {
    handler_ = std::move(handler);
  }

 private:
  friend class Cluster;

  struct Peer {
    std::uint32_t rack = 0;      // peer rack index
    std::size_t tx_link = 0;     // kernel link id, this rack -> peer
    net::InterRackLink link;     // sender-owned outbound direction
  };

  /// In-flight request bookkeeping, slot-addressed so the reply message
  /// carries a 4-byte handle instead of the whole record.
  struct Pending {
    std::uint32_t token = 0;
    std::uint64_t address = 0;
    bool closed_loop = false;
    bool write = false;
    sim::Time issued_at;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::uint32_t alloc_pending(Pending p) {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = free_list_[slot];
      pending_[slot] = p;
      return slot;
    }
    pending_.push_back(p);
    free_list_.push_back(kNoSlot);
    return static_cast<std::uint32_t>(pending_.size() - 1);
  }

  Pending take_pending(std::uint32_t slot) {
    const Pending p = pending_.at(slot);
    free_list_[slot] = free_head_;
    free_head_ = slot;
    return p;
  }

  /// Peer slot index for a given rack (the rack indices skip our own).
  std::size_t peer_of(std::uint32_t rack) const {
    return rack < rack_ ? rack : rack - 1;
  }

  Cluster& cluster_;
  const std::uint32_t rack_;
  std::vector<Peer> peers_;
  std::vector<Pending> pending_;
  std::vector<std::uint32_t> free_list_;
  std::uint32_t free_head_ = kNoSlot;
  /// Target-side state (written only from this rack's serve events).
  std::uint64_t rx_ = 0;
  sim::Digest served_;
  sim::InplaceFunction<void(const CrossCompletion&)> handler_;
};

Cluster::Cluster(const DatacenterConfig& config)
    : config_{config},
      spine_{optics::SpineSwitchConfig{config.spine.ports, config.spine.switching_time,
                                       config.spine.per_port_power_w,
                                       config.spine.insertion_loss_db}} {
  if (config_.racks.empty()) {
    throw std::invalid_argument("Cluster requires a multi-rack config (config.racks non-empty)");
  }
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid cluster config:";
    for (const auto& error : errors) message += "\n  " + error;
    throw std::invalid_argument(message);
  }
  racks_.reserve(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    racks_.push_back(std::make_unique<Datacenter>(rack_config(config_, r)));
  }
  wire_spine();
  boot_gateways();
  kernel_.set_shard_prologue([this](std::size_t shard) { racks_[shard]->rebind_thread_owner(); });
}

Cluster::~Cluster() = default;

void Cluster::wire_spine() {
  const std::size_t n = racks_.size();
  for (std::size_t r = 0; r < n; ++r) {
    spine_.attach_rack(static_cast<std::uint32_t>(r));
    kernel_.add_shard(racks_[r]->simulator());
    ports_.push_back(std::make_unique<RackPort>(*this, static_cast<std::uint32_t>(r)));
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) spine_.provision(static_cast<std::uint32_t>(a),
                                                            static_cast<std::uint32_t>(b));
  }
  const net::InterRackLinkConfig link_config{config_.spine.propagation,
                                             config_.spine.bandwidth_gbps};
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      RackPort::Peer peer;
      peer.rack = static_cast<std::uint32_t>(to);
      peer.tx_link = kernel_.connect(from, to, config_.spine.propagation);
      peer.link = net::InterRackLink{link_config};
      ports_[from]->peers_.push_back(peer);
    }
  }
}

void Cluster::boot_gateways() {
  gateways_.reserve(racks_.size());
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    Datacenter& dc = *racks_[r];
    const std::string name = "spine-gw-" + std::to_string(r);
    const auto boot = dc.boot_vm(name, 1, kGatewayLocalBytes);
    if (!boot.ok) {
      throw std::runtime_error("rack " + std::to_string(r) + ": gateway VM boot failed: " +
                               boot.error);
    }
    const auto up = dc.scale_up(boot.vm, boot.compute, config_.spine.gateway_bytes);
    if (!up.ok) {
      throw std::runtime_error("rack " + std::to_string(r) + ": gateway window scale-up failed: " +
                               up.error);
    }
    Gateway gw;
    gw.vm = boot.vm;
    gw.compute = boot.compute;
    for (const auto& attachment : dc.fabric().attachments_of(boot.compute)) {
      if (attachment.segment == up.segment && attachment.membrick == up.membrick) {
        gw.base = attachment.compute_base;
        gw.size = attachment.size;
      }
    }
    if (gw.size == 0) {
      throw std::runtime_error("rack " + std::to_string(r) +
                               ": gateway window not visible after scale-up");
    }
    gateways_.push_back(gw);
  }
}

void Cluster::arm_spine_faults(sim::Time base) {
  if (faults_armed_) throw std::logic_error("Cluster: spine faults already armed");
  faults_armed_ = true;
  // Every rack learns about a spine fault through events on its *own*
  // queue (the only thread allowed to touch its links). Only admission
  // is gated by link state, so requests and replies already launched
  // always land.
  for (const auto& fault : config_.spine.faults) {
    const auto down_rack = static_cast<std::uint32_t>(fault.rack);
    const sim::Time down_at = base + fault.at;
    const sim::Time up_at = down_at + fault.duration;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
      RackPort* port = ports_[r].get();
      sim::Simulator& sim = racks_[r]->simulator();
      DREDBOX_INVARIANT(base >= sim.now(),
                        "Cluster::arm_spine_faults: base lies in a rack's past");
      if (r == fault.rack) {
        // The faulted rack loses every outbound direction.
        sim.at(
            down_at,
            [port] {
              for (auto& peer : port->peers_) peer.link.set_up(false);
            },
            "spine.fault");
        sim.at(
            up_at,
            [port] {
              for (auto& peer : port->peers_) peer.link.set_up(true);
            },
            "spine.restore");
      } else {
        // Peers lose (only) their direction toward the faulted rack.
        const std::size_t slot = port->peer_of(down_rack);
        sim.at(
            down_at, [port, slot] { port->peers_[slot].link.set_up(false); }, "spine.fault");
        sim.at(
            up_at, [port, slot] { port->peers_[slot].link.set_up(true); }, "spine.restore");
      }
    }
  }
}

void Cluster::serve(std::uint32_t target, std::uint32_t src, std::uint32_t slot,
                    std::uint64_t address, std::uint32_t bytes, bool write) {
  RackPort& port = *ports_[target];
  ++port.rx_;
  Datacenter& dc = *racks_[target];
  const sim::Time now = dc.simulator().now();
  const Gateway& gw = gateways_[target];
  const memsys::Transaction tx = write ? dc.fabric().write(gw.compute, address, bytes, now)
                                       : dc.fabric().read(gw.compute, address, bytes, now);
  port.served_.update(write ? "w" : "r")
      .update(src)
      .update(address)
      .update(static_cast<std::uint64_t>(tx.status))
      .update(static_cast<std::uint64_t>(tx.completed_at.ticks()));
  // The reply rides the transaction already admitted at request time, so
  // it is sent regardless of the link's current health (in-flight light
  // lands; only new requests fail fast).
  RackPort::Peer& back = port.peers_[port.peer_of(src)];
  const bool ok = tx.ok();
  back.link.on_send(reply_bytes(bytes, write));
  Cluster* cluster = this;
  kernel_.send(
      back.tx_link, tx.completed_at + back.link.one_way(reply_bytes(bytes, write)),
      [cluster, src, slot, ok] { cluster->complete(src, slot, ok); }, "spine.reply");
}

void Cluster::complete(std::uint32_t src, std::uint32_t slot, bool ok) {
  RackPort& port = *ports_[src];
  const RackPort::Pending pending = port.take_pending(slot);
  CrossCompletion completion{pending.token,       pending.address, pending.write,
                             pending.closed_loop, ok,              pending.issued_at,
                             racks_[src]->simulator().now()};
  port.handler_(completion);
}

CrossRackPort& Cluster::port(std::size_t r) { return *ports_.at(r); }

std::uint64_t Cluster::gateway_window_bytes(std::size_t r) const { return gateways_.at(r).size; }

RackLinkStats Cluster::link_stats(std::size_t r) const {
  RackLinkStats stats;
  const RackPort& port = *ports_.at(r);
  for (const auto& peer : port.peers_) {
    stats.tx_messages += peer.link.tx_messages();
    stats.tx_bytes += peer.link.tx_bytes();
    stats.fail_fast += peer.link.fail_fast();
  }
  stats.rx_messages = port.rx_;
  return stats;
}

std::uint64_t Cluster::served_digest(std::size_t r) const {
  return ports_.at(r)->served_.value();
}

sim::PartitionRunStats Cluster::advance_all(sim::Time until, std::size_t threads) {
  const std::vector<sim::Time> horizons(racks_.size(), until);
  return kernel_.run(horizons, threads);
}

double Cluster::power_draw_watts() const {
  double watts = spine_.power_draw_watts();
  for (const auto& rack : racks_) watts += rack->power_draw_watts();
  return watts;
}

std::string Cluster::describe() const {
  std::string out = sim::strformat("Cluster: %zu racks over an optical spine\n", racks_.size());
  out += spine_.describe();
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    out += sim::strformat("rack %zu: gateway window %llu MiB at 0x%llx\n", r,
                          static_cast<unsigned long long>(gateways_[r].size >> 20),
                          static_cast<unsigned long long>(gateways_[r].base));
  }
  return out;
}

}  // namespace dredbox::core
