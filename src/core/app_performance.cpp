#include "core/app_performance.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::core {

double DisaggregationSlowdownModel::remote_access_fraction(const AppProfile& app,
                                                           double remote_fraction) const {
  if (remote_fraction < 0.0 || remote_fraction > 1.0) {
    throw std::invalid_argument("remote_fraction outside [0, 1]");
  }
  return std::clamp(app.miss_intensity * remote_fraction, 0.0, 1.0);
}

double DisaggregationSlowdownModel::slowdown(const AppProfile& app, double remote_fraction,
                                             sim::Time remote_latency) const {
  if (app.mlp <= 0 || app.accesses_per_sec < 0) {
    throw std::invalid_argument("invalid application profile");
  }
  const double f = remote_access_fraction(app, remote_fraction);
  const double extra_ns =
      std::max(0.0, (remote_latency - app.local_latency).as_ns());
  // Extra stall seconds accumulated per second of native execution.
  const double stall = app.accesses_per_sec * f * extra_ns * 1e-9 / app.mlp;
  return 1.0 + stall;
}

sim::Time DisaggregationSlowdownModel::latency_budget(const AppProfile& app,
                                                      double remote_fraction,
                                                      double limit) const {
  if (limit <= 1.0) {
    throw std::invalid_argument("latency_budget: limit must exceed 1.0");
  }
  const double f = remote_access_fraction(app, remote_fraction);
  if (f <= 0.0 || app.accesses_per_sec <= 0.0) return sim::Time::infinity();
  const double extra_ns = (limit - 1.0) * app.mlp / (app.accesses_per_sec * f) * 1e9;
  return app.local_latency + sim::Time::ns(extra_ns);
}

std::vector<AppProfile> DisaggregationSlowdownModel::reference_profiles() {
  // Intensities/rates in the ranges the disaggregation literature uses:
  // streaming analytics tolerate latency; pointer-chasing databases and
  // key-value stores do not.
  return {
      AppProfile{"video analytics (streaming)", 0.35, 8e6, 8.0, sim::Time::ns(100)},
      AppProfile{"NFV key server (low footprint)", 0.20, 5e6, 4.0, sim::Time::ns(100)},
      AppProfile{"network analytics (batch)", 0.50, 1.2e7, 6.0, sim::Time::ns(100)},
      AppProfile{"memory-intensive analytics", 0.60, 2e7, 8.0, sim::Time::ns(100)},
      AppProfile{"in-memory KV store (pointer-chasing)", 0.90, 4e7, 2.0, sim::Time::ns(100)},
  };
}

}  // namespace dredbox::core
