#include "core/datacenter.hpp"

#include <stdexcept>

namespace dredbox::core {

Datacenter::Datacenter(const DatacenterConfig& config)
    : config_{config},
      sim_{config.seed},
      switch_{config.optical_switch},
      circuits_{switch_},
      fabric_{rack_, circuits_, config.circuit_path},
      packet_net_{config.packet_path},
      sdm_{rack_, fabric_, circuits_, config.sdm},
      openstack_{sdm_},
      migration_{rack_, fabric_, sdm_, config.migration},
      oom_guard_{sdm_, config.oom_guard},
      accel_mgr_{rack_, config.accelerators},
      power_mgr_{rack_, config.power_policy} {
  if (config.enable_power_management) {
    sdm_.set_power_manager(&power_mgr_);
  }
  fabric_.set_packet_network(&packet_net_);

  // Wire the shared telemetry bundle into every layer. Each subsystem
  // caches its instrument pointers now, so instrumented hot paths never
  // do a registry lookup (and cost one branch while telemetry is off).
  circuits_.set_telemetry(&telemetry_);
  fabric_.set_telemetry(&telemetry_);
  packet_net_.set_telemetry(&telemetry_);
  sdm_.set_telemetry(&telemetry_);
  migration_.set_telemetry(&telemetry_);
  power_mgr_.set_telemetry(&telemetry_);

  for (std::size_t t = 0; t < config.trays; ++t) {
    const hw::TrayId tray = rack_.add_tray();
    for (std::size_t i = 0; i < config.compute_bricks_per_tray; ++i) {
      auto& brick = rack_.add_compute_brick(tray, config.compute);
      brick.tgl().set_telemetry(&telemetry_);
      auto& stack = stacks_[brick.id()];
      stack.os = std::make_unique<os::BareMetalOs>(brick, os::MemoryHotplug::kDefaultBlockBytes,
                                                   config.hotplug);
      stack.hypervisor =
          std::make_unique<hyp::Hypervisor>(brick, *stack.os, config.hypervisor);
      stack.hypervisor->set_telemetry(&telemetry_);
      stack.agent = std::make_unique<orch::SdmAgent>(*stack.hypervisor, *stack.os);
      sdm_.register_agent(*stack.agent);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
    for (std::size_t i = 0; i < config.memory_bricks_per_tray; ++i) {
      auto& brick = rack_.add_memory_brick(tray, config.memory);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
    for (std::size_t i = 0; i < config.accelerator_bricks_per_tray; ++i) {
      auto& brick = rack_.add_accelerator_brick(tray, config.accelerator);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
  }

  // Program the packet substrate pairwise between every compute and
  // memory brick (the exploratory fallback path is always reachable).
  for (hw::BrickId cb : compute_bricks()) {
    for (hw::BrickId mb : memory_bricks()) {
      packet_net_.connect(cb, mb);
    }
  }
}

os::BareMetalOs& Datacenter::os_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::os_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.os;
}

hyp::Hypervisor& Datacenter::hypervisor_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::hypervisor_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.hypervisor;
}

orch::SdmAgent& Datacenter::agent_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::agent_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.agent;
}

optics::MidBoardOptics& Datacenter::mbo_of(hw::BrickId brick) {
  auto it = mbos_.find(brick);
  if (it == mbos_.end()) {
    throw std::out_of_range("Datacenter::mbo_of: unknown brick " + brick.to_string());
  }
  return *it->second;
}

orch::AllocationResult Datacenter::boot_vm(const std::string& name, std::size_t vcpus,
                                           std::uint64_t memory_bytes) {
  auto result = openstack_.boot(name, vcpus, memory_bytes, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kOrchestration,
                   "booted '" + name + "' as vm#" + result.vm.to_string() + " on brick " +
                       result.compute.to_string() + " (" +
                       std::to_string(result.remote_bytes >> 20) + " MiB remote)");
  } else {
    telemetry_.tracer().record(sim_.now(), sim::TraceCategory::kOrchestration,
                   "boot of '" + name + "' failed: " + result.error);
  }
  return result;
}

orch::ScaleUpResult Datacenter::scale_up(hw::VmId vm, hw::BrickId compute,
                                         std::uint64_t bytes) {
  orch::ScaleUpRequest request;
  request.vm = vm;
  request.compute = compute;
  request.bytes = bytes;
  request.posted_at = sim_.now();
  auto result = sdm_.scale_up(request);
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kFabric,
                   "scale-up vm#" + vm.to_string() + " +" + std::to_string(bytes >> 20) +
                       " MiB from dMEMBRICK " + result.membrick.to_string() + " in " +
                       result.delay().to_string());
  } else {
    telemetry_.tracer().record(sim_.now(), sim::TraceCategory::kFabric,
                   "scale-up vm#" + vm.to_string() + " failed: " + result.error);
  }
  return result;
}

orch::ScaleUpResult Datacenter::scale_down(hw::VmId vm, hw::BrickId compute,
                                           hw::SegmentId segment) {
  auto result = sdm_.scale_down(vm, compute, segment, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kFabric,
                   "scale-down vm#" + vm.to_string() + " released segment " +
                       segment.to_string() + " in " + result.delay().to_string());
  }
  return result;
}

memsys::Transaction Datacenter::remote_read(hw::BrickId compute, std::uint64_t address,
                                            std::uint32_t bytes) {
  return fabric_.read(compute, address, bytes, sim_.now());
}

orch::MigrationResult Datacenter::migrate_vm(hw::VmId vm, hw::BrickId from, hw::BrickId to) {
  auto result = migration_.migrate(vm, from, to, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(sim_.now() + result.total_time, sim::TraceCategory::kMigration,
                   "migrated vm#" + vm.to_string() + " brick " + from.to_string() + " -> " +
                       to.to_string() + " (copied " +
                       std::to_string(result.copied_bytes >> 20) + " MiB, re-pointed " +
                       std::to_string(result.repointed_bytes >> 20) + " MiB, downtime " +
                       result.downtime.to_string() + ")");
  }
  return result;
}

void Datacenter::advance_to(sim::Time t) {
  if (t > sim_.now()) sim_.run_until(t);
}

double Datacenter::power_draw_watts() const {
  return rack_.power_draw_watts(config_.power, switch_.ports_in_use());
}

std::string Datacenter::describe() const {
  return rack_.describe() + "\n" + switch_.describe();
}

}  // namespace dredbox::core
