#include "core/datacenter.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sim/digest.hpp"
#include "sim/format.hpp"

namespace dredbox::core {

namespace {

/// Worst plausible receiver sensitivity: no deployable photodetector
/// recovers a signal this faint, so a link budget that lands below it is
/// a configuration error, not a marginal design.
constexpr double kAbsurdSensitivityDbm = -40.0;

void require(std::vector<std::string>& errors, bool ok, const std::string& message) {
  if (!ok) errors.push_back(message);
}

void require_non_negative(std::vector<std::string>& errors, sim::Time t, const char* field) {
  if (t < sim::Time::zero()) {
    errors.push_back(sim::strformat("%s: control-path time must be non-negative, got %s",
                                    field, t.to_string().c_str()));
  }
}

}  // namespace

std::vector<std::string> DatacenterConfig::validate() const {
  std::vector<std::string> errors;

  // --- rack shape ---
  require(errors, trays >= 1, "trays: rack must carry at least one tray");
  const std::size_t bricks_per_tray =
      compute_bricks_per_tray + memory_bricks_per_tray + accelerator_bricks_per_tray;
  require(errors, trays == 0 || bricks_per_tray >= 1,
          "compute_bricks_per_tray/memory_bricks_per_tray/accelerator_bricks_per_tray: "
          "zero-brick rack (every per-tray brick count is 0)");

  // --- optical switch ---
  require(errors, optical_switch.ports >= 2,
          sim::strformat("optical_switch.ports: switch radix must be >= 2, got %zu",
                         optical_switch.ports));
  require(errors,
          std::isfinite(optical_switch.insertion_loss_db) &&
              optical_switch.insertion_loss_db >= 0.0,
          sim::strformat("optical_switch.insertion_loss_db: must be finite and >= 0, got %g",
                         optical_switch.insertion_loss_db));
  require(errors, optical_switch.power_per_port_w >= 0.0,
          sim::strformat("optical_switch.power_per_port_w: must be >= 0, got %g",
                         optical_switch.power_per_port_w));
  require_non_negative(errors, optical_switch.reconfiguration_time,
                       "optical_switch.reconfiguration_time");

  // --- per-brick resources (checked only for brick kinds the rack hosts) ---
  const auto check_ports = [&](std::size_t ports, const char* field) {
    require(errors, ports >= 1,
            sim::strformat("%s: brick needs at least one circuit-facing port", field));
    require(errors, ports <= optical_switch.ports,
            sim::strformat("%s: %zu transceiver lanes exceed the optical switch radix "
                           "(optical_switch.ports = %zu)",
                           field, ports, optical_switch.ports));
  };
  if (compute_bricks_per_tray > 0) {
    require(errors, compute.apu_cores >= 1, "compute.apu_cores: must be >= 1");
    require(errors, compute.local_memory_bytes > 0,
            "compute.local_memory_bytes: brick-local DDR must be non-empty");
    check_ports(compute.transceiver_ports, "compute.transceiver_ports");
    require(errors, compute.port_rate_gbps > 0.0,
            sim::strformat("compute.port_rate_gbps: line rate must be positive, got %g",
                           compute.port_rate_gbps));
    require(errors, compute.rmst_entries >= 1,
            "compute.rmst_entries: the segment table needs at least one entry");
    require(errors, compute.remote_window_base > compute.local_memory_bytes,
            "compute.remote_window_base: remote window must sit above local DDR");
  }
  if (memory_bricks_per_tray > 0) {
    require(errors, memory.capacity_bytes > 0,
            "memory.capacity_bytes: dMEMBRICK pool must be non-empty");
    require(errors, memory.memory_controllers >= 1,
            "memory.memory_controllers: must be >= 1");
    check_ports(memory.transceiver_ports, "memory.transceiver_ports");
    require(errors, memory.port_rate_gbps > 0.0,
            sim::strformat("memory.port_rate_gbps: line rate must be positive, got %g",
                           memory.port_rate_gbps));
  }
  if (accelerator_bricks_per_tray > 0) {
    require(errors, accelerator.pl_ddr_bytes > 0,
            "accelerator.pl_ddr_bytes: accelerator-local DDR must be non-empty");
    check_ports(accelerator.transceiver_ports, "accelerator.transceiver_ports");
    require(errors, accelerator.port_rate_gbps > 0.0,
            sim::strformat("accelerator.port_rate_gbps: line rate must be positive, got %g",
                           accelerator.port_rate_gbps));
    require(errors, accelerator.pcap_bandwidth_bytes_per_sec > 0.0,
            "accelerator.pcap_bandwidth_bytes_per_sec: PCAP rate must be positive");
  }

  // --- mid-board optics & link budget ---
  require(errors, mbo.channels >= 1, "mbo.channels: MBO needs at least one transceiver");
  require(errors, mbo.channels <= optical_switch.ports,
          sim::strformat("mbo.channels: %zu channels exceed the optical switch radix "
                         "(optical_switch.ports = %zu)",
                         mbo.channels, optical_switch.ports));
  require(errors, mbo.rate_gbps > 0.0,
          sim::strformat("mbo.rate_gbps: line rate must be positive, got %g", mbo.rate_gbps));
  require(errors, std::isfinite(mbo.coupling_loss_db) && mbo.coupling_loss_db >= 0.0,
          sim::strformat("mbo.coupling_loss_db: must be finite and >= 0, got %g",
                         mbo.coupling_loss_db));
  require(errors, mbo.channel_spread_db >= 0.0,
          sim::strformat("mbo.channel_spread_db: must be >= 0, got %g", mbo.channel_spread_db));
  require(errors, mbo.wavelength_nm > 0.0,
          sim::strformat("mbo.wavelength_nm: must be positive, got %g", mbo.wavelength_nm));
  if (std::isfinite(mbo.mean_launch_dbm) && std::isfinite(mbo.coupling_loss_db) &&
      std::isfinite(optical_switch.insertion_loss_db)) {
    // Single-hop budget: launch power minus both fibre couplings and one
    // switch traversal. A non-positive budget (below any receiver) means
    // the configured losses consume the whole launch power.
    const double received_dbm = mbo.mean_launch_dbm - 2.0 * mbo.coupling_loss_db -
                                optical_switch.insertion_loss_db;
    require(errors, received_dbm > kAbsurdSensitivityDbm,
            sim::strformat("mbo.mean_launch_dbm: single-hop link budget is not positive "
                           "(%.1f dBm launch - %.1f dB coupling - %.1f dB insertion = "
                           "%.1f dBm received, below the %.1f dBm floor)",
                           mbo.mean_launch_dbm, 2.0 * mbo.coupling_loss_db,
                           optical_switch.insertion_loss_db, received_dbm,
                           kAbsurdSensitivityDbm));
  } else {
    require(errors, false, "mbo.mean_launch_dbm: link-budget terms must be finite");
  }

  // --- data-path latency models ---
  require_non_negative(errors, circuit_path.tgl_lookup, "circuit_path.tgl_lookup");
  require_non_negative(errors, circuit_path.serdes, "circuit_path.serdes");
  require_non_negative(errors, circuit_path.glue_logic, "circuit_path.glue_logic");
  require_non_negative(errors, circuit_path.ddr_access, "circuit_path.ddr_access");
  require_non_negative(errors, circuit_path.hmc_access, "circuit_path.hmc_access");
  require(errors, circuit_path.line_rate_gbps > 0.0,
          "circuit_path.line_rate_gbps: must be positive");
  require(errors, circuit_path.ddr_bandwidth_gbps > 0.0,
          "circuit_path.ddr_bandwidth_gbps: must be positive");
  require(errors, circuit_path.hmc_bandwidth_gbps > 0.0,
          "circuit_path.hmc_bandwidth_gbps: must be positive");
  require(errors, circuit_path.electrical_rate_gbps > 0.0,
          "circuit_path.electrical_rate_gbps: must be positive");

  // --- control-path service times ---
  require_non_negative(errors, sdm.api_relay, "sdm.api_relay");
  require_non_negative(errors, sdm.inspect_and_select, "sdm.inspect_and_select");
  require_non_negative(errors, sdm.agent_rpc, "sdm.agent_rpc");
  require_non_negative(errors, sdm.glue_configure, "sdm.glue_configure");
  require_non_negative(errors, sdm.hypervisor_handoff, "sdm.hypervisor_handoff");
  require_non_negative(errors, hotplug.fixed_cost, "hotplug.fixed_cost");
  require_non_negative(errors, hotplug.per_gib_cost, "hotplug.per_gib_cost");
  require_non_negative(errors, hotplug.remove_fixed_cost, "hotplug.remove_fixed_cost");
  require_non_negative(errors, hotplug.remove_per_gib_cost, "hotplug.remove_per_gib_cost");
  require_non_negative(errors, hypervisor.dimm_insert_fixed, "hypervisor.dimm_insert_fixed");
  require_non_negative(errors, hypervisor.guest_online_per_gib,
                       "hypervisor.guest_online_per_gib");
  require_non_negative(errors, hypervisor.balloon_per_gib, "hypervisor.balloon_per_gib");

  // --- orchestration policies ---
  require(errors, migration.network_bandwidth_gbps > 0.0,
          "migration.network_bandwidth_gbps: must be positive");
  require(errors, migration.max_precopy_iterations >= 1,
          "migration.max_precopy_iterations: must be >= 1");
  require(errors,
          oom_guard.pressure_threshold > 0.0 && oom_guard.pressure_threshold <= 1.0,
          sim::strformat("oom_guard.pressure_threshold: must be in (0, 1], got %g",
                         oom_guard.pressure_threshold));
  require(errors, oom_guard.relax_threshold < oom_guard.pressure_threshold,
          sim::strformat("oom_guard.relax_threshold: must be below pressure_threshold "
                         "(%g >= %g)",
                         oom_guard.relax_threshold, oom_guard.pressure_threshold));
  require(errors, oom_guard.scale_chunk_bytes > 0,
          "oom_guard.scale_chunk_bytes: must be positive");

  // --- retry policy ---
  if (fabric_retry) {
    try {
      fabric_retry->validate();
    } catch (const std::invalid_argument& e) {
      errors.push_back(std::string{"fabric_retry: "} + e.what());
    }
  }

  // --- multi-rack topology (only armed when racks were declared) ---
  if (!racks.empty()) {
    for (std::size_t i = 0; i < racks.size(); ++i) {
      const RackSpec& rack = racks[i];
      require(errors, rack.trays >= 1,
              sim::strformat("racks[%zu].trays: rack must carry at least one tray", i));
      require(errors,
              rack.compute_bricks_per_tray + rack.memory_bricks_per_tray +
                      rack.accelerator_bricks_per_tray >= 1,
              sim::strformat("racks[%zu]: rack needs at least one brick per tray", i));
      require(errors, rack.compute_bricks_per_tray >= 1,
              sim::strformat("racks[%zu].compute_bricks_per_tray: a cluster rack needs a "
                             "compute brick to host its spine gateway",
                             i));
      require(errors, rack.memory_bricks_per_tray >= 1,
              sim::strformat("racks[%zu].memory_bricks_per_tray: a cluster rack needs "
                             "memory bricks to export a gateway window",
                             i));
    }
    require(errors, spine.ports >= racks.size(),
            sim::strformat("spine.ports: radix %zu below the %zu racks to attach",
                           spine.ports, racks.size()));
    require(errors, spine.propagation > sim::Time::zero(),
            "spine.propagation: must be strictly positive (it is the partitioned "
            "kernel's conservative lookahead)");
    require(errors, spine.bandwidth_gbps > 0.0,
            "spine.bandwidth_gbps: must be positive");
    require(errors, spine.switching_time >= sim::Time::zero(),
            "spine.switching_time: cannot be negative");
    require(errors, spine.per_port_power_w >= 0.0,
            "spine.per_port_power_w: cannot be negative");
    require(errors, spine.insertion_loss_db >= 0.0,
            "spine.insertion_loss_db: cannot be negative");
    require(errors, spine.gateway_bytes >= (1u << 20),
            "spine.gateway_bytes: each rack's cross-rack window needs at least 1 MiB");
    require(errors, spine.cross_share >= 0.0 && spine.cross_share <= 1.0,
            sim::strformat("spine.cross_share: %g outside [0, 1]", spine.cross_share));
    for (std::size_t i = 0; i < spine.faults.size(); ++i) {
      const SpineFaultSpec& fault = spine.faults[i];
      require(errors, fault.rack < racks.size(),
              sim::strformat("spine.faults[%zu].rack: rack %zu out of range (%zu racks)",
                             i, fault.rack, racks.size()));
      require(errors, fault.at >= sim::Time::zero(),
              sim::strformat("spine.faults[%zu].at: cannot be negative", i));
      require(errors, fault.duration > sim::Time::zero(),
              sim::strformat("spine.faults[%zu].duration: must be positive", i));
    }
  }
  require(errors, partitions >= 1,
          "partitions: parallel cluster runs need at least one worker thread");
  return errors;
}

std::uint64_t DatacenterConfig::digest() const {
  sim::Digest d;
  const auto fold_double = [&d](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    d.update(bits);
  };
  const auto fold_time = [&d](sim::Time t) {
    d.update(static_cast<std::uint64_t>(t.ticks()));
  };
  d.update(static_cast<std::uint64_t>(trays));
  d.update(static_cast<std::uint64_t>(compute_bricks_per_tray));
  d.update(static_cast<std::uint64_t>(memory_bricks_per_tray));
  d.update(static_cast<std::uint64_t>(accelerator_bricks_per_tray));
  d.update(seed);
  d.update(static_cast<std::uint64_t>(enable_power_management ? 1 : 0));
  d.update(static_cast<std::uint64_t>(compute.apu_cores));
  d.update(compute.local_memory_bytes);
  d.update(static_cast<std::uint64_t>(compute.transceiver_ports));
  fold_double(compute.port_rate_gbps);
  d.update(memory.capacity_bytes);
  d.update(static_cast<std::uint64_t>(memory.technology == hw::MemoryTechnology::kHmc ? 1 : 0));
  d.update(static_cast<std::uint64_t>(optical_switch.ports));
  fold_double(optical_switch.insertion_loss_db);
  fold_time(optical_switch.reconfiguration_time);
  fold_time(circuit_path.tgl_lookup);
  fold_time(circuit_path.serdes);
  fold_time(circuit_path.glue_logic);
  fold_time(circuit_path.ddr_access);
  fold_double(circuit_path.line_rate_gbps);
  fold_time(packet_path.tgl_inject);
  fold_time(packet_path.compubrick_switch);
  fold_time(packet_path.membrick_switch);
  fold_time(sdm.api_relay);
  fold_time(sdm.inspect_and_select);
  fold_time(sdm.agent_rpc);
  fold_time(hotplug.fixed_cost);
  fold_time(hypervisor.dimm_insert_fixed);
  d.update(static_cast<std::uint64_t>(prefer_optical_attach ? 1 : 0));
  d.update(static_cast<std::uint64_t>(fabric_retry.has_value() ? 1 : 0));
  if (fabric_retry) {
    d.update(static_cast<std::uint64_t>(fabric_retry->max_attempts));
    fold_time(fabric_retry->initial_backoff);
    fold_time(fabric_retry->timeout);
  }
  // Multi-rack topology folds only when declared, so a single-rack
  // config's digest is byte-identical to what it was before these fields
  // existed (the examples' digest pins rely on this).
  if (!racks.empty()) {
    d.update("racks").update(static_cast<std::uint64_t>(racks.size()));
    for (const RackSpec& rack : racks) {
      d.update(static_cast<std::uint64_t>(rack.trays));
      d.update(static_cast<std::uint64_t>(rack.compute_bricks_per_tray));
      d.update(static_cast<std::uint64_t>(rack.memory_bricks_per_tray));
      d.update(static_cast<std::uint64_t>(rack.accelerator_bricks_per_tray));
    }
    d.update("spine").update(static_cast<std::uint64_t>(spine.ports));
    fold_time(spine.propagation);
    fold_double(spine.bandwidth_gbps);
    fold_time(spine.switching_time);
    fold_double(spine.per_port_power_w);
    fold_double(spine.insertion_loss_db);
    d.update(spine.gateway_bytes);
    fold_double(spine.cross_share);
    d.update(static_cast<std::uint64_t>(spine.faults.size()));
    for (const SpineFaultSpec& fault : spine.faults) {
      d.update(static_cast<std::uint64_t>(fault.rack));
      fold_time(fault.at);
      fold_time(fault.duration);
    }
    d.update(static_cast<std::uint64_t>(partitions));
  }
  return d.value();
}

namespace {

/// Gate run before any hardware is assembled: every validate() finding is
/// reported at once, so a caller fixing a config sees the whole list.
DatacenterConfig checked(const DatacenterConfig& config) {
  const auto errors = config.validate();
  if (!errors.empty()) {
    std::string message = "invalid DatacenterConfig:";
    for (const auto& e : errors) message += "\n  - " + e;
    throw std::invalid_argument(message);
  }
  return config;
}

}  // namespace

Datacenter::Datacenter(const DatacenterConfig& config)
    : config_{checked(config)},
      sim_{config.seed},
      switch_{config.optical_switch},
      circuits_{switch_},
      fabric_{rack_, circuits_, config.circuit_path},
      packet_net_{config.packet_path},
      sdm_{rack_, fabric_, circuits_, config.sdm},
      openstack_{sdm_},
      migration_{rack_, fabric_, sdm_, config.migration},
      oom_guard_{sdm_, config.oom_guard},
      accel_mgr_{rack_, config.accelerators},
      power_mgr_{rack_, config.power_policy} {
  if (config.enable_power_management) {
    sdm_.set_power_manager(&power_mgr_);
  }
  fabric_.set_packet_network(&packet_net_);
  fabric_.set_retry_policy(config.fabric_retry);
  sdm_.set_prefer_optical(config.prefer_optical_attach);

  // Wire the shared telemetry bundle into every layer. Each subsystem
  // caches its instrument pointers now, so instrumented hot paths never
  // do a registry lookup (and cost one branch while telemetry is off).
  // Trace-id minting rides its own splitmix64 stream seeded from the run
  // seed: deterministic span identities without touching the sim Rng.
  telemetry_.tracer().seed_trace_ids(config.seed);

  circuits_.set_telemetry(&telemetry_);
  fabric_.set_telemetry(&telemetry_);
  packet_net_.set_telemetry(&telemetry_);
  sdm_.set_telemetry(&telemetry_);
  migration_.set_telemetry(&telemetry_);
  power_mgr_.set_telemetry(&telemetry_);

  for (std::size_t t = 0; t < config.trays; ++t) {
    const hw::TrayId tray = rack_.add_tray();
    for (std::size_t i = 0; i < config.compute_bricks_per_tray; ++i) {
      auto& brick = rack_.add_compute_brick(tray, config.compute);
      brick.tgl().set_telemetry(&telemetry_);
      auto& stack = stacks_[brick.id()];
      stack.os = std::make_unique<os::BareMetalOs>(brick, os::MemoryHotplug::kDefaultBlockBytes,
                                                   config.hotplug);
      stack.hypervisor =
          std::make_unique<hyp::Hypervisor>(brick, *stack.os, config.hypervisor);
      stack.hypervisor->set_telemetry(&telemetry_);
      stack.agent = std::make_unique<orch::SdmAgent>(*stack.hypervisor, *stack.os);
      sdm_.register_agent(*stack.agent);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
    for (std::size_t i = 0; i < config.memory_bricks_per_tray; ++i) {
      auto& brick = rack_.add_memory_brick(tray, config.memory);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
    for (std::size_t i = 0; i < config.accelerator_bricks_per_tray; ++i) {
      auto& brick = rack_.add_accelerator_brick(tray, config.accelerator);
      mbos_.emplace(brick.id(), std::make_unique<optics::MidBoardOptics>(config.mbo, sim_.rng()));
      packet_net_.add_brick(brick.id());
    }
  }

  // Program the packet substrate pairwise between every compute and
  // memory brick (the exploratory fallback path is always reachable).
  for (hw::BrickId cb : compute_bricks()) {
    for (hw::BrickId mb : memory_bricks()) {
      packet_net_.connect(cb, mb);
    }
  }

  injector_.set_telemetry(&telemetry_);
  wire_fault_handlers();
}

void Datacenter::repair_all_down() {
  // repair() heals every attachment sharing the re-provisioned circuit, so
  // later entries of this deterministic record-order sweep usually find
  // theirs healthy already.
  for (const auto& a : fabric_.all_attachments()) {
    if (a.medium != memsys::LinkMedium::kOptical) continue;
    if (circuits_.find(a.circuit).has_value()) continue;
    fabric_.repair(a.compute, a.segment, sim_.now());
  }
}

void Datacenter::wire_fault_handlers() {
  using sim::FaultKind;

  // Link flap: one optical circuit drops (target = circuit id; 0 picks the
  // first live optical attachment). Recovery re-provisions every downed
  // attachment through the beam-steering switch.
  injector_.on(FaultKind::kLinkFlap, [this](const sim::FaultEvent& e) {
    hw::CircuitId victim{static_cast<std::uint32_t>(e.target)};
    if (e.target == 0) {
      victim = hw::CircuitId{};
      for (const auto& a : fabric_.all_attachments()) {
        if (a.medium == memsys::LinkMedium::kOptical && circuits_.find(a.circuit)) {
          victim = a.circuit;
          break;
        }
      }
    }
    if (victim.valid()) fabric_.fail_circuit(victim);
  });
  injector_.on_recover(FaultKind::kLinkFlap,
                       [this](const sim::FaultEvent&) { repair_all_down(); });

  // Insertion-loss drift: every port's loss rises by `magnitude` dB and
  // circuits whose pre-FEC BER falls below the correctable floor are torn
  // down. Recovery removes the drift and re-provisions.
  injector_.on(FaultKind::kInsertionLossDrift, [this](const sim::FaultEvent& e) {
    const double drift = e.magnitude != 0.0 ? e.magnitude : 1.0;
    switch_.set_insertion_loss_drift_db(switch_.insertion_loss_drift_db() + drift);
    fabric_.on_circuits_torn(circuits_.teardown_below_floor());
  });
  injector_.on_recover(FaultKind::kInsertionLossDrift, [this](const sim::FaultEvent& e) {
    const double drift = e.magnitude != 0.0 ? e.magnitude : 1.0;
    switch_.set_insertion_loss_drift_db(switch_.insertion_loss_drift_db() - drift);
    repair_all_down();
  });

  // Switch-port failure: the port dies and every circuit (and bonded
  // sibling lane) riding it is torn down. Recovery repairs failed ports
  // and re-provisions downed attachments on fresh ports.
  injector_.on(FaultKind::kSwitchPortFailure, [this](const sim::FaultEvent& e) {
    std::size_t port = static_cast<std::size_t>(e.target);
    if (e.target == 0 && !switch_.peer(0).has_value()) {
      for (std::size_t p = 0; p < switch_.port_count(); ++p) {
        if (switch_.peer(p).has_value()) {
          port = p;
          break;
        }
      }
    }
    if (port < switch_.port_count() && !switch_.port_failed(port)) {
      fabric_.on_circuits_torn(circuits_.fail_switch_port(port));
    }
  });
  injector_.on_recover(FaultKind::kSwitchPortFailure, [this](const sim::FaultEvent&) {
    for (std::size_t p = 0; p < switch_.port_count(); ++p) {
      if (switch_.port_failed(p)) circuits_.repair_switch_port(p);
    }
    repair_all_down();
  });

  // Packet-substrate bursts: congestion multiplies queueing/serialization,
  // a loss burst charges `magnitude` retransmissions per packet.
  injector_.on(FaultKind::kCongestionBurst, [this](const sim::FaultEvent& e) {
    packet_net_.set_congestion_factor(e.magnitude > 1.0 ? e.magnitude : 4.0);
  });
  injector_.on_recover(FaultKind::kCongestionBurst, [this](const sim::FaultEvent&) {
    packet_net_.set_congestion_factor(1.0);
  });
  injector_.on(FaultKind::kLossBurst, [this](const sim::FaultEvent& e) {
    packet_net_.set_loss_retransmissions(e.magnitude > 0.0 ? e.magnitude : 2.0);
  });
  injector_.on_recover(FaultKind::kLossBurst, [this](const sim::FaultEvent&) {
    packet_net_.set_loss_retransmissions(0.0);
  });

  // Brick crash: the brick goes dark; a crashed dMEMBRICK's segments are
  // evacuated by the SDM-C (graceful degradation for whatever cannot be
  // relocated). target = brick id; 0 picks the first dMEMBRICK serving an
  // attachment, then the first live dMEMBRICK.
  injector_.on(FaultKind::kBrickCrash, [this](const sim::FaultEvent& e) {
    hw::BrickId victim{static_cast<std::uint32_t>(e.target)};
    if (e.target == 0) {
      victim = hw::BrickId{};
      for (const auto& a : fabric_.all_attachments()) {
        if (!rack_.brick(a.membrick).failed()) {
          victim = a.membrick;
          break;
        }
      }
      if (!victim.valid()) {
        for (hw::BrickId mb : memory_bricks()) {
          if (!rack_.brick(mb).failed()) {
            victim = mb;
            break;
          }
        }
      }
    }
    if (!victim.valid() || !rack_.has_brick(victim)) return;
    hw::Brick& brick = rack_.brick(victim);
    if (brick.failed()) return;
    brick.fail();
    if (brick.kind() == hw::BrickKind::kMemory) {
      sdm_.evacuate_membrick(victim, sim_.now());
    }
  });
  const auto restart = [this](const sim::FaultEvent& e) {
    hw::BrickId victim{static_cast<std::uint32_t>(e.target)};
    if (e.target == 0) {
      victim = hw::BrickId{};
      for (hw::BrickId id : rack_.all_bricks()) {
        if (rack_.brick(id).failed()) {
          victim = id;
          break;
        }
      }
    }
    if (!victim.valid() || !rack_.has_brick(victim)) return;
    hw::Brick& brick = rack_.brick(victim);
    if (!brick.failed()) return;
    brick.restore();
    if (brick.kind() == hw::BrickKind::kMemory) {
      sdm_.note_brick_recovered(victim);
    }
  };
  injector_.on_recover(FaultKind::kBrickCrash, restart);
  injector_.on(FaultKind::kBrickRestart, restart);

  // RMST corruption: one translation entry on a dCOMPUBRICK is mangled
  // (target = compute brick, 0 picks the first with attachments; aux =
  // attachment ordinal). The fabric's scrub path repairs it on demand.
  injector_.on(FaultKind::kRmstCorruption, [this](const sim::FaultEvent& e) {
    hw::BrickId victim{static_cast<std::uint32_t>(e.target)};
    if (e.target == 0) {
      victim = hw::BrickId{};
      for (const auto& a : fabric_.all_attachments()) {
        victim = a.compute;
        break;
      }
    }
    if (victim.valid() && rack_.has_brick(victim)) {
      fabric_.corrupt_rmst(victim, static_cast<std::size_t>(e.aux));
    }
  });

  // SDM-C stall: the serialized inspect+reserve queue stops draining.
  injector_.on(FaultKind::kControllerStall, [this](const sim::FaultEvent& e) {
    sdm_.stall(sim_.now(),
               e.duration > sim::Time::zero() ? e.duration : sim::Time::ms(10));
  });
}

os::BareMetalOs& Datacenter::os_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::os_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.os;
}

hyp::Hypervisor& Datacenter::hypervisor_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::hypervisor_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.hypervisor;
}

orch::SdmAgent& Datacenter::agent_of(hw::BrickId compute) {
  auto it = stacks_.find(compute);
  if (it == stacks_.end()) {
    throw std::out_of_range("Datacenter::agent_of: brick " + compute.to_string() +
                            " is not a compute brick");
  }
  return *it->second.agent;
}

optics::MidBoardOptics& Datacenter::mbo_of(hw::BrickId brick) {
  auto it = mbos_.find(brick);
  if (it == mbos_.end()) {
    throw std::out_of_range("Datacenter::mbo_of: unknown brick " + brick.to_string());
  }
  return *it->second;
}

const os::BareMetalOs& Datacenter::os_of(hw::BrickId compute) const {
  return const_cast<Datacenter*>(this)->os_of(compute);  // NOLINT: shares lookup/throw path
}

const hyp::Hypervisor& Datacenter::hypervisor_of(hw::BrickId compute) const {
  return const_cast<Datacenter*>(this)->hypervisor_of(compute);  // NOLINT
}

const orch::SdmAgent& Datacenter::agent_of(hw::BrickId compute) const {
  return const_cast<Datacenter*>(this)->agent_of(compute);  // NOLINT
}

const optics::MidBoardOptics& Datacenter::mbo_of(hw::BrickId brick) const {
  return const_cast<Datacenter*>(this)->mbo_of(brick);  // NOLINT
}

orch::AllocationResult Datacenter::boot_vm(const std::string& name, std::size_t vcpus,
                                           std::uint64_t memory_bytes) {
  auto result = openstack_.boot(name, vcpus, memory_bytes, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kOrchestration,
                   "booted '" + name + "' as vm#" + result.vm.to_string() + " on brick " +
                       result.compute.to_string() + " (" +
                       std::to_string(result.remote_bytes >> 20) + " MiB remote)");
  } else {
    telemetry_.tracer().record(sim_.now(), sim::TraceCategory::kOrchestration,
                   "boot of '" + name + "' failed: " + result.error);
  }
  return result;
}

orch::ScaleUpResult Datacenter::scale_up(hw::VmId vm, hw::BrickId compute,
                                         std::uint64_t bytes) {
  orch::ScaleUpRequest request;
  request.vm = vm;
  request.compute = compute;
  request.bytes = bytes;
  request.posted_at = sim_.now();
  auto result = sdm_.scale_up(request);
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kFabric,
                   "scale-up vm#" + vm.to_string() + " +" + std::to_string(bytes >> 20) +
                       " MiB from dMEMBRICK " + result.membrick.to_string() + " in " +
                       result.delay().to_string());
  } else {
    telemetry_.tracer().record(sim_.now(), sim::TraceCategory::kFabric,
                   "scale-up vm#" + vm.to_string() + " failed: " + result.error);
  }
  return result;
}

orch::ScaleUpResult Datacenter::scale_down(hw::VmId vm, hw::BrickId compute,
                                           hw::SegmentId segment) {
  auto result = sdm_.scale_down(vm, compute, segment, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(result.completed_at, sim::TraceCategory::kFabric,
                   "scale-down vm#" + vm.to_string() + " released segment " +
                       segment.to_string() + " in " + result.delay().to_string());
  }
  return result;
}

memsys::Transaction Datacenter::remote_read(hw::BrickId compute, std::uint64_t address,
                                            std::uint32_t bytes) {
  return fabric_.read(compute, address, bytes, sim_.now());
}

orch::MigrationResult Datacenter::migrate_vm(hw::VmId vm, hw::BrickId from, hw::BrickId to) {
  auto result = migration_.migrate(vm, from, to, sim_.now());
  if (result.ok) {
    telemetry_.tracer().record(sim_.now() + result.total_time, sim::TraceCategory::kMigration,
                   "migrated vm#" + vm.to_string() + " brick " + from.to_string() + " -> " +
                       to.to_string() + " (copied " +
                       std::to_string(result.copied_bytes >> 20) + " MiB, re-pointed " +
                       std::to_string(result.repointed_bytes >> 20) + " MiB, downtime " +
                       result.downtime.to_string() + ")");
  }
  return result;
}

void Datacenter::advance_to(sim::Time t) {
  if (t > sim_.now()) sim_.run_until(t);
}

double Datacenter::power_draw_watts() const {
  return rack_.power_draw_watts(config_.power, switch_.ports_in_use());
}

std::string Datacenter::describe() const {
  return rack_.describe() + "\n" + switch_.describe();
}

}  // namespace dredbox::core
