#pragma once

#include <cstdint>
#include <vector>

#include "core/datacenter.hpp"
#include "orch/scale_out.hpp"
#include "sim/stats.hpp"

namespace dredbox::core {

/// Configuration of the Fig. 10 scale-up agility experiment: N VMs post
/// memory scale-up requests within a fixed interval; the same N requests
/// are replayed against the conventional scale-out baseline (spawning
/// additional VMs, per [13]).
struct Fig10Config {
  std::vector<std::size_t> concurrency_levels = {32, 16, 8};
  std::uint64_t bytes_per_request = 2ull << 30;  // 2 GiB per scale-up
  double posting_interval_s = 1.0;
  std::size_t repetitions = 5;
  std::uint64_t seed = 7;

  DatacenterConfig datacenter = default_datacenter();
  orch::ScaleOutTiming scale_out;

  /// 4 trays x (2 dCOMPUBRICKs + 2 dMEMBRICKs): 8 compute bricks (each
  /// 4 cores, 4 GiB local DDR) and a 256 GiB disaggregated pool — enough
  /// to host 32 one-core VMs and absorb 32 concurrent 2 GiB expansions.
  static DatacenterConfig default_datacenter();
};

/// Measured outcomes for one concurrency level, averaged over repetitions.
struct Fig10Row {
  std::size_t concurrency = 0;
  double scale_up_avg_s = 0.0;
  double scale_up_ci95_s = 0.0;  // 95% CI half-width on the mean
  double scale_up_p95_s = 0.0;
  double scale_down_avg_s = 0.0;
  double scale_out_avg_s = 0.0;
  double scale_out_ci95_s = 0.0;

  double speedup() const {
    return scale_up_avg_s > 0 ? scale_out_avg_s / scale_up_avg_s : 0.0;
  }
};

/// Runs the Section IV-C preliminary evaluation: per-VM average delay of
/// dynamically scaling up/down memory under 8/16/32-way concurrency,
/// against conventional scale-out elasticity.
class ScaleUpAgilityExperiment {
 public:
  explicit ScaleUpAgilityExperiment(const Fig10Config& config = {});

  std::vector<Fig10Row> run() const;
  Fig10Row run_level(std::size_t concurrency) const;

  const Fig10Config& config() const { return config_; }

 private:
  Fig10Config config_;

  struct LevelSample {
    sim::SampleSet scale_up_s;
    sim::SampleSet scale_down_s;
    sim::SampleSet scale_out_s;
  };
  void run_repetition(std::size_t concurrency, std::uint64_t seed, LevelSample& out) const;
};

}  // namespace dredbox::core
