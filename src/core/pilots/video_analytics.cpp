#include "core/pilots/video_analytics.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace dredbox::core::pilots {

VideoAnalyticsOutcome VideoAnalyticsPilot::run(Datacenter& dc) const {
  sim::Rng rng{config_.seed};

  auto boot = dc.boot_vm("video-analytics", 2, 2ull << 30);
  if (!boot.ok) {
    throw std::runtime_error("VideoAnalyticsPilot: VM boot failed: " + boot.error);
  }

  // Generate the event-driven investigation arrivals.
  struct Investigation {
    double arrival_h;
    double video_kilohours;
    double working_set_gb;
  };
  std::vector<Investigation> events;
  double t = 0.0;
  while (true) {
    t += rng.exponential(config_.mean_interarrival_hours);
    if (t >= config_.duration_hours) break;
    const double hours = rng.uniform(config_.min_video_hours, config_.max_video_hours);
    Investigation inv;
    inv.arrival_h = t;
    inv.video_kilohours = hours / 1000.0;
    inv.working_set_gb = inv.video_kilohours * config_.gb_per_kilohour;
    events.push_back(inv);
  }

  VideoAnalyticsOutcome outcome;
  outcome.investigations = events.size();
  if (events.empty()) return outcome;

  sim::SampleSet elastic_completion;
  sim::SampleSet static_completion;
  sim::SampleSet scale_up_delays;

  // --- elastic (dReDBox) run: memory follows demand ---
  struct Held {
    hw::SegmentId segment;
    std::uint64_t gb;
  };
  std::vector<Held> held_segments;
  std::uint64_t held_gb = 0;
  double elastic_peak = 0.0;
  for (const auto& inv : events) {
    dc.advance_to(sim::Time::sec(inv.arrival_h * 3600.0));
    const auto need_gb = static_cast<std::uint64_t>(inv.working_set_gb) + 1;
    while (held_gb < need_gb) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(config_.scale_up_chunk_gb, need_gb - held_gb);
      auto result = dc.scale_up(boot.vm, boot.compute, chunk << 30);
      if (!result.ok) break;  // pool exhausted: proceed with what we hold
      dc.advance_to(result.completed_at);
      held_segments.push_back(Held{result.segment, chunk});
      held_gb += chunk;
      scale_up_delays.add(result.delay().as_sec());
      ++outcome.scale_ups;
    }
    elastic_peak = std::max(elastic_peak, static_cast<double>(held_gb));

    // Analysis rate scales with the memory actually available (the
    // working set stays resident instead of thrashing).
    const double gb = static_cast<double>(std::min<std::uint64_t>(held_gb, need_gb));
    const double rate = config_.analysis_rate_kilohours_per_hour_per_gb * std::max(1.0, gb);
    elastic_completion.add(inv.video_kilohours / rate);

    // Investigation done: release everything beyond a warm floor.
    while (held_gb > config_.scale_up_chunk_gb && !held_segments.empty()) {
      const Held held = held_segments.back();
      auto result = dc.scale_down(boot.vm, boot.compute, held.segment);
      if (!result.ok) break;
      dc.advance_to(result.completed_at);
      held_segments.pop_back();
      held_gb -= held.gb;
      ++outcome.scale_downs;
    }
  }

  // --- static baseline: fixed provision, demand beyond it thrashes ---
  double static_peak = 0.0;
  for (const auto& inv : events) {
    const double need_gb = inv.working_set_gb;
    const double have_gb = static_cast<double>(config_.static_provision_gb);
    static_peak = std::max(static_peak, have_gb);
    const double resident = std::min(need_gb, have_gb);
    double rate = config_.analysis_rate_kilohours_per_hour_per_gb * std::max(1.0, resident);
    if (need_gb > have_gb) {
      // Out-of-core penalty: throughput degrades with the miss ratio.
      const double miss = (need_gb - have_gb) / need_gb;
      rate *= std::max(0.05, 1.0 - 0.9 * miss);
    }
    static_completion.add(inv.video_kilohours / rate);
  }

  outcome.elastic_mean_completion_hours = elastic_completion.mean();
  outcome.static_mean_completion_hours = static_completion.mean();
  outcome.elastic_peak_gb = elastic_peak;
  outcome.static_peak_gb = static_peak;
  outcome.mean_scale_up_delay_s = scale_up_delays.empty() ? 0.0 : scale_up_delays.mean();
  return outcome;
}

}  // namespace dredbox::core::pilots
