#include "core/pilots/nfv.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace dredbox::core::pilots {

double NfvKeyServerPilot::load_at(double hour) const {
  // Sinusoid peaking at peak_hour, floored at the night fraction.
  const double phase = (std::fmod(hour, 24.0) - config_.peak_hour) / 24.0 * 2.0 *
                       std::numbers::pi;
  const double raw = 0.5 * (1.0 + std::cos(phase));  // 1 at peak, 0 at peak+12h
  return config_.night_load_fraction + (1.0 - config_.night_load_fraction) * raw;
}

std::uint64_t NfvKeyServerPilot::demand_gb(double load) const {
  const double dynamic =
      load * static_cast<double>(config_.peak_memory_gb - config_.base_memory_gb);
  return config_.base_memory_gb + static_cast<std::uint64_t>(std::ceil(dynamic));
}

NfvOutcome NfvKeyServerPilot::run(Datacenter& dc) const {
  sim::Rng rng{config_.seed};

  auto boot = dc.boot_vm("key-server", 2, config_.base_memory_gb << 30);
  if (!boot.ok) {
    throw std::runtime_error("NfvKeyServerPilot: VM boot failed: " + boot.error);
  }

  struct Held {
    hw::SegmentId segment;
    std::uint64_t gb;
  };
  std::vector<Held> held;
  std::uint64_t provisioned_gb = config_.base_memory_gb;

  NfvOutcome outcome;
  sim::SampleSet delays;
  std::size_t elastic_violations = 0;
  std::size_t static_tight_violations = 0;
  double elastic_gb_hours = 0.0;
  double demand_sum = 0.0;
  double demand_peak = 0.0;

  const double step_h = config_.sample_interval_minutes / 60.0;
  std::vector<double> demands;
  for (double hour = 0.0; hour < config_.duration_hours; hour += step_h) {
    dc.advance_to(sim::Time::sec(hour * 3600.0));
    const double load = load_at(hour) * std::clamp(1.0 + rng.normal(0.0, 0.05), 0.7, 1.3);
    const std::uint64_t demand = demand_gb(std::clamp(load, 0.0, 1.0));
    demands.push_back(static_cast<double>(demand));
    demand_sum += static_cast<double>(demand);
    demand_peak = std::max(demand_peak, static_cast<double>(demand));
    ++outcome.samples;

    const auto target = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(demand) * (1.0 + config_.headroom_fraction)));

    // Scale up when demand (plus headroom) exceeds the provision.
    while (provisioned_gb < target) {
      auto result = dc.scale_up(boot.vm, boot.compute, config_.scale_chunk_gb << 30);
      if (!result.ok) break;
      dc.advance_to(result.completed_at);
      held.push_back(Held{result.segment, config_.scale_chunk_gb});
      provisioned_gb += config_.scale_chunk_gb;
      delays.add(result.delay().as_sec());
      ++outcome.scale_ups;
    }
    // Scale down when the provision is more than one chunk above target
    // (hysteresis avoids thrashing at dawn/dusk).
    while (provisioned_gb >= target + 2 * config_.scale_chunk_gb && !held.empty()) {
      const Held h = held.back();
      auto result = dc.scale_down(boot.vm, boot.compute, h.segment);
      if (!result.ok) break;
      dc.advance_to(result.completed_at);
      held.pop_back();
      provisioned_gb -= h.gb;
      delays.add(result.delay().as_sec());
      ++outcome.scale_downs;
    }

    if (demand > provisioned_gb) ++elastic_violations;
    elastic_gb_hours += static_cast<double>(provisioned_gb) * step_h;
  }

  // Static-tight baseline: provisioned at the mean demand for the window.
  const double mean_demand = demand_sum / static_cast<double>(outcome.samples);
  for (double d : demands) {
    if (d > mean_demand) ++static_tight_violations;
  }

  outcome.elastic_violation_fraction =
      static_cast<double>(elastic_violations) / static_cast<double>(outcome.samples);
  outcome.static_tight_violation_fraction =
      static_cast<double>(static_tight_violations) / static_cast<double>(outcome.samples);
  outcome.elastic_gb_hours = elastic_gb_hours;
  outcome.static_peak_gb_hours = demand_peak * config_.duration_hours;
  outcome.mean_scale_delay_s = delays.empty() ? 0.0 : delays.mean();
  return outcome;
}

}  // namespace dredbox::core::pilots
