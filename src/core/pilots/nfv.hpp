#pragma once

#include <cstdint>
#include <vector>

#include "core/datacenter.hpp"

namespace dredbox::core::pilots {

/// Pilot 2 (Section V): NFV edge computing with collaborative
/// cryptography. The key server holds private keys, so scale-out
/// (replicating the key database onto more instances) must be avoided;
/// the only acceptable elasticity is scaling the *memory* of the single
/// key-server VM as the diurnal traffic pattern peaks and troughs.
struct NfvConfig {
  double duration_hours = 48.0;           // two diurnal cycles
  double sample_interval_minutes = 30.0;
  double night_load_fraction = 0.1;       // "very low load at night"
  double peak_hour = 14.0;                // load peaks during day hours
  std::uint64_t peak_memory_gb = 48;      // demand at full load
  std::uint64_t base_memory_gb = 4;       // key DB + resident services
  std::uint64_t scale_chunk_gb = 4;
  double headroom_fraction = 0.15;        // keep this much above demand
  std::uint64_t seed = 23;
};

struct NfvOutcome {
  std::size_t samples = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  /// Fraction of samples where demand exceeded provisioned memory
  /// (requests would be dropped / pushed to disk).
  double elastic_violation_fraction = 0.0;
  double static_tight_violation_fraction = 0.0;  // static = mean demand
  /// GB-hours provisioned over the window (the cost proxy).
  double elastic_gb_hours = 0.0;
  double static_peak_gb_hours = 0.0;  // static = peak demand (no violations)
  double mean_scale_delay_s = 0.0;

  double provisioning_savings() const {
    return static_peak_gb_hours > 0 ? 1.0 - elastic_gb_hours / static_peak_gb_hours : 0.0;
  }
};

/// Drives the key-server VM through the diurnal pattern, scaling memory
/// with demand, and compares against static provisioning at peak (safe
/// but expensive) and at the mean (cheap but violating at peaks).
class NfvKeyServerPilot {
 public:
  explicit NfvKeyServerPilot(const NfvConfig& config = {}) : config_{config} {}

  NfvOutcome run(Datacenter& dc) const;

  /// Diurnal load in [night_load_fraction, 1] at wall-clock `hour`.
  double load_at(double hour) const;
  /// Memory demand (GB) implied by the load.
  std::uint64_t demand_gb(double load) const;

  const NfvConfig& config() const { return config_; }

 private:
  NfvConfig config_;
};

}  // namespace dredbox::core::pilots
