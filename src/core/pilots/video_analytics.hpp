#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/datacenter.hpp"

namespace dredbox::core::pilots {

/// Pilot 1 (Section V): video analytics for large security investigations.
/// Investigations arrive unpredictably (event-driven) and each requires
/// searching through thousands of video hours; the computational and
/// memory requirements cannot be scheduled ahead of time. The dReDBox
/// deployment absorbs each surge by scaling a VM's memory up for the
/// investigation and releasing it afterwards; the static baseline must
/// keep a fixed provision and queues work that does not fit.
struct VideoAnalyticsConfig {
  double duration_hours = 24.0;
  double mean_interarrival_hours = 3.0;       // investigations per day
  double min_video_hours = 1000.0;
  double max_video_hours = 100000.0;          // "100,000 hours or more"
  double gb_per_kilohour = 1.5;               // working set per 1000 video hours
  double analysis_rate_kilohours_per_hour_per_gb = 0.8;
  std::uint64_t static_provision_gb = 32;     // baseline fixed memory
  std::uint64_t scale_up_chunk_gb = 8;
  std::uint64_t seed = 11;
};

struct VideoAnalyticsOutcome {
  std::size_t investigations = 0;
  double elastic_mean_completion_hours = 0.0;
  double static_mean_completion_hours = 0.0;
  double elastic_peak_gb = 0.0;
  double static_peak_gb = 0.0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  double mean_scale_up_delay_s = 0.0;

  double speedup() const {
    return elastic_mean_completion_hours > 0
               ? static_mean_completion_hours / elastic_mean_completion_hours
               : 0.0;
  }
};

/// Drives a Datacenter through the investigation workload. The datacenter
/// must have at least one compute brick and enough pooled memory for the
/// configured surges.
class VideoAnalyticsPilot {
 public:
  explicit VideoAnalyticsPilot(const VideoAnalyticsConfig& config = {}) : config_{config} {}

  VideoAnalyticsOutcome run(Datacenter& dc) const;

  const VideoAnalyticsConfig& config() const { return config_; }

 private:
  VideoAnalyticsConfig config_;
};

}  // namespace dredbox::core::pilots
