#include "core/pilots/network_analytics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>
#include <stdexcept>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace dredbox::core::pilots {

namespace {

/// Diurnal-ish load shape over the run (peak mid-run).
double load_shape(double t, double duration, double trough, double peak) {
  const double phase = (t / duration - 0.5) * 2.0 * std::numbers::pi;
  const double raw = 0.5 * (1.0 + std::cos(phase));
  return trough + (peak - trough) * raw;
}

}  // namespace

NetworkAnalyticsOutcome NetworkAnalyticsPilot::run(Datacenter& dc) const {
  const auto accels = dc.accelerator_bricks();
  if (accels.empty()) {
    throw std::runtime_error(
        "NetworkAnalyticsPilot: the datacenter needs at least one dACCELBRICK");
  }
  sim::Rng rng{config_.seed};

  // Load the frame-classifier bitstream onto the accelerator (the thin
  // middleware receives it from a dCOMPUBRICK and reconfigures via PCAP).
  auto& accel = dc.rack().accelerator_brick(accels.front());
  hw::Bitstream classifier;
  classifier.name = "frame-classifier";
  classifier.size_bytes = 24ull << 20;
  classifier.kernel_ops_per_sec = 1e9 / config_.accel_classify_ns;
  accel.store_bitstream(classifier);

  NetworkAnalyticsOutcome outcome;
  outcome.accelerator_reconfig_s = accel.reconfigure("frame-classifier");

  auto boot = dc.boot_vm("offline-analytics", 4, 2ull << 30);
  if (!boot.ok) {
    throw std::runtime_error("NetworkAnalyticsPilot: VM boot failed: " + boot.error);
  }

  const double accel_capacity_pps = classifier.kernel_ops_per_sec;
  const double offline_rate_pps = 1e6 / config_.offline_cost_us_per_packet;
  const double slice_s = 10.0;

  struct Batch {
    double arrived_s;
    double mpkts;
  };
  std::deque<Batch> elastic_queue;
  std::deque<Batch> static_queue;
  sim::SampleSet elastic_response;
  sim::SampleSet static_response;

  struct Held {
    hw::SegmentId segment;
    std::uint64_t gb;
  };
  std::vector<Held> held;
  std::uint64_t provisioned_gb = 2;
  const std::uint64_t static_buffer_gb = 8;

  auto drain = [&](std::deque<Batch>& queue, double capacity_mpkts, double now_s,
                   sim::SampleSet& responses) {
    double remaining = capacity_mpkts;
    double done = 0.0;
    while (!queue.empty() && remaining > 0.0) {
      Batch& b = queue.front();
      const double take = std::min(remaining, b.mpkts);
      b.mpkts -= take;
      remaining -= take;
      done += take;
      if (b.mpkts <= 1e-12) {
        responses.add(now_s - b.arrived_s);
        queue.pop_front();
      }
    }
    return done;
  };

  for (double t = 0.0; t < config_.duration_s; t += slice_s) {
    dc.advance_to(sim::Time::sec(t));
    const double load =
        load_shape(t, config_.duration_s, config_.load_trough_fraction,
                   config_.load_peak_fraction) *
        std::clamp(1.0 + rng.normal(0.0, 0.04), 0.8, 1.2);

    // --- online stage on the dACCELBRICK ---
    const double offered_pps =
        config_.line_rate_gbps * 1e9 * load / (8.0 * config_.mean_packet_bytes);
    const double classified_pps = std::min(offered_pps, accel_capacity_pps);
    const double offered_m = offered_pps * slice_s / 1e6;
    const double classified_m = classified_pps * slice_s / 1e6;
    accel.offload(static_cast<std::uint64_t>(classified_m * 1e6));
    outcome.offered_mpkts += offered_m;
    outcome.classified_mpkts += classified_m;

    const double marked_m = classified_m * config_.interest_fraction;
    outcome.marked_mpkts += marked_m;
    elastic_queue.push_back(Batch{t, marked_m});
    static_queue.push_back(Batch{t, marked_m});

    // --- offline stage: elastic run scales buffer memory to the backlog
    // so processing never stalls ("continuously executed").
    double backlog_m = 0.0;
    for (const auto& b : elastic_queue) backlog_m += b.mpkts;
    const auto needed_gb = static_cast<std::uint64_t>(
                               std::ceil(backlog_m *
                                         static_cast<double>(config_.offline_memory_per_mpkt_gb))) +
                           2;
    while (provisioned_gb < needed_gb) {
      auto result = dc.scale_up(boot.vm, boot.compute, config_.scale_chunk_gb << 30);
      if (!result.ok) break;
      dc.advance_to(result.completed_at);
      held.push_back(Held{result.segment, config_.scale_chunk_gb});
      provisioned_gb += config_.scale_chunk_gb;
      ++outcome.scale_ups;
    }
    while (provisioned_gb >= needed_gb + 2 * config_.scale_chunk_gb && !held.empty()) {
      const Held h = held.back();
      auto result = dc.scale_down(boot.vm, boot.compute, h.segment);
      if (!result.ok) break;
      dc.advance_to(result.completed_at);
      held.pop_back();
      provisioned_gb -= h.gb;
      ++outcome.scale_downs;
    }

    const double offline_capacity_m = offline_rate_pps * slice_s / 1e6;
    outcome.offline_completed_mpkts +=
        drain(elastic_queue, offline_capacity_m, t + slice_s, elastic_response);

    // Static baseline: the buffer bounds how much backlog is workable;
    // overflow is postponed (processed only as the buffer frees up).
    const double static_workable_m =
        static_cast<double>(static_buffer_gb) /
        static_cast<double>(config_.offline_memory_per_mpkt_gb);
    double static_backlog = 0.0;
    for (const auto& b : static_queue) static_backlog += b.mpkts;
    const double stall_factor =
        static_backlog > static_workable_m ? static_workable_m / static_backlog : 1.0;
    drain(static_queue, offline_capacity_m * stall_factor, t + slice_s, static_response);
  }

  // Flush both queues to completion (no new arrivals) so every batch's
  // response time is counted — otherwise batches still stalled in the
  // static queue at the end of the window would silently drop out of the
  // mean and bias the comparison.
  double t = config_.duration_s;
  const double offline_capacity_m = offline_rate_pps * slice_s / 1e6;
  const double static_workable_m =
      static_cast<double>(static_buffer_gb) /
      static_cast<double>(config_.offline_memory_per_mpkt_gb);
  for (int guard = 0; guard < 100000 && (!elastic_queue.empty() || !static_queue.empty());
       ++guard) {
    outcome.offline_completed_mpkts +=
        drain(elastic_queue, offline_capacity_m, t + slice_s, elastic_response);
    double static_backlog = 0.0;
    for (const auto& b : static_queue) static_backlog += b.mpkts;
    const double stall_factor =
        static_backlog > static_workable_m ? static_workable_m / static_backlog : 1.0;
    drain(static_queue, offline_capacity_m * stall_factor, t + slice_s, static_response);
    t += slice_s;
  }

  outcome.online_drop_fraction =
      outcome.offered_mpkts > 0
          ? 1.0 - outcome.classified_mpkts / outcome.offered_mpkts
          : 0.0;
  outcome.elastic_mean_response_s = elastic_response.empty() ? 0.0 : elastic_response.mean();
  outcome.static_mean_response_s = static_response.empty() ? 0.0 : static_response.mean();
  return outcome;
}

}  // namespace dredbox::core::pilots
