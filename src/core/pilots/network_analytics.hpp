#pragma once

#include <cstdint>

#include "core/datacenter.hpp"

namespace dredbox::core::pilots {

/// Pilot 3 (Section V): network analytics at very high rates (100GbE-class
/// probes). Two modes:
///  (a) online analysis — every frame on the link is classified by a
///      reconfigurable accelerator on a dACCELBRICK, which marks elements
///      of interest and gathers basic integrity metrics;
///  (b) offline analysis — marked packets are studied exhaustively by
///      CPU-intensive tasks on dCOMPUBRICKs, whose memory is scaled
///      elastically so the offline stage keeps executing continuously
///      instead of being postponed.
struct NetworkAnalyticsConfig {
  double duration_s = 3600.0;
  double line_rate_gbps = 100.0;
  double mean_packet_bytes = 800.0;
  double interest_fraction = 0.02;        // frames marked for offline study
  double accel_classify_ns = 6.0;         // per frame on the dACCELBRICK
  double offline_cost_us_per_packet = 4.0;  // exhaustive second-stage study
  std::uint64_t offline_memory_per_mpkt_gb = 2;  // buffer per million packets
  std::uint64_t scale_chunk_gb = 4;
  double load_peak_fraction = 1.0;        // diurnal shape like the NFV pilot
  double load_trough_fraction = 0.25;
  std::uint64_t seed = 31;
};

struct NetworkAnalyticsOutcome {
  double offered_mpkts = 0.0;       // total frames on the link (millions)
  double classified_mpkts = 0.0;    // frames the accelerator kept up with
  double online_drop_fraction = 0.0;
  double marked_mpkts = 0.0;        // frames queued for offline study
  double offline_completed_mpkts = 0.0;
  /// Mean latency from marking to offline verdict (the paper's
  /// responsiveness KPI: "the more responsiveness ... the faster a
  /// solution is offered to the user").
  double elastic_mean_response_s = 0.0;
  double static_mean_response_s = 0.0;  // fixed-memory baseline postpones work
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  double accelerator_reconfig_s = 0.0;
};

/// Requires a datacenter with at least one dACCELBRICK.
class NetworkAnalyticsPilot {
 public:
  explicit NetworkAnalyticsPilot(const NetworkAnalyticsConfig& config = {})
      : config_{config} {}

  NetworkAnalyticsOutcome run(Datacenter& dc) const;

  const NetworkAnalyticsConfig& config() const { return config_; }

 private:
  NetworkAnalyticsConfig config_;
};

}  // namespace dredbox::core::pilots
