#include "core/parallel_runner.hpp"

#include <chrono>

namespace dredbox::core {

ParallelRunner::ParallelRunner(Cluster& cluster, std::size_t threads)
    : cluster_{cluster},
      threads_{threads == 0 ? cluster.config().partitions : threads} {
  if (threads_ == 0) threads_ = 1;
}

ParallelRunReport ParallelRunner::advance_to(sim::Time until) {
  ParallelRunReport report;
  const auto start = std::chrono::steady_clock::now();  // dredbox-lint: ignore[wall-clock] measures host-side parallel speedup
  report.kernel = cluster_.advance_all(until, threads_);
  const auto stop = std::chrono::steady_clock::now();  // dredbox-lint: ignore[wall-clock] measures host-side parallel speedup
  report.wall_seconds = std::chrono::duration<double>(stop - start).count();

  total_.kernel.rounds += report.kernel.rounds;
  total_.kernel.dispatched += report.kernel.dispatched;
  total_.kernel.messages += report.kernel.messages;
  total_.kernel.threads = report.kernel.threads;
  total_.wall_seconds += report.wall_seconds;
  return report;
}

}  // namespace dredbox::core
