#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/datacenter.hpp"
#include "sim/fault.hpp"

namespace dredbox::core {

/// A constructed deployment: the Datacenter plus everything the builder
/// wired around it (telemetry enablement, a scheduled fault plan). This is
/// what ScenarioBuilder::build() returns and the single blessed way for
/// examples, benches and the sweep runner to obtain a rack.
///
/// Movable (so build() can return it by value); the Datacenter itself is
/// heap-held because its subcomponents hold references into each other.
class Scenario {
 public:
  /// Single-rack deployments only (is_cluster() false — the default).
  Datacenter& datacenter() { return *dc_; }
  const Datacenter& datacenter() const { return *dc_; }
  Datacenter* operator->() { return dc_.get(); }
  const Datacenter* operator->() const { return dc_.get(); }
  Datacenter& operator*() { return *dc_; }
  const Datacenter& operator*() const { return *dc_; }

  /// True when the builder declared a multi-rack topology (add_rack());
  /// then cluster() is the deployment and datacenter() must not be used.
  bool is_cluster() const { return cluster_ != nullptr; }
  Cluster& cluster() { return *cluster_; }
  const Cluster& cluster() const { return *cluster_; }

  /// The fault plan scheduled at build time (nullopt when none was
  /// declared or DREDBOX_FAULT_PLAN was unset).
  const std::optional<sim::FaultPlan>& fault_plan() const { return fault_plan_; }
  std::size_t faults_scheduled() const { return faults_scheduled_; }

  /// Latest end time of any scheduled fault (zero without a plan): advance
  /// past this and every injected fault has fired and recovered.
  sim::Time fault_horizon() const;

  /// Runs the simulation through the whole fault plan (one extra
  /// millisecond so trailing recoveries land). No-op without a plan.
  void run_fault_plan();

 private:
  friend class ScenarioBuilder;
  Scenario() = default;

  std::unique_ptr<Datacenter> dc_;
  std::unique_ptr<Cluster> cluster_;
  std::optional<sim::FaultPlan> fault_plan_;
  std::size_t faults_scheduled_ = 0;
};

/// Declarative front door to the whole stack: describe the deployment
/// (rack shape, sizing, behaviour, faults), then build() validates the
/// resulting DatacenterConfig — every field error reported at once — and
/// assembles the rack. Replaces the hand-wired DatacenterConfig field
/// pokes that used to open every example.
///
///   auto scenario = core::ScenarioBuilder{}
///                       .racks(2, 2, 2)          // trays × compute × memory
///                       .telemetry()
///                       .fault_plan_from_env()
///                       .build();
///   auto& dc = scenario.datacenter();
///
/// Setters apply immediately to the underlying config (last write wins);
/// configure() is the escape hatch for fields without a dedicated setter.
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(DatacenterConfig base) : config_{std::move(base)} {}

  // --- rack shape ---
  ScenarioBuilder& trays(std::size_t n);
  ScenarioBuilder& compute_bricks_per_tray(std::size_t n);
  ScenarioBuilder& memory_bricks_per_tray(std::size_t n);
  ScenarioBuilder& accelerator_bricks_per_tray(std::size_t n);
  /// Shorthand for the three per-tray counts in one call.
  ScenarioBuilder& racks(std::size_t trays, std::size_t compute_per_tray,
                         std::size_t memory_per_tray, std::size_t accel_per_tray = 0);

  // --- multi-rack topology ---
  // Declaring at least one rack switches build() to cluster mode: the
  // scenario holds a core::Cluster joined by an optical spine instead of
  // a lone Datacenter, and the top-level shape fields above stop
  // mattering (each rack carries its own RackSpec).
  /// Appends one rack to the topology.
  ScenarioBuilder& add_rack(const RackSpec& rack = {});
  /// Appends `n` identical racks in one call.
  ScenarioBuilder& add_racks(std::size_t n, const RackSpec& rack = {});
  /// Inter-rack spine parameters (propagation doubles as the partitioned
  /// kernel's conservative lookahead).
  ScenarioBuilder& spine(const SpineSpec& spec);
  /// Default worker-thread count for parallel cluster runs (1 = the
  /// sequential reference schedule).
  ScenarioBuilder& partitions(std::size_t n);
  /// Deployment-wide fraction of every tenant's read/write stream that
  /// crosses the spine to a peer rack (TenantSpec::cross_rack_share
  /// overrides per tenant).
  ScenarioBuilder& cross_rack_share(double share);
  /// Scripted spine-uplink fault: rack `rack` loses its uplink at `at`
  /// for `duration`.
  ScenarioBuilder& spine_fault(std::size_t rack, sim::Time at, sim::Time duration);

  // --- sizing ---
  ScenarioBuilder& compute_cores(std::size_t apu_cores);
  ScenarioBuilder& compute_local_memory_bytes(std::uint64_t bytes);
  ScenarioBuilder& memory_pool_bytes(std::uint64_t bytes);
  ScenarioBuilder& switch_ports(std::size_t ports);

  // --- behaviour ---
  ScenarioBuilder& seed(std::uint64_t seed);
  /// Enables metrics + tracer right after construction.
  ScenarioBuilder& telemetry(bool on = true);
  /// Enables only the tracer (operation timeline, no metrics).
  ScenarioBuilder& tracing(bool on = true);
  ScenarioBuilder& power_management(bool on = true);
  /// Wire every attachment as an optical circuit, even intra-tray (see
  /// DatacenterConfig::prefer_optical_attach).
  ScenarioBuilder& prefer_optical(bool on = true);
  ScenarioBuilder& fabric_retry(std::optional<sim::RetryPolicy> policy);
  ScenarioBuilder& oom_guard(const orch::OomGuardConfig& guard);
  /// Enables the event-kernel self-profiler (per-event-type dispatch
  /// counts and host-time attribution; see EventQueue::profile_to_string).
  /// Host timings never feed digests, so profiling cannot perturb a run's
  /// determinism contract — only its wall-clock cost.
  ScenarioBuilder& profile_kernel(bool on = true);
  /// Enables the profiler iff $DREDBOX_PROFILE is set (to anything) at
  /// build() time.
  ScenarioBuilder& profile_kernel_from_env();

  // --- faults ---
  ScenarioBuilder& fault_plan(sim::FaultPlan plan);
  /// Mini-language spec (see sim/fault.hpp); parsed at build() so a bad
  /// spec surfaces as std::invalid_argument from build.
  ScenarioBuilder& fault_plan(const std::string& spec);
  /// Reads DREDBOX_FAULT_PLAN at build(); absent variable means no plan.
  ScenarioBuilder& fault_plan_from_env();

  /// Escape hatch for config fields without a dedicated setter; the
  /// callback mutates the config in place, immediately.
  ScenarioBuilder& configure(const std::function<void(DatacenterConfig&)>& fn);

  /// The config as declared so far (not yet validated).
  const DatacenterConfig& config() const { return config_; }
  /// Field-naming validation errors for the config as declared so far.
  std::vector<std::string> validate() const { return config_.validate(); }

  /// Validates (throwing std::invalid_argument that lists every field
  /// error), assembles the Datacenter, enables the requested telemetry and
  /// schedules the fault plan. The builder can be reused — build() again
  /// produces a fresh, fully independent rack (the sweep runner's per-cell
  /// isolation relies on this).
  Scenario build() const;

 private:
  DatacenterConfig config_;
  bool enable_telemetry_ = false;
  bool enable_tracing_ = false;
  bool enable_profiling_ = false;
  bool profile_env_ = false;
  std::optional<sim::FaultPlan> fault_plan_;
  std::optional<std::string> fault_spec_;
  bool fault_plan_env_ = false;
};

}  // namespace dredbox::core
