#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/rack.hpp"
#include "hyp/hypervisor.hpp"
#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"
#include "optics/circuit.hpp"
#include "optics/mbo.hpp"
#include "optics/optical_switch.hpp"
#include "orch/accel_manager.hpp"
#include "orch/migration.hpp"
#include "orch/oom_guard.hpp"
#include "orch/openstack.hpp"
#include "orch/power_manager.hpp"
#include "orch/sdm_controller.hpp"
#include "os/baremetal_os.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/retry.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dredbox::core {

/// Shape of one rack of a multi-rack deployment (DatacenterConfig::racks).
/// Timing models, sizing and behaviour flags are inherited from the
/// enclosing DatacenterConfig; only the physical rack shape varies per
/// rack. Defaults mirror the single-rack defaults.
struct RackSpec {
  std::size_t trays = 2;
  std::size_t compute_bricks_per_tray = 2;
  std::size_t memory_bricks_per_tray = 2;
  std::size_t accelerator_bricks_per_tray = 0;
};

/// One scripted inter-rack fault: rack `rack` loses its spine uplink at
/// `at` (every cross-rack request involving it fails fast at the sending
/// NIC; in-flight light still lands) and regains it `duration` later.
/// `at` counts from the moment Cluster::arm_spine_faults() is called —
/// the cluster workload engine arms at its window start, so faults land
/// a known offset into the measured window regardless of how long the
/// control plane took to boot.
struct SpineFaultSpec {
  std::size_t rack = 0;
  sim::Time at = sim::Time::ms(1);
  sim::Time duration = sim::Time::ms(1);
};

/// The inter-rack optical spine of a multi-rack deployment: the circuit
/// layer racks bind remote-memory segments across, plus the per-rack
/// gateway window those segments are served from.
struct SpineSpec {
  /// Spine switch duplex port radix (>= number of racks).
  std::size_t ports = 64;
  /// One-way rack-to-rack propagation through the spine. Also the
  /// partitioned kernel's conservative lookahead, so strictly positive.
  sim::Time propagation = sim::Time::ns(500);
  double bandwidth_gbps = 100.0;
  /// Circuit setup charged per rack pair at wiring.
  sim::Time switching_time = sim::Time::us(25);
  double per_port_power_w = 1.5;
  double insertion_loss_db = 1.5;
  /// Disaggregated window each rack exports to its peers (served by a
  /// gateway VM booted at wiring through the rack's own control plane).
  /// Must be hotplug-block aligned — 1 GiB granularity by default.
  std::uint64_t gateway_bytes = 1ull << 30;
  /// Deployment default for the fraction of a tenant's read/write stream
  /// that targets cross-rack segments; a TenantSpec placement overrides
  /// it per tenant.
  double cross_share = 0.0;
  /// Scripted spine-uplink faults (the inter-rack analogue of a fault
  /// plan's link-flap).
  std::vector<SpineFaultSpec> faults;
};

/// Shape of a dReDBox deployment assembled by the Datacenter facade.
struct DatacenterConfig {
  std::size_t trays = 2;
  std::size_t compute_bricks_per_tray = 2;
  std::size_t memory_bricks_per_tray = 2;
  std::size_t accelerator_bricks_per_tray = 0;

  hw::ComputeBrickConfig compute;
  hw::MemoryBrickConfig memory;
  hw::AccelBrickConfig accelerator;
  optics::OpticalSwitchConfig optical_switch;
  optics::MboConfig mbo;
  memsys::CircuitPathLatencies circuit_path;
  net::PacketPathLatencies packet_path;
  orch::SdmTiming sdm;
  os::HotplugTiming hotplug;
  hyp::HypervisorTiming hypervisor;
  hw::PowerModel power;
  orch::MigrationConfig migration;
  orch::OomGuardConfig oom_guard;
  orch::AcceleratorManagerConfig accelerators;
  orch::PowerPolicyConfig power_policy;
  /// When true the power manager is wired into the SDM-C from the start
  /// (wake latencies charged, idle sweeps on tick()).
  bool enable_power_management = false;

  /// When true the SDM-C wires every remote-memory attachment as an
  /// optical circuit through the beam-steering switch, even for intra-tray
  /// pairs that could ride the tray's electrical wiring. Burns switch
  /// ports but exercises the paper's optical data path (and its
  /// re-provisioning recovery ladder) on any rack shape.
  bool prefer_optical_attach = false;

  /// Data-plane retry policy installed into the fabric (retry with
  /// exponential backoff, RMST scrubbing, circuit re-provisioning, packet
  /// failover). Set to nullopt for the fail-fast behaviour of a rack with
  /// no recovery logic.
  std::optional<sim::RetryPolicy> fabric_retry = sim::RetryPolicy{};

  std::uint64_t seed = 1;

  /// Multi-rack topology (core::Cluster). Empty — the default — means the
  /// classic single-rack deployment and leaves validate() and digest()
  /// byte-identical to a config that predates these fields. Non-empty
  /// racks make the top-level shape fields irrelevant (each rack carries
  /// its own) and arm the spine/partitions fields below.
  std::vector<RackSpec> racks;
  SpineSpec spine;
  /// Default worker-thread count for parallel cluster runs (>= 1; 1 is
  /// the sequential reference schedule).
  std::size_t partitions = 1;

  /// Checks the whole deployment shape for physical and numerical sanity
  /// before any hardware is assembled. Returns one human-readable error
  /// per offending field, each prefixed with the dotted field name (e.g.
  /// "compute.transceiver_ports: ..."), so callers can surface precise
  /// diagnostics. An empty vector means the config is constructible.
  ///
  /// Rejected shapes include: zero-brick racks (no bricks of any kind, or
  /// zero trays), brick port counts exceeding the optical switch radix,
  /// non-positive line rates/bandwidths, negative optical losses or
  /// control-path timings, link budgets whose fixed losses exceed the
  /// launch power by any plausible receiver margin, and malformed retry
  /// policies. The Datacenter constructor calls this and throws
  /// std::invalid_argument listing every error at once.
  std::vector<std::string> validate() const;

  /// FNV-1a fingerprint of the deployment shape (rack counts, seed, data-
  /// and control-path timing models). Two runs whose reports carry the
  /// same config digest were driven against the same rack; the run-report
  /// artifact embeds it so results stay attributable to a configuration.
  std::uint64_t digest() const;
};

/// The full-stack rack-scale system: hardware (bricks, trays, optical
/// fabric), the circuit- and packet-based interconnects, the per-brick
/// software stack (baremetal OS, Type-1 hypervisor, SDM agent), and the
/// rack-level orchestration (SDM-C plus an OpenStack-like front-end).
///
/// This is the public entry point a downstream user programs against; the
/// examples/ directory shows the intended call patterns.
class Datacenter {
 public:
  explicit Datacenter(const DatacenterConfig& config = {});

  // Non-copyable, non-movable: subcomponents hold references into each
  // other; the facade owns them all for its lifetime.
  Datacenter(const Datacenter&) = delete;
  Datacenter& operator=(const Datacenter&) = delete;

  const DatacenterConfig& config() const { return config_; }

  // --- layers ---
  // Every accessor has a const overload so read-only consumers (the sweep
  // reducer holds `const Datacenter&` per completed run) can introspect a
  // finished rack without write access.
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  hw::Rack& rack() { return rack_; }
  const hw::Rack& rack() const { return rack_; }
  optics::OpticalSwitch& optical_switch() { return switch_; }
  const optics::OpticalSwitch& optical_switch() const { return switch_; }
  optics::CircuitManager& circuits() { return circuits_; }
  const optics::CircuitManager& circuits() const { return circuits_; }
  memsys::RemoteMemoryFabric& fabric() { return fabric_; }
  const memsys::RemoteMemoryFabric& fabric() const { return fabric_; }
  net::PacketNetwork& packet_network() { return packet_net_; }
  const net::PacketNetwork& packet_network() const { return packet_net_; }
  orch::SdmController& sdm() { return sdm_; }
  const orch::SdmController& sdm() const { return sdm_; }
  orch::OpenStackFrontend& openstack() { return openstack_; }
  const orch::OpenStackFrontend& openstack() const { return openstack_; }
  orch::MigrationEngine& migration() { return migration_; }
  const orch::MigrationEngine& migration() const { return migration_; }
  orch::OomGuard& oom_guard() { return oom_guard_; }
  const orch::OomGuard& oom_guard() const { return oom_guard_; }
  orch::AcceleratorManager& accelerators() { return accel_mgr_; }
  const orch::AcceleratorManager& accelerators() const { return accel_mgr_; }
  orch::PowerManager& power_manager() { return power_mgr_; }
  const orch::PowerManager& power_manager() const { return power_mgr_; }

  /// The rack's fault-injection engine, pre-wired with a handler (and,
  /// where it makes sense, a recovery handler) for every FaultKind: link
  /// flaps re-provision, loss drift tears circuits below the FEC floor,
  /// brick crashes trigger SDM-C evacuation, and so on. Use it directly
  /// for counters; schedule plans through inject_faults().
  sim::FaultInjector& faults() { return injector_; }
  const sim::FaultInjector& faults() const { return injector_; }

  /// Schedules a fault plan onto the simulation timeline (clamped to
  /// now()). Returns the number of events scheduled; advance_to() makes
  /// them land interleaved with the workload.
  std::size_t inject_faults(const sim::FaultPlan& plan) { return injector_.schedule(plan); }

  /// The rack's observability bundle: named metrics (counters, gauges,
  /// latency histograms from every layer) plus the event/span tracer.
  /// Disabled by default — call telemetry().enable_all() before driving
  /// the rack; export with telemetry().metrics().snapshot()/write_csv()
  /// and sim::maybe_write_trace(tracer()) (see README "Observability").
  sim::Telemetry& telemetry() { return telemetry_; }
  const sim::Telemetry& telemetry() const { return telemetry_; }

  /// Shorthand for telemetry().metrics().
  sim::metrics::MetricsRegistry& metrics() { return telemetry_.metrics(); }
  const sim::metrics::MetricsRegistry& metrics() const { return telemetry_.metrics(); }

  /// Event log of high-level operations (disabled by default; call
  /// tracer().enable() before driving the rack to capture a timeline).
  sim::Tracer& tracer() { return telemetry_.tracer(); }
  const sim::Tracer& tracer() const { return telemetry_.tracer(); }

  os::BareMetalOs& os_of(hw::BrickId compute);
  const os::BareMetalOs& os_of(hw::BrickId compute) const;
  hyp::Hypervisor& hypervisor_of(hw::BrickId compute);
  const hyp::Hypervisor& hypervisor_of(hw::BrickId compute) const;
  orch::SdmAgent& agent_of(hw::BrickId compute);
  const orch::SdmAgent& agent_of(hw::BrickId compute) const;
  optics::MidBoardOptics& mbo_of(hw::BrickId brick);
  const optics::MidBoardOptics& mbo_of(hw::BrickId brick) const;

  std::vector<hw::BrickId> compute_bricks() const {
    return rack_.bricks_of_kind(hw::BrickKind::kCompute);
  }
  std::vector<hw::BrickId> memory_bricks() const {
    return rack_.bricks_of_kind(hw::BrickKind::kMemory);
  }
  std::vector<hw::BrickId> accelerator_bricks() const {
    return rack_.bricks_of_kind(hw::BrickKind::kAccelerator);
  }

  // --- high-level operations ---
  /// Boots a VM through the OpenStack front-end / SDM-C.
  orch::AllocationResult boot_vm(const std::string& name, std::size_t vcpus,
                                 std::uint64_t memory_bytes);

  /// Dynamic memory scale-up for a running VM (the Scale-up API path).
  orch::ScaleUpResult scale_up(hw::VmId vm, hw::BrickId compute, std::uint64_t bytes);
  orch::ScaleUpResult scale_down(hw::VmId vm, hw::BrickId compute, hw::SegmentId segment);

  /// Live-migrates a VM to another dCOMPUBRICK (local memory pre-copied,
  /// disaggregated segments re-pointed with zero copy).
  orch::MigrationResult migrate_vm(hw::VmId vm, hw::BrickId from, hw::BrickId to);

  /// One remote read over the mainline circuit-switched path.
  memsys::Transaction remote_read(hw::BrickId compute, std::uint64_t address,
                                  std::uint32_t bytes);

  /// Advances simulation time (no-op when `t` is in the past). Workload
  /// drivers call this between operations so control-plane queues drain
  /// realistically instead of piling up at t=0.
  void advance_to(sim::Time t);

  /// Instantaneous rack power draw (bricks + switch ports).
  double power_draw_watts() const;

  /// Hands ownership of the rack's thread-confined telemetry to the next
  /// touching thread. Called by the partitioned kernel's shard prologue:
  /// barrier rounds may drive this rack from a different pool worker each
  /// round, which is exactly the "ownership legitimately moves between
  /// phases" case the confinement checker's rebind exists for.
  void rebind_thread_owner() { telemetry_.rebind_owner(); }

  std::string describe() const;

 private:
  DatacenterConfig config_;
  /// Declared before every subsystem: each holds cached instrument
  /// pointers into this registry, so it must outlive them all.
  sim::Telemetry telemetry_;
  sim::Simulator sim_;
  hw::Rack rack_;
  optics::OpticalSwitch switch_;
  optics::CircuitManager circuits_;
  memsys::RemoteMemoryFabric fabric_;
  net::PacketNetwork packet_net_;
  orch::SdmController sdm_;
  orch::OpenStackFrontend openstack_;
  orch::MigrationEngine migration_;
  orch::OomGuard oom_guard_;
  orch::AcceleratorManager accel_mgr_;
  orch::PowerManager power_mgr_;
  sim::FaultInjector injector_{sim_};

  /// Maps every FaultKind onto its owning subsystem (ctor-time).
  void wire_fault_handlers();
  /// Re-provisions every optical attachment whose circuit is gone (the
  /// recovery sweep behind flap/drift/port-failure healing).
  void repair_all_down();

  struct BrickStack {
    std::unique_ptr<os::BareMetalOs> os;
    std::unique_ptr<hyp::Hypervisor> hypervisor;
    std::unique_ptr<orch::SdmAgent> agent;
  };
  std::unordered_map<hw::BrickId, BrickStack> stacks_;
  std::unordered_map<hw::BrickId, std::unique_ptr<optics::MidBoardOptics>> mbos_;
};

}  // namespace dredbox::core
