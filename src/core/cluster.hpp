#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cross_port.hpp"
#include "core/datacenter.hpp"
#include "optics/spine.hpp"
#include "sim/partition.hpp"

namespace dredbox::core {

/// Spine-traffic counters of one rack's NIC, for reports and audits.
struct RackLinkStats {
  std::uint64_t tx_messages = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_messages = 0;
  /// Requests refused at this rack because the outbound link was down.
  std::uint64_t fail_fast = 0;
};

/// A multi-rack dReDBox deployment: one full Datacenter per rack, joined
/// by an optical spine switch over which each rack exports a disaggregated
/// gateway memory window to its peers. Cross-rack reads and writes are
/// split-phase — request message over the spine, served against the target
/// rack's own remote-memory fabric through a gateway VM booted via that
/// rack's control plane, reply message back — so every byte of cross-rack
/// traffic exercises the same full stack as intra-rack traffic.
///
/// Each rack is one shard of a sim::PartitionedKernel whose per-link
/// lookahead is the spine's propagation delay; advance_all() therefore
/// runs the coupled simulation on any number of threads with a schedule
/// byte-identical to the single-threaded reference.
class Cluster {
 public:
  /// Requires config.racks to be non-empty; validates the config and
  /// throws std::invalid_argument listing every error. Boots one gateway
  /// VM per rack (throwing std::runtime_error if a gateway cannot come
  /// up) and schedules any configured spine faults.
  explicit Cluster(const DatacenterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const DatacenterConfig& config() const { return config_; }

  std::size_t size() const { return racks_.size(); }
  Datacenter& rack(std::size_t r) { return *racks_.at(r); }
  const Datacenter& rack(std::size_t r) const { return *racks_.at(r); }

  optics::SpineSwitch& spine() { return spine_; }
  const optics::SpineSwitch& spine() const { return spine_; }

  sim::PartitionedKernel& kernel() { return kernel_; }

  /// Rack r's NIC onto the spine; the workload layer installs its
  /// completion handler here and issues cross-rack traffic through it.
  CrossRackPort& port(std::size_t r);

  /// Bytes of the gateway window rack r exports to every peer.
  std::uint64_t gateway_window_bytes(std::size_t r) const;

  RackLinkStats link_stats(std::size_t r) const;

  /// FNV-1a digest of every request rack r *served* (source rack, address,
  /// fabric status, completion tick, in service order). Folded into the
  /// cluster run digest so the determinism proof covers the target-side
  /// schedule, not just each source's view.
  std::uint64_t served_digest(std::size_t r) const;

  /// Schedules the configured spine faults, each at `base` + its `at`
  /// offset (with the matching restore `duration` later). The cluster
  /// workload engine arms at its window start; drivers without a
  /// workload can arm at zero for wiring-absolute fault times. At most
  /// one arming per cluster; `base` must not lie in any rack's past.
  void arm_spine_faults(sim::Time base);
  bool spine_faults_armed() const { return faults_armed_; }

  /// Advances every rack to `until` in conservative lookahead rounds on
  /// `threads` workers (threads=1 is the sequential reference schedule).
  sim::PartitionRunStats advance_all(sim::Time until, std::size_t threads = 1);

  /// Total spine + racks instantaneous power.
  double power_draw_watts() const;

  std::string describe() const;

 private:
  class RackPort;

  /// Target-side half of a cross-rack request: serve it against rack
  /// `target`'s fabric through its gateway brick, then send the reply.
  void serve(std::uint32_t target, std::uint32_t src, std::uint32_t slot, std::uint64_t address,
             std::uint32_t bytes, bool write);
  /// Source-side half: retire pending slot `slot` and hand the completion
  /// to the rack's installed handler.
  void complete(std::uint32_t src, std::uint32_t slot, bool ok);

  void wire_spine();
  void boot_gateways();

  struct Gateway {
    hw::VmId vm;
    hw::BrickId compute;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
  };

  DatacenterConfig config_;
  std::vector<std::unique_ptr<Datacenter>> racks_;
  optics::SpineSwitch spine_;
  sim::PartitionedKernel kernel_;
  std::vector<Gateway> gateways_;
  std::vector<std::unique_ptr<RackPort>> ports_;
  bool faults_armed_ = false;
};

}  // namespace dredbox::core
