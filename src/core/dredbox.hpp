#pragma once

/// Umbrella header for the dReDBox library: one include gives a consumer
/// the full public API, mirroring the layering of the DATE 2018 paper.
///
///   #include "core/dredbox.hpp"
///   dredbox::core::Datacenter dc{{}};
///
/// Individual module headers remain includable on their own; this file is
/// a convenience for examples and downstream applications.

// Simulation substrate.
#include "sim/breakdown.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

// Hardware building blocks (Section II).
#include "hw/accel_brick.hpp"
#include "hw/brick.hpp"
#include "hw/compute_brick.hpp"
#include "hw/memory_brick.hpp"
#include "hw/power.hpp"
#include "hw/rack.hpp"
#include "hw/rmst.hpp"
#include "hw/tgl.hpp"
#include "hw/tray.hpp"

// Optical and packet interconnects (Section III).
#include "net/packet_network.hpp"
#include "net/packet_switch.hpp"
#include "optics/circuit.hpp"
#include "optics/fec.hpp"
#include "optics/link_budget.hpp"
#include "optics/mbo.hpp"
#include "optics/optical_switch.hpp"
#include "optics/receiver.hpp"

// Remote memory (Sections II-III).
#include "memsys/dma.hpp"
#include "memsys/remote_memory.hpp"
#include "memsys/transaction.hpp"

// System software (Section IV).
#include "hyp/hypervisor.hpp"
#include "hyp/vm.hpp"
#include "orch/accel_manager.hpp"
#include "orch/consolidator.hpp"
#include "orch/migration.hpp"
#include "orch/oom_guard.hpp"
#include "orch/openstack.hpp"
#include "orch/power_manager.hpp"
#include "orch/scale_out.hpp"
#include "orch/sdm_controller.hpp"
#include "os/baremetal_os.hpp"
#include "os/hotplug.hpp"

// TCO study (Section VI).
#include "tco/refresh_model.hpp"
#include "tco/tco_study.hpp"
#include "tco/workload.hpp"

// Facade, experiments, pilots.
#include "core/app_performance.hpp"
#include "core/datacenter.hpp"
#include "core/pilots/network_analytics.hpp"
#include "core/pilots/nfv.hpp"
#include "core/pilots/video_analytics.hpp"
#include "core/scaleup_experiment.hpp"

namespace dredbox {

/// Library version (reproduction release, not the paper's).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace dredbox
