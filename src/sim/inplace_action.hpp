#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace dredbox::sim {

/// Small-buffer-optimized, move-only callable — the op datapath's
/// replacement for std::function (ISSUE 9a).
///
/// Every scheduled event and DMA completion used to box its capture list
/// on the heap: std::function's small-buffer threshold is implementation-
/// defined (16 bytes under libstdc++), so the datapath's [this, slot,
/// offset, ...] captures all allocated. An InplaceFunction stores the
/// callable inline in `Capacity` bytes and *refuses to compile* when a
/// capture list outgrows it — oversized captures are a build error at the
/// schedule site, never a silent heap fallback. The default 48-byte
/// capacity fits every hot capture in the repository (the widest is the
/// workload engine's DMA completion: this + driver + closed_loop + a
/// 24-byte TraceContext = 48); growing a capture past it means shrinking
/// the capture (pool the state and capture a handle — see DESIGN §4d),
/// not growing the buffer.
///
/// Deliberately NOT provided, so misuse cannot compile:
///   * copying (an inline callable owning resources would double-free);
///   * target_type()/target() RTTI;
///   * heap fallback of any kind.
template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Converting constructor from any callable. The static_asserts are the
  /// compile-time oversize/alignment contract: a capture list that does
  /// not fit inline is rejected here, at the schedule site that wrote it.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture list too large for InplaceFunction's inline storage: "
                  "shrink the capture (pool the state and capture an arena "
                  "handle instead — see DESIGN §4d)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables do not fit InplaceFunction storage");
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable is not invocable with this InplaceFunction signature");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceFunction callables must be nothrow-move-constructible "
                  "(lambdas with throwing-move captures would break event-node moves)");
    // Placement-new into the inline buffer: the buffer is the object's own
    // storage, destroyed in ~InplaceFunction — ownership never escapes.
    // dredbox-lint: ignore[raw-new]
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = &invoke_as<Fn>;
    manage_ = &manage_as<Fn>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept
      : invoke_{other.invoke_}, manage_{other.manage_} {
    if (manage_ != nullptr) manage_(Op::kMoveTo, other.storage_, storage_);
    other.release();
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this == &other) return *this;
    destroy();
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMoveTo, other.storage_, storage_);
    other.release();
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    destroy();
    release();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Invokes the stored callable. Calling an empty InplaceFunction is the
  /// same contract as std::function: it throws std::bad_function_call.
  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call{};
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };

  template <typename Fn>
  static R invoke_as(void* storage, Args... args) {
    return (*std::launder(reinterpret_cast<Fn*>(storage)))(std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void manage_as(Op op, void* self, void* destination) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMoveTo) {
      // dredbox-lint: ignore[raw-new]
      ::new (destination) Fn(std::move(*fn));
      fn->~Fn();
    } else {
      fn->~Fn();
    }
  }

  void destroy() {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
  }
  void release() {
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

/// The event kernel's action type: a void() callable with the datapath's
/// standard 48-byte inline budget.
using InplaceAction = InplaceFunction<void()>;

}  // namespace dredbox::sim
