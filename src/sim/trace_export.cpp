#include "sim/trace_export.hpp"

#include <cstdlib>
#include <fstream>
#include <set>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::sim {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string number(double v) { return strformat("%.3f", v); }

}  // namespace

std::string to_chrome_trace_json(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // One named track (tid) per category that actually has events.
  std::set<int> seen;
  for (const TraceEvent& e : tracer.events()) seen.insert(static_cast<int>(e.category));
  for (int category : seen) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(category) + ",\"args\":{\"name\":\"" +
           json_escape(to_string(static_cast<TraceCategory>(category))) + "\"}}";
  }

  for (const TraceEvent& e : tracer.events()) {
    comma();
    const int tid = static_cast<int>(e.category);
    out += "{\"name\":\"" + json_escape(e.message) + "\",\"cat\":\"" +
           json_escape(to_string(e.category)) + "\",\"ph\":\"" + (e.span ? "X" : "i") +
           "\",\"ts\":" + number(e.when.as_us()) + ",\"pid\":0,\"tid\":" + std::to_string(tid);
    if (e.span) {
      out += ",\"dur\":" + number(e.duration.as_us());
    } else {
      out += ",\"s\":\"g\"";  // global-scope instant marker
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_escape(e.args[i].first);
        out += "\":\"";
        out += json_escape(e.args[i].second);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool maybe_write_trace(const Tracer& tracer) {
  const char* path = std::getenv(kTraceFileEnv);
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_trace: cannot open "} + path);
  }
  out << to_chrome_trace_json(tracer);
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_trace: write to "} + path + " failed");
  }
  return true;
}

}  // namespace dredbox::sim
