#include "sim/trace_export.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::sim {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string number(double v) { return strformat("%.3f", v); }

std::string hex_id(std::uint64_t id) { return strformat("%016llx", (unsigned long long)id); }

}  // namespace

std::string to_chrome_trace_json(const Tracer& tracer) {
  // Truncation accounting up front so a Perfetto user can tell "span was
  // never recorded" apart from "span fell out of the ring".
  std::string out = "{\"displayTimeUnit\":\"ns\",\"metadata\":{\"tracer\":{";
  out += "\"capacity\":" + std::to_string(tracer.capacity());
  out += ",\"retained\":" + std::to_string(tracer.size());
  out += ",\"dropped_while_disabled\":" + std::to_string(tracer.dropped_while_disabled());
  out += ",\"evicted\":" + std::to_string(tracer.evicted());
  out += "}},\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // One named track (tid) per category that actually has events.
  std::set<int> seen;
  for (const TraceEvent& e : tracer.events()) seen.insert(static_cast<int>(e.category));
  for (int category : seen) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(category) + ",\"args\":{\"name\":\"" +
           json_escape(to_string(static_cast<TraceCategory>(category))) + "\"}}";
  }

  // First event index per span id, so flow arrows are only emitted for
  // edges whose parent event survived ring eviction.
  std::map<std::uint64_t, std::size_t> parent_of;
  {
    std::size_t index = 0;
    for (const TraceEvent& e : tracer.events()) {
      if (e.ctx.valid()) parent_of.emplace(e.ctx.span_id, index);
      ++index;
    }
  }

  for (const TraceEvent& e : tracer.events()) {
    comma();
    const int tid = static_cast<int>(e.category);
    out += "{\"name\":\"" + json_escape(e.message) + "\",\"cat\":\"" +
           json_escape(to_string(e.category)) + "\",\"ph\":\"" + (e.span ? "X" : "i") +
           "\",\"ts\":" + number(e.when.as_us()) + ",\"pid\":0,\"tid\":" + std::to_string(tid);
    if (e.span) {
      out += ",\"dur\":" + number(e.duration.as_us());
    } else {
      out += ",\"s\":\"g\"";  // global-scope instant marker
    }
    if (!e.args.empty() || e.ctx.valid()) {
      out += ",\"args\":{";
      bool first_arg = true;
      auto put = [&](const std::string& key, const std::string& value) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        out += json_escape(key);
        out += "\":\"";
        out += json_escape(value);
        out += '"';
      };
      if (e.ctx.valid()) {
        put("trace_id", hex_id(e.ctx.trace_id));
        put("span_id", hex_id(e.ctx.span_id));
        if (e.ctx.parent_span_id != 0) put("parent_span_id", hex_id(e.ctx.parent_span_id));
      }
      for (const auto& [key, value] : e.args) put(key, value);
      out += '}';
    }
    out += '}';
  }

  // Parent/child flow links: one s->f arrow per retained edge, keyed by
  // the child's span id (unique per minted context).
  for (const TraceEvent& child : tracer.events()) {
    if (!child.ctx.valid() || child.ctx.parent_span_id == 0) continue;
    const auto found = parent_of.find(child.ctx.parent_span_id);
    if (found == parent_of.end()) continue;
    const TraceEvent& parent = tracer.event(found->second);
    const std::string id = "\"id\":\"" + hex_id(child.ctx.span_id) + "\"";
    comma();
    out += "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":" +
           number(parent.when.as_us()) + ",\"pid\":0,\"tid\":" +
           std::to_string(static_cast<int>(parent.category)) + "," + id + "}";
    comma();
    out += "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":" +
           number(child.when.as_us()) + ",\"pid\":0,\"tid\":" +
           std::to_string(static_cast<int>(child.category)) + "," + id + "}";
  }
  out += "]}";
  return out;
}

bool maybe_write_trace(const Tracer& tracer) {
  const char* path = std::getenv(kTraceFileEnv);
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_trace: cannot open "} + path);
  }
  out << to_chrome_trace_json(tracer);
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_trace: write to "} + path + " failed");
  }
  return true;
}

}  // namespace dredbox::sim
