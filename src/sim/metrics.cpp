#include "sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::sim::metrics {

void Histogram::observe(double x) {
  if (!*enabled_) return;
  running_.add(x);
  buckets_.add(x);
}

double Histogram::quantile(double q) const {
  if (running_.count() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return running_.min();
  if (q >= 1.0) return running_.max();

  const double target = q * static_cast<double>(buckets_.total());
  double cumulative = 0.0;
  for (std::size_t b = 0; b < buckets_.bin_count(); ++b) {
    const double in_bin = static_cast<double>(buckets_.count(b));
    if (cumulative + in_bin >= target && in_bin > 0) {
      const double frac = (target - cumulative) / in_bin;
      const double lo = buckets_.bin_low(b);
      const double hi = buckets_.bin_high(b);
      // Clamp the estimate to observed extremes so edge buckets (which
      // absorb out-of-range samples) cannot report impossible values.
      return std::clamp(lo + frac * (hi - lo), running_.min(), running_.max());
    }
    cumulative += in_bin;
  }
  return running_.max();
}

void MetricsRegistry::check_free(const std::string& name, const char* wanted) const {
  const bool taken = (std::string{wanted} != "counter" && counters_.count(name)) ||
                     (std::string{wanted} != "gauge" && gauges_.count(name)) ||
                     (std::string{wanted} != "histogram" && histograms_.count(name));
  if (taken) {
    throw std::logic_error("MetricsRegistry: instrument '" + name +
                           "' already registered with a different type (requested " + wanted +
                           ")");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  confined_.assert_confined("MetricsRegistry::counter");
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_free(name, "counter");
  auto [pos, inserted] = counters_.emplace(name, std::make_unique<Counter>(RegistryKey{}, &enabled_));
  (void)inserted;
  return *pos->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  confined_.assert_confined("MetricsRegistry::gauge");
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_free(name, "gauge");
  auto [pos, inserted] = gauges_.emplace(name, std::make_unique<Gauge>(RegistryKey{}, &enabled_));
  (void)inserted;
  return *pos->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      std::size_t bins) {
  confined_.assert_confined("MetricsRegistry::histogram");
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    Histogram& existing = *it->second;
    // A re-registration asking for a different bucket layout is a naming
    // collision between two call sites, not a lookup — silently keeping
    // the first layout would misattribute one site's samples.
    if (existing.low() != lo || existing.high() != hi || existing.bucket_count() != bins) {
      throw std::logic_error(
          "MetricsRegistry: histogram '" + name + "' already registered with bounds [" +
          TextTable::num(existing.low(), 3) + ", " + TextTable::num(existing.high(), 3) +
          ")/" + std::to_string(existing.bucket_count()) + " bins; re-registration asked for [" +
          TextTable::num(lo, 3) + ", " + TextTable::num(hi, 3) + ")/" + std::to_string(bins));
    }
    return existing;
  }
  check_free(name, "histogram");
  auto [pos, inserted] =
      histograms_.emplace(name, std::make_unique<Histogram>(RegistryKey{}, &enabled_, lo, hi, bins));
  (void)inserted;
  return *pos->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) || gauges_.count(name) || histograms_.count(name);
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

TextTable MetricsRegistry::snapshot() const {
  TextTable table{{"instrument", "type", "count", "value", "mean", "p50", "p99", "max"}};
  struct Row {
    std::string name;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows;
  for (const auto& [name, c] : counters_) {
    rows.push_back({name,
                    {name, "counter", std::to_string(c->value()), std::to_string(c->value()),
                     "-", "-", "-", "-"}});
  }
  for (const auto& [name, g] : gauges_) {
    rows.push_back(
        {name, {name, "gauge", "-", TextTable::num(g->value(), 3), "-", "-", "-", "-"}});
  }
  for (const auto& [name, h] : histograms_) {
    rows.push_back({name,
                    {name, "histogram", std::to_string(h->count()), "-",
                     TextTable::num(h->mean(), 3), TextTable::num(h->quantile(0.5), 3),
                     TextTable::num(h->quantile(0.99), 3), TextTable::num(h->max(), 3)}});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.name < b.name; });
  for (auto& row : rows) table.add_row(std::move(row.cells));
  return table;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  confined_.assert_confined("MetricsRegistry::merge");
  // Merge must land regardless of the local enabled flag: it folds
  // already-recorded data, it does not record new samples.
  const bool was_enabled = enabled_;
  enabled_ = true;
  for (const auto& [name, c] : other.counters_) counter(name).add(c->value());
  for (const auto& [name, g] : other.gauges_) {
    if (g->written()) gauge(name).set(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    // Layout check up front (histogram() would also throw on mismatch,
    // but from inside the loop the enabled_ restore below would be lost).
    if (const Histogram* mine = find_histogram(name);
        mine != nullptr && (mine->bucket_count() != h->bucket_count() ||
                            mine->low() != h->low() || mine->high() != h->high())) {
      enabled_ = was_enabled;
      throw std::logic_error("MetricsRegistry::merge: histogram '" + name +
                             "' has mismatched bucket layout");
    }
    Histogram& mine = histogram(name, h->low(), h->high(), h->bucket_count());
    mine.running_.merge(h->running_);
    mine.buckets_.merge(h->buckets_);
  }
  enabled_ = was_enabled;
}

void MetricsRegistry::reset() {
  confined_.assert_confined("MetricsRegistry::reset");
  for (auto& [name, c] : counters_) c->value_ = 0;
  for (auto& [name, g] : gauges_) {
    g->value_ = 0.0;
    g->written_ = false;
  }
  for (auto& [name, h] : histograms_) {
    const double lo = h->low();
    const double hi = h->high();
    const std::size_t bins = h->bucket_count();
    h->running_ = RunningStats{};
    h->buckets_ = sim::Histogram{lo, hi, bins};
  }
}

}  // namespace dredbox::sim::metrics
