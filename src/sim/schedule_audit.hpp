#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// What one audited run reports back to the auditor: the scenario's
/// canonical determinism digest plus the queue's batch accounting. Build
/// it with observe_audit() after the run drains.
///
/// The digest MUST be canonical with respect to tie order: computed from
/// per-operation outcomes keyed by operation identity (index, id) — never
/// accumulated in dispatch order — plus order-insensitive aggregates
/// (counter totals). A dispatch-order digest would diverge under every
/// permutation even when the simulation itself is tie-independent.
struct AuditObservation {
  std::uint64_t digest = 0;
  std::uint64_t batches = 0;
  std::optional<ScheduleBatchRecord> captured;
};

/// Reads the queue's batch accounting into an observation.
AuditObservation observe_audit(const EventQueue& queue, std::uint64_t digest);

struct ScheduleAuditConfig {
  /// Root seed of the permutation stream (each permutation derives its
  /// own shuffle seed, so N runs probe N distinct orders).
  std::uint64_t seed = 0x5eed;
  /// Perturbed re-runs (reverse / rotate / shuffle cycled). 16 is the
  /// acceptance bar for the repo's quickstart scenarios.
  std::size_t permutations = 16;
  /// Bisect the first divergence down to the batch and the event whose
  /// reordering flips the digest (costs O(log batches + batch size)
  /// additional scenario runs).
  bool bisect = true;
  /// Upper bound on scenario re-runs spent bisecting one divergence.
  std::size_t max_bisect_runs = 64;
};

/// One permutation whose digest broke from the baseline, plus — when the
/// bisection converged — the first batch and FIFO position whose
/// reordering flips the digest.
struct ScheduleDivergence {
  /// 1-based index of the diverging permutation.
  std::size_t permutation = 0;
  SchedulePerturbation perturbation;
  std::uint64_t expected_digest = 0;
  std::uint64_t observed_digest = 0;

  /// True when the batch-level bisection ran and converged.
  bool bisected = false;
  /// True when perturbing *only* the culprit batch reproduces the
  /// divergence (the dependence is local to that batch).
  bool isolated = false;
  std::uint64_t culprit_batch = 0;
  Time culprit_time;
  /// FIFO position within the culprit batch of the first event whose
  /// swap with its successor flips the digest; npos when the event-level
  /// scan did not converge (e.g. the dependence needs a larger reorder).
  static constexpr std::size_t kUnknownPosition = static_cast<std::size_t>(-1);
  std::size_t culprit_position = kUnknownPosition;
  std::string culprit_label;
  /// Labels of the whole culprit batch in FIFO order (the trace context
  /// of the finding: what was scheduled to fire at culprit_time).
  std::vector<std::string> batch_labels;

  std::string to_string() const;
};

struct ScheduleAuditReport {
  std::uint64_t baseline_digest = 0;
  /// Multi-event same-timestamp batches the identity run collected: how
  /// many reorderable points the scenario actually has. Zero means the
  /// audit was vacuous — no two events ever shared a timestamp.
  std::uint64_t batches = 0;
  /// Permutations executed (== config.permutations unless aborted).
  std::size_t permutations = 0;
  /// Total scenario executions, including baseline, identity and
  /// bisection runs (the audit's cost).
  std::size_t runs = 0;
  std::vector<ScheduleDivergence> divergences;

  bool ok() const { return divergences.empty(); }
  std::string to_string() const;
};

/// Deterministic "race detector for logical time": re-runs a scenario
/// under seeded permutations of every same-timestamp dispatch batch and
/// proves the canonical digest independent of tie order — the gating
/// proof that no code depends on the FIFO tie-break incidentally, which
/// the calendar-queue event-kernel rewrite (ROADMAP item 1) and the
/// partitioned parallel simulation (item 2) both require.
///
/// The scenario is a callback: build a fresh simulation (same seed every
/// time), arm the given perturbation on its EventQueue *before* running,
/// run to completion, and return observe_audit(queue, canonical_digest).
///
///   ScheduleAuditor auditor;
///   auto report = auditor.audit([&](const SchedulePerturbation& p) {
///     auto scenario = core::ScenarioBuilder{}...build();
///     scenario->simulator().queue().set_perturbation(p);
///     ... run, fold outcomes into a canonical sim::Digest d ...
///     return sim::observe_audit(scenario->simulator().queue(), d.value());
///   });
///   DREDBOX_INVARIANT(report.ok(), report.to_string());
///
/// On divergence the auditor delta-debugs: binary search over the batch
/// index prefix for the first order-sensitive batch, then an adjacent-
/// swap scan inside that batch for the first order-sensitive event,
/// reporting its label and batch composition.
class ScheduleAuditor {
 public:
  using RunFn = std::function<AuditObservation(const SchedulePerturbation&)>;

  explicit ScheduleAuditor(ScheduleAuditConfig config = {}) : config_{config} {}

  const ScheduleAuditConfig& config() const { return config_; }

  /// Runs baseline + identity + N permutations (+ bisection on the first
  /// divergence). Throws std::invalid_argument when run is empty.
  ScheduleAuditReport audit(const RunFn& run) const;

 private:
  ScheduleAuditConfig config_;

  void bisect(const RunFn& run, ScheduleAuditReport& report, ScheduleDivergence& divergence,
              std::uint64_t batch_bound) const;
};

}  // namespace dredbox::sim
