#pragma once

#include <stdexcept>
#include <string>

namespace dredbox::sim {

/// Thrown when a contract macro (DREDBOX_REQUIRE / DREDBOX_ENSURE /
/// DREDBOX_INVARIANT) fails: a precondition the caller violated, a
/// postcondition the callee failed to establish, or an internal invariant a
/// check_invariants() audit found broken. Carries the failing expression and
/// source location so a violation deep inside a rack-scale scenario is
/// diagnosable from the what() string alone.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string kind, std::string expression, std::string file, int line,
                    std::string function, std::string message);

  /// "precondition", "postcondition" or "invariant".
  const std::string& kind() const { return kind_; }
  /// The stringified condition that evaluated false.
  const std::string& expression() const { return expression_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  const std::string& function() const { return function_; }
  /// The optional caller-supplied detail message (may be empty).
  const std::string& message() const { return message_; }

 private:
  std::string kind_;
  std::string expression_;
  std::string file_;
  int line_;
  std::string function_;
  std::string message_;
};

namespace contract_detail {

/// Out-of-line throw helper so the macro expansion at every check site stays
/// one comparison and one (never-taken) call.
[[noreturn]] void fail(const char* kind, const char* expression, const char* file, int line,
                       const char* function, const std::string& message);

}  // namespace contract_detail

}  // namespace dredbox::sim

/// DREDBOX_AUDIT_ENABLED is 1 in -DDREDBOX_AUDIT=ON builds (the CMake option
/// defines DREDBOX_AUDIT=1 globally) and 0 otherwise.
#if defined(DREDBOX_AUDIT) && DREDBOX_AUDIT
#define DREDBOX_AUDIT_ENABLED 1
#else
#define DREDBOX_AUDIT_ENABLED 0
#endif

/// DREDBOX_INVARIANT(cond [, message]) — always-on consistency check for use
/// *inside* check_invariants() implementations. The audits themselves are
/// opt-in at the call site (DREDBOX_AUDIT_INVARIANT below), but once an audit
/// runs — or a test calls check_invariants() directly — it must actually
/// check in every build flavour.
#define DREDBOX_INVARIANT(condition, ...)                                               \
  ((condition) ? static_cast<void>(0)                                                   \
               : ::dredbox::sim::contract_detail::fail("invariant", #condition,         \
                                                       __FILE__, __LINE__, __func__,    \
                                                       ::std::string{__VA_ARGS__}))

#if DREDBOX_AUDIT_ENABLED

/// DREDBOX_REQUIRE(cond [, message]) — precondition on entry to an operation.
/// The message expression is evaluated only on failure.
#define DREDBOX_REQUIRE(condition, ...)                                                 \
  ((condition) ? static_cast<void>(0)                                                   \
               : ::dredbox::sim::contract_detail::fail("precondition", #condition,      \
                                                       __FILE__, __LINE__, __func__,    \
                                                       ::std::string{__VA_ARGS__}))

/// DREDBOX_ENSURE(cond [, message]) — postcondition before returning.
#define DREDBOX_ENSURE(condition, ...)                                                  \
  ((condition) ? static_cast<void>(0)                                                   \
               : ::dredbox::sim::contract_detail::fail("postcondition", #condition,     \
                                                       __FILE__, __LINE__, __func__,    \
                                                       ::std::string{__VA_ARGS__}))

/// DREDBOX_AUDIT_INVARIANT(statement) — runs a deep audit statement (usually
/// `check_invariants()`) at a mutation point. Compiled out entirely when
/// DREDBOX_AUDIT is off, so hot paths pay nothing in production builds.
#define DREDBOX_AUDIT_INVARIANT(...) \
  do {                               \
    __VA_ARGS__;                     \
  } while (false)

#else  // !DREDBOX_AUDIT_ENABLED

// Audits compiled out: the operands are never evaluated, so conditions and
// messages with side effects cost nothing (contract_test verifies this).
#define DREDBOX_REQUIRE(condition, ...) static_cast<void>(0)
#define DREDBOX_ENSURE(condition, ...) static_cast<void>(0)
#define DREDBOX_AUDIT_INVARIANT(...) static_cast<void>(0)

#endif  // DREDBOX_AUDIT_ENABLED
