#pragma once

// Clang thread-safety capability layer (-Wthread-safety; the CI
// `thread-safety` job builds with clang and -Werror so a missing
// annotation is a build break). Under other compilers every macro
// expands to nothing, so gcc builds are unaffected.
//
// Two usage tiers, matching how this repository shares state:
//
//  1. Cross-thread shared state (the SweepRunner's work pool is the only
//     instance today) uses sim::Mutex / sim::MutexLock with
//     DREDBOX_GUARDED_BY so clang statically proves every access holds
//     the lock, and ThreadSanitizer (DREDBOX_SANITIZE=thread) dynamically
//     proves the same at runtime.
//
//  2. Thread-confined state (a Datacenter and everything it owns —
//     Telemetry registries, the Tracer ring buffer, the EventQueue — is
//     built and driven by exactly one thread; the sweep runner relies on
//     this for its zero-sharing parallelism) declares a sim::ThreadConfined
//     member and calls assert_confined() at its mutation points. In
//     -DDREDBOX_AUDIT=ON builds a cross-thread touch throws
//     ContractViolation naming the object; in normal builds the check
//     compiles away.

#include <atomic>
#include <mutex>
#include <thread>

#include "sim/contract.hpp"

#if defined(__clang__)
#define DREDBOX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DREDBOX_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define DREDBOX_CAPABILITY(x) DREDBOX_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires on construction and releases on destruction.
#define DREDBOX_SCOPED_CAPABILITY DREDBOX_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define DREDBOX_GUARDED_BY(x) DREDBOX_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by `x`.
#define DREDBOX_PT_GUARDED_BY(x) DREDBOX_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (caller locks).
#define DREDBOX_REQUIRES(...) DREDBOX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DREDBOX_REQUIRES_SHARED(...) \
  DREDBOX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability and holds it past return.
#define DREDBOX_ACQUIRE(...) DREDBOX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability before returning.
#define DREDBOX_RELEASE(...) DREDBOX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires only when it returns `b`.
#define DREDBOX_TRY_ACQUIRE(b, ...) \
  DREDBOX_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
/// Function must be called with the listed capabilities NOT held.
#define DREDBOX_EXCLUDES(...) DREDBOX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define DREDBOX_RETURN_CAPABILITY(x) DREDBOX_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: suppress the analysis for one function (say why inline).
#define DREDBOX_NO_THREAD_SAFETY_ANALYSIS \
  DREDBOX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dredbox::sim {

/// std::mutex carrying the capability attributes the clang analysis needs
/// (the standard type has none, so analysis cannot see through it). Use
/// with DREDBOX_GUARDED_BY on every member the mutex protects.
class DREDBOX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DREDBOX_ACQUIRE() { mu_.lock(); }
  void unlock() DREDBOX_RELEASE() { mu_.unlock(); }
  bool try_lock() DREDBOX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over sim::Mutex (std::scoped_lock cannot carry the
/// scoped-capability attributes either).
class DREDBOX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DREDBOX_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() DREDBOX_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

#if DREDBOX_AUDIT_ENABLED

/// Dynamic single-owner check for thread-confined objects: the first
/// thread to call assert_confined() becomes the owner; any later call
/// from a different thread throws ContractViolation naming `what`. This
/// is the runtime teeth behind the "one Datacenter per thread" contract
/// that clang's static analysis cannot express (there is no lock to
/// annotate — the whole point is that no lock is needed).
///
/// Copies start unowned (a copied Tracer is a new object, confinable to
/// whichever thread uses it first). Zero-size and checks compiled out in
/// non-audit builds.
class ThreadConfined {
 public:
  ThreadConfined() = default;
  ThreadConfined(const ThreadConfined&) {}
  ThreadConfined& operator=(const ThreadConfined&) { return *this; }

  void assert_confined(const char* what) const {
    const std::size_t self = std::hash<std::thread::id>{}(std::this_thread::get_id());
    std::size_t expected = 0;
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) return;
    DREDBOX_INVARIANT(expected == self,
                      std::string{what} +
                          ": touched from a second thread; this object is thread-confined "
                          "(share it via its own thread, or add real locking)");
  }

  /// Releases confinement (e.g. when ownership legitimately moves between
  /// phases, as a moved-from object's does).
  void rebind() { owner_.store(0, std::memory_order_relaxed); }

 private:
  // Hashed owner thread id; 0 = not yet claimed. (A hash collision or a
  // thread id hashing to 0 weakens, never breaks, the check.)
  mutable std::atomic<std::size_t> owner_{0};
};

#else

class ThreadConfined {
 public:
  void assert_confined(const char*) const {}
  void rebind() {}
};

#endif  // DREDBOX_AUDIT_ENABLED

}  // namespace dredbox::sim
