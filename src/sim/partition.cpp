#include "sim/partition.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/worker_pool.hpp"

namespace dredbox::sim {

namespace {

/// Time + delay with infinity absorbing on either side: a silent neighbor
/// bounds nothing, and an unreachable path (infinite distance) delays
/// nothing into range — adding INT64_MAX raw would wrap negative and turn
/// "no bound" into "bounded in the distant past".
Time saturating_after(Time t, Time delay) {
  if (t.is_infinite() || delay.is_infinite()) return Time::infinity();
  return t + delay;
}

}  // namespace

std::size_t PartitionedKernel::add_shard(Simulator& sim) {
  shards_.push_back(Shard{&sim, {}, {}});
  return shards_.size() - 1;
}

std::size_t PartitionedKernel::connect(std::size_t from, std::size_t to, Time lookahead) {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::invalid_argument("PartitionedKernel::connect: shard index out of range");
  }
  if (from == to) {
    throw std::invalid_argument("PartitionedKernel::connect: a shard cannot link to itself");
  }
  if (lookahead <= Time::zero()) {
    throw std::invalid_argument(
        "PartitionedKernel::connect: lookahead must be strictly positive (it is the "
        "conservative window; zero would serialize every round)");
  }
  const std::size_t id = links_.size();
  links_.push_back(Link{from, to, lookahead,
                        std::make_unique<CrossChannel>(static_cast<std::uint32_t>(id))});
  shards_[from].out.push_back(id);
  shards_[to].in.push_back(id);
  return id;
}

Time PartitionedKernel::lookahead(std::size_t link) const {
  if (link >= links_.size()) {
    throw std::invalid_argument("PartitionedKernel::lookahead: link id out of range");
  }
  return links_[link].lookahead;
}

void PartitionedKernel::send(std::size_t link, Time when, InplaceAction action,
                             const char* label) {
  if (link >= links_.size()) {
    throw std::invalid_argument("PartitionedKernel::send: link id out of range");
  }
  Link& l = links_[link];
  // The conservative contract every horizon computation rests on: nothing
  // may land closer than the link's lookahead ahead of the sender's clock.
  // Checked on every send — a violation here would not crash, it would
  // silently decohere the parallel and sequential schedules.
  DREDBOX_INVARIANT(when >= shards_[l.from].sim->now() + l.lookahead,
                    "PartitionedKernel::send: delivery time is inside the link's "
                    "lookahead window (send later or declare a smaller lookahead)");
  l.channel->push(when, std::move(action), label);
}

std::uint64_t PartitionedKernel::deliver_incoming(std::size_t shard) {
  Shard& s = shards_[shard];
  scratch_.clear();
  for (const std::size_t id : s.in) links_[id].channel->drain(scratch_);
  if (scratch_.empty()) return 0;
  // Total order over incoming messages: (time, link, per-link seq) is a
  // pure function of send history, never of worker interleaving, and the
  // per-link seq keeps FIFO-within-timestamp across the partition cut.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const ChannelMessage& a, const ChannelMessage& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.link != b.link) return a.link < b.link;
              return a.seq < b.seq;
            });
  for (auto& message : scratch_) {
    DREDBOX_INVARIANT(message.when >= s.sim->now(),
                      "PartitionedKernel: cross-partition message arrived in the "
                      "receiver's past — the lookahead contract was broken");
    s.sim->at(message.when, std::move(message.action), message.label);
  }
  const std::uint64_t delivered = scratch_.size();
  scratch_.clear();
  return delivered;
}

PartitionRunStats PartitionedKernel::run(const std::vector<Time>& horizons,
                                         std::size_t threads) {
  if (horizons.size() != shards_.size()) {
    throw std::invalid_argument(
        "PartitionedKernel::run: one horizon per shard required");
  }
  PartitionRunStats stats;
  WorkerPool pool{std::max<std::size_t>(1, std::min(threads, shards_.size()))};
  stats.threads = pool.threads();

  const std::size_t n = shards_.size();

  // Pairwise minimum lookahead distance (min-plus shortest paths over the
  // link graph): dist[j][i] bounds below how much later than shard j's
  // next execution anything can reach shard i, along any path. Needed
  // because lookahead is transitive: a shard with an empty queue is NOT
  // silent — a message can wake it and make it send, so its earliest
  // possible send time is bounded through its neighbors, not by its own
  // (empty) queue alone.
  std::vector<Time> dist(n * n, Time::infinity());
  for (std::size_t i = 0; i < n; ++i) dist[i * n + i] = Time::zero();
  for (const Link& link : links_) {
    Time& d = dist[link.from * n + link.to];
    if (link.lookahead < d) d = link.lookahead;
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const Time ik = dist[i * n + k];
      if (ik.is_infinite()) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const Time through = saturating_after(ik, dist[k * n + j]);
        if (through < dist[i * n + j]) dist[i * n + j] = through;
      }
    }
  }

  std::vector<Time> next(n, Time::infinity());
  std::vector<Time> reach(n, Time::infinity());
  std::vector<Time> caps(n, Time::zero());
  std::atomic<std::size_t> dispatched{0};

  while (true) {
    // --- Phase A (coordinator): deliver cross traffic, read horizons. ---
    for (std::size_t i = 0; i < n; ++i) stats.messages += deliver_incoming(i);
    bool active = false;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = shards_[i].sim->queue().next_time();
      if (next[i] <= horizons[i]) active = true;
    }
    if (!active) break;

    // --- Safe advancement bounds for this round. ---
    // reach[i]: lower bound on when shard i can next execute ANY event —
    // its own queue head, or a message induced (transitively) by any
    // other shard's queue head. A queue head past its shard's horizon is
    // no seed (those events don't run this call), and a reach past i's
    // own horizon means i executes nothing at all this call, so it sends
    // nothing: infinity. Ignoring horizon clipping at intermediate hops
    // only lowers reach — conservative, never wrong.
    for (std::size_t i = 0; i < n; ++i) {
      Time r = Time::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        const Time seed = next[j] <= horizons[j] ? next[j] : Time::infinity();
        const Time via = saturating_after(seed, dist[j * n + i]);
        if (via < r) r = via;
      }
      reach[i] = r <= horizons[i] ? r : Time::infinity();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Time safe = Time::infinity();
      for (const std::size_t id : shards_[i].in) {
        const Link& link = links_[id];
        const Time bound = saturating_after(reach[link.from], link.lookahead);
        if (bound < safe) safe = bound;
      }
      Time cap = horizons[i];
      if (!safe.is_infinite() && safe - Time::ps(1) < cap) cap = safe - Time::ps(1);
      caps[i] = cap;
    }

    // --- Phase B: every shard advances to its cap in parallel. ---
    ++stats.rounds;
    pool.parallel_for(shards_.size(), [&](std::size_t i) {
      if (prologue_) prologue_(i);
      dispatched.fetch_add(shards_[i].sim->run_until(caps[i]), std::memory_order_relaxed);
    });
  }

  // Clock alignment: every queue is past its horizon, so this dispatches
  // nothing and just parks each shard's clock exactly at the horizon
  // (matching Datacenter::advance_to semantics for the coupled run).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    dispatched.fetch_add(shards_[i].sim->run_until(horizons[i]), std::memory_order_relaxed);
  }
  stats.dispatched = dispatched.load();
  return stats;
}

}  // namespace dredbox::sim
