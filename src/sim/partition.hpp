#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/inplace_action.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// One timestamped event crossing a partition boundary: deliver `action`
/// into the destination shard's queue at `when`. `seq` is the per-link
/// send order, the tie-break that keeps FIFO-within-timestamp intact when
/// two messages of one link land on the same tick.
struct ChannelMessage {
  Time when;
  /// Originating link id: the second tie-break key, so two links landing
  /// messages on one tick merge in a fixed order.
  std::uint32_t link = 0;
  std::uint64_t seq = 0;
  InplaceAction action;
  const char* label = nullptr;
};

/// One direction of an inter-partition link: the sending shard pushes
/// during its parallel phase, the coordinator drains between rounds. A
/// single shard writes and a single (barrier-separated) thread reads, so
/// the mutex is formally redundant — but it makes the channel provable
/// under clang -Wthread-safety and visible to TSan, instead of resting on
/// an invariant one refactor away from false.
class CrossChannel {
 public:
  explicit CrossChannel(std::uint32_t id) : id_{id} {}

  std::uint32_t id() const { return id_; }

  void push(Time when, InplaceAction action, const char* label) DREDBOX_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    queue_.push_back(ChannelMessage{when, id_, next_seq_++, std::move(action), label});
  }

  /// Moves every queued message (in send order) onto the back of `into`.
  void drain(std::vector<ChannelMessage>& into) DREDBOX_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    for (auto& message : queue_) into.push_back(std::move(message));
    queue_.clear();
  }

  std::uint64_t sent() const DREDBOX_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    return next_seq_;
  }

 private:
  mutable Mutex mu_;
  std::vector<ChannelMessage> queue_ DREDBOX_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DREDBOX_GUARDED_BY(mu_) = 0;
  const std::uint32_t id_;
};

/// What one PartitionedKernel::run call did.
struct PartitionRunStats {
  /// Conservative barrier rounds executed.
  std::size_t rounds = 0;
  /// Events dispatched across every shard.
  std::size_t dispatched = 0;
  /// Cross-partition messages delivered into shard queues.
  std::uint64_t messages = 0;
  std::size_t threads = 1;
};

/// Conservative-lookahead parallel event kernel (the CMB scheme in its
/// barrier-round form). Each shard is a full Simulator — its own
/// EventQueue, clock and RNG — and shards exchange events only through
/// per-link timestamped channels whose delivery lag is bounded below by
/// the link's lookahead (physically: the inter-rack propagation delay).
///
/// run() alternates two phases. Phase A, on the coordinator thread:
/// drain every channel, merge each shard's incoming messages in
/// (time, link, seq) order — a total order that is a pure function of
/// send history, never of thread interleaving — and schedule them;
/// then read each shard's next-event time h_i. Phase B, fanned across
/// the pool: each shard i processes events strictly below
///
///     safe_i = min over incoming links (j -> i) of
///                  reach_j + lookahead(j->i)
///
/// where reach_j = min over all shards k of (h_k + dist(k, j)) is the
/// earliest time shard j could possibly execute ANYTHING — its own queue
/// head, or an event induced by a message along any path (dist is the
/// min-plus shortest lookahead distance). The transitive form matters:
/// an empty-queue shard is not silent, because a message can wake it and
/// make it send; only the path distances bound how soon. Queue heads
/// past their shard's horizon are no seed (those events don't run this
/// call), and a shard whose reach exceeds its own horizon executes
/// nothing at all this call, so it bounds nothing.
///
/// Determinism: the rounds — and therefore the exact points where
/// messages enter each queue, the per-queue sequence numbers they draw,
/// and every tie-break — are a function of (shard states, horizons)
/// only. threads=1 executes the same rounds on one thread, so the
/// parallel schedule is byte-identical to the sequential reference by
/// construction, which the digest tests then verify end to end.
class PartitionedKernel {
 public:
  PartitionedKernel() = default;
  PartitionedKernel(const PartitionedKernel&) = delete;
  PartitionedKernel& operator=(const PartitionedKernel&) = delete;

  /// Registers a shard; returns its index. The Simulator must outlive the
  /// kernel. All shards must be added before the first run().
  std::size_t add_shard(Simulator& sim);

  /// Connects `from` -> `to` with a strictly positive lookahead (the
  /// link's minimum delivery lag). Returns the link id used by send().
  std::size_t connect(std::size_t from, std::size_t to, Time lookahead);

  /// Sender-side: deliver `action` into the link's destination shard at
  /// `when`. Must be called from the sending shard's execution context
  /// (one of its events, or wiring code before run()) with
  /// `when >= sender.now() + lookahead` — the contract the conservative
  /// horizon computation rests on, checked on every send.
  void send(std::size_t link, Time when, InplaceAction action, const char* label = nullptr);

  /// Ran on the executing thread right before a shard's parallel phase
  /// each round (the shard index is the argument). Hook for thread-
  /// affinity bookkeeping — the cluster uses it to re-bind each rack's
  /// thread-confined telemetry to the worker that drives it this round.
  void set_shard_prologue(std::function<void(std::size_t)> prologue) {
    prologue_ = std::move(prologue);
  }

  std::size_t shards() const { return shards_.size(); }
  std::size_t links() const { return links_.size(); }
  Time lookahead(std::size_t link) const;

  /// Advances shard i to horizons[i] (all its events with t <= horizon
  /// dispatched, clock left at the horizon) in conservative rounds on
  /// `threads` workers. threads=1 is the sequential reference schedule.
  ///
  /// May be called again with non-decreasing horizons, but note the
  /// finished-shard rule: a shard whose horizon passed is treated as
  /// silent, so a later call must not extend one shard's horizon past
  /// traffic a neighbor already advanced beyond. The cluster runner
  /// always passes one uniform horizon, which is trivially safe.
  PartitionRunStats run(const std::vector<Time>& horizons, std::size_t threads = 1);

 private:
  struct Link {
    std::size_t from;
    std::size_t to;
    Time lookahead;
    std::unique_ptr<CrossChannel> channel;
  };
  struct Shard {
    Simulator* sim;
    /// Incoming / outgoing link ids, in connect order.
    std::vector<std::size_t> in;
    std::vector<std::size_t> out;
  };

  /// Drains shard i's incoming channels and schedules the messages in
  /// (when, link, seq) order. Returns messages delivered.
  std::uint64_t deliver_incoming(std::size_t shard);

  std::vector<Shard> shards_;
  std::vector<Link> links_;
  std::function<void(std::size_t)> prologue_;
  /// Phase A scratch, reused across rounds so steady state stays
  /// allocation-free once high-water marks are reached.
  std::vector<ChannelMessage> scratch_;
};

}  // namespace dredbox::sim
