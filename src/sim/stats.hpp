#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dredbox::sim {

/// Streaming mean/variance/min/max (Welford). O(1) memory; no percentiles.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary used to render the paper's Fig. 7 box plots.
struct BoxPlot {
  double minimum = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double maximum = 0.0;
  std::size_t count = 0;

  double iqr() const { return q3 - q1; }
  std::string to_string() const;
};

/// Stored-sample statistics: percentiles and box plots on top of the
/// streaming aggregates. Linear-interpolated quantiles (type 7 / NumPy
/// default), so results are stable and comparable across tools.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const { return running_.mean(); }
  double stddev() const { return running_.stddev(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }
  double sum() const { return running_.sum(); }

  /// q in [0, 1]. Requires a non-empty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double percentile(double p) const { return quantile(p / 100.0); }

  /// Standard error of the mean (0 for fewer than two samples).
  double standard_error() const;
  /// Half-width of the normal-approximation 95% confidence interval on
  /// the mean (1.96 standard errors).
  double ci95_halfwidth() const { return 1.96 * standard_error(); }

  BoxPlot box_plot() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats running_;

  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Folds another histogram's counts in. Throws std::logic_error when
  /// the bucket layouts (range or bin count) differ.
  void merge(const Histogram& other);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const { return bin_low(bin + 1); }

  /// Renders as horizontal ASCII bars, one line per bin.
  std::string to_string(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dredbox::sim
