#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace dredbox::sim {

std::string Time::to_string() const {
  if (is_infinite()) return "+inf";
  const double ps = as_ps();
  const double mag = std::fabs(ps);
  char buf[64];
  if (mag < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0f ps", ps);
  } else if (mag < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3g ns", ps * 1e-3);
  } else if (mag < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3g us", ps * 1e-6);
  } else if (mag < 1e12) {
    std::snprintf(buf, sizeof buf, "%.3g ms", ps * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g s", ps * 1e-12);
  }
  return buf;
}

}  // namespace dredbox::sim
