#include "sim/time.hpp"

#include <cmath>

#include "sim/format.hpp"

namespace dredbox::sim {

std::string Time::to_string() const {
  if (is_infinite()) return "+inf";
  const double ps = as_ps();
  const double mag = std::fabs(ps);
  if (mag < 1e3) return strformat("%.0f ps", ps);
  if (mag < 1e6) return strformat("%.3g ns", ps * 1e-3);
  if (mag < 1e9) return strformat("%.3g us", ps * 1e-6);
  if (mag < 1e12) return strformat("%.3g ms", ps * 1e-9);
  return strformat("%.4g s", ps * 1e-12);
}

}  // namespace dredbox::sim
