#include "sim/random.hpp"

#include <numeric>
#include <stdexcept>

namespace dredbox::sim {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> d{lo, hi};
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d{lo, hi};
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d{mean, stddev};
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean must be positive");
  std::exponential_distribution<double> d{1.0 / mean};
  return d(engine_);
}

bool Rng::chance(double probability) {
  if (probability <= 0) return false;
  if (probability >= 1) return true;
  return uniform(0.0, 1.0) < probability;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("Rng::weighted_index: non-positive total weight");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  // Two draws give the child a 128-bit-ish distinct seed lineage.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng{a ^ (b * 0x9E3779B97F4A7C15ULL)};
}

}  // namespace dredbox::sim
