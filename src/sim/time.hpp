#pragma once

#include <cstdint>
#include <string>

namespace dredbox::sim {

/// Simulation time. Stored as an integral number of picoseconds so that
/// event ordering is exact and runs are bit-reproducible. The range
/// (+/- ~106 days) is ample for every experiment in the paper.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time ps(std::int64_t v) { return Time{v}; }
  static constexpr Time ns(double v) { return Time{to_ticks(v * 1e3)}; }
  static constexpr Time us(double v) { return Time{to_ticks(v * 1e6)}; }
  static constexpr Time ms(double v) { return Time{to_ticks(v * 1e9)}; }
  static constexpr Time sec(double v) { return Time{to_ticks(v * 1e12)}; }
  static constexpr Time infinity() { return Time{INT64_MAX}; }

  constexpr std::int64_t ticks() const { return ticks_; }
  constexpr double as_ps() const { return static_cast<double>(ticks_); }
  constexpr double as_ns() const { return static_cast<double>(ticks_) * 1e-3; }
  constexpr double as_us() const { return static_cast<double>(ticks_) * 1e-6; }
  constexpr double as_ms() const { return static_cast<double>(ticks_) * 1e-9; }
  constexpr double as_sec() const { return static_cast<double>(ticks_) * 1e-12; }

  constexpr bool is_infinite() const { return ticks_ == INT64_MAX; }

  constexpr Time operator+(Time rhs) const { return Time{ticks_ + rhs.ticks_}; }
  constexpr Time operator-(Time rhs) const { return Time{ticks_ - rhs.ticks_}; }
  constexpr Time& operator+=(Time rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ticks_ -= rhs.ticks_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time{ticks_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ticks_ / k}; }

  constexpr auto operator<=>(const Time&) const = default;

  /// Human-readable rendering with an auto-selected unit ("423 ns", "1.25 s").
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ticks) : ticks_{ticks} {}

  static constexpr std::int64_t to_ticks(double ps) {
    // Round to nearest tick; callers pass non-negative magnitudes in practice
    // but negative durations (deltas) are allowed.
    return static_cast<std::int64_t>(ps >= 0 ? ps + 0.5 : ps - 0.5);
  }

  std::int64_t ticks_ = 0;
};

constexpr Time scale(Time t, double factor) {
  return Time::ps(static_cast<std::int64_t>(static_cast<double>(t.ticks()) * factor + 0.5));
}

}  // namespace dredbox::sim
