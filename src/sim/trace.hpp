#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Category of a trace event; used for filtering.
enum class TraceCategory : std::uint8_t {
  kOrchestration,  // SDM-C decisions, reservations
  kHotplug,        // kernel hot-add/remove
  kHypervisor,     // VM lifecycle, DIMMs, balloon
  kFabric,         // attach/detach, circuits
  kPower,          // power on/off, sweeps
  kMigration,      // VM moves
  kApplication,    // workload-level markers
};

std::string to_string(TraceCategory category);

/// One recorded event.
struct TraceEvent {
  Time when;
  TraceCategory category;
  std::string message;
};

/// Bounded in-memory event log for observing a simulated rack. Recording
/// is cheap and off by default; experiments enable it to explain *why* an
/// outcome happened (which brick was chosen, when a sweep fired, ...).
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 65536;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Records an event (dropped silently when disabled; oldest events are
  /// evicted once the capacity is reached).
  void record(Time when, TraceCategory category, std::string message);

  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events of one category, in recording order.
  std::vector<TraceEvent> filter(TraceCategory category) const;

  /// Multi-line rendering: "[   12.5 ms] fabric: attached 2 GiB ...".
  std::string to_string() const;

  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace dredbox::sim
