#pragma once

#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Category of a trace event; used for filtering and as the per-track
/// grouping in the Chrome trace export (see sim/trace_export.hpp).
enum class TraceCategory : std::uint8_t {
  kOrchestration,  // SDM-C decisions, reservations
  kHotplug,        // kernel hot-add/remove
  kHypervisor,     // VM lifecycle, DIMMs, balloon
  kFabric,         // attach/detach, circuits, memory transactions
  kPower,          // power on/off, sweeps
  kMigration,      // VM moves
  kApplication,    // workload-level markers
};

std::string to_string(TraceCategory category);

/// Causal identity of one traced operation. A root context (minted by
/// Tracer::begin_trace()) starts a trace; child contexts (child_of())
/// share the trace_id and point back at their parent span, so an exported
/// timeline can be reassembled into per-operation span trees: workload op
/// -> fabric transaction -> retry/repair/failover -> completion.
///
/// Ids are minted from a splitmix64 stream seeded from the simulation
/// seed — deterministic across runs, never derived from the wall clock.
/// An all-zero context is "untraced" (valid() == false); every recording
/// API accepts it and simply leaves the event unlinked.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool root() const { return valid() && parent_span_id == 0; }
};

/// One recorded event: an instant marker (duration == 0 and span == false)
/// or a timed span with optional key/value attributes, optionally carrying
/// the causal context that links it into a span tree.
struct TraceEvent {
  Time when;
  TraceCategory category;
  std::string message;
  Time duration = Time::zero();
  bool span = false;
  std::vector<std::pair<std::string, std::string>> args;
  TraceContext ctx;

  Time end() const { return when + duration; }
};

/// Bounded in-memory event log for observing a simulated rack. Recording
/// is cheap and off by default; experiments enable it to explain *why* an
/// outcome happened (which brick was chosen, when a sweep fired, ...).
///
/// Storage is a ring buffer: once `capacity` events are held, each new
/// record overwrites the oldest in O(1) (no buffer shifting on the hot
/// path). events() iterates in recording order regardless of where the
/// ring currently wraps.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 65536;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Records an instant event. While disabled the event is dropped (and
  /// counted in dropped_while_disabled()); once the ring is full the
  /// oldest event is evicted (counted in evicted()).
  void record(Time when, TraceCategory category, std::string message);

  /// Records a completed span [begin, end] with optional attributes and an
  /// optional causal context. The same drop/evict accounting as record()
  /// applies. `end < begin` is clamped to an instant at `begin`.
  void record_span(Time begin, Time end, TraceCategory category, std::string name,
                   std::vector<std::pair<std::string, std::string>> args = {},
                   TraceContext ctx = {});

  /// Seeds the deterministic trace-id stream (call once per simulation,
  /// with the simulation seed, before any trace is minted). Without a
  /// seed the stream starts from a fixed default, still deterministic.
  void seed_trace_ids(std::uint64_t seed);

  /// Mints a root context for a new trace. Returns an invalid (all-zero)
  /// context — without consuming ids — while the tracer is disabled, so
  /// toggling tracing never perturbs anything downstream of the id stream.
  TraceContext begin_trace();

  /// Mints a child context under `parent` (same trace, fresh span id).
  /// Invalid parents and a disabled tracer both yield an invalid context.
  TraceContext child_of(const TraceContext& parent);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Total events this tracer refused to keep: records that arrived while
  /// disabled plus old events evicted by the capacity ring.
  std::size_t dropped() const { return dropped_while_disabled_ + evicted_; }
  /// Events dropped because record() ran while the tracer was disabled.
  std::size_t dropped_while_disabled() const { return dropped_while_disabled_; }
  /// Old events overwritten after the ring reached capacity.
  std::size_t evicted() const { return evicted_; }

  /// `index` counts from the oldest retained event (0) to the newest
  /// (size()-1), i.e. recording order.
  const TraceEvent& event(std::size_t index) const;

  /// Lightweight view over the retained events in recording order (an
  /// iteration adapter over the ring; no copy).
  class EventView {
   public:
    class const_iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = TraceEvent;
      using difference_type = std::ptrdiff_t;
      using pointer = const TraceEvent*;
      using reference = const TraceEvent&;

      const_iterator(const Tracer* tracer, std::size_t index)
          : tracer_{tracer}, index_{index} {}
      reference operator*() const { return tracer_->event(index_); }
      pointer operator->() const { return &tracer_->event(index_); }
      const_iterator& operator++() {
        ++index_;
        return *this;
      }
      const_iterator operator++(int) {
        const_iterator old = *this;
        ++index_;
        return old;
      }
      bool operator==(const const_iterator&) const = default;

     private:
      const Tracer* tracer_;
      std::size_t index_;
    };

    explicit EventView(const Tracer& tracer) : tracer_{&tracer} {}
    std::size_t size() const { return tracer_->size(); }
    bool empty() const { return tracer_->size() == 0; }
    const TraceEvent& operator[](std::size_t index) const { return tracer_->event(index); }
    const TraceEvent& front() const { return tracer_->event(0); }
    const TraceEvent& back() const { return tracer_->event(tracer_->size() - 1); }
    const_iterator begin() const { return const_iterator{tracer_, 0}; }
    const_iterator end() const { return const_iterator{tracer_, tracer_->size()}; }

   private:
    const Tracer* tracer_;
  };

  EventView events() const { return EventView{*this}; }

  /// Events of one category, in recording order.
  std::vector<TraceEvent> filter(TraceCategory category) const;

  /// Multi-line rendering: "[   12.5 ms] fabric: attached 2 GiB ...".
  std::string to_string() const;

  void clear();

  /// Hands thread ownership over (see MetricsRegistry::rebind_owner): the
  /// partitioned kernel re-binds each rack's tracer to whichever barrier-
  /// separated pool worker drives the rack this round.
  void rebind_owner() { confined_.rebind(); }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::uint64_t id_state_ = 0x64726564626f78ull;  // "dredbox" default stream
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::size_t dropped_while_disabled_ = 0;
  std::size_t evicted_ = 0;
  // The ring is lock-free because a Tracer belongs to one Datacenter and
  // therefore to one thread (the sweep runner's no-sharing contract); every
  // mutation asserts that in audit builds. Copies start unconfined.
  ThreadConfined confined_;

  void push(TraceEvent event);
};

}  // namespace dredbox::sim
