#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Everything the rack can break while it keeps serving VMs (Sections II,
/// III and V: circuits are re-provisioned and remote-memory segments come
/// and go at runtime). The sim layer knows only the taxonomy; the
/// Datacenter facade maps each kind onto the owning subsystem.
enum class FaultKind : std::uint8_t {
  kLinkFlap,            // optical circuit drops; auto-repairs after `duration`
  kInsertionLossDrift,  // switch insertion loss drifts by `magnitude` dB
  kSwitchPortFailure,   // one beam-steering switch port dies (target = port)
  kCongestionBurst,     // packet-switch congestion: x`magnitude` queueing
  kLossBurst,           // packet loss burst: `magnitude` retransmissions/packet
  kBrickCrash,          // brick crashes (target = brick id); restarts after
                        // `duration` when non-zero
  kBrickRestart,        // crashed brick comes back (target = brick id)
  kRmstCorruption,      // RMST entry corruption (target = compute brick,
                        // aux = attachment ordinal)
  kControllerStall,     // SDM-C service stalls for `duration`
};

std::string to_string(FaultKind kind);
std::optional<FaultKind> fault_kind_from_string(std::string_view name);

/// Environment variable examples and drivers read a fault plan from.
inline constexpr const char* kFaultPlanEnv = "DREDBOX_FAULT_PLAN";

/// One scheduled fault. `target`/`aux` are kind-specific ids (circuit,
/// switch port, brick, attachment ordinal); 0 conventionally means "let the
/// handler pick the first live victim at injection time", which keeps
/// hand-written and generated plans valid without knowing runtime ids.
struct FaultEvent {
  Time at;
  FaultKind kind = FaultKind::kLinkFlap;
  std::uint64_t target = 0;
  std::uint64_t aux = 0;
  double magnitude = 0.0;
  /// For flaps/bursts/stalls/crashes: how long until auto-recovery;
  /// Time::zero() means the fault persists until explicitly recovered.
  Time duration;

  /// Round-trips through FaultPlan::parse().
  std::string to_string() const;
};

/// A deterministic, schedulable stream of fault events. Plans are plain
/// data: build one programmatically, parse one from the DREDBOX_FAULT_PLAN
/// environment variable, or draw one from a seeded Rng — the same seed and
/// config always yield the same plan.
class FaultPlan {
 public:
  FaultPlan& add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// A copy with every event moved `offset` later. Plans are written in
  /// plan-relative time; shift one to land relative to "now" (e.g. the
  /// start of a measurement window) before scheduling it.
  FaultPlan shifted(Time offset) const;

  /// Latest end time of any event (at + duration); zero for an empty plan.
  /// Advance past this and every fault has fired and auto-recovered.
  Time horizon() const;

  /// Textual form: events joined by ';'. Round-trips through parse().
  std::string to_string() const;

  /// Parses the DREDBOX_FAULT_PLAN mini-language. One event is
  ///
  ///   <kind>@<time>[+<duration>][:key=value[,key=value...]]
  ///
  /// where <kind> is a to_string(FaultKind) name ("link-flap",
  /// "brick-crash", ...), <time>/<duration> are numbers with a unit suffix
  /// (ns/us/ms/s), and keys are target/aux/magnitude. Events are separated
  /// by ';'. Example:
  ///
  ///   link-flap@2ms+500us;brick-crash@5ms:target=3;congestion@1ms+2ms:magnitude=4
  ///
  /// Throws std::invalid_argument with the offending token on bad input.
  static FaultPlan parse(const std::string& spec);

  /// Knobs for the seeded plan generator.
  struct GeneratorConfig {
    std::size_t events = 8;
    Time horizon = Time::sec(1);       // faults land uniformly in [0, horizon)
    Time max_duration = Time::ms(50);  // flap/burst/stall lengths
    /// Relative weights per kind, indexed in FaultKind declaration order.
    /// Defaults favour the interconnect faults the paper's availability
    /// story hinges on; zero a slot to exclude that kind.
    std::vector<double> weights = {4, 1, 2, 2, 2, 2, 0, 2, 1};
  };

  /// Draws a plan from a seeded stream: same rng state + config => same
  /// plan, so a whole faulty run stays digest-reproducible.
  static FaultPlan generate(Rng& rng, const GeneratorConfig& config);
  static FaultPlan generate(Rng& rng) { return generate(rng, GeneratorConfig{}); }

 private:
  std::vector<FaultEvent> events_;
};

/// Parses the plan in $DREDBOX_FAULT_PLAN; nullopt when the variable is
/// unset or empty. Throws std::invalid_argument on a malformed plan.
std::optional<FaultPlan> fault_plan_from_env();

/// Delivers a FaultPlan through the simulation's own event queue, so fault
/// arrival interleaves deterministically with the workload. Subsystem
/// adapters register one inject handler per kind (and optionally a recover
/// handler, fired `duration` after injection); events whose kind has no
/// handler are counted as skipped rather than lost silently.
class FaultInjector {
 public:
  using Handler = std::function<void(const FaultEvent&)>;

  explicit FaultInjector(Simulator& sim) : sim_{sim} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers the injection action for one kind (last registration wins).
  void on(FaultKind kind, Handler inject);

  /// Registers the recovery action for one kind; fires `duration` after the
  /// injection for events with a non-zero duration.
  void on_recover(FaultKind kind, Handler recover);

  /// Schedules every event of the plan on the simulator's queue. Events in
  /// the past are clamped to now(). Returns the number scheduled. Run the
  /// simulator (or Datacenter::advance_to) to make the faults land.
  std::size_t schedule(const FaultPlan& plan);

  /// Wires telemetry in: injected/recovered/skipped counters and the
  /// active-fault gauge ("sim.faults.*"). Null detaches telemetry.
  void set_telemetry(Telemetry* telemetry);

  std::uint64_t scheduled() const { return scheduled_; }
  std::uint64_t injected() const { return injected_; }
  std::uint64_t recovered() const { return recovered_; }
  std::uint64_t skipped() const { return skipped_; }
  /// Injected faults whose recovery has not fired (yet or ever).
  std::uint64_t active() const { return injected_ - recovered_; }

  /// Deep consistency audit: the counters tally (every scheduled event is
  /// pending, injected or skipped; recoveries never exceed injections).
  /// Throws ContractViolation on the first broken invariant.
  void check_invariants() const;

 private:
  Simulator& sim_;
  std::map<FaultKind, Handler> inject_;
  std::map<FaultKind, Handler> recover_;
  /// Events handed to schedule(), kept so the scheduled actions capture
  /// [this, index] instead of a 48-byte FaultEvent copy (a whole-event
  /// capture plus `this` overflows the InplaceAction budget). Append-only
  /// for the injector's lifetime; fire paths copy the event out by value
  /// because a handler may reentrantly schedule() and grow the vector.
  std::vector<FaultEvent> events_;
  std::uint64_t scheduled_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t skipped_ = 0;

  Telemetry* telemetry_ = nullptr;
  metrics::Counter* injected_metric_ = nullptr;
  metrics::Counter* recovered_metric_ = nullptr;
  metrics::Counter* skipped_metric_ = nullptr;
  metrics::Gauge* active_metric_ = nullptr;

  void fire(std::size_t index);
  void fire_recovery(std::size_t index);
};

}  // namespace dredbox::sim
