#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dredbox::sim {

/// 64-bit FNV-1a running digest. Used by the determinism harness to reduce a
/// whole telemetry snapshot / trace timeline to one comparable fingerprint:
/// two runs of the same seed must produce equal digests, two different seeds
/// must not. Deterministic by construction (no randomized hashing).
class Digest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Digest& update(std::string_view bytes) {
    for (unsigned char c : bytes) {
      state_ ^= c;
      state_ *= kPrime;
    }
    return *this;
  }

  Digest& update(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xffu;
      state_ *= kPrime;
    }
    return *this;
  }

  std::uint64_t value() const { return state_; }

  /// Fixed-width lowercase hex rendering of value().
  std::string to_string() const;

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience: FNV-1a of a byte string.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace dredbox::sim
