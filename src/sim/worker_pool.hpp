#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "sim/annotations.hpp"

namespace dredbox::sim {

/// The repository's one fork-join thread pool, shared by every parallel
/// harness (the sweep runner's per-cell fan-out and the partitioned
/// kernel's per-round shard fan-out) so there is a single annotated,
/// TSan-exercised implementation of "run N independent bodies on K
/// threads" instead of ad-hoc thread spawns per call site.
///
/// Workers are spawned once at construction and parked on a condition
/// variable between jobs, so a caller that issues many small
/// parallel_for() rounds (the conservative-lookahead kernel runs one per
/// barrier round) pays a wake-up, not a thread spawn, per round. The
/// calling thread always participates as one worker, so WorkerPool{1}
/// spawns nothing and parallel_for degenerates to an inline loop — the
/// sequential reference schedule and the parallel one share this exact
/// code path.
///
/// Indices are claimed from an atomic cursor (work stealing); the body
/// must therefore be index-independent of claim order, which every caller
/// guarantees by writing results to per-index slots (see ResultStore).
class WorkerPool {
 public:
  /// `threads` counts the calling thread: threads - 1 workers are spawned.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers, calling thread included.
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs body(0) ... body(n-1) across the pool and returns when every
  /// index completed. The calling thread participates. If any body
  /// throws, the first exception (in completion order) is rethrown here
  /// after all workers finished their drain — never mid-job.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body)
      DREDBOX_EXCLUDES(mu_);

 private:
  void worker_main();
  /// Claims indices off cursor_ until the job is exhausted; records the
  /// first exception instead of unwinding through the pool.
  void drain(const std::function<void(std::size_t)>& body, std::size_t limit)
      DREDBOX_EXCLUDES(mu_);

  std::vector<std::thread> workers_;

  Mutex mu_;
  /// Current job; non-null only while a parallel_for is in flight.
  const std::function<void(std::size_t)>* body_ DREDBOX_GUARDED_BY(mu_) = nullptr;
  std::size_t limit_ DREDBOX_GUARDED_BY(mu_) = 0;
  /// Bumped once per job so a worker that wakes late never re-runs a
  /// finished job and never misses a new one.
  std::uint64_t generation_ DREDBOX_GUARDED_BY(mu_) = 0;
  /// Workers still draining the current job.
  std::size_t active_ DREDBOX_GUARDED_BY(mu_) = 0;
  bool stop_ DREDBOX_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ DREDBOX_GUARDED_BY(mu_);
  /// Next unclaimed index of the current job. Atomic rather than guarded:
  /// claims happen on the hot drain path and need no ordering beyond the
  /// fetch_add itself.
  std::atomic<std::size_t> cursor_{0};

  /// condition_variable_any works with sim::Mutex (BasicLockable), which
  /// keeps the guarded members statically provable everywhere outside the
  /// two wait loops.
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
};

/// The one piece of state parallel_for bodies share: per-index results
/// stored under a mutex. DREDBOX_GUARDED_BY lets clang's -Wthread-safety
/// prove every slot access holds the lock (disjoint-index writes into a
/// bare vector would be just as race-free but unprovable — and one
/// refactor away from not being race-free). The lock is taken once per
/// finished index; bodies are coarse units of work, so contention is nil.
template <typename T>
class ResultStore {
 public:
  explicit ResultStore(std::size_t size) : results_(size) {}

  void store(std::size_t index, T value) DREDBOX_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    results_[index] = std::move(value);
  }

  /// Moves the results out; call only after the producing parallel_for
  /// returned.
  std::vector<T> take() DREDBOX_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    return std::move(results_);
  }

 private:
  Mutex mu_;
  std::vector<T> results_ DREDBOX_GUARDED_BY(mu_);
};

}  // namespace dredbox::sim
