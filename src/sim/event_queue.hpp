#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Deterministic discrete-event queue.
///
/// Events scheduled for the same timestamp fire in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), which
/// makes every simulation in this repository bit-reproducible for a fixed
/// seed regardless of heap internals.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`. `when` must not precede
  /// the timestamp of the event currently being dispatched.
  EventId schedule(Time when, Action action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// True when no pending (non-cancelled) events remain.
  bool empty() const { return live_count_ == 0; }

  std::size_t pending() const { return live_count_; }

  /// Timestamp of the earliest pending event; Time::infinity() when empty.
  Time next_time() const;

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool dispatch_one();

  /// Current simulation time (timestamp of the last dispatched event).
  Time now() const { return now_; }

  /// Runs events until the queue drains or the next event is after `until`.
  /// Advances now() to `until` when it stops early. Returns the number of
  /// events dispatched.
  std::size_t run_until(Time until);

  /// Runs all events to quiescence. Returns the number dispatched.
  std::size_t run();

  /// Drops every pending event and resets time to zero.
  void reset();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
    Action action;

    // Min-heap via std::priority_queue, so greater-than ordering.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily only if it grows
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
  Time now_ = Time::zero();

  bool is_cancelled(EventId id) const;
};

}  // namespace dredbox::sim
