#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/arena.hpp"
#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// The value packs the event node's arena slot and generation, so stale
/// handles (fired, cancelled, or recycled events) are rejected in O(1)
/// without any hash lookup. Zero is never a valid handle.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Specification of a same-timestamp dispatch-order perturbation — the
/// schedule auditor's probe (see sim/schedule_audit.hpp).
///
/// The queue's documented contract is FIFO-within-timestamp, but no code
/// in this repository may *rely* on that incidental order for its
/// simulation outcome: same-timestamp events must be independent (or
/// ordered through explicit timestamps). A perturbation makes the queue
/// collect each group of >= 2 events sharing the earliest pending
/// timestamp into a "batch" and dispatch the batch in a permuted order; a
/// scenario whose canonical digest survives every permutation provably
/// does not depend on tie order. kIdentity exercises the batch-collection
/// machinery without reordering (the batch path itself must be
/// digest-neutral) and is how the auditor counts batches for bisection.
struct SchedulePerturbation {
  enum class Mode : std::uint8_t {
    kNone,          // normal FIFO dispatch, no batch collection
    kIdentity,      // collect batches, dispatch in FIFO order
    kReverse,       // dispatch each batch back-to-front
    kRotate,        // rotate each batch left by one
    kShuffle,       // seeded Fisher-Yates per batch
    kSwapAdjacent,  // swap FIFO positions (swap_position, swap_position+1)
  };

  Mode mode = Mode::kNone;
  /// Stream seed for kShuffle; each batch derives its own permutation
  /// from (seed, batch index), so shuffles are run-order independent.
  std::uint64_t seed = 1;
  /// Only batches with index in [first_batch, last_batch) are permuted
  /// (all are still collected and counted). The auditor's bisection
  /// narrows this window to isolate the first order-sensitive batch.
  std::uint64_t first_batch = 0;
  std::uint64_t last_batch = UINT64_MAX;
  /// FIFO position swapped with its successor under kSwapAdjacent
  /// (out-of-range positions leave the batch untouched).
  std::size_t swap_position = 0;
  /// When set, the queue records this batch's composition (timestamp,
  /// FIFO labels, dispatch order) into captured_batch().
  std::optional<std::uint64_t> capture_batch;

  bool enabled() const { return mode != Mode::kNone; }
  /// Human-readable "reverse[3,4) seed=7" rendering for audit reports.
  std::string to_string() const;
};

/// Composition of one same-timestamp batch the queue collected while a
/// perturbation was active; captured on request (capture_batch) so the
/// auditor can name the events of an order-sensitive batch.
struct ScheduleBatchRecord {
  std::uint64_t index = 0;
  Time when;
  /// Event labels in FIFO (scheduling) order; "(unlabeled)" when the
  /// schedule site passed no label.
  std::vector<std::string> fifo_labels;
  /// dispatch_order[k] is the FIFO position dispatched k-th.
  std::vector<std::size_t> dispatch_order;
};

/// Environment variable that, when set (to anything non-empty), asks the
/// top-level entry points (ScenarioBuilder, examples) to turn on the
/// event-kernel self-profiler. The queue itself never reads the
/// environment — tests flip profiling explicitly.
inline constexpr const char* kProfileEnv = "DREDBOX_PROFILE";

/// One row of the event-kernel self-profile: how many events of one label
/// dispatched and how much *host* time their actions consumed. Host time
/// is wall-clock measurement of this process and is therefore not part of
/// any determinism contract — it exists to locate the per-event kernel
/// overhead (ROADMAP item 1), not to feed digests.
struct KernelProfileEntry {
  std::string label;
  std::uint64_t dispatches = 0;
  double host_ns = 0.0;

  double ns_per_dispatch() const {
    return dispatches > 0 ? host_ns / static_cast<double>(dispatches) : 0.0;
  }
};

/// Snapshot of the calendar geometry and its lifetime counters, exposed
/// for the bucket-boundary regression tests and the kernel profile. All
/// values describe physical layout only — none of them may influence a
/// simulation outcome.
struct CalendarStats {
  std::int64_t window_start_ps = 0;   // first tick covered by bucket 0
  std::int64_t window_last_ps = 0;    // last tick covered by the window (inclusive)
  std::int64_t bucket_width_ps = 0;   // calendar day length (power of two)
  std::size_t buckets = 0;            // bucket count (power of two)
  std::size_t cursor = 0;             // next bucket index to be serviced
  std::size_t in_overflow = 0;        // nodes parked on the ladder rung
  std::size_t in_drain = 0;           // nodes in the loaded (sorted) bucket
  std::uint64_t rebuilds = 0;         // ladder refills (window re-spans)
  std::uint64_t bucket_loads = 0;     // buckets sorted into the drain
};

/// Deterministic discrete-event queue — a calendar queue with an overflow
/// ladder rung, backed by a fixed-block arena (sim/arena.hpp).
///
/// Events scheduled for the same timestamp fire in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), which
/// makes every simulation in this repository bit-reproducible for a fixed
/// seed regardless of queue internals. The binary-heap implementation this
/// kernel replaced is retained, verbatim, as the differential test oracle
/// (tests/sim/reference_event_queue.hpp): a randomized operation-sequence
/// harness asserts dispatch-stream equality between the two across
/// adversarial tie/boundary/cancel interleavings.
///
/// Geometry: the "year" [window_start, window_last] is split into
/// power-of-two-width day buckets; an event lands in its day's unsorted
/// chain in O(1). Events past the year go to an unsorted overflow rung;
/// when the year is exhausted the window re-spans from the overflow
/// (adaptive bucket count/width), so refills amortize to O(1) per event.
/// A day is sorted once when the cursor reaches it, into a descending
/// "drain" serviced back-to-front — so a whole same-timestamp tie-batch
/// is dispatched without re-touching the priority structure, and events
/// an action schedules into the open day merge by binary insertion.
///
/// Cancellation is O(1): the handle's slot+generation resolve to the
/// node, which is flagged and reclaimed lazily when its bucket is
/// serviced (or its rung re-spanned).
class EventQueue {
 public:
  /// Inline-storage callable (sim/inplace_action.hpp): scheduling an event
  /// never heap-allocates for the capture list, and a capture list too
  /// large for the 48-byte inline budget is a compile error at the
  /// schedule site rather than a silent allocation.
  using Action = InplaceAction;

  EventQueue();

  /// Schedules `action` at absolute time `when`. `when` must not precede
  /// the timestamp of the event currently being dispatched. `label`, when
  /// given, must be a string with static storage duration (a literal);
  /// it names the event type in the kernel self-profile.
  EventId schedule(Time when, Action action, const char* label = nullptr);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// True when no pending (non-cancelled) events remain.
  bool empty() const { return pending_count_ == 0; }

  std::size_t pending() const { return pending_count_; }

  /// Timestamp of the earliest pending event; Time::infinity() when empty.
  Time next_time() const;

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool dispatch_one();

  /// Current simulation time (timestamp of the last dispatched event).
  Time now() const { return now_; }

  /// Runs events until the queue drains or the next event is after `until`.
  /// Advances now() to `until` when it stops early. Returns the number of
  /// events dispatched.
  std::size_t run_until(Time until);

  /// Runs all events to quiescence. Returns the number dispatched.
  std::size_t run();

  /// Drops every pending event and resets time to zero.
  void reset();

  /// Deep consistency audit: every node is reachable exactly once from a
  /// bucket, the drain, the overflow rung or the perturbation batch;
  /// counts agree with the arena; nothing precedes now(); buckets match
  /// their time ranges; the drain is sorted. Throws ContractViolation on
  /// the first broken invariant. Wired into every mutation when built
  /// with -DDREDBOX_AUDIT=ON; callable directly (e.g. from tests) in any
  /// build.
  void check_invariants() const;

  /// Physical-layout snapshot (window, bucket geometry, refill counters)
  /// for tests and diagnostics.
  CalendarStats calendar_stats() const;

  /// Turns the self-profiler on: every subsequent dispatch is counted per
  /// label and its action timed against the host clock. Off by default —
  /// the disabled hot path costs one branch.
  void enable_profiling() { profiling_ = true; }
  void disable_profiling() { profiling_ = false; }
  bool profiling_enabled() const { return profiling_; }

  /// Arms (or, with Mode::kNone, disarms) a schedule perturbation. Must
  /// not be called while a collected batch is mid-dispatch (throws
  /// std::logic_error) — arm before running the scenario. Resets the
  /// batch counter and any captured record. Off by default: the
  /// unperturbed dispatch path costs one branch (see
  /// BM_EventQueueScheduleDispatch, which pins the overhead at zero).
  void set_perturbation(const SchedulePerturbation& perturbation);
  const SchedulePerturbation& perturbation() const { return perturb_; }

  /// Multi-event same-timestamp batches collected since the perturbation
  /// was armed (singleton "batches" cannot be reordered and don't count).
  std::uint64_t batches_collected() const { return batches_collected_; }

  /// The batch requested via SchedulePerturbation::capture_batch, once it
  /// has been collected; nullopt before then (or when capture is unset).
  const std::optional<ScheduleBatchRecord>& captured_batch() const { return captured_; }

  /// The accumulated self-profile, one row per distinct label (unlabeled
  /// events fold into "(unlabeled)"), sorted by label for deterministic
  /// iteration. Empty when profiling never ran.
  std::vector<KernelProfileEntry> kernel_profile() const;

  /// Human-readable profile table sorted by total host time descending.
  std::string profile_to_string() const;

 private:
  /// One scheduled event. Pool-allocated; chained intrusively through a
  /// day bucket or the overflow rung until its day is serviced.
  struct Node {
    Node(Time w, std::uint64_t s, Action a, const char* l)
        : when{w}, seq{s}, action{std::move(a)}, label{l} {}

    Time when;
    std::uint64_t seq;
    Node* next = nullptr;
    Action action;
    const char* label;
    std::uint32_t slot = 0;    // arena slot backing this node
    bool cancelled = false;    // flagged by cancel(); reclaimed lazily
  };

  // --- placement (every structural member is mutable because next_time()
  // lazily sorts days, reclaims cancelled nodes and re-spans the ladder:
  // those change only the physical representation, never the observable
  // pending set or timestamps, so they are logically const) ---

  void insert_node(Node* node) const;
  /// Sort key + node for the open day: the drain is sorted and peeked
  /// through these 24-byte entries so ordering never chases node pointers.
  struct DrainEntry {
    Time when;
    std::uint64_t seq;
    Node* node;
  };

  /// Binary-inserts into the open day's descending drain.
  void drain_insert(Node* node) const;
  /// Returns the loaded day's nodes to their bucket (physical move only);
  /// used when a schedule rewinds the cursor to an earlier day.
  void flush_drain() const;
  /// Advances the cursor to the next non-empty day and sorts it into the
  /// drain; re-spans the window from the overflow rung when the year is
  /// exhausted. Postcondition: drain tail is a live node, or the queue
  /// holds no nodes at all.
  void ensure_drain() const;
  void load_bucket(std::size_t index) const;
  void rebuild_from_overflow() const;

  std::size_t bucket_index(std::int64_t ticks) const {
    return static_cast<std::size_t>((ticks - win_start_) >> bucket_shift_);
  }

  void bucket_prepend(std::size_t index, Node* node) const {
    Node*& head = buckets_[index];
    if (head == nullptr) occupancy_[index >> 6] |= std::uint64_t{1} << (index & 63);
    node->next = head;
    head = node;
  }

  /// First non-empty bucket at or after `from`; buckets_.size() when none.
  std::size_t next_occupied(std::size_t from) const;

  /// Destroys a node and returns its block to the pool.
  void free_node(Node* node) const;
  /// free_node for a node that was cancelled (keeps the count honest).
  void reclaim_cancelled(Node* node) const;

  /// Pops `node` (already unlinked, still pending) and runs its action
  /// with profiling attribution; shared by both dispatch paths. The node
  /// is freed *before* the action runs — the action may schedule, cancel,
  /// or even reset the queue.
  void fire_node(Node* node);

  /// Dispatches every event tied at the earliest pending timestamp (when
  /// it is <= `until`) in one pass over the sorted drain tail, without
  /// re-probing the calendar between events — the run loops' batched
  /// fast path (unperturbed only). Returns the number dispatched; 0 means
  /// the queue is empty or the next event is after `until`.
  std::size_t dispatch_batch(Time until);

  // --- perturbation machinery (inert while perturb_.mode == kNone) ---

  /// Skips batch entries cancelled after collection (an earlier event in
  /// the batch may cancel a later one — that contract survives
  /// perturbation because cancellation is checked at fire time).
  void skip_cancelled_batch() const;
  /// Collects every pending event sharing the earliest timestamp into
  /// batch_, applies the armed permutation, and updates the batch
  /// accounting. Requires a non-empty drain with a live tail.
  void collect_batch();
  /// Dispatch path while a perturbation is armed. set_perturbation refuses
  /// to disarm mid-batch, so the unperturbed path never sees batch_ state.
  bool dispatch_one_perturbed();

  mutable IndexedArena<Node> arena_;
  mutable std::vector<Node*> buckets_;   // unsorted intrusive day chains
  // One bit per bucket (bit set <=> chain non-empty), so the cursor skips
  // runs of empty days a word at a time instead of probing every chain.
  mutable std::vector<std::uint64_t> occupancy_;
  mutable Node* overflow_ = nullptr;     // unsorted ladder rung (beyond the year)
  mutable std::size_t overflow_count_ = 0;
  mutable std::vector<DrainEntry> drain_;  // open day, descending (when, seq)
  mutable std::ptrdiff_t drain_bucket_ = -1;  // day loaded into drain_; -1 none
  mutable std::size_t cursor_ = 0;       // next day to service
  mutable std::int64_t win_start_ = 0;   // tick of bucket 0 (<= now())
  mutable std::int64_t win_last_ = 0;    // last tick in the window, inclusive
  mutable int bucket_shift_ = 0;         // day width = 1 << bucket_shift_ ticks
  mutable std::uint64_t rebuilds_ = 0;
  mutable std::uint64_t bucket_loads_ = 0;

  std::size_t pending_count_ = 0;        // scheduled, not fired/cancelled
  mutable std::size_t cancelled_count_ = 0;  // cancelled, not yet reclaimed
  std::uint64_t next_seq_ = 0;
  Time now_ = Time::zero();
  bool profiling_ = false;

  SchedulePerturbation perturb_;
  // The same-timestamp batch currently being drained, in dispatch order;
  // entries before batch_pos_ already fired or were reclaimed. Nodes stay
  // arena-live while batched so they remain cancellable.
  mutable std::vector<Node*> batch_;
  mutable std::size_t batch_pos_ = 0;
  std::uint64_t batches_collected_ = 0;
  std::optional<ScheduleBatchRecord> captured_;

  struct ProfileCell {
    std::uint64_t dispatches = 0;
    double host_ns = 0.0;
  };
  /// Keyed by label text; std::map so exported rows are label-sorted.
  std::map<std::string, ProfileCell> profile_;
};

}  // namespace dredbox::sim
