#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Environment variable that, when set (to anything non-empty), asks the
/// top-level entry points (ScenarioBuilder, examples) to turn on the
/// event-kernel self-profiler. The queue itself never reads the
/// environment — tests flip profiling explicitly.
inline constexpr const char* kProfileEnv = "DREDBOX_PROFILE";

/// One row of the event-kernel self-profile: how many events of one label
/// dispatched and how much *host* time their actions consumed. Host time
/// is wall-clock measurement of this process and is therefore not part of
/// any determinism contract — it exists to locate the ~250 ns/event
/// kernel overhead (ROADMAP item 1), not to feed digests.
struct KernelProfileEntry {
  std::string label;
  std::uint64_t dispatches = 0;
  double host_ns = 0.0;

  double ns_per_dispatch() const {
    return dispatches > 0 ? host_ns / static_cast<double>(dispatches) : 0.0;
  }
};

/// Deterministic discrete-event queue.
///
/// Events scheduled for the same timestamp fire in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), which
/// makes every simulation in this repository bit-reproducible for a fixed
/// seed regardless of heap internals.
///
/// Cancellation is O(1): a cancelled event's id moves from the pending set
/// to the cancelled set, and its heap entry is dropped lazily when it
/// surfaces at the top.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`. `when` must not precede
  /// the timestamp of the event currently being dispatched. `label`, when
  /// given, must be a string with static storage duration (a literal);
  /// it names the event type in the kernel self-profile.
  EventId schedule(Time when, Action action, const char* label = nullptr);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// True when no pending (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  std::size_t pending() const { return pending_.size(); }

  /// Timestamp of the earliest pending event; Time::infinity() when empty.
  Time next_time() const;

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool dispatch_one();

  /// Current simulation time (timestamp of the last dispatched event).
  Time now() const { return now_; }

  /// Runs events until the queue drains or the next event is after `until`.
  /// Advances now() to `until` when it stops early. Returns the number of
  /// events dispatched.
  std::size_t run_until(Time until);

  /// Runs all events to quiescence. Returns the number dispatched.
  std::size_t run();

  /// Drops every pending event and resets time to zero.
  void reset();

  /// Deep consistency audit: heap/pending/cancelled bookkeeping agrees, ids
  /// are within the issued range, and no buried event precedes now().
  /// Throws ContractViolation on the first broken invariant. Wired into
  /// every mutation when built with -DDREDBOX_AUDIT=ON; callable directly
  /// (e.g. from tests) in any build.
  void check_invariants() const;

  /// Turns the self-profiler on: every subsequent dispatch is counted per
  /// label and its action timed against the host clock. Off by default —
  /// the disabled hot path costs one branch.
  void enable_profiling() { profiling_ = true; }
  void disable_profiling() { profiling_ = false; }
  bool profiling_enabled() const { return profiling_; }

  /// The accumulated self-profile, one row per distinct label (unlabeled
  /// events fold into "(unlabeled)"), sorted by label for deterministic
  /// iteration. Empty when profiling never ran.
  std::vector<KernelProfileEntry> kernel_profile() const;

  /// Human-readable profile table sorted by total host time descending.
  std::string profile_to_string() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
    const char* label;
    Action action;

    // Min-heap via std::priority_queue, so greater-than ordering.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // `mutable` because next_time() lazily evicts cancelled entries from the
  // heap top: eviction changes only the physical representation, never the
  // observable pending set or timestamps, so it is logically const.
  mutable std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;             // scheduled, not fired/cancelled
  mutable std::unordered_set<std::uint64_t> cancelled_;   // cancelled, still buried in heap_
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  Time now_ = Time::zero();
  bool profiling_ = false;
  struct ProfileCell {
    std::uint64_t dispatches = 0;
    double host_ns = 0.0;
  };
  /// Keyed by label text; std::map so exported rows are label-sorted.
  std::map<std::string, ProfileCell> profile_;

  /// Pops heap entries whose id was cancelled until a live entry (or an
  /// empty heap) surfaces.
  void evict_cancelled_top() const;
};

}  // namespace dredbox::sim
