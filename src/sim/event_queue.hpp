#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Specification of a same-timestamp dispatch-order perturbation — the
/// schedule auditor's probe (see sim/schedule_audit.hpp).
///
/// The queue's documented contract is FIFO-within-timestamp, but no code
/// in this repository may *rely* on that incidental order for its
/// simulation outcome: same-timestamp events must be independent (or
/// ordered through explicit timestamps). A perturbation makes the queue
/// collect each group of >= 2 events sharing the earliest pending
/// timestamp into a "batch" and dispatch the batch in a permuted order; a
/// scenario whose canonical digest survives every permutation provably
/// does not depend on tie order. kIdentity exercises the batch-collection
/// machinery without reordering (the batch path itself must be
/// digest-neutral) and is how the auditor counts batches for bisection.
struct SchedulePerturbation {
  enum class Mode : std::uint8_t {
    kNone,          // normal FIFO dispatch, no batch collection
    kIdentity,      // collect batches, dispatch in FIFO order
    kReverse,       // dispatch each batch back-to-front
    kRotate,        // rotate each batch left by one
    kShuffle,       // seeded Fisher-Yates per batch
    kSwapAdjacent,  // swap FIFO positions (swap_position, swap_position+1)
  };

  Mode mode = Mode::kNone;
  /// Stream seed for kShuffle; each batch derives its own permutation
  /// from (seed, batch index), so shuffles are run-order independent.
  std::uint64_t seed = 1;
  /// Only batches with index in [first_batch, last_batch) are permuted
  /// (all are still collected and counted). The auditor's bisection
  /// narrows this window to isolate the first order-sensitive batch.
  std::uint64_t first_batch = 0;
  std::uint64_t last_batch = UINT64_MAX;
  /// FIFO position swapped with its successor under kSwapAdjacent
  /// (out-of-range positions leave the batch untouched).
  std::size_t swap_position = 0;
  /// When set, the queue records this batch's composition (timestamp,
  /// FIFO labels, dispatch order) into captured_batch().
  std::optional<std::uint64_t> capture_batch;

  bool enabled() const { return mode != Mode::kNone; }
  /// Human-readable "reverse[3,4) seed=7" rendering for audit reports.
  std::string to_string() const;
};

/// Composition of one same-timestamp batch the queue collected while a
/// perturbation was active; captured on request (capture_batch) so the
/// auditor can name the events of an order-sensitive batch.
struct ScheduleBatchRecord {
  std::uint64_t index = 0;
  Time when;
  /// Event labels in FIFO (scheduling) order; "(unlabeled)" when the
  /// schedule site passed no label.
  std::vector<std::string> fifo_labels;
  /// dispatch_order[k] is the FIFO position dispatched k-th.
  std::vector<std::size_t> dispatch_order;
};

/// Environment variable that, when set (to anything non-empty), asks the
/// top-level entry points (ScenarioBuilder, examples) to turn on the
/// event-kernel self-profiler. The queue itself never reads the
/// environment — tests flip profiling explicitly.
inline constexpr const char* kProfileEnv = "DREDBOX_PROFILE";

/// One row of the event-kernel self-profile: how many events of one label
/// dispatched and how much *host* time their actions consumed. Host time
/// is wall-clock measurement of this process and is therefore not part of
/// any determinism contract — it exists to locate the ~250 ns/event
/// kernel overhead (ROADMAP item 1), not to feed digests.
struct KernelProfileEntry {
  std::string label;
  std::uint64_t dispatches = 0;
  double host_ns = 0.0;

  double ns_per_dispatch() const {
    return dispatches > 0 ? host_ns / static_cast<double>(dispatches) : 0.0;
  }
};

/// Deterministic discrete-event queue.
///
/// Events scheduled for the same timestamp fire in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), which
/// makes every simulation in this repository bit-reproducible for a fixed
/// seed regardless of heap internals.
///
/// Cancellation is O(1): a cancelled event's id moves from the pending set
/// to the cancelled set, and its heap entry is dropped lazily when it
/// surfaces at the top.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`. `when` must not precede
  /// the timestamp of the event currently being dispatched. `label`, when
  /// given, must be a string with static storage duration (a literal);
  /// it names the event type in the kernel self-profile.
  EventId schedule(Time when, Action action, const char* label = nullptr);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// True when no pending (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  std::size_t pending() const { return pending_.size(); }

  /// Timestamp of the earliest pending event; Time::infinity() when empty.
  Time next_time() const;

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool dispatch_one();

  /// Current simulation time (timestamp of the last dispatched event).
  Time now() const { return now_; }

  /// Runs events until the queue drains or the next event is after `until`.
  /// Advances now() to `until` when it stops early. Returns the number of
  /// events dispatched.
  std::size_t run_until(Time until);

  /// Runs all events to quiescence. Returns the number dispatched.
  std::size_t run();

  /// Drops every pending event and resets time to zero.
  void reset();

  /// Deep consistency audit: heap/pending/cancelled bookkeeping agrees, ids
  /// are within the issued range, and no buried event precedes now().
  /// Throws ContractViolation on the first broken invariant. Wired into
  /// every mutation when built with -DDREDBOX_AUDIT=ON; callable directly
  /// (e.g. from tests) in any build.
  void check_invariants() const;

  /// Turns the self-profiler on: every subsequent dispatch is counted per
  /// label and its action timed against the host clock. Off by default —
  /// the disabled hot path costs one branch.
  void enable_profiling() { profiling_ = true; }
  void disable_profiling() { profiling_ = false; }
  bool profiling_enabled() const { return profiling_; }

  /// Arms (or, with Mode::kNone, disarms) a schedule perturbation. Must
  /// not be called while a collected batch is mid-dispatch (throws
  /// std::logic_error) — arm before running the scenario. Resets the
  /// batch counter and any captured record. Off by default: the
  /// unperturbed dispatch path costs one branch (see
  /// BM_EventQueueScheduleDispatch, which pins the overhead at zero).
  void set_perturbation(const SchedulePerturbation& perturbation);
  const SchedulePerturbation& perturbation() const { return perturb_; }

  /// Multi-event same-timestamp batches collected since the perturbation
  /// was armed (singleton "batches" cannot be reordered and don't count).
  std::uint64_t batches_collected() const { return batches_collected_; }

  /// The batch requested via SchedulePerturbation::capture_batch, once it
  /// has been collected; nullopt before then (or when capture is unset).
  const std::optional<ScheduleBatchRecord>& captured_batch() const { return captured_; }

  /// The accumulated self-profile, one row per distinct label (unlabeled
  /// events fold into "(unlabeled)"), sorted by label for deterministic
  /// iteration. Empty when profiling never ran.
  std::vector<KernelProfileEntry> kernel_profile() const;

  /// Human-readable profile table sorted by total host time descending.
  std::string profile_to_string() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
    const char* label;
    Action action;

    // Min-heap via std::priority_queue, so greater-than ordering.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // `mutable` because next_time() lazily evicts cancelled entries from the
  // heap top: eviction changes only the physical representation, never the
  // observable pending set or timestamps, so it is logically const.
  mutable std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;             // scheduled, not fired/cancelled
  // Cancelled ids still physically buried in heap_ or in the batch tail.
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  Time now_ = Time::zero();
  bool profiling_ = false;

  // --- schedule-perturbation state (inert while perturb_.mode == kNone) ---
  SchedulePerturbation perturb_;
  // The same-timestamp batch currently being drained, in dispatch order;
  // entries before batch_pos_ already fired. `mutable` for the same
  // lazy-eviction reason as heap_/cancelled_: next_time() skips cancelled
  // batch entries without changing anything observable.
  mutable std::vector<Entry> batch_;
  mutable std::size_t batch_pos_ = 0;
  std::uint64_t batches_collected_ = 0;
  std::optional<ScheduleBatchRecord> captured_;
  struct ProfileCell {
    std::uint64_t dispatches = 0;
    double host_ns = 0.0;
  };
  /// Keyed by label text; std::map so exported rows are label-sorted.
  std::map<std::string, ProfileCell> profile_;

  /// Pops heap entries whose id was cancelled until a live entry (or an
  /// empty heap) surfaces.
  void evict_cancelled_top() const;

  /// Skips batch entries cancelled after collection (an earlier event in
  /// the batch may cancel a later one — that contract survives
  /// perturbation because cancellation is checked at fire time).
  void skip_cancelled_batch() const;

  /// Collects every pending event sharing the earliest timestamp into
  /// batch_, applies the armed permutation, and updates the batch
  /// accounting. Requires a non-empty heap with a live top.
  void collect_batch();

  /// Dispatch path while a perturbation is armed. set_perturbation refuses
  /// to disarm mid-batch, so the unperturbed path never sees batch_ state.
  bool dispatch_one_perturbed();

  /// Runs one entry's action with profiling attribution; shared by both
  /// dispatch paths. The entry must already be removed from pending_.
  void fire(Entry& entry);
};

}  // namespace dredbox::sim
