#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string BoxPlot::to_string() const {
  return strformat("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g (n=%zu)", minimum, q1, median,
                   q3, maximum, count);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1 || (sorted_ && samples_[samples_.size() - 2] <= x);
  running_.add(x);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("SampleSet::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("SampleSet::quantile: q outside [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) return samples_.back();
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

double SampleSet::standard_error() const {
  if (samples_.size() < 2) return 0.0;
  return running_.stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

BoxPlot SampleSet::box_plot() const {
  BoxPlot b;
  if (samples_.empty()) return b;
  b.minimum = min();
  b.q1 = quantile(0.25);
  b.median = quantile(0.5);
  b.q3 = quantile(0.75);
  b.maximum = max();
  b.count = count();
  return b;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi} {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::int64_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw std::logic_error("Histogram::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

std::string Histogram::to_string(std::size_t width) const {
  std::string out;
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += strformat("[%9.3g, %9.3g) %6zu |", bin_low(i), bin_high(i), counts_[i]);
    const std::size_t bar = peak ? counts_[i] * width / peak : 0;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace dredbox::sim
