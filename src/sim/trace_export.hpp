#pragma once

#include <string>

#include "sim/trace.hpp"

namespace dredbox::sim {

/// JSON string escaping (quotes, backslashes, control characters) per
/// RFC 8259; used by the trace exporter and handy for any ad-hoc JSON.
std::string json_escape(const std::string& text);

/// Renders the tracer's retained event log as Chrome trace-event JSON
/// (the "JSON Object Format": {"traceEvents": [...]}), loadable in
/// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
///
/// Mapping: spans become complete events (ph "X") with their duration and
/// args; instant events become ph "i". Timestamps are the simulated time
/// in microseconds. Each TraceCategory gets its own tid plus a
/// thread_name metadata record, so the viewer shows one labelled track
/// per subsystem.
std::string to_chrome_trace_json(const Tracer& tracer);

/// Environment variable naming the trace output file.
inline constexpr const char* kTraceFileEnv = "DREDBOX_TRACE_FILE";

/// When DREDBOX_TRACE_FILE is set, writes the Chrome trace JSON there and
/// returns true (mirroring the DREDBOX_CSV_DIR convention of
/// maybe_write_csv). No-op returning false when the variable is unset;
/// throws on I/O failure so silent data loss cannot happen.
bool maybe_write_trace(const Tracer& tracer);

}  // namespace dredbox::sim
