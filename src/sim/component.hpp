#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace dredbox::sim {

/// Interned identifier for a latency-breakdown component label (ISSUE 9b).
///
/// The datapath used to key every Breakdown entry on a std::string, which
/// meant one heap copy per component per transaction. Labels come from a
/// small fixed vocabulary (the Fig. 8 pipeline stages plus the orchestration
/// stages), so they are interned once in a process-wide registry and ops
/// carry 2-byte ids. The registry is populated at static initialization
/// with every label the datapath charges; unknown labels (tests, future
/// stages) intern lazily under a mutex — a cold path by construction.
using ComponentId = std::uint16_t;

/// Interns `label`, returning its stable id. Idempotent: the same label
/// always maps to the same id for the life of the process. Hot charge
/// sites call this once at namespace scope and cache the id; the
/// Breakdown::charge(string_view) compatibility shim calls it per charge
/// (lookup only — known labels never take the insertion path).
ComponentId component_id(std::string_view label);

/// Id for `label` if it has ever been interned, std::nullopt otherwise.
/// Lets read-side queries (Breakdown::of / has) answer "absent" for a
/// label nothing ever charged without growing the registry.
std::optional<ComponentId> component_id_if_interned(std::string_view label);

/// Reverse lookup. The returned view points at registry-owned storage and
/// stays valid for the life of the process. Asking for an id that was
/// never handed out is a contract violation.
std::string_view component_label(ComponentId id);

/// Number of labels interned so far (test/introspection hook).
std::size_t component_count();

}  // namespace dredbox::sim
