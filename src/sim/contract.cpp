#include "sim/contract.hpp"

#include <utility>

namespace dredbox::sim {

namespace {

std::string compose(const std::string& kind, const std::string& expression,
                    const std::string& file, int line, const std::string& function,
                    const std::string& message) {
  std::string out = kind + " violated: " + expression + " (" + file + ":" +
                    std::to_string(line) + " in " + function + ")";
  if (!message.empty()) out += ": " + message;
  return out;
}

}  // namespace

ContractViolation::ContractViolation(std::string kind, std::string expression, std::string file,
                                     int line, std::string function, std::string message)
    : std::logic_error{compose(kind, expression, file, line, function, message)},
      kind_{std::move(kind)},
      expression_{std::move(expression)},
      file_{std::move(file)},
      line_{line},
      function_{std::move(function)},
      message_{std::move(message)} {}

namespace contract_detail {

void fail(const char* kind, const char* expression, const char* file, int line,
          const char* function, const std::string& message) {
  throw ContractViolation{kind, expression, file, line, function, message};
}

}  // namespace contract_detail

}  // namespace dredbox::sim
