#include "sim/fault.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

namespace {

constexpr std::array<FaultKind, 9> kAllFaultKinds{
    FaultKind::kLinkFlap,        FaultKind::kInsertionLossDrift,
    FaultKind::kSwitchPortFailure, FaultKind::kCongestionBurst,
    FaultKind::kLossBurst,       FaultKind::kBrickCrash,
    FaultKind::kBrickRestart,    FaultKind::kRmstCorruption,
    FaultKind::kControllerStall,
};

/// Renders a time as "<number><unit>" using the largest unit that divides
/// the tick count exactly, so FaultEvent::to_string round-trips through
/// parse() without any floating-point drift.
std::string render_time(Time t) {
  const std::int64_t ps = t.ticks();
  if (ps % 1'000'000'000'000 == 0) return std::to_string(ps / 1'000'000'000'000) + "s";
  if (ps % 1'000'000'000 == 0) return std::to_string(ps / 1'000'000'000) + "ms";
  if (ps % 1'000'000 == 0) return std::to_string(ps / 1'000'000) + "us";
  if (ps % 1'000 == 0) return std::to_string(ps / 1'000) + "ns";
  return std::to_string(ps) + "ps";
}

[[noreturn]] void bad_token(const std::string& what, const std::string& token) {
  throw std::invalid_argument("FaultPlan::parse: " + what + ": '" + token + "'");
}

Time parse_time(const std::string& token) {
  std::size_t suffix = token.size();
  while (suffix > 0 && std::isalpha(static_cast<unsigned char>(token[suffix - 1])) != 0) {
    --suffix;
  }
  if (suffix == 0 || suffix == token.size()) bad_token("time needs <number><unit>", token);
  const std::string number = token.substr(0, suffix);
  const std::string unit = token.substr(suffix);
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0' || value < 0.0) bad_token("bad time value", token);
  if (unit == "ps") return Time::ps(static_cast<std::int64_t>(value + 0.5));
  if (unit == "ns") return Time::ns(value);
  if (unit == "us") return Time::us(value);
  if (unit == "ms") return Time::ms(value);
  if (unit == "s") return Time::sec(value);
  bad_token("unknown time unit (use ps/ns/us/ms/s)", token);
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

FaultEvent parse_event(const std::string& token) {
  const std::size_t at_pos = token.find('@');
  if (at_pos == std::string::npos) bad_token("event needs <kind>@<time>", token);

  FaultEvent event;
  const auto kind = fault_kind_from_string(token.substr(0, at_pos));
  if (!kind) bad_token("unknown fault kind", token.substr(0, at_pos));
  event.kind = *kind;

  std::string rest = token.substr(at_pos + 1);
  std::string keys;
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    keys = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  if (const std::size_t plus = rest.find('+'); plus != std::string::npos) {
    event.duration = parse_time(rest.substr(plus + 1));
    rest = rest.substr(0, plus);
  }
  event.at = parse_time(rest);

  while (!keys.empty()) {
    std::string kv = keys;
    if (const std::size_t comma = keys.find(','); comma != std::string::npos) {
      kv = keys.substr(0, comma);
      keys = keys.substr(comma + 1);
    } else {
      keys.clear();
    }
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) bad_token("key needs key=value", kv);
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    char* end = nullptr;
    if (key == "target") {
      event.target = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "aux") {
      event.aux = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "magnitude") {
      event.magnitude = std::strtod(value.c_str(), &end);
    } else {
      bad_token("unknown key (use target/aux/magnitude)", kv);
    }
    if (end == nullptr || *end != '\0' || value.empty()) bad_token("bad value", kv);
  }
  return event;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kInsertionLossDrift:
      return "loss-drift";
    case FaultKind::kSwitchPortFailure:
      return "switch-port-failure";
    case FaultKind::kCongestionBurst:
      return "congestion";
    case FaultKind::kLossBurst:
      return "loss-burst";
    case FaultKind::kBrickCrash:
      return "brick-crash";
    case FaultKind::kBrickRestart:
      return "brick-restart";
    case FaultKind::kRmstCorruption:
      return "rmst-corruption";
    case FaultKind::kControllerStall:
      return "controller-stall";
  }
  return "<unknown fault kind>";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) {
  for (FaultKind kind : kAllFaultKinds) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::string FaultEvent::to_string() const {
  std::string out = dredbox::sim::to_string(kind) + "@" + render_time(at);
  if (duration > Time::zero()) out += "+" + render_time(duration);
  std::string keys;
  auto append = [&keys](const std::string& kv) {
    if (!keys.empty()) keys += ",";
    keys += kv;
  };
  if (target != 0) append("target=" + std::to_string(target));
  if (aux != 0) append("aux=" + std::to_string(aux));
  if (magnitude != 0.0) append(strformat("magnitude=%.17g", magnitude));
  if (!keys.empty()) out += ":" + keys;
  return out;
}

FaultPlan& FaultPlan::add(const FaultEvent& event) {
  events_.push_back(event);
  return *this;
}

FaultPlan FaultPlan::shifted(Time offset) const {
  FaultPlan plan;
  for (FaultEvent event : events_) {
    event.at = event.at + offset;
    plan.add(event);
  }
  return plan;
}

Time FaultPlan::horizon() const {
  Time horizon;
  for (const FaultEvent& event : events_) {
    if (event.at + event.duration > horizon) horizon = event.at + event.duration;
  }
  return horizon;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& event : events_) {
    if (!out.empty()) out += ";";
    out += event.to_string();
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = trimmed(spec.substr(begin, end - begin));
    if (!token.empty()) plan.add(parse_event(token));
    begin = end + 1;
  }
  return plan;
}

FaultPlan FaultPlan::generate(Rng& rng, const GeneratorConfig& config) {
  std::vector<double> weights(kAllFaultKinds.size(), 0.0);
  for (std::size_t i = 0; i < std::min(weights.size(), config.weights.size()); ++i) {
    weights[i] = config.weights[i];
  }

  FaultPlan plan;
  for (std::size_t i = 0; i < config.events; ++i) {
    FaultEvent event;
    event.at = Time::ps(rng.uniform_int(0, std::max<std::int64_t>(0, config.horizon.ticks() - 1)));
    event.kind = static_cast<FaultKind>(rng.weighted_index(weights));
    switch (event.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kInsertionLossDrift:
      case FaultKind::kCongestionBurst:
      case FaultKind::kLossBurst:
      case FaultKind::kBrickCrash:
      case FaultKind::kControllerStall:
        event.duration =
            Time::ps(rng.uniform_int(1, std::max<std::int64_t>(1, config.max_duration.ticks())));
        break;
      case FaultKind::kSwitchPortFailure:
      case FaultKind::kBrickRestart:
      case FaultKind::kRmstCorruption:
        break;
    }
    if (event.kind == FaultKind::kInsertionLossDrift) event.magnitude = rng.uniform(0.5, 3.0);
    if (event.kind == FaultKind::kCongestionBurst) event.magnitude = rng.uniform(2.0, 8.0);
    if (event.kind == FaultKind::kLossBurst) event.magnitude = rng.uniform(1.0, 4.0);
    plan.add(event);
  }
  // Canonical order: sorted by injection time, draw order breaking ties, so
  // to_string() reads chronologically and scheduling is insertion-ordered.
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

std::optional<FaultPlan> fault_plan_from_env() {
  // dredbox-lint: ignore[wall-clock] -- getenv reads configuration, not time.
  const char* spec = std::getenv(kFaultPlanEnv);
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return FaultPlan::parse(spec);
}

void FaultInjector::on(FaultKind kind, Handler inject) { inject_[kind] = std::move(inject); }

void FaultInjector::on_recover(FaultKind kind, Handler recover) {
  recover_[kind] = std::move(recover);
}

void FaultInjector::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    injected_metric_ = recovered_metric_ = skipped_metric_ = nullptr;
    active_metric_ = nullptr;
    return;
  }
  auto& m = telemetry->metrics();
  injected_metric_ = &m.counter("sim.faults.injected");
  recovered_metric_ = &m.counter("sim.faults.recovered");
  skipped_metric_ = &m.counter("sim.faults.skipped");
  active_metric_ = &m.gauge("sim.faults.active");
}

std::size_t FaultInjector::schedule(const FaultPlan& plan) {
  std::size_t count = 0;
  for (const FaultEvent& event : plan.events()) {
    // Fault transitions take effect strictly *after* any operation issued
    // at the same nominal instant: skew by one tick so a fault at t never
    // ties with workload events at t. Without the skew the outcome of an
    // operation colliding with a fault's timestamp would be decided by the
    // queue's incidental FIFO tie-break — the schedule auditor
    // (sim/schedule_audit.hpp) flags exactly that. Recovery, scheduled via
    // after(duration) from the skewed injection, inherits the offset.
    const Time when = std::max(event.at, sim_.now()) + Time::ps(1);
    events_.push_back(event);
    const std::size_t index = events_.size() - 1;
    sim_.at(when, [this, index] { fire(index); });
    ++scheduled_;
    ++count;
  }
  return count;
}

void FaultInjector::fire(std::size_t index) {
  // Copy out: a handler may reentrantly schedule() another plan and
  // reallocate events_ under a reference.
  const FaultEvent event = events_[index];
  auto it = inject_.find(event.kind);
  if (it == inject_.end() || !it->second) {
    ++skipped_;
    if (skipped_metric_ != nullptr) skipped_metric_->add();
    return;
  }
  ++injected_;
  if (injected_metric_ != nullptr) injected_metric_->add();
  if (active_metric_ != nullptr) active_metric_->set(static_cast<double>(active()));
  it->second(event);
  if (event.duration > Time::zero() && recover_.count(event.kind) != 0) {
    sim_.after(event.duration, [this, index] { fire_recovery(index); });
  }
}

void FaultInjector::fire_recovery(std::size_t index) {
  const FaultEvent event = events_[index];
  auto it = recover_.find(event.kind);
  if (it == recover_.end() || !it->second) return;
  ++recovered_;
  if (recovered_metric_ != nullptr) recovered_metric_->add();
  if (active_metric_ != nullptr) active_metric_->set(static_cast<double>(active()));
  it->second(event);
}

void FaultInjector::check_invariants() const {
  DREDBOX_INVARIANT(injected_ + skipped_ <= scheduled_,
                    "more faults fired (" + std::to_string(injected_ + skipped_) +
                        ") than were ever scheduled (" + std::to_string(scheduled_) + ")");
  DREDBOX_INVARIANT(recovered_ <= injected_,
                    "recoveries (" + std::to_string(recovered_) + ") exceed injections (" +
                        std::to_string(injected_) + ")");
  for (const auto& [kind, handler] : inject_) {
    DREDBOX_INVARIANT(static_cast<bool>(handler),
                      "empty inject handler registered for " + to_string(kind));
  }
  for (const auto& [kind, handler] : recover_) {
    DREDBOX_INVARIANT(static_cast<bool>(handler),
                      "empty recover handler registered for " + to_string(kind));
  }
}

}  // namespace dredbox::sim
