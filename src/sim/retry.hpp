#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Retry-with-exponential-backoff policy for unreliable rack operations
/// (remote transactions over a flapping circuit, DMA chunks, agent RPCs).
/// Purely arithmetic and seeded by nothing: the same failure history always
/// produces the same retry schedule, so faulty runs stay digest-reproducible.
struct RetryPolicy {
  /// Total tries including the first; 1 means "no retries".
  std::size_t max_attempts = 4;
  /// Delay before the first retry.
  Time initial_backoff = Time::us(10);
  /// Geometric growth factor applied per retry. Must be >= 1.
  double multiplier = 2.0;
  /// Cap on any single backoff delay.
  Time max_backoff = Time::ms(1);
  /// Hard deadline measured from the first attempt's issue time: no retry
  /// is ever scheduled at or past it, no matter how many attempts remain.
  Time timeout = Time::ms(50);

  /// Throws std::invalid_argument on a malformed policy (zero attempts,
  /// negative delays, multiplier below 1, non-positive or infinite
  /// timeout, infinite max_backoff).
  void validate() const;

  std::string to_string() const;
};

/// One in-flight retry sequence under a RetryPolicy. The caller issues the
/// first attempt itself, reports each failure through next(), and either
/// receives the backoff delay to wait before retrying or nullopt when the
/// sequence is over (attempts exhausted, or the deadline would be crossed).
///
/// Guaranteed properties (covered by tests/memsys/test_retry_properties.cpp):
///   - at most policy.max_attempts attempts are ever issued,
///   - successive backoff delays are monotonically non-decreasing,
///   - delays saturate at policy.max_backoff and never wrap, no matter how
///     many attempts run or how aggressive the multiplier is,
///   - the deadline always fires: next() never schedules a retry at or past
///     first_issue + policy.timeout, and returns nullopt forever after it.
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, Time first_issue);

  /// Reports that the attempt in flight failed at `now`. Returns the delay
  /// to wait before the next attempt, or nullopt when no further attempt is
  /// permitted. Once nullopt is returned, every later call returns nullopt.
  std::optional<Time> next(Time now);

  /// Attempts issued so far (the first attempt counts as 1).
  std::size_t attempts() const { return attempts_; }

  /// True when next() can never grant another attempt.
  bool exhausted() const { return exhausted_; }

  /// Absolute deadline (first issue + timeout).
  Time deadline() const { return deadline_; }

  /// True when `now` is at or past the deadline.
  bool expired(Time now) const { return now >= deadline_; }

 private:
  RetryPolicy policy_;
  Time deadline_;
  Time next_backoff_;
  std::size_t attempts_ = 1;
  bool exhausted_ = false;
};

}  // namespace dredbox::sim
