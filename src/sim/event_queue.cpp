#include "sim/event_queue.hpp"

#include <stdexcept>

#include "sim/contract.hpp"

namespace dredbox::sim {

EventId EventQueue::schedule(Time when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  EventId id{next_id_++};
  heap_.push(Entry{when, next_seq_++, id, std::move(action)});
  pending_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return id;
}

bool EventQueue::cancel(EventId id) {
  // O(1): an id is cancellable iff it is still pending; fired, previously
  // cancelled, and never-issued ids all miss the pending set.
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

void EventQueue::evict_cancelled_top() const {
  // erase() doubles as the membership test: it returns 1 (and unlists the
  // id) exactly when the top entry was cancelled.
  while (!heap_.empty() && cancelled_.erase(heap_.top().id.value) > 0) heap_.pop();
}

Time EventQueue::next_time() const {
  evict_cancelled_top();
  if (heap_.empty()) return Time::infinity();
  return heap_.top().when;
}

bool EventQueue::dispatch_one() {
  evict_cancelled_top();
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id.value);
  now_ = top.when;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  top.action();
  return true;
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!dispatch_one()) break;
    ++dispatched;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t EventQueue::run() {
  std::size_t dispatched = 0;
  while (dispatch_one()) ++dispatched;
  return dispatched;
}

void EventQueue::reset() {
  heap_ = {};
  pending_.clear();
  cancelled_.clear();
  now_ = Time::zero();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

void EventQueue::check_invariants() const {
  DREDBOX_INVARIANT(heap_.size() == pending_.size() + cancelled_.size(),
                    "heap holds " + std::to_string(heap_.size()) + " entries but " +
                        std::to_string(pending_.size()) + " pending + " +
                        std::to_string(cancelled_.size()) + " cancelled are tracked");
  // Order-independent id-range audit over the hash sets.
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : pending_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "pending id " + std::to_string(id) + " was never issued");
    DREDBOX_INVARIANT(cancelled_.count(id) == 0,
                      "id " + std::to_string(id) + " is both pending and cancelled");
  }
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : cancelled_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "cancelled id " + std::to_string(id) + " was never issued");
  }
  if (!heap_.empty()) {
    // The heap pops in time order and cancelled tops are evicted before any
    // later event dispatches, so even buried entries can never be stale.
    DREDBOX_INVARIANT(heap_.top().when >= now_,
                      "earliest heap entry at " + heap_.top().when.to_string() +
                          " precedes now() = " + now_.to_string());
    DREDBOX_INVARIANT(heap_.top().seq < next_seq_, "heap entry carries an unissued sequence");
  }
}

}  // namespace dredbox::sim
