#include "sim/event_queue.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

EventId EventQueue::schedule(Time when, Action action, const char* label) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  EventId id{next_id_++};
  heap_.push(Entry{when, next_seq_++, id, label, std::move(action)});
  pending_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return id;
}

bool EventQueue::cancel(EventId id) {
  // O(1): an id is cancellable iff it is still pending; fired, previously
  // cancelled, and never-issued ids all miss the pending set.
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

void EventQueue::evict_cancelled_top() const {
  // erase() doubles as the membership test: it returns 1 (and unlists the
  // id) exactly when the top entry was cancelled.
  while (!heap_.empty() && cancelled_.erase(heap_.top().id.value) > 0) heap_.pop();
}

Time EventQueue::next_time() const {
  evict_cancelled_top();
  if (heap_.empty()) return Time::infinity();
  return heap_.top().when;
}

bool EventQueue::dispatch_one() {
  evict_cancelled_top();
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id.value);
  now_ = top.when;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  if (profiling_) {
    // Host-clock attribution for the self-profile only: the measurement
    // never reaches simulation state, digests, or scheduling decisions.
    // dredbox-lint: ignore[wall-clock]
    const auto host_begin = std::chrono::steady_clock::now();
    top.action();
    // dredbox-lint: ignore[wall-clock]
    const auto host_end = std::chrono::steady_clock::now();
    ProfileCell& cell = profile_[top.label != nullptr ? top.label : "(unlabeled)"];
    ++cell.dispatches;
    cell.host_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(host_end - host_begin).count());
    return true;
  }
  top.action();
  return true;
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!dispatch_one()) break;
    ++dispatched;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t EventQueue::run() {
  std::size_t dispatched = 0;
  while (dispatch_one()) ++dispatched;
  return dispatched;
}

void EventQueue::reset() {
  heap_ = {};
  pending_.clear();
  cancelled_.clear();
  now_ = Time::zero();
  profile_.clear();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

std::vector<KernelProfileEntry> EventQueue::kernel_profile() const {
  std::vector<KernelProfileEntry> out;
  out.reserve(profile_.size());
  for (const auto& [label, cell] : profile_) {
    out.push_back(KernelProfileEntry{label, cell.dispatches, cell.host_ns});
  }
  return out;
}

std::string EventQueue::profile_to_string() const {
  auto rows = kernel_profile();
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.host_ns > b.host_ns;
  });
  std::string out = "event kernel profile (host time, excludes queue bookkeeping)\n";
  std::uint64_t total_dispatches = 0;
  double total_ns = 0.0;
  for (const auto& row : rows) {
    total_dispatches += row.dispatches;
    total_ns += row.host_ns;
    out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event\n",
                     row.label.c_str(), (unsigned long long)row.dispatches, row.host_ns,
                     row.ns_per_dispatch());
  }
  out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event", "TOTAL",
                   (unsigned long long)total_dispatches, total_ns,
                   total_dispatches > 0 ? total_ns / static_cast<double>(total_dispatches) : 0.0);
  return out;
}

void EventQueue::check_invariants() const {
  DREDBOX_INVARIANT(heap_.size() == pending_.size() + cancelled_.size(),
                    "heap holds " + std::to_string(heap_.size()) + " entries but " +
                        std::to_string(pending_.size()) + " pending + " +
                        std::to_string(cancelled_.size()) + " cancelled are tracked");
  // Order-independent id-range audit over the hash sets.
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : pending_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "pending id " + std::to_string(id) + " was never issued");
    DREDBOX_INVARIANT(cancelled_.count(id) == 0,
                      "id " + std::to_string(id) + " is both pending and cancelled");
  }
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : cancelled_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "cancelled id " + std::to_string(id) + " was never issued");
  }
  if (!heap_.empty()) {
    // The heap pops in time order and cancelled tops are evicted before any
    // later event dispatches, so even buried entries can never be stale.
    DREDBOX_INVARIANT(heap_.top().when >= now_,
                      "earliest heap entry at " + heap_.top().when.to_string() +
                          " precedes now() = " + now_.to_string());
    DREDBOX_INVARIANT(heap_.top().seq < next_seq_, "heap entry carries an unissued sequence");
  }
}

}  // namespace dredbox::sim
