#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::sim {

EventId EventQueue::schedule(Time when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  EventId id{next_id_++};
  heap_.push(Entry{when, next_seq_++, id, std::move(action)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.value >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority_queue; record the id and
  // skip the entry when it surfaces.
  cancelled_.push_back(id.value);
  if (live_count_ == 0) {
    cancelled_.pop_back();
    return false;
  }
  --live_count_;
  return true;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id.value) != cancelled_.end();
}

Time EventQueue::next_time() const {
  // Peek past cancelled entries without mutating: the heap top is the only
  // thing we can see, so pop lazily in dispatch instead. A cancelled top is
  // rare; accept a conservative answer here by scanning in dispatch_one.
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() && self->is_cancelled(self->heap_.top().id)) {
    auto& list = self->cancelled_;
    list.erase(std::find(list.begin(), list.end(), self->heap_.top().id.value));
    self->heap_.pop();
  }
  if (heap_.empty()) return Time::infinity();
  return heap_.top().when;
}

bool EventQueue::dispatch_one() {
  while (!heap_.empty() && is_cancelled(heap_.top().id)) {
    cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), heap_.top().id.value));
    heap_.pop();
  }
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  --live_count_;
  now_ = top.when;
  top.action();
  return true;
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!dispatch_one()) break;
    ++dispatched;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t EventQueue::run() {
  std::size_t dispatched = 0;
  while (dispatch_one()) ++dispatched;
  return dispatched;
}

void EventQueue::reset() {
  heap_ = {};
  cancelled_.clear();
  live_count_ = 0;
  now_ = Time::zero();
}

}  // namespace dredbox::sim
