#include "sim/event_queue.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

namespace {

/// splitmix64 step — the same tiny deterministic stream the tracer uses
/// for ids. Perturbation shuffles must not touch the simulation's
/// sim::Rng (a shuffle that consumed simulation entropy would itself
/// perturb the run it is auditing).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* mode_name(SchedulePerturbation::Mode mode) {
  switch (mode) {
    case SchedulePerturbation::Mode::kNone: return "none";
    case SchedulePerturbation::Mode::kIdentity: return "identity";
    case SchedulePerturbation::Mode::kReverse: return "reverse";
    case SchedulePerturbation::Mode::kRotate: return "rotate";
    case SchedulePerturbation::Mode::kShuffle: return "shuffle";
    case SchedulePerturbation::Mode::kSwapAdjacent: return "swap-adjacent";
  }
  return "?";
}

}  // namespace

std::string SchedulePerturbation::to_string() const {
  std::string out = mode_name(mode);
  if (mode == Mode::kNone) return out;
  if (first_batch != 0 || last_batch != UINT64_MAX) {
    out += strformat("[%llu,", static_cast<unsigned long long>(first_batch));
    out += last_batch == UINT64_MAX
               ? "inf)"
               : strformat("%llu)", static_cast<unsigned long long>(last_batch));
  }
  if (mode == Mode::kShuffle) out += strformat(" seed=%llu", static_cast<unsigned long long>(seed));
  if (mode == Mode::kSwapAdjacent) out += strformat(" swap=%zu", swap_position);
  return out;
}

EventId EventQueue::schedule(Time when, Action action, const char* label) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  EventId id{next_id_++};
  heap_.push(Entry{when, next_seq_++, id, label, std::move(action)});
  pending_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return id;
}

bool EventQueue::cancel(EventId id) {
  // O(1): an id is cancellable iff it is still pending; fired, previously
  // cancelled, and never-issued ids all miss the pending set.
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id.value);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

void EventQueue::evict_cancelled_top() const {
  // erase() doubles as the membership test: it returns 1 (and unlists the
  // id) exactly when the top entry was cancelled.
  while (!heap_.empty() && cancelled_.erase(heap_.top().id.value) > 0) heap_.pop();
}

void EventQueue::skip_cancelled_batch() const {
  while (batch_pos_ < batch_.size() && cancelled_.erase(batch_[batch_pos_].id.value) > 0) {
    ++batch_pos_;
  }
}

Time EventQueue::next_time() const {
  skip_cancelled_batch();
  if (batch_pos_ < batch_.size()) return batch_[batch_pos_].when;
  evict_cancelled_top();
  if (heap_.empty()) return Time::infinity();
  return heap_.top().when;
}

void EventQueue::fire(Entry& entry) {
  now_ = entry.when;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  if (profiling_) {
    // Host-clock attribution for the self-profile only: the measurement
    // never reaches simulation state, digests, or scheduling decisions.
    // dredbox-lint: ignore[wall-clock]
    const auto host_begin = std::chrono::steady_clock::now();
    entry.action();
    // dredbox-lint: ignore[wall-clock]
    const auto host_end = std::chrono::steady_clock::now();
    ProfileCell& cell = profile_[entry.label != nullptr ? entry.label : "(unlabeled)"];
    ++cell.dispatches;
    cell.host_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(host_end - host_begin).count());
    return;
  }
  entry.action();
}

bool EventQueue::dispatch_one() {
  if (perturb_.enabled()) return dispatch_one_perturbed();
  evict_cancelled_top();
  if (heap_.empty()) return false;
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id.value);
  fire(top);
  return true;
}

void EventQueue::collect_batch() {
  const Time when = heap_.top().when;
  while (!heap_.empty() && heap_.top().when == when) {
    if (cancelled_.erase(heap_.top().id.value) > 0) {
      heap_.pop();
      continue;
    }
    // Copy out of the heap: priority_queue::top() is const, and auditor
    // mode is a test harness — std::function copies are acceptable there
    // and never paid on the unperturbed path.
    batch_.push_back(heap_.top());
    heap_.pop();
  }
  if (batch_.size() < 2) return;  // a singleton cannot be reordered

  // Same-timestamp heap pops surface in seq order, so batch_ is FIFO here.
  const std::uint64_t index = batches_collected_++;
  std::vector<std::size_t> order(batch_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (index >= perturb_.first_batch && index < perturb_.last_batch) {
    switch (perturb_.mode) {
      case SchedulePerturbation::Mode::kNone:
      case SchedulePerturbation::Mode::kIdentity:
        break;
      case SchedulePerturbation::Mode::kReverse:
        std::reverse(order.begin(), order.end());
        break;
      case SchedulePerturbation::Mode::kRotate:
        std::rotate(order.begin(), order.begin() + 1, order.end());
        break;
      case SchedulePerturbation::Mode::kShuffle: {
        // Keyed by (seed, batch index) so each batch's permutation is
        // independent of how many batches preceded it.
        std::uint64_t state = perturb_.seed ^ (index * 0x9e3779b97f4a7c15ull);
        for (std::size_t i = order.size(); i > 1; --i) {
          const std::size_t j = static_cast<std::size_t>(splitmix64(state) % i);
          std::swap(order[i - 1], order[j]);
        }
        break;
      }
      case SchedulePerturbation::Mode::kSwapAdjacent:
        if (perturb_.swap_position + 1 < order.size()) {
          std::swap(order[perturb_.swap_position], order[perturb_.swap_position + 1]);
        }
        break;
    }
  }
  if (perturb_.capture_batch && *perturb_.capture_batch == index) {
    ScheduleBatchRecord record;
    record.index = index;
    record.when = when;
    record.fifo_labels.reserve(batch_.size());
    for (const Entry& entry : batch_) {
      record.fifo_labels.emplace_back(entry.label != nullptr ? entry.label : "(unlabeled)");
    }
    record.dispatch_order = order;
    captured_ = std::move(record);
  }
  std::vector<Entry> permuted;
  permuted.reserve(batch_.size());
  for (std::size_t fifo_pos : order) permuted.push_back(std::move(batch_[fifo_pos]));
  batch_ = std::move(permuted);
}

bool EventQueue::dispatch_one_perturbed() {
  skip_cancelled_batch();
  if (batch_pos_ >= batch_.size()) {
    batch_.clear();
    batch_pos_ = 0;
    evict_cancelled_top();
    if (heap_.empty()) return false;
    collect_batch();
  }
  // Move out of the batch slot: the action may mutate the queue (schedule,
  // cancel, even reset), so it must not run through a reference into batch_.
  Entry entry = std::move(batch_[batch_pos_++]);
  pending_.erase(entry.id.value);
  fire(entry);
  return true;
}

void EventQueue::set_perturbation(const SchedulePerturbation& perturbation) {
  skip_cancelled_batch();
  if (batch_pos_ < batch_.size()) {
    throw std::logic_error(
        "EventQueue::set_perturbation: a same-timestamp batch is mid-dispatch; "
        "arm or disarm perturbations only between runs");
  }
  batch_.clear();
  batch_pos_ = 0;
  perturb_ = perturbation;
  batches_collected_ = 0;
  captured_.reset();
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!dispatch_one()) break;
    ++dispatched;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t EventQueue::run() {
  std::size_t dispatched = 0;
  while (dispatch_one()) ++dispatched;
  return dispatched;
}

void EventQueue::reset() {
  heap_ = {};
  pending_.clear();
  cancelled_.clear();
  now_ = Time::zero();
  profile_.clear();
  // The armed perturbation survives a reset (it is harness configuration,
  // not simulation state); the batch in flight and its accounting do not.
  batch_.clear();
  batch_pos_ = 0;
  batches_collected_ = 0;
  captured_.reset();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

std::vector<KernelProfileEntry> EventQueue::kernel_profile() const {
  std::vector<KernelProfileEntry> out;
  out.reserve(profile_.size());
  for (const auto& [label, cell] : profile_) {
    out.push_back(KernelProfileEntry{label, cell.dispatches, cell.host_ns});
  }
  return out;
}

std::string EventQueue::profile_to_string() const {
  auto rows = kernel_profile();
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.host_ns > b.host_ns;
  });
  std::string out = "event kernel profile (host time, excludes queue bookkeeping)\n";
  std::uint64_t total_dispatches = 0;
  double total_ns = 0.0;
  for (const auto& row : rows) {
    total_dispatches += row.dispatches;
    total_ns += row.host_ns;
    out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event\n",
                     row.label.c_str(), (unsigned long long)row.dispatches, row.host_ns,
                     row.ns_per_dispatch());
  }
  out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event", "TOTAL",
                   (unsigned long long)total_dispatches, total_ns,
                   total_dispatches > 0 ? total_ns / static_cast<double>(total_dispatches) : 0.0);
  return out;
}

void EventQueue::check_invariants() const {
  // Live + cancelled-but-unevicted entries live either in the heap or in
  // the undispatched tail of the current same-timestamp batch.
  const std::size_t batched = batch_.size() - batch_pos_;
  DREDBOX_INVARIANT(heap_.size() + batched == pending_.size() + cancelled_.size(),
                    "heap holds " + std::to_string(heap_.size()) + " entries + " +
                        std::to_string(batched) + " batched but " +
                        std::to_string(pending_.size()) + " pending + " +
                        std::to_string(cancelled_.size()) + " cancelled are tracked");
  for (std::size_t i = batch_pos_; i < batch_.size(); ++i) {
    DREDBOX_INVARIANT(batch_[i].when >= now_,
                      "batched entry at " + batch_[i].when.to_string() +
                          " precedes now() = " + now_.to_string());
  }
  // Order-independent id-range audit over the hash sets.
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : pending_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "pending id " + std::to_string(id) + " was never issued");
    DREDBOX_INVARIANT(cancelled_.count(id) == 0,
                      "id " + std::to_string(id) + " is both pending and cancelled");
  }
  // dredbox-lint: ignore[unordered-iteration]
  for (std::uint64_t id : cancelled_) {
    DREDBOX_INVARIANT(id >= 1 && id < next_id_,
                      "cancelled id " + std::to_string(id) + " was never issued");
  }
  if (!heap_.empty()) {
    // The heap pops in time order and cancelled tops are evicted before any
    // later event dispatches, so even buried entries can never be stale.
    DREDBOX_INVARIANT(heap_.top().when >= now_,
                      "earliest heap entry at " + heap_.top().when.to_string() +
                          " precedes now() = " + now_.to_string());
    DREDBOX_INVARIANT(heap_.top().seq < next_seq_, "heap entry carries an unissued sequence");
  }
}

}  // namespace dredbox::sim
