#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

namespace {

/// splitmix64 step — the same tiny deterministic stream the tracer uses
/// for ids. Perturbation shuffles must not touch the simulation's
/// sim::Rng (a shuffle that consumed simulation entropy would itself
/// perturb the run it is auditing).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* mode_name(SchedulePerturbation::Mode mode) {
  switch (mode) {
    case SchedulePerturbation::Mode::kNone: return "none";
    case SchedulePerturbation::Mode::kIdentity: return "identity";
    case SchedulePerturbation::Mode::kReverse: return "reverse";
    case SchedulePerturbation::Mode::kRotate: return "rotate";
    case SchedulePerturbation::Mode::kShuffle: return "shuffle";
    case SchedulePerturbation::Mode::kSwapAdjacent: return "swap-adjacent";
  }
  return "?";
}

// Initial calendar geometry: 4096 buckets of 2^15 ps (~33 ns) cover the
// first ~134 us of sim time — wide enough that schedule-heavy micro
// workloads never re-span, narrow enough that one day holds only a
// handful of events.
constexpr std::size_t kInitialBuckets = 4096;
constexpr int kInitialShift = 15;
// Re-span bounds: aim at one bucket per live event, clamped so degenerate
// rungs (a single far-future timer / a million same-day events) stay sane.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = 32768;

}  // namespace

std::string SchedulePerturbation::to_string() const {
  std::string out = mode_name(mode);
  if (mode == Mode::kNone) return out;
  if (first_batch != 0 || last_batch != UINT64_MAX) {
    out += strformat("[%llu,", static_cast<unsigned long long>(first_batch));
    out += last_batch == UINT64_MAX
               ? "inf)"
               : strformat("%llu)", static_cast<unsigned long long>(last_batch));
  }
  if (mode == Mode::kShuffle) out += strformat(" seed=%llu", static_cast<unsigned long long>(seed));
  if (mode == Mode::kSwapAdjacent) out += strformat(" swap=%zu", swap_position);
  return out;
}

EventQueue::EventQueue()
    : buckets_(kInitialBuckets, nullptr), occupancy_(kInitialBuckets / 64, 0) {
  bucket_shift_ = kInitialShift;
  win_last_ = (static_cast<std::int64_t>(kInitialBuckets) << kInitialShift) - 1;
}

// dredbox-lint: hot-path-begin — schedule/insert/dispatch are the event
// kernel's per-event path; nodes come from the arena and actions live in
// InplaceAction storage, so steady state never touches the heap.
EventId EventQueue::schedule(Time when, Action action, const char* label) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time " + when.to_string() +
                                " precedes current time " + now_.to_string());
  }
  auto [node, slot] = arena_.create(when, next_seq_++, std::move(action), label);
  node->slot = slot;
  insert_node(node);
  ++pending_count_;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  // slot+1 keeps every issued handle non-zero (slot 0 is a valid slot,
  // EventId{0} is the reserved null handle).
  return EventId{((static_cast<std::uint64_t>(slot) + 1) << 32) | arena_.generation(slot)};
}

bool EventQueue::cancel(EventId id) {
  // O(1): unpack the handle into (slot, generation) and probe the arena.
  // Fired and previously cancelled events bumped (or will bump) their
  // slot's generation, so their handles miss; never-issued handles carry
  // a zero slot field or a generation the slot never had.
  const std::uint64_t slot_plus_1 = id.value >> 32;
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value & 0xffffffffull);
  if (slot_plus_1 == 0 || generation == 0) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_plus_1 - 1);
  Node* node = arena_.get(slot);
  if (node == nullptr || arena_.generation(slot) != generation || node->cancelled) return false;
  node->cancelled = true;  // the block is reclaimed lazily, at service time
  --pending_count_;
  ++cancelled_count_;
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  return true;
}

void EventQueue::insert_node(Node* node) const {
  const std::int64_t t = node->when.ticks();
  if (t > win_last_) {
    // Beyond the year: park on the overflow rung; the rung is re-spanned
    // into a fresh window in bulk once the current one exhausts.
    node->next = overflow_;
    overflow_ = node;
    ++overflow_count_;
    return;
  }
  const std::size_t index = bucket_index(t);
  if (drain_bucket_ >= 0 && index == static_cast<std::size_t>(drain_bucket_)) {
    // The open day: merge in sorted position, so an event lands at the
    // back of its tie group even while that group is being dispatched.
    drain_insert(node);
    return;
  }
  if (index < cursor_) {
    // The cursor already passed this day (the window re-spanned from
    // now(), or service ran ahead of now() through empty days). Rewind —
    // dispatched events can never be revisited because when >= now() is
    // already enforced; the open day (if any) returns to its bucket and
    // is re-sorted when the cursor comes back to it.
    if (drain_bucket_ >= 0) flush_drain();
    cursor_ = index;
  }
  bucket_prepend(index, node);
}

void EventQueue::drain_insert(Node* node) const {
  const DrainEntry entry{node->when, node->seq, node};
  const auto pos = std::lower_bound(
      drain_.begin(), drain_.end(), entry, [](const DrainEntry& a, const DrainEntry& b) {
        if (a.when != b.when) return a.when > b.when;
        return a.seq > b.seq;
      });
  drain_.insert(pos, entry);
}

void EventQueue::flush_drain() const {
  const auto index = static_cast<std::size_t>(drain_bucket_);
  for (const DrainEntry& entry : drain_) bucket_prepend(index, entry.node);
  drain_.clear();
  drain_bucket_ = -1;
}

std::size_t EventQueue::next_occupied(std::size_t from) const {
  const std::size_t size = buckets_.size();
  if (from >= size) return size;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (from & 63));
  const std::size_t words = occupancy_.size();
  while (bits == 0) {
    if (++word == words) return size;
    bits = occupancy_[word];
  }
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
}

void EventQueue::ensure_drain() const {
  for (;;) {
    while (!drain_.empty() && drain_.back().node->cancelled) {
      Node* node = drain_.back().node;
      drain_.pop_back();
      reclaim_cancelled(node);
    }
    if (!drain_.empty()) return;
    drain_bucket_ = -1;
    cursor_ = next_occupied(cursor_);
    if (cursor_ == buckets_.size()) {
      if (overflow_ == nullptr) return;  // no nodes anywhere: truly empty
      rebuild_from_overflow();
      continue;
    }
    load_bucket(cursor_);
    ++cursor_;
  }
}

void EventQueue::load_bucket(std::size_t index) const {
  Node* node = buckets_[index];
  buckets_[index] = nullptr;
  occupancy_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  while (node != nullptr) {
    Node* next = node->next;
    if (node->cancelled) {
      reclaim_cancelled(node);
    } else {
      node->next = nullptr;
      drain_.push_back(DrainEntry{node->when, node->seq, node});
    }
    node = next;
  }
  std::sort(drain_.begin(), drain_.end(), [](const DrainEntry& a, const DrainEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  });
  drain_bucket_ = static_cast<std::ptrdiff_t>(index);
  ++bucket_loads_;
}

void EventQueue::rebuild_from_overflow() const {
  // Reclaim cancelled rung nodes and measure the span of the live ones.
  Node* live = nullptr;
  std::size_t live_count = 0;
  std::int64_t hi = 0;
  Node* node = overflow_;
  while (node != nullptr) {
    Node* next = node->next;
    if (node->cancelled) {
      reclaim_cancelled(node);
    } else {
      node->next = live;
      live = node;
      ++live_count;
      hi = std::max(hi, node->when.ticks());
    }
    node = next;
  }
  overflow_ = nullptr;
  overflow_count_ = 0;
  if (live == nullptr) return;  // the rung was all cancellations

  // Re-span the year from now(). The window start can never sit past
  // now(), so no later schedule() — whose time is >= now() — can land
  // before bucket 0. now() itself cannot have passed any rung node: the
  // rung only becomes serviceable once every earlier (in-window) event
  // has dispatched, and run_until() stops advancing now() strictly below
  // the earliest remaining event.
  win_start_ = now_.ticks();
  const std::size_t want = std::clamp(std::bit_ceil(live_count), kMinBuckets, kMaxBuckets);
  if (buckets_.size() != want) buckets_.assign(want, nullptr);
  occupancy_.assign(want / 64, 0);
  // Smallest day width such that the farthest event fits the window:
  // ((hi - win_start_) >> shift) < want. Saturating win_last_ at the
  // tick type's maximum is safe — when want << shift overshoots
  // INT64_MAX the buckets physically cover every representable tick, so
  // any index computed against the saturated window stays in range. This
  // is what lets Time::infinity() timers park and re-span exactly once
  // instead of bouncing on the rung forever.
  const std::uint64_t distance = static_cast<std::uint64_t>(hi - win_start_);
  int shift = 0;
  while ((distance >> shift) >= want) ++shift;
  bucket_shift_ = shift;
  const unsigned __int128 last = static_cast<unsigned __int128>(win_start_) +
                                 (static_cast<unsigned __int128>(want) << shift) - 1;
  win_last_ = last > static_cast<unsigned __int128>(INT64_MAX) ? INT64_MAX
                                                               : static_cast<std::int64_t>(last);
  cursor_ = 0;
  ++rebuilds_;
  while (live != nullptr) {
    Node* next = live->next;
    bucket_prepend(bucket_index(live->when.ticks()), live);
    live = next;
  }
}

void EventQueue::free_node(Node* node) const { arena_.destroy(node->slot); }

void EventQueue::reclaim_cancelled(Node* node) const {
  --cancelled_count_;
  free_node(node);
}

void EventQueue::fire_node(Node* node) {
  now_ = node->when;
  const char* label = node->label;
  Action action = std::move(node->action);
  // Free before running: the action may schedule, cancel, or even reset
  // the queue, and must never observe its own node as live.
  free_node(node);
  DREDBOX_AUDIT_INVARIANT(check_invariants());
  if (profiling_) {
    // Host-clock attribution for the self-profile only: the measurement
    // never reaches simulation state, digests, or scheduling decisions.
    // dredbox-lint: ignore[wall-clock]
    const auto host_begin = std::chrono::steady_clock::now();
    action();
    // dredbox-lint: ignore[wall-clock]
    const auto host_end = std::chrono::steady_clock::now();
    ProfileCell& cell = profile_[label != nullptr ? label : "(unlabeled)"];
    ++cell.dispatches;
    cell.host_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(host_end - host_begin).count());
    return;
  }
  action();
}

bool EventQueue::dispatch_one() {
  if (perturb_.enabled()) return dispatch_one_perturbed();
  ensure_drain();
  if (drain_.empty()) return false;
  Node* node = drain_.back().node;
  drain_.pop_back();
  --pending_count_;
  fire_node(node);
  return true;
}

Time EventQueue::next_time() const {
  if (perturb_.enabled()) {
    skip_cancelled_batch();
    if (batch_pos_ < batch_.size()) return batch_[batch_pos_]->when;
  }
  ensure_drain();
  if (drain_.empty()) return Time::infinity();
  return drain_.back().when;
}

void EventQueue::skip_cancelled_batch() const {
  while (batch_pos_ < batch_.size() && batch_[batch_pos_]->cancelled) {
    reclaim_cancelled(batch_[batch_pos_]);
    ++batch_pos_;
  }
}

void EventQueue::collect_batch() {
  const Time when = drain_.back().when;
  while (!drain_.empty() && drain_.back().when == when) {
    Node* node = drain_.back().node;
    drain_.pop_back();
    if (node->cancelled) {
      reclaim_cancelled(node);
      continue;
    }
    batch_.push_back(node);
  }
  if (batch_.size() < 2) return;  // a singleton cannot be reordered

  // Same-timestamp drain pops surface in seq order, so batch_ is FIFO here.
  const std::uint64_t index = batches_collected_++;
  std::vector<std::size_t> order(batch_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (index >= perturb_.first_batch && index < perturb_.last_batch) {
    switch (perturb_.mode) {
      case SchedulePerturbation::Mode::kNone:
      case SchedulePerturbation::Mode::kIdentity:
        break;
      case SchedulePerturbation::Mode::kReverse:
        std::reverse(order.begin(), order.end());
        break;
      case SchedulePerturbation::Mode::kRotate:
        std::rotate(order.begin(), order.begin() + 1, order.end());
        break;
      case SchedulePerturbation::Mode::kShuffle: {
        // Keyed by (seed, batch index) so each batch's permutation is
        // independent of how many batches preceded it.
        std::uint64_t state = perturb_.seed ^ (index * 0x9e3779b97f4a7c15ull);
        for (std::size_t i = order.size(); i > 1; --i) {
          const std::size_t j = static_cast<std::size_t>(splitmix64(state) % i);
          std::swap(order[i - 1], order[j]);
        }
        break;
      }
      case SchedulePerturbation::Mode::kSwapAdjacent:
        if (perturb_.swap_position + 1 < order.size()) {
          std::swap(order[perturb_.swap_position], order[perturb_.swap_position + 1]);
        }
        break;
    }
  }
  if (perturb_.capture_batch && *perturb_.capture_batch == index) {
    ScheduleBatchRecord record;
    record.index = index;
    record.when = when;
    record.fifo_labels.reserve(batch_.size());
    for (const Node* node : batch_) {
      record.fifo_labels.emplace_back(node->label != nullptr ? node->label : "(unlabeled)");
    }
    record.dispatch_order = order;
    captured_ = std::move(record);
  }
  std::vector<Node*> permuted;
  permuted.reserve(batch_.size());
  for (std::size_t fifo_pos : order) permuted.push_back(batch_[fifo_pos]);
  batch_ = std::move(permuted);
}

bool EventQueue::dispatch_one_perturbed() {
  skip_cancelled_batch();
  if (batch_pos_ >= batch_.size()) {
    batch_.clear();
    batch_pos_ = 0;
    ensure_drain();
    if (drain_.empty()) return false;
    collect_batch();
  }
  // Pop before firing: the action may mutate the queue (schedule, cancel,
  // even reset), so nothing may run through a reference into batch_.
  Node* node = batch_[batch_pos_++];
  --pending_count_;
  fire_node(node);
  return true;
}

void EventQueue::set_perturbation(const SchedulePerturbation& perturbation) {
  skip_cancelled_batch();
  if (batch_pos_ < batch_.size()) {
    throw std::logic_error(
        "EventQueue::set_perturbation: a same-timestamp batch is mid-dispatch; "
        "arm or disarm perturbations only between runs");
  }
  batch_.clear();
  batch_pos_ = 0;
  perturb_ = perturbation;
  batches_collected_ = 0;
  captured_.reset();
}

std::size_t EventQueue::dispatch_batch(Time until) {
  // Batched same-timestamp dispatch (ISSUE 9d): the drain is sorted, so
  // every event tied at the earliest timestamp sits contiguously at its
  // tail. Service the whole tie group in one pass — the way the schedule
  // auditor's collect_batch() already gathers ties — without re-probing
  // the calendar (ensure_drain) between events. Ordering is unchanged:
  // the pops walk the identical FIFO (when, seq) sequence dispatch_one()
  // would, so digests cannot move. Actions may mutate the queue freely;
  // a same-timestamp event scheduled mid-batch binary-inserts into its
  // FIFO position in the open drain and is picked up by the tail checks,
  // and a reset() empties the drain, ending the batch.
  ensure_drain();
  if (drain_.empty() || drain_.back().when > until) return 0;
  std::size_t dispatched = 0;
  const Time when = drain_.back().when;
  do {
    Node* node = drain_.back().node;
    drain_.pop_back();
    --pending_count_;
    fire_node(node);
    ++dispatched;
    while (!drain_.empty() && drain_.back().node->cancelled) {
      Node* dead = drain_.back().node;
      drain_.pop_back();
      reclaim_cancelled(dead);
    }
  } while (!drain_.empty() && drain_.back().when == when);
  return dispatched;
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t dispatched = 0;
  for (;;) {
    if (perturb_.enabled()) {
      // The perturbed path owns its own batch machinery; keep the
      // per-event probe so an armed perturbation is honoured exactly.
      if (next_time() > until) break;
      if (!dispatch_one()) break;
      ++dispatched;
      continue;
    }
    const std::size_t batch = dispatch_batch(until);
    if (batch == 0) break;
    dispatched += batch;
  }
  if (now_ < until && !until.is_infinite()) now_ = until;
  return dispatched;
}

std::size_t EventQueue::run() {
  std::size_t dispatched = 0;
  for (;;) {
    if (perturb_.enabled()) {
      if (!dispatch_one()) break;
      ++dispatched;
      continue;
    }
    const std::size_t batch = dispatch_batch(Time::infinity());
    if (batch == 0) break;
    dispatched += batch;
  }
  return dispatched;
}
// dredbox-lint: hot-path-end

void EventQueue::reset() {
  // Destroys every node — bucketed, drained, overflowed, and the
  // undispatched batch tail — in one arena sweep (chunks are retained for
  // the next run; geometry returns to the initial window).
  arena_.clear();
  buckets_.assign(kInitialBuckets, nullptr);
  occupancy_.assign(kInitialBuckets / 64, 0);
  overflow_ = nullptr;
  overflow_count_ = 0;
  drain_.clear();
  drain_bucket_ = -1;
  cursor_ = 0;
  win_start_ = 0;
  bucket_shift_ = kInitialShift;
  win_last_ = (static_cast<std::int64_t>(kInitialBuckets) << kInitialShift) - 1;
  rebuilds_ = 0;
  bucket_loads_ = 0;
  pending_count_ = 0;
  cancelled_count_ = 0;
  now_ = Time::zero();
  profile_.clear();
  // The armed perturbation survives a reset (it is harness configuration,
  // not simulation state); the batch in flight and its accounting do not.
  batch_.clear();
  batch_pos_ = 0;
  batches_collected_ = 0;
  captured_.reset();
  DREDBOX_AUDIT_INVARIANT(check_invariants());
}

CalendarStats EventQueue::calendar_stats() const {
  CalendarStats stats;
  stats.window_start_ps = win_start_;
  stats.window_last_ps = win_last_;
  stats.bucket_width_ps = static_cast<std::int64_t>(1) << bucket_shift_;
  stats.buckets = buckets_.size();
  stats.cursor = cursor_;
  stats.in_overflow = overflow_count_;
  stats.in_drain = drain_.size();
  stats.rebuilds = rebuilds_;
  stats.bucket_loads = bucket_loads_;
  return stats;
}

std::vector<KernelProfileEntry> EventQueue::kernel_profile() const {
  std::vector<KernelProfileEntry> out;
  out.reserve(profile_.size());
  for (const auto& [label, cell] : profile_) {
    out.push_back(KernelProfileEntry{label, cell.dispatches, cell.host_ns});
  }
  return out;
}

std::string EventQueue::profile_to_string() const {
  auto rows = kernel_profile();
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.host_ns > b.host_ns;
  });
  std::string out = "event kernel profile (host time, excludes queue bookkeeping)\n";
  std::uint64_t total_dispatches = 0;
  double total_ns = 0.0;
  for (const auto& row : rows) {
    total_dispatches += row.dispatches;
    total_ns += row.host_ns;
    out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event\n",
                     row.label.c_str(), (unsigned long long)row.dispatches, row.host_ns,
                     row.ns_per_dispatch());
  }
  out += strformat("  %-32s %10llu dispatches  %10.0f ns total  %8.1f ns/event", "TOTAL",
                   (unsigned long long)total_dispatches, total_ns,
                   total_dispatches > 0 ? total_ns / static_cast<double>(total_dispatches) : 0.0);
  return out;
}

void EventQueue::check_invariants() const {
  // --- geometry ---
  DREDBOX_INVARIANT(std::has_single_bit(buckets_.size()),
                    "bucket count " + std::to_string(buckets_.size()) + " is not a power of two");
  DREDBOX_INVARIANT(cursor_ <= buckets_.size(), "cursor beyond the bucket array");
  DREDBOX_INVARIANT(win_start_ <= now_.ticks(),
                    "window starts at " + std::to_string(win_start_) +
                        " after now() = " + now_.to_string());
  DREDBOX_INVARIANT(win_last_ >= win_start_, "window ends before it starts");
  DREDBOX_INVARIANT(
      drain_bucket_ == -1 || drain_bucket_ == static_cast<std::ptrdiff_t>(cursor_) - 1,
      "open day " + std::to_string(drain_bucket_) + " is not the day before cursor " +
          std::to_string(cursor_));
  DREDBOX_INVARIANT(drain_.empty() || drain_bucket_ >= 0, "drained nodes without an open day");
  DREDBOX_INVARIANT(occupancy_.size() * 64 == buckets_.size(),
                    "occupancy bitmap does not cover the bucket array");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const bool marked = (occupancy_[i >> 6] >> (i & 63)) & 1;
    DREDBOX_INVARIANT(marked == (buckets_[i] != nullptr),
                      "occupancy bit for day " + std::to_string(i) +
                          " disagrees with its chain");
  }

  // --- reachability sweep: every arena-live node is linked exactly once
  // from a day bucket, the drain, the overflow rung, or the batch tail ---
  std::size_t live = 0;
  std::size_t cancelled = 0;
  const auto check_node = [&](const Node* node, const char* where) {
    DREDBOX_INVARIANT(node->seq < next_seq_,
                      std::string(where) + " node carries an unissued sequence");
    DREDBOX_INVARIANT(node->when >= now_, std::string(where) + " node at " +
                                              node->when.to_string() +
                                              " precedes now() = " + now_.to_string());
    if (node->cancelled) {
      ++cancelled;
    } else {
      ++live;
    }
  };
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (i < cursor_ && static_cast<std::ptrdiff_t>(i) != drain_bucket_) {
      DREDBOX_INVARIANT(buckets_[i] == nullptr,
                        "bucket " + std::to_string(i) + " behind cursor " +
                            std::to_string(cursor_) + " is not empty");
    }
    for (const Node* node = buckets_[i]; node != nullptr; node = node->next) {
      check_node(node, "bucket");
      DREDBOX_INVARIANT(node->when.ticks() <= win_last_, "bucketed node beyond the window");
      DREDBOX_INVARIANT(bucket_index(node->when.ticks()) == i,
                        "node at " + node->when.to_string() + " filed under the wrong day " +
                            std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < drain_.size(); ++i) {
    const Node* node = drain_[i].node;
    check_node(node, "drain");
    DREDBOX_INVARIANT(drain_[i].when == node->when && drain_[i].seq == node->seq,
                      "drain entry key disagrees with its node");
    DREDBOX_INVARIANT(
        bucket_index(node->when.ticks()) == static_cast<std::size_t>(drain_bucket_),
        "drained node at " + node->when.to_string() + " is outside the open day");
    if (i + 1 < drain_.size()) {
      const DrainEntry& later = drain_[i + 1];
      DREDBOX_INVARIANT(node->when > later.when ||
                            (node->when == later.when && node->seq > later.seq),
                        "drain is not sorted descending by (when, seq)");
    }
  }
  for (const Node* node = overflow_; node != nullptr; node = node->next) {
    check_node(node, "overflow");
    DREDBOX_INVARIANT(node->when.ticks() > win_last_, "overflow node inside the window");
  }
  for (std::size_t i = batch_pos_; i < batch_.size(); ++i) check_node(batch_[i], "batch");

  // --- counts agree with each other and with the arena ---
  DREDBOX_INVARIANT(live == pending_count_,
                    "reachable live nodes " + std::to_string(live) + " != pending count " +
                        std::to_string(pending_count_));
  DREDBOX_INVARIANT(cancelled == cancelled_count_,
                    "reachable cancelled nodes " + std::to_string(cancelled) +
                        " != cancelled count " + std::to_string(cancelled_count_));
  DREDBOX_INVARIANT(arena_.live() == live + cancelled,
                    "arena holds " + std::to_string(arena_.live()) + " nodes but " +
                        std::to_string(live + cancelled) + " are reachable");
  arena_.check_invariants();
}

}  // namespace dredbox::sim
