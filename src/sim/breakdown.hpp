#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dredbox::sim {

/// Ordered accumulation of named latency contributions. Used to produce the
/// paper's Fig. 8-style round-trip breakdown: each pipeline stage charges
/// its share under a stable component name, and the report preserves the
/// order in which components first appeared (i.e., pipeline order).
class Breakdown {
 public:
  /// Adds `amount` under `component`, creating the component on first use.
  /// Takes a string_view so the (very hot) charge sites in the datapath
  /// compare against literals without materializing a temporary string; a
  /// copy is only made the first time a component appears.
  void charge(std::string_view component, Time amount);

  /// Sum over all components.
  Time total() const;

  /// Contribution of one component; Time::zero() if absent.
  Time of(std::string_view component) const;

  bool has(std::string_view component) const;

  const std::vector<std::pair<std::string, Time>>& components() const { return parts_; }

  /// Merges another breakdown (component-wise addition, order preserved,
  /// new components appended).
  void merge(const Breakdown& other);

  /// Scales every component (e.g., averaging over N runs with 1.0/N).
  void scale_all(double factor);

  /// Multi-line rendering: one component per line with ns value, percentage
  /// of the total, and a proportional bar.
  std::string to_string(std::size_t bar_width = 40) const;

 private:
  std::vector<std::pair<std::string, Time>> parts_;
};

}  // namespace dredbox::sim
