#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Ordered accumulation of named latency contributions. Used to produce the
/// paper's Fig. 8-style round-trip breakdown: each pipeline stage charges
/// its share under a stable component name, and the report preserves the
/// order in which components first appeared (i.e., pipeline order).
///
/// Storage is a fixed inline array keyed by interned ComponentId (ISSUE
/// 9b): a Breakdown embedded in a pooled Transaction or Packet never heap-
/// allocates, and the hot charge sites compare 2-byte ids instead of
/// strings. The string-keyed API remains as a compatibility shim (it
/// interns through the global component registry — a lock-free scan for
/// every label the datapath ships).
class Breakdown {
 public:
  /// Distinct components one op can accumulate. The widest real path (a
  /// remote read's full Fig. 8 pipeline merged with retry/re-provision
  /// charges and the migration stages) stays under 20; exceeding this is
  /// an invariant violation, not a reallocation.
  static constexpr std::size_t kMaxComponents = 24;

  /// Adds `amount` under the interned component — the hot-path overload;
  /// the datapath caches ids at namespace scope and charges by id.
  void charge(ComponentId component, Time amount);

  /// Compatibility shim: interns `component` and charges by id. Still
  /// allocation-free for every label the datapath ships (known labels
  /// resolve with a lock-free registry scan); a copy is made only the
  /// first time a process-new label appears, inside the registry.
  void charge(std::string_view component, Time amount);

  /// Sum over all components.
  Time total() const;

  /// Contribution of one component; Time::zero() if absent.
  Time of(std::string_view component) const;
  Time of(ComponentId component) const;

  bool has(std::string_view component) const;
  bool has(ComponentId component) const;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Resolved (label, time) pairs in first-appearance order. Built on
  /// demand for reporting/tracing consumers; the views point at registry-
  /// owned storage and outlive the Breakdown.
  std::vector<std::pair<std::string_view, Time>> components() const;

  /// Raw interned entries in first-appearance order (hot-path reads).
  const ComponentId* ids() const { return ids_; }
  const Time* times() const { return times_; }

  /// Merges another breakdown (component-wise addition, order preserved,
  /// new components appended).
  void merge(const Breakdown& other);

  /// Scales every component (e.g., averaging over N runs with 1.0/N).
  void scale_all(double factor);

  /// Drops all components (re-issue of a pooled op starts from a clean
  /// breakdown — see the stale-field sweep in ISSUE 9).
  void clear() { count_ = 0; }

  /// Multi-line rendering: one component per line with ns value, percentage
  /// of the total, and a proportional bar.
  std::string to_string(std::size_t bar_width = 40) const;

 private:
  /// Index of `component` in ids_, or count_ if absent.
  std::size_t find(ComponentId component) const;

  ComponentId ids_[kMaxComponents];
  Time times_[kMaxComponents];
  std::uint8_t count_ = 0;
};

}  // namespace dredbox::sim
