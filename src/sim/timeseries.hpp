#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Environment variable naming the file the OpenMetrics rendering of a
/// run's time series is written to (same convention as
/// DREDBOX_TRACE_FILE; unset means no file is produced).
inline constexpr const char* kOpenMetricsFileEnv = "DREDBOX_OPENMETRICS_FILE";

/// How a sampled series behaves over time; steers the OpenMetrics # TYPE
/// line (counters are monotone totals, everything else is a level).
enum class SeriesKind : std::uint8_t {
  kCounter,
  kGauge,
};

std::string to_string(SeriesKind kind);

/// One timestamped sample of one series, against the simulated clock.
struct SeriesPoint {
  Time when;
  double value = 0.0;
};

/// One named, ring-buffered series: appending past capacity overwrites
/// the oldest point in O(1) (the Tracer ring discipline), so a sampler
/// left running on a long simulation holds the newest window and counts
/// what it lost.
class TimeSeries {
 public:
  TimeSeries(std::string name, SeriesKind kind, std::size_t capacity);

  const std::string& name() const { return name_; }
  SeriesKind kind() const { return kind_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Points overwritten after the ring reached capacity.
  std::size_t evicted() const { return evicted_; }

  void append(Time when, double value);

  /// `index` counts from the oldest retained point (0) to the newest.
  const SeriesPoint& point(std::size_t index) const;
  const SeriesPoint& front() const { return point(0); }
  const SeriesPoint& back() const { return point(size_ - 1); }

 private:
  std::string name_;
  SeriesKind kind_;
  std::size_t capacity_;
  std::vector<SeriesPoint> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t evicted_ = 0;
};

/// The series of one run, keyed by name (sorted, so every export walks in
/// a deterministic order). Copyable: a WorkloadResult carries its run's
/// series by value.
class TimeSeriesSet {
 public:
  /// Get-or-create. Throws std::logic_error when the name exists with a
  /// different kind.
  TimeSeries& series(const std::string& name, SeriesKind kind, std::size_t capacity);

  const TimeSeries* find(const std::string& name) const;
  bool empty() const { return series_.empty(); }
  std::size_t size() const { return series_.size(); }
  /// All series names, sorted.
  std::vector<std::string> names() const;

  /// Deterministic walk in name order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, s] : series_) fn(s);
  }

  /// OpenMetrics text exposition: one `# TYPE` block per series
  /// ("memsys.read.latency_ns.p99" becomes
  /// `dredbox_memsys_read_latency_ns_p99`), one sample line per retained
  /// point with the sim-clock timestamp in seconds, terminated by `# EOF`.
  /// Byte-identical across same-seed runs.
  std::string to_openmetrics() const;

  /// Long-format table (series, kind, t_us, value) — one row per point —
  /// for the DREDBOX_CSV_DIR convention.
  TextTable to_table() const;
  bool write_csv(const std::string& name) const { return maybe_write_csv(name, to_table()); }

 private:
  std::map<std::string, TimeSeries> series_;
};

/// Writes to_openmetrics() to $DREDBOX_OPENMETRICS_FILE when set; returns
/// whether a file was produced. Throws on I/O failure.
bool maybe_write_openmetrics(const TimeSeriesSet& set);

/// Samples every instrument of a MetricsRegistry on the simulation's own
/// event queue: one tick per `period` of *simulated* time, each snapshot
/// appending to ring-buffered series (counters and gauges one series
/// each; histograms expand to .count/.mean/.p50/.p99/.max). Instruments
/// that appear mid-run simply start sampling at the next tick.
///
/// The sampler draws nothing from the simulation Rng and mutates no model
/// state, so enabling it never changes a run's op stream or digest.
class TimeSeriesSampler {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  TimeSeriesSampler(Simulator& sim, const metrics::MetricsRegistry& registry, Time period,
                    std::size_t capacity_per_series = kDefaultCapacity);

  /// Schedules ticks at now+period, now+2·period, ... while they land at
  /// or before `end` (`end` itself included — a period that does not
  /// divide the window evenly simply yields a short final gap).
  void start(Time end);

  /// Takes one snapshot immediately at the current simulated time.
  void sample_now();

  Time period() const { return period_; }
  std::size_t ticks() const { return ticks_; }
  const TimeSeriesSet& series() const { return series_; }
  /// Moves the collected series out (the sampler is done after this).
  TimeSeriesSet take() { return std::move(series_); }

 private:
  Simulator& sim_;
  const metrics::MetricsRegistry& registry_;
  Time period_;
  std::size_t capacity_;
  Time end_ = Time::zero();
  std::size_t ticks_ = 0;
  TimeSeriesSet series_;

  void tick();
};

}  // namespace dredbox::sim
