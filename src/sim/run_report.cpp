#include "sim/run_report.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>

#include "sim/format.hpp"
#include "sim/trace_export.hpp"

namespace dredbox::sim {

namespace {

std::string json_number(double v) { return strformat("%.9g", v); }
std::string json_us(Time t) { return strformat("%.3f", t.as_us()); }
std::string hex16(std::uint64_t v) { return strformat("%016llx", (unsigned long long)v); }

}  // namespace

RunReport& RunReport::tag(std::string value) {
  tag_ = std::move(value);
  return *this;
}

RunReport& RunReport::seed(std::uint64_t value) {
  seed_ = value;
  return *this;
}

RunReport& RunReport::config_digest(std::uint64_t value) {
  config_digest_ = value;
  return *this;
}

RunReport& RunReport::determinism_digest(std::uint64_t value) {
  determinism_digest_ = value;
  return *this;
}

RunReport& RunReport::fault_plan(std::string spec) {
  fault_plan_ = std::move(spec);
  return *this;
}

RunReport& RunReport::duration(Time simulated) {
  duration_ = simulated;
  return *this;
}

RunReport& RunReport::note(const std::string& key, std::uint64_t value) {
  notes_.emplace_back(key, std::to_string(value));
  return *this;
}

RunReport& RunReport::note(const std::string& key, double value) {
  notes_.emplace_back(key, json_number(value));
  return *this;
}

RunReport& RunReport::metrics(const metrics::MetricsRegistry& registry) {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : registry.names()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\":\"" + json_escape(name) + "\",";
    if (const auto* counter = registry.find_counter(name)) {
      out += "\"type\":\"counter\",\"value\":" + std::to_string(counter->value());
    } else if (const auto* gauge = registry.find_gauge(name)) {
      out += "\"type\":\"gauge\",\"value\":" + json_number(gauge->value());
    } else if (const auto* histogram = registry.find_histogram(name)) {
      const bool filled = histogram->count() > 0;
      out += "\"type\":\"histogram\",\"count\":" + std::to_string(histogram->count());
      out += ",\"mean\":" + json_number(filled ? histogram->mean() : 0.0);
      out += ",\"min\":" + json_number(filled ? histogram->min() : 0.0);
      out += ",\"max\":" + json_number(filled ? histogram->max() : 0.0);
      out += ",\"p50\":" + json_number(histogram->quantile(0.50));
      out += ",\"p95\":" + json_number(histogram->quantile(0.95));
      out += ",\"p99\":" + json_number(histogram->quantile(0.99));
    }
    out += '}';
  }
  out += first ? "]" : "\n  ]";
  metrics_json_ = out;
  return *this;
}

RunReport& RunReport::timeseries(const TimeSeriesSet& set, Time period) {
  std::string out = "{\"period_us\":" + json_us(period) + ",\"series\":[";
  bool first = true;
  set.for_each([&](const TimeSeries& s) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\":\"" + json_escape(s.name()) + "\",\"kind\":\"" +
           to_string(s.kind()) + "\",\"evicted\":" + std::to_string(s.evicted()) +
           ",\"points\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i > 0) out += ',';
      const SeriesPoint& p = s.point(i);
      out += '[' + json_us(p.when) + ',' + json_number(p.value) + ']';
    }
    out += "]}";
  });
  out += first ? "]}" : "\n  ]}";
  timeseries_json_ = out;
  return *this;
}

namespace {

/// Renders one reconstructed span-tree node; recursion bounded by the
/// visited set (span ids are unique, so genuine traces never cycle).
void render_span(std::string& out, const Tracer& tracer,
                 const std::map<std::uint64_t, std::vector<std::size_t>>& children_of,
                 std::set<std::uint64_t>& visited, std::size_t index) {
  const TraceEvent& e = tracer.event(index);
  out += "{\"name\":\"" + json_escape(e.message) + "\",\"category\":\"" +
         json_escape(to_string(e.category)) + "\",\"begin_us\":" + json_us(e.when) +
         ",\"duration_us\":" + json_us(e.duration) + ",\"span_id\":\"" + hex16(e.ctx.span_id) +
         "\"";
  if (e.ctx.parent_span_id != 0) {
    out += ",\"parent_span_id\":\"" + hex16(e.ctx.parent_span_id) + "\"";
  }
  if (!e.args.empty()) {
    out += ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) out += ',';
      out += '"' + json_escape(e.args[i].first) + "\":\"" + json_escape(e.args[i].second) + '"';
    }
    out += '}';
  }
  const auto kids = children_of.find(e.ctx.span_id);
  if (kids != children_of.end() && visited.insert(e.ctx.span_id).second) {
    out += ",\"children\":[";
    bool first = true;
    for (std::size_t child : kids->second) {
      if (!first) out += ',';
      first = false;
      render_span(out, tracer, children_of, visited, child);
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

RunReport& RunReport::traces(const Tracer& tracer, std::size_t top_n) {
  tracing_ = tracer.enabled();
  tracer_json_ = "{\"capacity\":" + std::to_string(tracer.capacity()) +
                 ",\"retained\":" + std::to_string(tracer.size()) +
                 ",\"dropped_while_disabled\":" + std::to_string(tracer.dropped_while_disabled()) +
                 ",\"evicted\":" + std::to_string(tracer.evicted()) + "}";

  // Index the causal structure: first event per span id, children per
  // parent id (ring order — i.e. recording order — within one parent).
  std::map<std::uint64_t, std::size_t> event_of;
  std::map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const TraceEvent& e = tracer.event(i);
    if (!e.ctx.valid()) continue;
    event_of.emplace(e.ctx.span_id, i);
    if (e.ctx.parent_span_id != 0) {
      children_of[e.ctx.parent_span_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::stable_sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    const TraceEvent& ea = tracer.event(a);
    const TraceEvent& eb = tracer.event(b);
    if (ea.duration != eb.duration) return ea.duration > eb.duration;
    if (ea.when != eb.when) return ea.when < eb.when;
    return ea.ctx.span_id < eb.ctx.span_id;
  });
  if (roots.size() > top_n) roots.resize(top_n);

  std::string out = "[";
  bool first = true;
  for (std::size_t index : roots) {
    if (!first) out += ',';
    first = false;
    const TraceEvent& e = tracer.event(index);
    out += "\n    {\"trace_id\":\"" + hex16(e.ctx.trace_id) +
           "\",\"duration_us\":" + json_us(e.duration) + ",\"root\":";
    std::set<std::uint64_t> visited;
    render_span(out, tracer, children_of, visited, index);
    out += '}';
  }
  out += first ? "]" : "\n  ]";
  traces_json_ = out;
  return *this;
}

RunReport& RunReport::kernel_profile(const EventQueue& queue) {
  std::string out = "[";
  bool first = true;
  for (const KernelProfileEntry& row : queue.kernel_profile()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"label\":\"" + json_escape(row.label) +
           "\",\"dispatches\":" + std::to_string(row.dispatches) +
           ",\"host_ns\":" + json_number(row.host_ns) +
           ",\"ns_per_dispatch\":" + json_number(row.ns_per_dispatch()) + '}';
  }
  out += first ? "]" : "\n  ]";
  profile_json_ = out;
  return *this;
}

std::string RunReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string{kReportSchema} + "\",\n";
  out += "  \"tag\": \"" + json_escape(tag_) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed_) + ",\n";
  out += "  \"config_digest\": \"" + hex16(config_digest_) + "\",\n";
  out += "  \"determinism_digest\": \"" + hex16(determinism_digest_) + "\",\n";
  out += "  \"fault_plan\": \"" + json_escape(fault_plan_) + "\",\n";
  out += "  \"tracing\": " + std::string{tracing_ ? "true" : "false"} + ",\n";
  out += "  \"duration_us\": " + json_us(duration_);
  if (!notes_.empty()) {
    out += ",\n  \"totals\": {";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) out += ',';
      out += "\n    \"" + json_escape(notes_[i].first) + "\": " + notes_[i].second;
    }
    out += "\n  }";
  }
  if (!metrics_json_.empty()) out += ",\n  \"metrics\": " + metrics_json_;
  if (!timeseries_json_.empty()) out += ",\n  \"timeseries\": " + timeseries_json_;
  if (!tracer_json_.empty()) out += ",\n  \"tracer\": " + tracer_json_;
  if (!traces_json_.empty()) out += ",\n  \"slowest_traces\": " + traces_json_;
  if (!profile_json_.empty()) out += ",\n  \"kernel_profile\": " + profile_json_;
  out += "\n}\n";
  return out;
}

bool RunReport::maybe_write() const {
  const char* path = std::getenv(kReportFileEnv);
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error(std::string{"RunReport::maybe_write: cannot open "} + path);
  }
  out << to_json();
  if (!out) {
    throw std::runtime_error(std::string{"RunReport::maybe_write: write to "} + path +
                             " failed");
  }
  return true;
}

}  // namespace dredbox::sim
