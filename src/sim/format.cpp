#include "sim/format.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace dredbox::sim {

std::string strformat(const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  // dredbox-lint: ignore[printf-family] — the sanctioned wrapper itself.
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) return {};
  if (static_cast<std::size_t>(n) < sizeof buf) return std::string{buf, static_cast<std::size_t>(n)};
  // Rare slow path: the rendering did not fit the stack buffer.
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  va_start(args, fmt);
  // dredbox-lint: ignore[printf-family] — the sanctioned wrapper itself.
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  return std::string{big.data(), static_cast<std::size_t>(n)};
}

}  // namespace dredbox::sim
