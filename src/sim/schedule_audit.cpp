#include "sim/schedule_audit.hpp"

#include <stdexcept>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

AuditObservation observe_audit(const EventQueue& queue, std::uint64_t digest) {
  AuditObservation out;
  out.digest = digest;
  out.batches = queue.batches_collected();
  out.captured = queue.captured_batch();
  return out;
}

std::string ScheduleDivergence::to_string() const {
  std::string out = strformat("permutation #%zu (%s): digest %016llx != baseline %016llx",
                              permutation, perturbation.to_string().c_str(),
                              static_cast<unsigned long long>(observed_digest),
                              static_cast<unsigned long long>(expected_digest));
  if (!bisected) return out;
  out += strformat("\n  first order-sensitive batch: #%llu at %s%s",
                   static_cast<unsigned long long>(culprit_batch),
                   culprit_time.to_string().c_str(),
                   isolated ? "" : " (not reproducible in isolation; earlier reorders contribute)");
  if (culprit_position != kUnknownPosition) {
    out += strformat("\n  first order-sensitive event: \"%s\" (FIFO position %zu)",
                     culprit_label.c_str(), culprit_position);
  }
  if (!batch_labels.empty()) {
    out += "\n  batch composition (FIFO order):";
    for (std::size_t i = 0; i < batch_labels.size(); ++i) {
      out += strformat("\n    [%zu] %s", i, batch_labels[i].c_str());
    }
  }
  return out;
}

std::string ScheduleAuditReport::to_string() const {
  std::string out = strformat(
      "schedule audit: %zu permutations over %llu same-timestamp batches, %zu runs — %s",
      permutations, static_cast<unsigned long long>(batches), runs,
      ok() ? "tie-order independent" : "ORDER-DEPENDENT");
  for (const auto& divergence : divergences) out += "\n" + divergence.to_string();
  return out;
}

ScheduleAuditReport ScheduleAuditor::audit(const RunFn& run) const {
  if (!run) throw std::invalid_argument("ScheduleAuditor::audit: scenario callback must be callable");
  ScheduleAuditReport report;

  // Baseline: plain FIFO dispatch, no batch collection.
  const AuditObservation baseline = run(SchedulePerturbation{});
  ++report.runs;
  report.baseline_digest = baseline.digest;

  // Identity: the batch-collection machinery itself must be digest-neutral
  // (same order, different plumbing). Also yields the batch count that
  // bounds the bisection.
  SchedulePerturbation identity;
  identity.mode = SchedulePerturbation::Mode::kIdentity;
  const AuditObservation neutral = run(identity);
  ++report.runs;
  report.batches = neutral.batches;
  DREDBOX_INVARIANT(neutral.digest == report.baseline_digest,
                    strformat("identity (batched FIFO) run digest %016llx != baseline %016llx: "
                              "the scenario is not re-run deterministic, audit results would "
                              "be meaningless",
                              static_cast<unsigned long long>(neutral.digest),
                              static_cast<unsigned long long>(report.baseline_digest)));

  using Mode = SchedulePerturbation::Mode;
  static constexpr Mode kCycle[] = {Mode::kReverse, Mode::kRotate, Mode::kShuffle};
  bool bisected_one = false;
  for (std::size_t i = 1; i <= config_.permutations; ++i) {
    SchedulePerturbation perturbation;
    perturbation.mode = kCycle[(i - 1) % 3];
    perturbation.seed = config_.seed + i;
    const AuditObservation observed = run(perturbation);
    ++report.runs;
    ++report.permutations;
    if (observed.digest == report.baseline_digest) continue;

    ScheduleDivergence divergence;
    divergence.permutation = i;
    divergence.perturbation = perturbation;
    divergence.expected_digest = report.baseline_digest;
    divergence.observed_digest = observed.digest;
    // Bisection is expensive (each probe is a full re-run); localize the
    // first divergence only — fixing it and re-auditing is the workflow.
    // The prefix bound is this run's own batch count: restricting the
    // window to [0, batches-it-formed) reproduces it exactly.
    if (config_.bisect && !bisected_one && observed.batches > 0) {
      bisect(run, report, divergence, observed.batches);
      bisected_one = true;
    }
    report.divergences.push_back(std::move(divergence));
  }
  return report;
}

void ScheduleAuditor::bisect(const RunFn& run, ScheduleAuditReport& report,
                             ScheduleDivergence& divergence, std::uint64_t batch_bound) const {
  const std::size_t budget = report.runs + config_.max_bisect_runs;
  auto probe = [&](SchedulePerturbation p) {
    ++report.runs;
    return run(p);
  };

  // Binary search the smallest batch-index prefix [0, hi) that still
  // diverges: perturbing nothing matches the baseline, perturbing every
  // batch reproduces the divergence, so a boundary exists. (Reordering a
  // batch can change how later batches form, so this is delta debugging —
  // it isolates *a* first sensitive batch under the probes taken, which
  // is exactly what a fix needs.)
  std::uint64_t lo = 0;       // [0, lo) proven clean
  std::uint64_t hi = batch_bound;  // [0, hi) proven divergent: the diverging
                                   // run formed batch_bound batches, so this
                                   // window reproduces it verbatim
  while (hi - lo > 1 && report.runs < budget) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    SchedulePerturbation window = divergence.perturbation;
    window.first_batch = 0;
    window.last_batch = mid;
    const AuditObservation observed = probe(window);
    (observed.digest == report.baseline_digest ? lo : hi) = mid;
  }
  divergence.bisected = true;
  divergence.culprit_batch = hi - 1;

  // Confirm in isolation and capture the batch's composition.
  SchedulePerturbation isolated = divergence.perturbation;
  isolated.first_batch = divergence.culprit_batch;
  isolated.last_batch = divergence.culprit_batch + 1;
  isolated.capture_batch = divergence.culprit_batch;
  const AuditObservation capture = probe(isolated);
  divergence.isolated = capture.digest != report.baseline_digest;
  if (capture.captured) {
    divergence.culprit_time = capture.captured->when;
    divergence.batch_labels = capture.captured->fifo_labels;
  }

  // Event-level scan: the first adjacent swap inside the culprit batch
  // that flips the digest names the first order-sensitive event. Only
  // meaningful when the batch diverges in isolation.
  if (!divergence.isolated) return;
  const std::size_t batch_size = divergence.batch_labels.size();
  for (std::size_t pos = 0; pos + 1 < batch_size && report.runs < budget; ++pos) {
    SchedulePerturbation swap;
    swap.mode = SchedulePerturbation::Mode::kSwapAdjacent;
    swap.swap_position = pos;
    swap.first_batch = divergence.culprit_batch;
    swap.last_batch = divergence.culprit_batch + 1;
    const AuditObservation observed = probe(swap);
    if (observed.digest != report.baseline_digest) {
      divergence.culprit_position = pos;
      divergence.culprit_label = divergence.batch_labels[pos];
      return;
    }
  }
}

}  // namespace dredbox::sim
