#include "sim/worker_pool.hpp"

#include <algorithm>

namespace dredbox::sim {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t spawned = std::max<std::size_t>(threads, 1) - 1;
  workers_.reserve(spawned);
  for (std::size_t w = 0; w < spawned; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void WorkerPool::drain(const std::function<void(std::size_t)>& body, std::size_t limit) {
  while (true) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= limit) return;
    try {
      body(i);
    } catch (...) {
      MutexLock lock{mu_};
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

// The wait loop releases and reacquires mu_ inside condition_variable_any,
// which clang's static analysis cannot see through; the guarded members it
// touches are protected by exactly that lock.
void WorkerPool::worker_main() DREDBOX_NO_THREAD_SAFETY_ANALYSIS {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t limit = 0;
    {
      mu_.lock();
      while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
      if (stop_) {
        mu_.unlock();
        return;
      }
      seen = generation_;
      body = body_;
      limit = limit_;
      mu_.unlock();
    }
    drain(*body, limit);
    {
      mu_.lock();
      const bool last = --active_ == 0;
      mu_.unlock();
      if (last) done_cv_.notify_all();
    }
  }
}

void WorkerPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body)
    DREDBOX_NO_THREAD_SAFETY_ANALYSIS {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline fast path: identical claim order to the pooled path (0..n-1
    // off one cursor), so sequential and parallel callers share semantics.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    mu_.lock();
    body_ = &body;
    limit_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
    mu_.unlock();
  }
  work_cv_.notify_all();
  drain(body, n);
  {
    mu_.lock();
    while (active_ != 0) done_cv_.wait(mu_);
    body_ = nullptr;
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    mu_.unlock();
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace dredbox::sim
