#include "sim/breakdown.hpp"

#include <algorithm>

#include "sim/contract.hpp"
#include "sim/format.hpp"

namespace dredbox::sim {

// dredbox-lint: hot-path-begin — charge()/of()/has() run a handful of
// times per op over the fixed inline arrays; only interned ids move, so
// there is nothing to heap-allocate.
std::size_t Breakdown::find(ComponentId component) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (ids_[i] == component) return i;
  }
  return count_;
}

void Breakdown::charge(ComponentId component, Time amount) {
  const std::size_t i = find(component);
  if (i < count_) {
    times_[i] += amount;
    return;
  }
  DREDBOX_INVARIANT(count_ < kMaxComponents,
                    "Breakdown overflow: one op charged more than kMaxComponents "
                    "distinct components — grow kMaxComponents only if the "
                    "pipeline genuinely grew");
  ids_[count_] = component;
  times_[count_] = amount;
  ++count_;
}

void Breakdown::charge(std::string_view component, Time amount) {
  charge(component_id(component), amount);
}

Time Breakdown::total() const {
  Time sum = Time::zero();
  for (std::size_t i = 0; i < count_; ++i) sum += times_[i];
  return sum;
}

Time Breakdown::of(ComponentId component) const {
  const std::size_t i = find(component);
  return i < count_ ? times_[i] : Time::zero();
}

Time Breakdown::of(std::string_view component) const {
  // A label that was never interned anywhere cannot have been charged
  // here; answer without growing the registry.
  const auto id = component_id_if_interned(component);
  return id ? of(*id) : Time::zero();
}

bool Breakdown::has(ComponentId component) const { return find(component) < count_; }

bool Breakdown::has(std::string_view component) const {
  const auto id = component_id_if_interned(component);
  return id && has(*id);
}
// dredbox-lint: hot-path-end

// components() builds a vector for reporting/tracing consumers — cold by
// construction, so it sits outside the hot region.
std::vector<std::pair<std::string_view, Time>> Breakdown::components() const {
  std::vector<std::pair<std::string_view, Time>> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.emplace_back(component_label(ids_[i]), times_[i]);
  }
  return out;
}

void Breakdown::merge(const Breakdown& other) {
  for (std::size_t i = 0; i < other.count_; ++i) charge(other.ids_[i], other.times_[i]);
}

void Breakdown::scale_all(double factor) {
  for (std::size_t i = 0; i < count_; ++i) times_[i] = scale(times_[i], factor);
}

std::string Breakdown::to_string(std::size_t bar_width) const {
  std::string out;
  const double total_ns = total().as_ns();
  std::size_t widest = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    widest = std::max(widest, component_label(ids_[i]).size());
  }
  for (std::size_t i = 0; i < count_; ++i) {
    const std::string name{component_label(ids_[i])};
    const Time t = times_[i];
    const double pct = total_ns > 0 ? 100.0 * t.as_ns() / total_ns : 0.0;
    out += strformat("  %-*s %12s  %5.1f%%  |", static_cast<int>(widest), name.c_str(),
                     t.to_string().c_str(), pct);
    const auto bar = static_cast<std::size_t>(pct / 100.0 * static_cast<double>(bar_width) + 0.5);
    out.append(bar, '#');
    out += '\n';
  }
  out += strformat("  %-*s %12s  100.0%%\n", static_cast<int>(widest), "TOTAL",
                   total().to_string().c_str());
  return out;
}

}  // namespace dredbox::sim
