#include "sim/breakdown.hpp"

#include <algorithm>

#include "sim/format.hpp"

namespace dredbox::sim {

void Breakdown::charge(std::string_view component, Time amount) {
  for (auto& [name, t] : parts_) {
    if (name == component) {
      t += amount;
      return;
    }
  }
  parts_.emplace_back(std::string{component}, amount);
}

Time Breakdown::total() const {
  Time sum = Time::zero();
  for (const auto& [name, t] : parts_) sum += t;
  return sum;
}

Time Breakdown::of(std::string_view component) const {
  for (const auto& [name, t] : parts_) {
    if (name == component) return t;
  }
  return Time::zero();
}

bool Breakdown::has(std::string_view component) const {
  return std::any_of(parts_.begin(), parts_.end(),
                     [&](const auto& p) { return p.first == component; });
}

void Breakdown::merge(const Breakdown& other) {
  for (const auto& [name, t] : other.parts_) charge(name, t);
}

void Breakdown::scale_all(double factor) {
  for (auto& [name, t] : parts_) t = scale(t, factor);
}

std::string Breakdown::to_string(std::size_t bar_width) const {
  std::string out;
  const double total_ns = total().as_ns();
  std::size_t widest = 0;
  for (const auto& [name, t] : parts_) widest = std::max(widest, name.size());
  for (const auto& [name, t] : parts_) {
    const double pct = total_ns > 0 ? 100.0 * t.as_ns() / total_ns : 0.0;
    out += strformat("  %-*s %12s  %5.1f%%  |", static_cast<int>(widest), name.c_str(),
                     t.to_string().c_str(), pct);
    const auto bar = static_cast<std::size_t>(pct / 100.0 * static_cast<double>(bar_width) + 0.5);
    out.append(bar, '#');
    out += '\n';
  }
  out += strformat("  %-*s %12s  100.0%%\n", static_cast<int>(widest), "TOTAL",
                   total().to_string().c_str());
  return out;
}

}  // namespace dredbox::sim
