#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dredbox::sim {

/// Seeded random source used by every stochastic model. Thin wrapper over
/// std::mt19937_64 with the distributions the experiments need and a
/// `fork()` operation producing decorrelated child streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_{seed} {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard or parameterised Gaussian.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives a child stream whose draws are decorrelated from this one.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dredbox::sim
