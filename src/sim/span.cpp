#include "sim/span.hpp"

namespace dredbox::sim {

void Span::end(Time when) {
  if (tracer_ == nullptr) return;
  tracer_->record_span(begin_, when, category_, std::move(name_), std::move(args_), ctx_);
  tracer_ = nullptr;
}

}  // namespace dredbox::sim
