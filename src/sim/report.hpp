#pragma once

#include <string>
#include <vector>

namespace dredbox::sim {

/// Plain-text table renderer used by the benchmark harness to print the
/// rows/series the paper's tables and figures report. Column widths are
/// computed from content; numeric columns are right-aligned by the caller
/// simply by formatting the cell text.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Scientific notation (for BER-style magnitudes).
  static std::string sci(double v, int precision = 2);
  /// Percent with sign convention "12.3%".
  static std::string pct(double fraction, int precision = 1);

  std::string to_string() const;

  /// RFC4180-style CSV rendering (quotes cells containing commas, quotes
  /// or newlines); first line is the header. Feed the bench outputs to a
  /// plotting tool to regenerate the figures graphically.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar scaled so that `full_scale` maps to
/// `width` characters.
std::string ascii_bar(double value, double full_scale, std::size_t width = 40);

/// When the DREDBOX_CSV_DIR environment variable is set, writes the
/// table's CSV rendering to `<dir>/<name>.csv` (for plotting the bench
/// outputs graphically) and returns true. No-op returning false when the
/// variable is unset; throws on I/O failure so silent data loss cannot
/// happen.
bool maybe_write_csv(const std::string& name, const TextTable& table);

}  // namespace dredbox::sim
