#pragma once

#include <string>

namespace dredbox::sim {

/// printf-style formatting into a std::string. This is the one sanctioned
/// home of the printf family inside the libraries: call sites get compiler
/// format/argument checking via the attribute, a bounds-safe buffer, and
/// dredbox_lint can ban the raw snprintf-into-stack-buffer idiom everywhere
/// else in src/.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dredbox::sim
