#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace dredbox::sim {

/// Scoped timing against the *simulated* clock: a Span opens at an
/// explicit begin Time, collects key/value attributes, and records itself
/// into the Tracer when end() is called (or on destruction, as an instant
/// event, if the caller never learned a completion time).
///
/// Spans are inert when the tracer is null or disabled at construction —
/// every method is then a no-op, so hot paths can create one
/// unconditionally and pay a pointer test. Callers that must avoid even
/// building the name string should branch on tracer.enabled() first.
///
/// Simulation models frequently *compute* an operation's completion time
/// instead of advancing the clock across it, so end() takes the time
/// explicitly rather than sampling a clock.
class Span {
 public:
  Span(Tracer* tracer, TraceCategory category, std::string name, Time begin)
      : tracer_{tracer != nullptr && tracer->enabled() ? tracer : nullptr},
        category_{category},
        begin_{begin},
        name_{tracer_ != nullptr ? std::move(name) : std::string{}} {}

  Span(Tracer& tracer, TraceCategory category, std::string name, Time begin)
      : Span{&tracer, category, std::move(name), begin} {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : tracer_{other.tracer_},
        category_{other.category_},
        begin_{other.begin_},
        name_{std::move(other.name_)},
        args_{std::move(other.args_)},
        ctx_{other.ctx_} {
    other.tracer_ = nullptr;
  }

  /// True when this span will record (tracer present and enabled).
  bool active() const { return tracer_ != nullptr; }

  /// Attaches an attribute (exported into the Chrome trace "args").
  Span& arg(std::string key, std::string value) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Links the span into a causal trace (see TraceContext). A default
  /// (invalid) context leaves the span unlinked.
  Span& context(const TraceContext& ctx) {
    if (tracer_ != nullptr) ctx_ = ctx;
    return *this;
  }

  /// The context attached via context() — invalid when none was set.
  const TraceContext& ctx() const { return ctx_; }

  /// Closes the span at `when` and records it. Idempotent: only the first
  /// end() records.
  void end(Time when);

  /// An un-ended span records as an instant at its begin time, so a span
  /// abandoned on an error path still marks that the operation started.
  ~Span() {
    if (tracer_ != nullptr) end(begin_);
  }

 private:
  Tracer* tracer_;
  TraceCategory category_;
  Time begin_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> args_;
  TraceContext ctx_;
};

}  // namespace dredbox::sim
