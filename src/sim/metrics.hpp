#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace dredbox::sim::metrics {

class MetricsRegistry;

/// Passkey: instruments are constructible only by MetricsRegistry (which is
/// the only code that can mint a key), but publicly enough for
/// std::make_unique — no raw `new` behind friendship needed.
class RegistryKey {
  RegistryKey() = default;
  friend class MetricsRegistry;
};

/// Monotonically increasing event count ("how many attaches happened").
/// Recording is gated on the owning registry's enabled flag so that an
/// instrumented hot path costs one predictable branch when telemetry is
/// off (the same cheap-when-off contract as Tracer).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (*enabled_) value_ += n;
  }
  std::uint64_t value() const { return value_; }

  Counter(RegistryKey, const bool* enabled) : enabled_{enabled} {}

 private:
  friend class MetricsRegistry;  // reset() re-zeroes value_ in place
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Point-in-time level ("switch ports in use"). set() overwrites; add()
/// applies a signed delta (the natural form for +1/-1 lifecycle events).
class Gauge {
 public:
  void set(double v) {
    if (*enabled_) {
      value_ = v;
      written_ = true;
    }
  }
  void add(double delta) {
    if (*enabled_) {
      value_ += delta;
      written_ = true;
    }
  }
  double value() const { return value_; }
  /// True once any set()/add() landed while the registry was enabled.
  bool written() const { return written_; }

  Gauge(RegistryKey, const bool* enabled) : enabled_{enabled} {}

 private:
  friend class MetricsRegistry;  // reset() re-zeroes value_/written_ in place
  const bool* enabled_;
  double value_ = 0.0;
  bool written_ = false;
};

/// Fixed-bucket latency/size distribution: streaming aggregates (mean,
/// min, max via RunningStats) plus a fixed-width bucket array over
/// [lo, hi) with clamping edge buckets (the sim::Histogram convention), so
/// memory stays O(buckets) no matter how hot the instrumented path is.
/// Quantiles are estimated by linear interpolation inside the bucket.
class Histogram {
 public:
  void observe(double x);

  std::size_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }
  double stddev() const { return running_.stddev(); }
  double sum() const { return running_.sum(); }

  double low() const { return buckets_.bin_low(0); }
  double high() const { return buckets_.bin_high(buckets_.bin_count() - 1); }
  std::size_t bucket_count() const { return buckets_.bin_count(); }
  std::size_t bucket(std::size_t i) const { return buckets_.count(i); }

  /// q in [0, 1]; 0 for an empty histogram. Estimated from the buckets
  /// (exact min/max are substituted at the extremes).
  double quantile(double q) const;

  std::string to_string(std::size_t width = 50) const { return buckets_.to_string(width); }

  Histogram(RegistryKey, const bool* enabled, double lo, double hi, std::size_t bins)
      : enabled_{enabled}, buckets_{lo, hi, bins} {}

 private:
  friend class MetricsRegistry;  // merge()/reset() touch the aggregates in place
  const bool* enabled_;
  RunningStats running_;
  sim::Histogram buckets_;
};

/// Owns every named instrument of one simulated rack. Instruments are
/// created on first request and live for the registry's lifetime, so call
/// sites resolve the name once (at wiring time) and keep the reference —
/// the hot path never touches the map. Names are dot-scoped by layer
/// ("memsys.read.latency_ns", "orch.sdm.scale_ups"); see README
/// "Observability" for the naming scheme.
///
/// Recording is disabled by default; enable() flips one bool that every
/// instrument checks, so disabled telemetry costs a branch per call site.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Instruments hold a pointer to enabled_; the registry must not move.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Get-or-create. Throws std::logic_error when the name already exists
  /// as a different instrument type. Names are dotted lower-case with at
  /// least three components ("sub.system.metric"); scripts/dredbox_lint.py
  /// enforces the scheme at registration call sites.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; a lookup must repeat the original bucket layout.
  /// Throws std::logic_error (naming the instrument) when an existing
  /// histogram is re-registered with different lo/hi/bins.
  Histogram& histogram(const std::string& name, double lo, double hi, std::size_t bins = 32);

  bool has(const std::string& name) const;
  std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }
  /// All instrument names, sorted.
  std::vector<std::string> names() const;

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// One row per instrument (sorted by name): name, type, count, value,
  /// mean, p50, p99, max. Counters put their total in "value"; gauges
  /// their level; histograms fill the distribution columns.
  TextTable snapshot() const;

  /// CSV export through the DREDBOX_CSV_DIR convention (no-op returning
  /// false when the variable is unset).
  bool write_csv(const std::string& name) const { return maybe_write_csv(name, snapshot()); }

  /// Folds another registry in (e.g. per-shard registries of a partitioned
  /// experiment): counters add, histograms merge their aggregates and
  /// buckets (shapes must match; throws otherwise), gauges take the other
  /// side's value when it was ever written. Missing instruments are
  /// created.
  void merge(const MetricsRegistry& other);

  /// Zeroes every instrument (between experiment repetitions); the
  /// instrument set and enabled flag are kept.
  void reset();

  /// Hands thread ownership over: the next touching thread becomes the
  /// owner. For the partitioned kernel, which legitimately drives one
  /// rack's registry from a different pool worker each barrier round —
  /// rounds are barrier-separated, so exactly one thread owns it at any
  /// instant, which is what the confinement check enforces per round.
  void rebind_owner() { confined_.rebind(); }

 private:
  bool enabled_ = false;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Instrument maps and instrument state are lock-free because a registry
  // belongs to one Datacenter and therefore to one thread (the sweep
  // runner's no-sharing contract); registration, merge and reset assert
  // that in audit builds. Instrument add()/observe() stay unchecked — they
  // are the hot path, and a foreign thread would have had to cross one of
  // the checked registration points to obtain the reference.
  ThreadConfined confined_;

  void check_free(const std::string& name, const char* wanted) const;
};

}  // namespace dredbox::sim::metrics

namespace dredbox::sim {

/// The observability bundle handed to every instrumented subsystem: named
/// instruments (counters/gauges/histograms) plus the event/span tracer.
/// Datacenter owns one and wires a pointer into each layer; standalone
/// component tests can pass nullptr and pay nothing.
class Telemetry {
 public:
  metrics::MetricsRegistry& metrics() { return metrics_; }
  const metrics::MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  void enable_all() {
    metrics_.enable();
    tracer_.enable();
  }
  void disable_all() {
    metrics_.disable();
    tracer_.disable();
  }

  /// Cheap guard call sites use before building span names/attributes.
  bool tracing() const { return tracer_.enabled(); }

  /// Re-binds both thread-confined halves to the next touching thread
  /// (one barrier round of the partitioned kernel; see
  /// MetricsRegistry::rebind_owner).
  void rebind_owner() {
    metrics_.rebind_owner();
    tracer_.rebind_owner();
  }

 private:
  metrics::MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace dredbox::sim
