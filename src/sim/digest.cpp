#include "sim/digest.hpp"

#include <string>

#include "sim/format.hpp"

namespace dredbox::sim {

std::string Digest::to_string() const { return strformat("%016llx", static_cast<unsigned long long>(state_)); }

std::uint64_t fnv1a(std::string_view bytes) { return Digest{}.update(bytes).value(); }

}  // namespace dredbox::sim
