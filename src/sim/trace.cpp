#include "sim/trace.hpp"

#include <stdexcept>

namespace dredbox::sim {

std::string to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::kOrchestration:
      return "orchestration";
    case TraceCategory::kHotplug:
      return "hotplug";
    case TraceCategory::kHypervisor:
      return "hypervisor";
    case TraceCategory::kFabric:
      return "fabric";
    case TraceCategory::kPower:
      return "power";
    case TraceCategory::kMigration:
      return "migration";
    case TraceCategory::kApplication:
      return "application";
  }
  return "<unknown category>";
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("Tracer: capacity must be positive");
}

void Tracer::record(Time when, TraceCategory category, std::string message) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    events_.erase(events_.begin());
    ++dropped_;
  }
  events_.push_back(TraceEvent{when, category, std::move(message)});
}

std::vector<TraceEvent> Tracer::filter(TraceCategory category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::string Tracer::to_string() const {
  std::string out;
  for (const auto& e : events_) {
    out += "[" + e.when.to_string() + "] " + dredbox::sim::to_string(e.category) + ": " +
           e.message + "\n";
  }
  return out;
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace dredbox::sim
