#include "sim/trace.hpp"

#include <stdexcept>

namespace dredbox::sim {

std::string to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::kOrchestration:
      return "orchestration";
    case TraceCategory::kHotplug:
      return "hotplug";
    case TraceCategory::kHypervisor:
      return "hypervisor";
    case TraceCategory::kFabric:
      return "fabric";
    case TraceCategory::kPower:
      return "power";
    case TraceCategory::kMigration:
      return "migration";
    case TraceCategory::kApplication:
      return "application";
  }
  return "<unknown category>";
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("Tracer: capacity must be positive");
}

void Tracer::push(TraceEvent event) {
  if (size_ < capacity_) {
    const std::size_t slot = (head_ + size_) % capacity_;
    if (slot < ring_.size()) {
      ring_[slot] = std::move(event);
    } else {
      ring_.push_back(std::move(event));
    }
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

void Tracer::record(Time when, TraceCategory category, std::string message) {
  confined_.assert_confined("Tracer::record");
  if (!enabled_) {
    ++dropped_while_disabled_;
    return;
  }
  push(TraceEvent{when, category, std::move(message), Time::zero(), false, {}});
}

void Tracer::record_span(Time begin, Time end, TraceCategory category, std::string name,
                         std::vector<std::pair<std::string, std::string>> args,
                         TraceContext ctx) {
  confined_.assert_confined("Tracer::record_span");
  if (!enabled_) {
    ++dropped_while_disabled_;
    return;
  }
  // end < begin is meaningless timing: clamp to an instant marker.
  const bool is_span = end >= begin;
  const Time duration = is_span ? end - begin : Time::zero();
  push(TraceEvent{begin, category, std::move(name), duration, is_span, std::move(args), ctx});
}

namespace {

/// splitmix64 step: a full-period, well-mixed 64-bit stream. Cheap enough
/// to mint per-op, and entirely separate from the simulation Rng so
/// enabling tracing never shifts a workload's random draws.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 is reserved for "untraced"
}

}  // namespace

void Tracer::seed_trace_ids(std::uint64_t seed) {
  confined_.assert_confined("Tracer::seed_trace_ids");
  // Pre-mix so seed 0 and seed 1 produce unrelated streams.
  id_state_ = seed ^ 0x64726564626f78ull;
}

TraceContext Tracer::begin_trace() {
  confined_.assert_confined("Tracer::begin_trace");
  if (!enabled_) return {};
  TraceContext ctx;
  ctx.trace_id = splitmix64(id_state_);
  ctx.span_id = splitmix64(id_state_);
  return ctx;
}

TraceContext Tracer::child_of(const TraceContext& parent) {
  confined_.assert_confined("Tracer::child_of");
  if (!enabled_ || !parent.valid()) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = splitmix64(id_state_);
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

const TraceEvent& Tracer::event(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("Tracer::event: index past the retained log");
  return ring_[(head_ + index) % capacity_];
}

std::vector<TraceEvent> Tracer::filter(TraceCategory category) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events()) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::string Tracer::to_string() const {
  std::string out;
  for (const TraceEvent& e : events()) {
    out += "[" + e.when.to_string() + "] " + dredbox::sim::to_string(e.category) + ": " +
           e.message;
    if (e.span && e.duration > Time::zero()) out += " (took " + e.duration.to_string() + ")";
    for (const auto& [key, value] : e.args) out += " " + key + "=" + value;
    out += "\n";
  }
  return out;
}

void Tracer::clear() {
  confined_.assert_confined("Tracer::clear");
  ring_.clear();
  head_ = 0;
  size_ = 0;
  dropped_while_disabled_ = 0;
  evicted_ = 0;
}

}  // namespace dredbox::sim
