#include "sim/component.hpp"

#include <array>
#include <atomic>
#include <string>

#include "sim/annotations.hpp"
#include "sim/contract.hpp"

namespace dredbox::sim {
namespace {

/// Hard ceiling on distinct component labels. The datapath's fixed
/// vocabulary is ~50 labels; 256 leaves generous headroom for tests and
/// future stages while keeping reverse lookup a flat array index.
constexpr std::size_t kMaxComponents = 256;

/// Every label the shipped datapath charges, interned at registry
/// construction so steady-state interning is a read-only scan and the
/// id assignment is deterministic (table order) regardless of which
/// subsystem touches the registry first.
constexpr std::string_view kKnownLabels[] = {
    // net/packet_network.cpp — the Fig. 8 pipeline stages.
    "TGL / NI injection",
    "on-brick switch (dCOMPUBRICK)",
    "on-brick switch (dMEMBRICK)",
    "serialization",
    "congestion penalty",
    "MAC/PHY (dCOMPUBRICK)",
    "MAC/PHY (dMEMBRICK)",
    "FEC encode/decode",
    "optical propagation",
    "electrical propagation",
    "loss retransmissions",
    "glue logic (dMEMBRICK)",
    "memory access",
    // memsys/remote_memory.cpp — the transaction execute path.
    "TGL lookup (RMST)",
    "circuit wait",
    "GTH serdes (TX)",
    "GTH serdes (RX)",
    "GTH serdes (return)",
    "memory controller wait",
    "retry backoff",
    "circuit re-provision",
    // orch/sdm_controller.cpp — scale-up / scale-down control plane.
    "SDM-C queueing",
    "SDM-C inspect+reserve",
    "switch ctl queueing",
    "switch programming",
    "brick wake-up",
    "Scale-up API relay",
    "agent RPC + glue config",
    "hotplug queueing (per brick)",
    "baremetal hotplug",
    "hypervisor handoff",
    "QEMU DIMM add + guest online",
    "guest shrink + hot-remove",
    "agent RPC",
    // orch/accel_manager.cpp — near-data acceleration phases.
    "bitstream transfer",
    "PCAP reconfiguration",
    "descriptor transfer",
    "near-data processing",
    "result transfer",
    "stream from dMEMBRICK",
    "data transfer to dCOMPUBRICK",
    "CPU processing",
    // orch/migration.cpp — VM/page migration phases.
    "pre-copy (local memory)",
    "stop-and-copy (residual)",
    "pause/resume",
    "re-point preparation (overlapped)",
    "glue-logic switchover",
    "balloon reclaim (donor)",
};

/// Append-only intern table. Writers (cold: unknown labels only) append
/// under `mu_` and publish with a release store of `count_`; readers scan
/// the first `count_` entries lock-free — each labels_[i] below count_ was
/// fully constructed before the release store that made it visible, so
/// the parallel sweep's charge shims never contend on the mutex for
/// labels that already exist.
class Registry {
 public:
  Registry() {
    for (const std::string_view label : kKnownLabels) intern(label);
  }

  ComponentId intern(std::string_view label) {
    if (const auto existing = find(label)) return *existing;
    MutexLock lock{mu_};
    // Re-scan under the lock: another thread may have interned `label`
    // between the optimistic lookup and lock acquisition.
    if (const auto existing = find(label)) return *existing;
    const std::size_t index = count_.load(std::memory_order_relaxed);
    DREDBOX_INVARIANT(index < kMaxComponents,
                      "component registry overflow: more than 256 distinct "
                      "breakdown labels interned — labels are meant to be a "
                      "small fixed vocabulary, not per-op data");
    labels_[index] = std::string{label};
    count_.store(index + 1, std::memory_order_release);
    return static_cast<ComponentId>(index);
  }

  std::optional<ComponentId> find(std::string_view label) const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (labels_[i] == label) return static_cast<ComponentId>(i);
    }
    return std::nullopt;
  }

  std::string_view label(ComponentId id) const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    DREDBOX_INVARIANT(id < n, "component_label: id was never interned");
    return labels_[id];
  }

  std::size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  Mutex mu_;
  std::array<std::string, kMaxComponents> labels_;
  std::atomic<std::size_t> count_{0};
};

Registry& registry() {
  // The label table is append-only and thread-safe (acquire/release
  // publish, mutex-guarded inserts): ids are stable for the process
  // lifetime, so no simulation result can leak across runs through it.
  // dredbox-lint: ignore[mutable-global] append-only interning table, process-wide by design
  static Registry instance;
  return instance;
}

}  // namespace

ComponentId component_id(std::string_view label) { return registry().intern(label); }

std::optional<ComponentId> component_id_if_interned(std::string_view label) {
  return registry().find(label);
}

std::string_view component_label(ComponentId id) { return registry().label(id); }

std::size_t component_count() { return registry().size(); }

}  // namespace dredbox::sim
