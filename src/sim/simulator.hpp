#pragma once

#include <functional>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dredbox::sim {

/// Top-level simulation context: an event queue plus the root random
/// source. Every stateful model in the repository takes a Simulator& and
/// schedules through it, so a whole-rack simulation shares one timeline.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Time now() const { return queue_.now(); }

  /// `label` (a string literal, optional) names the event type in the
  /// kernel self-profile; see EventQueue::schedule.
  EventId at(Time when, EventQueue::Action action, const char* label = nullptr) {
    return queue_.schedule(when, std::move(action), label);
  }

  EventId after(Time delay, EventQueue::Action action, const char* label = nullptr) {
    return queue_.schedule(queue_.now() + delay, std::move(action), label);
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs to quiescence; returns events dispatched.
  std::size_t run() { return queue_.run(); }

  /// Runs until `until`; returns events dispatched.
  std::size_t run_until(Time until) { return queue_.run_until(until); }

  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }

  /// Derives an independent child RNG stream (for per-component noise that
  /// must not perturb other components' draws).
  Rng fork_rng() { return rng_.fork(); }

  void reset(std::uint64_t seed) {
    queue_.reset();
    rng_ = Rng{seed};
  }

 private:
  EventQueue queue_;
  Rng rng_;
};

}  // namespace dredbox::sim
