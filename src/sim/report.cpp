#include "sim/report.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::sim {

TextTable::TextTable(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument("TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) { return strformat("%.*f", precision, v); }

std::string TextTable::sci(double v, int precision) { return strformat("%.*e", precision, v); }

std::string TextTable::pct(double fraction, int precision) {
  return strformat("%.*f%%", precision, fraction * 100.0);
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + emit_row(header_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

namespace {

std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string TextTable::to_csv() const {
  auto emit = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += csv_cell(row[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = emit(header_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

std::string ascii_bar(double value, double full_scale, std::size_t width) {
  if (full_scale <= 0) return "";
  double frac = value / full_scale;
  frac = std::clamp(frac, 0.0, 1.0);
  return std::string(static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5), '#');
}

bool maybe_write_csv(const std::string& name, const TextTable& table) {
  const char* dir = std::getenv("DREDBOX_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string{dir} + "/" + name + ".csv";
  std::ofstream out{path};
  if (!out) throw std::runtime_error("maybe_write_csv: cannot open " + path);
  out << table.to_csv();
  if (!out) throw std::runtime_error("maybe_write_csv: write to " + path + " failed");
  return true;
}

}  // namespace dredbox::sim
