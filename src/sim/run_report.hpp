#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"
#include "sim/timeseries.hpp"
#include "sim/trace.hpp"

namespace dredbox::sim {

/// Schema tag of the run-report artifact this builder emits. Versioned so
/// downstream tooling (scripts/bench_reduce.py validate) can evolve the
/// contract without guessing; bump to /v2 on any breaking field change.
inline constexpr const char* kReportSchema = "dredbox-report/v1";

/// Environment variable naming the file the report JSON is written to
/// (the DREDBOX_TRACE_FILE convention; unset means no file).
inline constexpr const char* kReportFileEnv = "DREDBOX_REPORT_FILE";

/// Builds the standardized per-run artifact: one JSON document capturing
/// what ran (config digest, seed, fault plan), what it produced
/// (determinism digest, metric finals, latency quantiles, time series)
/// and why it behaved that way (top-N slowest causal traces with their
/// span trees, optional event-kernel profile).
///
/// Everything except the kernel profile is a pure function of simulation
/// state, so same-seed runs render byte-identical documents; host-time
/// profile rows are only included when explicitly added (callers gate on
/// DREDBOX_PROFILE) and are excluded from any determinism comparison.
class RunReport {
 public:
  RunReport& tag(std::string value);
  RunReport& seed(std::uint64_t value);
  RunReport& config_digest(std::uint64_t value);
  RunReport& determinism_digest(std::uint64_t value);
  /// The fault-plan spec string; empty means a healthy run.
  RunReport& fault_plan(std::string spec);
  RunReport& duration(Time simulated);

  /// Free-form scalar result ("offered", "completed", ...). The value is
  /// rendered as a JSON number; insertion order is preserved.
  RunReport& note(const std::string& key, std::uint64_t value);
  RunReport& note(const std::string& key, double value);

  /// Metric finals: one row per instrument, name-sorted; histograms add
  /// count/mean/min/max and p50/p95/p99.
  RunReport& metrics(const metrics::MetricsRegistry& registry);

  /// The sampled series, rendered as [t_us, value] pairs per series.
  RunReport& timeseries(const TimeSeriesSet& set, Time period);

  /// Reconstructs span trees from the tracer's causal contexts and embeds
  /// the top_n slowest root spans (duration desc; ties by begin then
  /// span id). Also records the tracer's truncation accounting and
  /// whether tracing was enabled.
  RunReport& traces(const Tracer& tracer, std::size_t top_n = 5);

  /// Embeds the event-kernel self-profile (label-sorted). Host-time
  /// figures make the document non-reproducible — callers add this only
  /// when DREDBOX_PROFILE is set.
  RunReport& kernel_profile(const EventQueue& queue);

  /// The complete document (pretty-printed, stable key order).
  std::string to_json() const;

  /// Writes to_json() to $DREDBOX_REPORT_FILE when set; returns whether a
  /// file was produced. Throws on I/O failure.
  bool maybe_write() const;

 private:
  std::string tag_ = "run";
  std::uint64_t seed_ = 0;
  std::uint64_t config_digest_ = 0;
  std::uint64_t determinism_digest_ = 0;
  std::string fault_plan_;
  Time duration_ = Time::zero();
  std::vector<std::pair<std::string, std::string>> notes_;  // key -> rendered number
  std::string metrics_json_;                                // rendered array, "" = absent
  std::string timeseries_json_;                             // rendered object, "" = absent
  std::string traces_json_;                                 // rendered array, "" = absent
  std::string tracer_json_;                                 // rendered object, "" = absent
  std::string profile_json_;                                // rendered array, "" = absent
  bool tracing_ = false;
};

}  // namespace dredbox::sim
