#include "sim/retry.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/format.hpp"

namespace dredbox::sim {

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be at least 1");
  }
  if (initial_backoff < Time::zero()) {
    throw std::invalid_argument("RetryPolicy: negative initial backoff");
  }
  if (multiplier < 1.0) {
    throw std::invalid_argument("RetryPolicy: multiplier below 1 would shrink delays");
  }
  if (max_backoff < initial_backoff) {
    throw std::invalid_argument("RetryPolicy: max_backoff below initial_backoff");
  }
  if (timeout <= Time::zero()) {
    throw std::invalid_argument("RetryPolicy: timeout must be positive");
  }
  if (max_backoff.is_infinite() || timeout.is_infinite()) {
    throw std::invalid_argument(
        "RetryPolicy: max_backoff and timeout must be finite (deadline and "
        "backoff arithmetic would overflow)");
  }
}

std::string RetryPolicy::to_string() const {
  return strformat("retry(max_attempts=%zu, initial=%s, x%.2f, cap=%s, timeout=%s)",
                   max_attempts, initial_backoff.to_string().c_str(), multiplier,
                   max_backoff.to_string().c_str(), timeout.to_string().c_str());
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy, Time first_issue)
    : policy_{policy},
      deadline_{first_issue + policy.timeout},
      next_backoff_{policy.initial_backoff} {
  policy.validate();
}

std::optional<Time> BackoffSchedule::next(Time now) {
  if (exhausted_) return std::nullopt;
  if (attempts_ >= policy_.max_attempts || expired(now)) {
    exhausted_ = true;
    return std::nullopt;
  }
  const Time delay = next_backoff_;
  // The timeout always fires: a retry that would start at or past the
  // deadline is never issued, even when attempts remain.
  if (now + delay >= deadline_) {
    exhausted_ = true;
    return std::nullopt;
  }
  ++attempts_;
  // Saturating growth: once the cap is reached the delay stays there. The
  // candidate is compared in double before converting back to ticks, so a
  // large multiplier (or many attempts) can never overflow Time's integer
  // range and wrap a delay negative.
  if (next_backoff_ >= policy_.max_backoff) {
    next_backoff_ = policy_.max_backoff;
  } else {
    const double grown = static_cast<double>(next_backoff_.ticks()) * policy_.multiplier;
    next_backoff_ = grown >= static_cast<double>(policy_.max_backoff.ticks())
                        ? policy_.max_backoff
                        : scale(next_backoff_, policy_.multiplier);
  }
  return delay;
}

}  // namespace dredbox::sim
