#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/contract.hpp"

namespace dredbox::sim {

/// Fixed-block arena/pool allocator with stable addresses, dense slot
/// indices and per-slot generation counters.
///
/// The event kernel allocates one node per scheduled event; a general-
/// purpose heap charges a malloc/free pair plus cache-cold metadata for
/// each, which BENCH_pr4-pr7 show dominating the ~250 ns/event queue
/// overhead. This pool replaces that with a freelist pop/push over
/// chunk-contiguous blocks. It is deliberately generic — transactions and
/// packets can pool through it the same way (ROADMAP item 1).
///
/// Guarantees:
///   * O(1) create/destroy. A freed slot is always reused before the
///     arena grows (LIFO freelist; tested by the arena property suite).
///   * Stable addresses: blocks live in fixed chunks that never move, so
///     raw pointers into the arena survive growth. The arena is
///     consequently movable but not copyable.
///   * Alignment: every block satisfies alignof(T), including the first
///     block of every chunk (tested with over-aligned types).
///   * Dense slot indices: create() returns (pointer, slot); get(slot)
///     is two indexed loads. Callers can pack the slot into external
///     handles (the event queue packs slot+generation into EventId).
///   * ABA protection: each slot carries a generation, bumped on every
///     destroy (wrapping past 0, which is never a valid generation), so
///     a stale handle to a reused slot can be rejected.
///   * No leaks: clear() and the destructor run the destructor of every
///     live object (the ASan job covers this via the arena tests).
template <typename T>
class IndexedArena {
 public:
  /// Blocks added per growth step. Power of two so slot->chunk mapping
  /// is a shift/mask rather than a division.
  static constexpr std::size_t kBlocksPerChunk = 1024;

  IndexedArena() = default;
  ~IndexedArena() { clear(); }

  IndexedArena(const IndexedArena&) = delete;
  IndexedArena& operator=(const IndexedArena&) = delete;
  IndexedArena(IndexedArena&&) noexcept = default;
  IndexedArena& operator=(IndexedArena&&) noexcept = default;

  /// Constructs a T in a pooled block. Returns the object plus its slot
  /// index. Reuses the most recently freed block; grows by one chunk only
  /// when every block is live.
  template <typename... Args>
  std::pair<T*, std::uint32_t> create(Args&&... args) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (bump_ == capacity()) grow();
      slot = bump_++;
    }
    Block& block = block_ref(slot);
    // Placement-new into the reserved block: the pool owns the storage
    // and clear()/~IndexedArena run the destructor of every live object,
    // so ownership never leaves the arena.
    // dredbox-lint: ignore[raw-new]
    T* object = ::new (static_cast<void*>(block.storage)) T(std::forward<Args>(args)...);
    block.live = true;
    ++live_;
    return {object, slot};
  }

  /// Destroys the object in `slot` and recycles the block. The slot's
  /// generation is bumped so handles minted before this destroy can be
  /// told apart from handles to the slot's next tenant.
  void destroy(std::uint32_t slot) {
    Block& block = block_ref(slot);
    DREDBOX_INVARIANT(block.live, "IndexedArena::destroy of a dead slot");
    object_of(block)->~T();
    block.live = false;
    block.generation = block.generation == UINT32_MAX ? 1 : block.generation + 1;
    free_.push_back(slot);
    --live_;
  }

  /// The live object in `slot`, or nullptr when the slot is out of range
  /// or currently free.
  T* get(std::uint32_t slot) {
    if (slot >= bump_) return nullptr;
    Block& block = block_ref(slot);
    return block.live ? object_of(block) : nullptr;
  }
  const T* get(std::uint32_t slot) const {
    return const_cast<IndexedArena*>(this)->get(slot);
  }

  /// Current generation of `slot`; 0 (never a valid generation) when the
  /// slot has not been allocated yet.
  std::uint32_t generation(std::uint32_t slot) const {
    return slot < bump_ ? block_ref(slot).generation : 0;
  }

  /// Destroys every live object and recycles all blocks. Chunks are kept
  /// for reuse; generations keep counting so pre-clear handles stay dead.
  void clear() {
    for (std::uint32_t slot = 0; slot < bump_; ++slot) {
      if (block_ref(slot).live) destroy(slot);
    }
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return chunks_.size() * kBlocksPerChunk; }
  std::size_t chunks() const { return chunks_.size(); }
  /// Blocks immediately reusable without growing (freelist + never-used).
  std::size_t free_blocks() const { return capacity() - live_; }

  /// Deep audit: freelist is duplicate-free, covers exactly the dead
  /// initialized slots, every block is correctly aligned and every
  /// generation is non-zero. O(capacity); wired into the arena tests and
  /// the event queue's DREDBOX_AUDIT=ON invariant sweep.
  void check_invariants() const {
    DREDBOX_INVARIANT(bump_ <= capacity(), "IndexedArena: bump cursor beyond capacity");
    DREDBOX_INVARIANT(free_.size() + live_ == bump_,
                      "IndexedArena: freelist size " + std::to_string(free_.size()) +
                          " + live " + std::to_string(live_) + " != initialized " +
                          std::to_string(bump_));
    std::vector<bool> freed(bump_, false);
    for (std::uint32_t slot : free_) {
      DREDBOX_INVARIANT(slot < bump_, "IndexedArena: freelist entry beyond bump cursor");
      DREDBOX_INVARIANT(!freed[slot], "IndexedArena: slot appears twice in the freelist");
      DREDBOX_INVARIANT(!block_ref(slot).live, "IndexedArena: live slot in the freelist");
      freed[slot] = true;
    }
    std::size_t live_seen = 0;
    for (std::uint32_t slot = 0; slot < bump_; ++slot) {
      const Block& block = block_ref(slot);
      DREDBOX_INVARIANT(block.generation != 0, "IndexedArena: generation 0 is reserved");
      DREDBOX_INVARIANT(
          reinterpret_cast<std::uintptr_t>(block.storage) % alignof(T) == 0,
          "IndexedArena: misaligned block");
      if (block.live) ++live_seen;
    }
    DREDBOX_INVARIANT(live_seen == live_, "IndexedArena: live count disagrees with blocks");
  }

 private:
  struct Block {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 1;
    bool live = false;
  };

  static T* object_of(Block& block) {
    return std::launder(reinterpret_cast<T*>(block.storage));
  }

  Block& block_ref(std::uint32_t slot) {
    return chunks_[slot / kBlocksPerChunk][slot % kBlocksPerChunk];
  }
  const Block& block_ref(std::uint32_t slot) const {
    return chunks_[slot / kBlocksPerChunk][slot % kBlocksPerChunk];
  }

  void grow() {
    // Default-initialization, not value-initialization: the Block ctor
    // (via its member initializers) still sets generation/live, but the
    // payload bytes stay uninitialized instead of being zeroed — growth
    // would otherwise memset kBlocksPerChunk * sizeof(T) per chunk.
    chunks_.push_back(std::make_unique_for_overwrite<Block[]>(kBlocksPerChunk));
  }

  /// Chunks of blocks; never shrunk, never relocated (the vector of
  /// unique_ptrs may grow, the chunks themselves stay put).
  std::vector<std::unique_ptr<Block[]>> chunks_;
  /// LIFO freelist of recycled slot indices.
  std::vector<std::uint32_t> free_;
  /// Slots [0, bump_) have been handed out at least once.
  std::uint32_t bump_ = 0;
  std::size_t live_ = 0;
};

}  // namespace dredbox::sim
