#include "sim/timeseries.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "sim/format.hpp"

namespace dredbox::sim {

std::string to_string(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
  }
  return "<unknown kind>";
}

TimeSeries::TimeSeries(std::string name, SeriesKind kind, std::size_t capacity)
    : name_{std::move(name)}, kind_{kind}, capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("TimeSeries: capacity must be positive");
}

void TimeSeries::append(Time when, double value) {
  if (size_ < capacity_) {
    const std::size_t slot = (head_ + size_) % capacity_;
    if (slot < ring_.size()) {
      ring_[slot] = SeriesPoint{when, value};
    } else {
      ring_.push_back(SeriesPoint{when, value});
    }
    ++size_;
    return;
  }
  ring_[head_] = SeriesPoint{when, value};
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

const SeriesPoint& TimeSeries::point(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("TimeSeries::point: index past retained window");
  return ring_[(head_ + index) % capacity_];
}

TimeSeries& TimeSeriesSet::series(const std::string& name, SeriesKind kind,
                                  std::size_t capacity) {
  auto it = series_.find(name);
  if (it != series_.end()) {
    if (it->second.kind() != kind) {
      throw std::logic_error("TimeSeriesSet: series '" + name + "' already exists as a " +
                             to_string(it->second.kind()) + ", requested " + to_string(kind));
    }
    return it->second;
  }
  return series_.emplace(name, TimeSeries{name, kind, capacity}).first->second;
}

const TimeSeries* TimeSeriesSet::find(const std::string& name) const {
  auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

std::vector<std::string> TimeSeriesSet::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

namespace {

/// "memsys.read.latency_ns.p99" -> "dredbox_memsys_read_latency_ns_p99".
std::string openmetrics_name(const std::string& dotted) {
  std::string out = "dredbox_";
  for (char c : dotted) out += c == '.' ? '_' : c;
  return out;
}

std::string openmetrics_value(double v) { return strformat("%.9g", v); }

/// Sim-clock timestamp in seconds (OpenMetrics timestamps are seconds).
std::string openmetrics_ts(Time t) { return strformat("%.9f", t.as_sec()); }

}  // namespace

std::string TimeSeriesSet::to_openmetrics() const {
  std::string out;
  for (const auto& [dotted, s] : series_) {
    const std::string name = openmetrics_name(dotted);
    out += "# TYPE " + name + " " + to_string(s.kind()) + "\n";
    // OpenMetrics counters expose their sample under `_total`.
    const std::string sample_name =
        s.kind() == SeriesKind::kCounter ? name + "_total" : name;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const SeriesPoint& p = s.point(i);
      out += sample_name + " " + openmetrics_value(p.value) + " " + openmetrics_ts(p.when) +
             "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

TextTable TimeSeriesSet::to_table() const {
  TextTable table{{"series", "kind", "t_us", "value"}};
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const SeriesPoint& p = s.point(i);
      table.add_row({name, to_string(s.kind()), strformat("%.3f", p.when.as_us()),
                     openmetrics_value(p.value)});
    }
  }
  return table;
}

bool maybe_write_openmetrics(const TimeSeriesSet& set) {
  const char* path = std::getenv(kOpenMetricsFileEnv);
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_openmetrics: cannot open "} + path);
  }
  out << set.to_openmetrics();
  if (!out) {
    throw std::runtime_error(std::string{"maybe_write_openmetrics: write to "} + path +
                             " failed");
  }
  return true;
}

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, const metrics::MetricsRegistry& registry,
                                     Time period, std::size_t capacity_per_series)
    : sim_{sim}, registry_{registry}, period_{period}, capacity_{capacity_per_series} {
  if (period <= Time::zero()) {
    throw std::invalid_argument("TimeSeriesSampler: period must be positive");
  }
}

void TimeSeriesSampler::start(Time end) {
  end_ = end;
  const Time first = sim_.now() + period_;
  if (first <= end_) {
    sim_.at(first, [this] { tick(); }, "sim.timeseries.tick");
  }
}

void TimeSeriesSampler::sample_now() {
  const Time now = sim_.now();
  for (const std::string& name : registry_.names()) {
    if (const auto* counter = registry_.find_counter(name)) {
      series_.series(name, SeriesKind::kCounter, capacity_)
          .append(now, static_cast<double>(counter->value()));
    } else if (const auto* gauge = registry_.find_gauge(name)) {
      series_.series(name, SeriesKind::kGauge, capacity_).append(now, gauge->value());
    } else if (const auto* histogram = registry_.find_histogram(name)) {
      auto put = [&](const char* suffix, double value) {
        series_.series(name + "." + suffix, SeriesKind::kGauge, capacity_).append(now, value);
      };
      put("count", static_cast<double>(histogram->count()));
      put("mean", histogram->count() > 0 ? histogram->mean() : 0.0);
      put("p50", histogram->quantile(0.50));
      put("p99", histogram->quantile(0.99));
      put("max", histogram->count() > 0 ? histogram->max() : 0.0);
    }
  }
  ++ticks_;
}

void TimeSeriesSampler::tick() {
  sample_now();
  const Time next = sim_.now() + period_;
  if (next <= end_) {
    sim_.at(next, [this] { tick(); }, "sim.timeseries.tick");
  }
}

}  // namespace dredbox::sim
