#include "os/baremetal_os.hpp"

namespace dredbox::os {

BareMetalOs::BareMetalOs(const hw::ComputeBrick& brick, std::uint64_t hotplug_block_bytes,
                         const HotplugTiming& timing)
    : brick_id_{brick.id()} {
  MemoryRegion boot_ram;
  boot_ram.base = 0;
  boot_ram.size = brick.local_memory_bytes();
  boot_ram.type = RegionType::kLocalRam;
  boot_ram.online = true;
  map_.add_region(boot_ram);
  hotplug_ = std::make_unique<MemoryHotplug>(map_, hotplug_block_bytes, timing);
}

sim::Time BareMetalOs::attach_remote_memory(std::uint64_t base, std::uint64_t size) {
  return hotplug_->hot_add(base, size);
}

sim::Time BareMetalOs::detach_remote_memory(std::uint64_t base, std::uint64_t size) {
  return hotplug_->hot_remove(base, size);
}

}  // namespace dredbox::os
