#pragma once

#include <cstdint>
#include <memory>

#include "hw/compute_brick.hpp"
#include "os/hotplug.hpp"
#include "os/memory_map.hpp"

namespace dredbox::os {

/// The baremetal OS instance running on one dCOMPUBRICK (Section IV-A).
/// It boots with the brick's local DDR in the physical map and exposes the
/// hotplug entry points the SDM agent calls after a physical attach: the
/// kernel attaches new page frames by expanding the page table pool at
/// runtime, then hands the memory to the hypervisor.
class BareMetalOs {
 public:
  explicit BareMetalOs(const hw::ComputeBrick& brick,
                       std::uint64_t hotplug_block_bytes = MemoryHotplug::kDefaultBlockBytes,
                       const HotplugTiming& timing = {});

  hw::BrickId brick() const { return brick_id_; }

  PhysicalMemoryMap& memory_map() { return map_; }
  const PhysicalMemoryMap& memory_map() const { return map_; }

  MemoryHotplug& hotplug() { return *hotplug_; }
  const MemoryHotplug& hotplug() const { return *hotplug_; }

  /// Called by the SDM agent once the glue logic is configured: onlines
  /// `size` bytes at the brick-physical `base` (the RMST window base).
  /// Returns the kernel latency of the hot-add.
  sim::Time attach_remote_memory(std::uint64_t base, std::uint64_t size);

  /// Reverse path: offline + remove the block range before detaching.
  sim::Time detach_remote_memory(std::uint64_t base, std::uint64_t size);

  std::uint64_t local_bytes() const { return map_.total_bytes(RegionType::kLocalRam); }
  std::uint64_t remote_bytes() const { return map_.total_bytes(RegionType::kRemoteRam); }
  std::uint64_t total_ram_bytes() const { return local_bytes() + remote_bytes(); }

 private:
  hw::BrickId brick_id_;
  PhysicalMemoryMap map_;
  std::unique_ptr<MemoryHotplug> hotplug_;
};

}  // namespace dredbox::os
