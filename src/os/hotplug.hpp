#pragma once

#include <cstdint>

#include "os/memory_map.hpp"
#include "sim/time.hpp"

namespace dredbox::os {

/// Timing model for the kernel-side hotplug work. Hot-adding a block means
/// allocating struct-page metadata (expanding the page table pool),
/// initializing the memmap, and onlining the pages; the cost scales with
/// the block size. Figures are in the range measured for arm64 memory
/// hotplug [12] on embedded-class cores.
struct HotplugTiming {
  sim::Time fixed_cost = sim::Time::ms(8);     // ACPI/notifier + sysfs plumbing
  sim::Time per_gib_cost = sim::Time::ms(110); // memmap init + page onlining
  sim::Time remove_fixed_cost = sim::Time::ms(12);
  sim::Time remove_per_gib_cost = sim::Time::ms(60);
};

/// Baremetal-OS memory hotplug (Section IV-A): the kernel attaches new
/// physical page frames at runtime, after the physical attachment of
/// remote memory completes. Blocks are section-aligned, mirroring the
/// kernel's memory-block granularity.
class MemoryHotplug {
 public:
  static constexpr std::uint64_t kDefaultBlockBytes = 1ull << 30;  // 1 GiB blocks

  MemoryHotplug(PhysicalMemoryMap& map, std::uint64_t block_bytes = kDefaultBlockBytes,
                const HotplugTiming& timing = {});

  std::uint64_t block_bytes() const { return block_bytes_; }

  /// Hot-adds `size` bytes of remote memory at `base`. Both must be
  /// block-aligned. Returns the kernel-side latency of the operation.
  /// Throws on misalignment or overlap.
  sim::Time hot_add(std::uint64_t base, std::uint64_t size);

  /// Hot-removes a previously added block range. Returns the latency.
  /// Throws when the range is not a hot-added online region.
  sim::Time hot_remove(std::uint64_t base, std::uint64_t size);

  std::uint64_t hot_added_bytes() const;
  std::size_t operations() const { return operations_; }

  const HotplugTiming& timing() const { return timing_; }

 private:
  PhysicalMemoryMap& map_;
  std::uint64_t block_bytes_;
  HotplugTiming timing_;
  std::size_t operations_ = 0;

  void check_aligned(std::uint64_t v, const char* what) const;
  sim::Time scaled(sim::Time fixed, sim::Time per_gib, std::uint64_t size) const;
};

}  // namespace dredbox::os
