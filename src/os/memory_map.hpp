#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dredbox::os {

enum class RegionType : std::uint8_t {
  kLocalRam,   // brick-local DDR present at boot
  kRemoteRam,  // disaggregated memory attached at runtime
  kReserved,   // firmware/MMIO carve-outs
};

std::string to_string(RegionType type);

struct MemoryRegion {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  RegionType type = RegionType::kLocalRam;
  bool online = false;

  std::uint64_t end() const { return base + size; }
  bool contains(std::uint64_t addr) const { return addr >= base && addr - base < size; }
};

/// The kernel's view of physical memory on one dCOMPUBRICK. Regions are
/// kept sorted and non-overlapping; hotplug inserts and removes RemoteRam
/// regions at runtime.
class PhysicalMemoryMap {
 public:
  /// Adds a region; throws on overlap with an existing region.
  void add_region(const MemoryRegion& region);

  /// Removes the region starting exactly at `base`; returns false when no
  /// region starts there.
  bool remove_region(std::uint64_t base);

  std::optional<MemoryRegion> region_at(std::uint64_t addr) const;
  const std::vector<MemoryRegion>& regions() const { return regions_; }

  std::uint64_t total_bytes(RegionType type) const;
  std::uint64_t online_bytes() const;

  void set_online(std::uint64_t base, bool online);

 private:
  std::vector<MemoryRegion> regions_;  // sorted by base
};

}  // namespace dredbox::os
