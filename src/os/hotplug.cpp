#include "os/hotplug.hpp"

#include <stdexcept>

namespace dredbox::os {

MemoryHotplug::MemoryHotplug(PhysicalMemoryMap& map, std::uint64_t block_bytes,
                             const HotplugTiming& timing)
    : map_{map}, block_bytes_{block_bytes}, timing_{timing} {
  if (block_bytes == 0 || (block_bytes & (block_bytes - 1)) != 0) {
    throw std::invalid_argument("MemoryHotplug: block size must be a power of two");
  }
}

void MemoryHotplug::check_aligned(std::uint64_t v, const char* what) const {
  if (v % block_bytes_ != 0) {
    throw std::invalid_argument(std::string{"MemoryHotplug: "} + what +
                                " not aligned to the memory-block size");
  }
}

sim::Time MemoryHotplug::scaled(sim::Time fixed, sim::Time per_gib, std::uint64_t size) const {
  const double gib = static_cast<double>(size) / static_cast<double>(1ull << 30);
  return fixed + sim::scale(per_gib, gib);
}

sim::Time MemoryHotplug::hot_add(std::uint64_t base, std::uint64_t size) {
  check_aligned(base, "base");
  check_aligned(size, "size");
  if (size == 0) throw std::invalid_argument("MemoryHotplug::hot_add: zero size");

  MemoryRegion region;
  region.base = base;
  region.size = size;
  region.type = RegionType::kRemoteRam;
  region.online = true;
  map_.add_region(region);  // throws on overlap
  ++operations_;
  return scaled(timing_.fixed_cost, timing_.per_gib_cost, size);
}

sim::Time MemoryHotplug::hot_remove(std::uint64_t base, std::uint64_t size) {
  check_aligned(base, "base");
  check_aligned(size, "size");
  auto region = map_.region_at(base);
  if (!region || region->base != base || region->size != size ||
      region->type != RegionType::kRemoteRam) {
    throw std::logic_error("MemoryHotplug::hot_remove: range is not a hot-added region");
  }
  map_.remove_region(base);
  ++operations_;
  return scaled(timing_.remove_fixed_cost, timing_.remove_per_gib_cost, size);
}

std::uint64_t MemoryHotplug::hot_added_bytes() const {
  return map_.total_bytes(RegionType::kRemoteRam);
}

}  // namespace dredbox::os
