#include "os/memory_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace dredbox::os {

std::string to_string(RegionType type) {
  switch (type) {
    case RegionType::kLocalRam:
      return "local-ram";
    case RegionType::kRemoteRam:
      return "remote-ram";
    case RegionType::kReserved:
      return "reserved";
  }
  return "<unknown region type>";
}

void PhysicalMemoryMap::add_region(const MemoryRegion& region) {
  if (region.size == 0) throw std::invalid_argument("add_region: zero-sized region");
  if (region.base + region.size < region.base) {
    throw std::invalid_argument("add_region: region wraps the address space");
  }
  for (const auto& r : regions_) {
    const bool disjoint = region.end() <= r.base || r.end() <= region.base;
    if (!disjoint) {
      throw std::logic_error("add_region: overlaps existing region at 0x" +
                             std::to_string(r.base));
    }
  }
  regions_.push_back(region);
  std::sort(regions_.begin(), regions_.end(),
            [](const MemoryRegion& a, const MemoryRegion& b) { return a.base < b.base; });
}

bool PhysicalMemoryMap::remove_region(std::uint64_t base) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&](const MemoryRegion& r) { return r.base == base; });
  if (it == regions_.end()) return false;
  regions_.erase(it);
  return true;
}

std::optional<MemoryRegion> PhysicalMemoryMap::region_at(std::uint64_t addr) const {
  for (const auto& r : regions_) {
    if (r.contains(addr)) return r;
  }
  return std::nullopt;
}

std::uint64_t PhysicalMemoryMap::total_bytes(RegionType type) const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) {
    if (r.type == type) total += r.size;
  }
  return total;
}

std::uint64_t PhysicalMemoryMap::online_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) {
    if (r.online) total += r.size;
  }
  return total;
}

void PhysicalMemoryMap::set_online(std::uint64_t base, bool online) {
  for (auto& r : regions_) {
    if (r.base == base) {
      r.online = online;
      return;
    }
  }
  throw std::out_of_range("set_online: no region starts at 0x" + std::to_string(base));
}

}  // namespace dredbox::os
