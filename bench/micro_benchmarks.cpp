// Google-benchmark microbenchmarks for the hot paths of the simulation
// substrate itself (these measure the *implementation*, not the modelled
// hardware): RMST associative lookup, event-queue throughput, segment
// allocator churn, packet-path evaluation, and TCO scheduling throughput.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/datacenter.hpp"
#include "hw/rmst.hpp"
#include "memsys/dma.hpp"
#include "sim/breakdown.hpp"
#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"
#include "reference_event_queue.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tco/conventional_dc.hpp"
#include "tco/disaggregated_dc.hpp"
#include "tco/workload.hpp"
#include "workload/engine.hpp"

// Process-wide heap-allocation counter, so the telemetry benches can
// prove the disabled-tracing hot path allocation-free rather than assert
// it. This binary is standalone, so replacing global new/delete here
// cannot leak into the library or tests.
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dredbox;

std::uint64_t heap_allocs() { return g_heap_allocs.load(std::memory_order_relaxed); }

void BM_RmstLookup(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  hw::Rmst rmst{entries};
  for (std::size_t i = 0; i < entries; ++i) {
    hw::RmstEntry e;
    e.segment = hw::SegmentId{static_cast<std::uint32_t>(i + 1)};
    e.base = (1ull << 40) + (static_cast<std::uint64_t>(i) << 30);
    e.size = 1ull << 30;
    e.dest_brick = hw::BrickId{1};
    rmst.insert(e);
  }
  std::uint64_t addr = (1ull << 40) + (entries / 2 << 30) + 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmst.lookup(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RmstLookup)->Arg(4)->Arg(16)->Arg(32);

// Same table, but every lookup targets a different segment than the last,
// defeating the one-entry MRU cache: this measures the base-sorted
// interval index alone (the worst case for clustered remote traffic).
void BM_RmstLookupStrided(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  hw::Rmst rmst{entries};
  std::vector<std::uint64_t> addrs;
  for (std::size_t i = 0; i < entries; ++i) {
    hw::RmstEntry e;
    e.segment = hw::SegmentId{static_cast<std::uint32_t>(i + 1)};
    e.base = (1ull << 40) + (static_cast<std::uint64_t>(i) << 30);
    e.size = 1ull << 30;
    e.dest_brick = hw::BrickId{1};
    rmst.insert(e);
    addrs.push_back(e.base + 64);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmst.find(addrs[i]));
    i = (i + 1) % addrs.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RmstLookupStrided)->Arg(4)->Arg(16)->Arg(32);

// Address below every window: the miss path (MRU miss + one index probe).
void BM_RmstLookupMiss(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  hw::Rmst rmst{entries};
  for (std::size_t i = 0; i < entries; ++i) {
    hw::RmstEntry e;
    e.segment = hw::SegmentId{static_cast<std::uint32_t>(i + 1)};
    e.base = (1ull << 40) + (static_cast<std::uint64_t>(i) << 30);
    e.size = 1ull << 30;
    e.dest_brick = hw::BrickId{1};
    rmst.insert(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmst.find(0x1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RmstLookupMiss)->Arg(32);

// Breakdown::charge with literal labels: every transaction in the datapath
// charges several components, so this path must not allocate per call.
void BM_BreakdownCharge(benchmark::State& state) {
  sim::Breakdown breakdown;
  breakdown.charge("serialization", sim::Time::ns(1));
  breakdown.charge("optical propagation", sim::Time::ns(1));
  breakdown.charge("MAC/PHY (dCOMPUBRICK)", sim::Time::ns(1));
  breakdown.charge("MAC/PHY (dMEMBRICK)", sim::Time::ns(1));
  for (auto _ : state) {
    breakdown.charge("MAC/PHY (dMEMBRICK)", sim::Time::ns(1));
    benchmark::DoNotOptimize(breakdown);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BreakdownCharge);

// Repetition-minimum aggregate for the queue benches: this host is shared,
// so per-repetition means carry neighbor steal time (observed up to ~2x).
// The min across repetitions approximates the contention-free cost and is
// the statistic the old-vs-new kernel comparison quotes; bench_reduce.py
// records it alongside the median.
double stat_min(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.schedule(sim::Time::ns((i * 7919) % 100000), [] {});
    }
    benchmark::DoNotOptimize(q.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
// Many short repetitions rather than the global default: neighbor-steal
// bursts on this host last seconds, so a 0.5 s repetition mean can be
// inflated end to end. 25 x 50 ms repetitions give the min aggregate a
// real chance of landing inside clean windows (the median still reflects
// typical load).
BENCHMARK(BM_EventQueueScheduleDispatch)
    ->Arg(100)
    ->Arg(10000)
    ->MinTime(0.05)
    ->Repetitions(25)
    ->ComputeStatistics("min", stat_min);

// The retired binary-heap kernel (tests/sim/reference_event_queue.hpp)
// under the identical load, in the same process. The in-binary ratio
// BM_ReferenceQueueScheduleDispatch / BM_EventQueueScheduleDispatch is the
// calendar-queue speedup with host-load noise cancelled out — both benches
// see the same machine conditions, unlike cross-run comparisons against a
// checked-in BENCH_pr7 number recorded under different load.
void BM_ReferenceQueueScheduleDispatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::ReferenceEventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.schedule(sim::Time::ns((i * 7919) % 100000), [] {});
    }
    benchmark::DoNotOptimize(q.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ReferenceQueueScheduleDispatch)
    ->Arg(100)
    ->Arg(10000)
    ->MinTime(0.05)
    ->Repetitions(25)
    ->ComputeStatistics("min", stat_min);

// The event kernel's node pool in isolation: steady-state create/destroy
// (freelist pop/push, no growth) over a working set that spans several
// chunks. Complements BM_EventQueueScheduleDispatch by separating allocator
// cost from calendar bookkeeping.
void BM_ArenaAllocFree(benchmark::State& state) {
  struct NodeSized {
    std::uint64_t payload[10];  // ~the event node footprint
  };
  sim::IndexedArena<NodeSized> arena;
  constexpr int kWorkingSet = 1024;
  std::vector<std::uint32_t> slots;
  slots.reserve(kWorkingSet);
  for (int i = 0; i < kWorkingSet; ++i) slots.push_back(arena.create().second);
  int cursor = 0;
  for (auto _ : state) {
    arena.destroy(slots[static_cast<std::size_t>(cursor)]);
    slots[static_cast<std::size_t>(cursor)] = arena.create().second;
    benchmark::DoNotOptimize(slots.data());
    cursor = (cursor + 1) % kWorkingSet;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaAllocFree);

// Same schedule/dispatch load with the schedule auditor's batch path armed
// (kIdentity = collect + FIFO dispatch, no reordering). Compare against
// BM_EventQueueScheduleDispatch: the gap is the price of a perturbed audit
// run, and the *absence* of movement in BM_EventQueueScheduleDispatch
// across PRs pins the auditor-off hot path at zero added cost (the armed
// check is one branch).
void BM_EventQueuePerturbedDispatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    sim::SchedulePerturbation perturbation;
    perturbation.mode = sim::SchedulePerturbation::Mode::kIdentity;
    q.set_perturbation(perturbation);
    for (int i = 0; i < batch; ++i) {
      // Four-way timestamp ties so batches actually form.
      q.schedule(sim::Time::ns(((i / 4) * 7919) % 100000), [] {});
    }
    benchmark::DoNotOptimize(q.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePerturbedDispatch)
    ->Arg(100)
    ->Arg(10000)
    ->MinTime(0.05)
    ->Repetitions(25)
    ->ComputeStatistics("min", stat_min);

void BM_MemoryBrickAllocRelease(benchmark::State& state) {
  hw::MemoryBrickConfig cfg;
  cfg.capacity_bytes = 64ull << 30;
  hw::MemoryBrick brick{hw::BrickId{1}, hw::TrayId{1}, cfg};
  for (auto _ : state) {
    auto seg = brick.allocate(1ull << 30, hw::BrickId{2});
    benchmark::DoNotOptimize(seg);
    brick.release(seg->id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryBrickAllocRelease);

void BM_PacketRoundTripEvaluation(benchmark::State& state) {
  net::PacketNetwork network;
  const hw::BrickId cpu{1}, mem{2};
  network.add_brick(cpu);
  network.add_brick(mem);
  network.connect(cpu, mem, 10.0);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        network.remote_read(cpu, mem, 0x0, 64, sim::Time::us(static_cast<double>(10 * i++))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketRoundTripEvaluation);

void BM_FabricAttachDetach(benchmark::State& state) {
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  const hw::BrickId mem = rack.add_memory_brick(tray_b).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  memsys::AttachRequest req;
  req.compute = cpu;
  req.membrick = mem;
  req.bytes = 1ull << 30;
  for (auto _ : state) {
    auto a = fabric.attach(req, sim::Time::zero());
    benchmark::DoNotOptimize(a);
    fabric.detach(cpu, a->segment);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FabricAttachDetach);

void BM_DmaMegabyteTransfer(benchmark::State& state) {
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 8ull << 30;
  const hw::BrickId mem = rack.add_memory_brick(tray_b, mc).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  memsys::AttachRequest req;
  req.compute = cpu;
  req.membrick = mem;
  req.bytes = 1ull << 30;
  const auto attachment = fabric.attach(req, sim::Time::zero());
  sim::Simulator sim;
  memsys::DmaEngine dma{sim, fabric, cpu, 2, 65536};
  for (auto _ : state) {
    memsys::DmaDescriptor d;
    d.address = attachment->compute_base;
    d.bytes = 1 << 20;
    bool done = false;
    dma.enqueue(d, [&](const memsys::DmaCompletion&) { done = true; });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_DmaMegabyteTransfer);

// --- telemetry overhead ---
//
// The observability contract has two halves. (1) The causal-tracing
// machinery on the dispatch path — enabled() guards and trace-context
// minting/propagation — must cost < 5% of an event dispatch whether the
// tracer is on or off, and the disabled path must never touch the heap
// (BM_EventDispatchTraceContext, BM_TracerDisabledHotPath). (2) Actually
// recording spans is opt-in and priced separately: the per-span cost
// (BM_TracerEnabledRecordSpan) and the full end-to-end price of a traced
// remote read with its 12-arg critical-path breakdown
// (BM_RemoteReadTelemetry/1 vs /0) are informational, not bounded.

void BM_EventDispatchTraceContext(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  const int batch = 1000;
  sim::Tracer tracer;
  tracer.seed_trace_ids(1);
  if (tracing) tracer.enable();
  for (auto _ : state) {
    sim::EventQueue q;
    sim::TraceContext root = tracer.begin_trace();
    for (int i = 0; i < batch; ++i) {
      q.schedule(sim::Time::ns((i * 7919) % 100000), [&tracer, &root] {
        // The per-event share of causal tracing: one guard plus one
        // context derivation, exactly what an instrumented action pays
        // before deciding whether to record anything.
        sim::TraceContext ctx = tracer.child_of(root);
        benchmark::DoNotOptimize(ctx);
      });
    }
    benchmark::DoNotOptimize(q.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatchTraceContext)->Arg(0)->Arg(1);

void BM_RemoteReadTelemetry(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  core::DatacenterConfig config;
  config.trays = 2;
  config.compute_bricks_per_tray = 2;
  config.memory_bricks_per_tray = 2;
  core::Datacenter dc{config};
  // Metrics stay on in both variants so the /0-vs-/1 delta isolates the
  // causal-tracing machinery alone.
  dc.metrics().enable();
  if (tracing) dc.tracer().enable();
  const auto vm = dc.boot_vm("bench-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  const auto up = dc.scale_up(vm.vm, vm.compute, 2ull << 30);
  benchmark::DoNotOptimize(up.ok);
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dc.remote_read(vm.compute, attachment.compute_base + (offset & 0xFFC0), 64));
    offset += 64;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteReadTelemetry)->Arg(0)->Arg(1);

void BM_TracerDisabledHotPath(benchmark::State& state) {
  sim::Tracer tracer;  // never enabled: every call must be a cheap no-op
  tracer.seed_trace_ids(1);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = heap_allocs();
    const auto ctx = tracer.begin_trace();
    tracer.record_span(sim::Time::us(1), sim::Time::us(2), sim::TraceCategory::kFabric,
                       "remote read", {}, ctx);
    tracer.record(sim::Time::us(3), sim::TraceCategory::kFabric, "retry");
    allocs += heap_allocs() - before;
    benchmark::DoNotOptimize(&tracer);
  }
  // Must stay 0.0: a disabled tracer that heap-allocates is a regression.
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerDisabledHotPath);

void BM_TracerEnabledRecordSpan(benchmark::State& state) {
  sim::Tracer tracer;
  tracer.seed_trace_ids(1);
  tracer.enable();
  const auto root = tracer.begin_trace();
  for (auto _ : state) {
    tracer.record_span(sim::Time::us(1), sim::Time::us(2), sim::TraceCategory::kFabric,
                       "remote read", {}, tracer.child_of(root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerEnabledRecordSpan);

// --- allocation-free hot datapath (ISSUE 9) ---
//
// The op datapath — issue, fabric walk, breakdown charging, completion,
// retry bookkeeping — must not touch the heap in steady state. These
// benches measure it directly with the global-new counter: after a short
// warm-up (arena chunks, RMST tables, metric registrations, queue
// capacity all settle), allocs_per_op must read exactly 0.0. The reducer
// (scripts/bench_reduce.py) fails the run otherwise.

void BM_RemoteReadSteadyStateAllocs(benchmark::State& state) {
  core::DatacenterConfig config;
  config.trays = 2;
  config.compute_bricks_per_tray = 2;
  config.memory_bricks_per_tray = 2;
  core::Datacenter dc{config};
  dc.metrics().enable();
  const auto vm = dc.boot_vm("bench-guest", /*vcpus=*/2, /*memory=*/2ull << 30);
  const auto up = dc.scale_up(vm.vm, vm.compute, 2ull << 30);
  benchmark::DoNotOptimize(up.ok);
  const auto attachment = dc.fabric().attachments_of(vm.compute).front();
  std::uint64_t offset = 0;
  // Warm-up: first touches grow arenas and intern labels; steady state
  // starts once every pool has reached its working-set size.
  for (int i = 0; i < 256; ++i) {
    benchmark::DoNotOptimize(
        dc.remote_read(vm.compute, attachment.compute_base + (offset & 0xFFC0), 64));
    offset += 64;
  }
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = heap_allocs();
    benchmark::DoNotOptimize(
        dc.remote_read(vm.compute, attachment.compute_base + (offset & 0xFFC0), 64));
    allocs += heap_allocs() - before;
    offset += 64;
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteReadSteadyStateAllocs);

void BM_DmaSteadyStateAllocs(benchmark::State& state) {
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 8ull << 30;
  const hw::BrickId mem = rack.add_memory_brick(tray_b, mc).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  memsys::AttachRequest req;
  req.compute = cpu;
  req.membrick = mem;
  req.bytes = 1ull << 30;
  const auto attachment = fabric.attach(req, sim::Time::zero());
  sim::Simulator sim;
  memsys::DmaEngine dma{sim, fabric, cpu, 2, 65536};
  const auto transfer = [&] {
    memsys::DmaDescriptor d;
    d.address = attachment->compute_base;
    d.bytes = 256 << 10;  // 4 chunks through the pooled job machinery
    bool done = false;
    dma.enqueue(d, [&done](const memsys::DmaCompletion& c) { done = c.ok; });
    sim.run();
    return done;
  };
  for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(transfer());  // warm-up
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = heap_allocs();
    benchmark::DoNotOptimize(transfer());
    allocs += heap_allocs() - before;
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.SetBytesProcessed(state.iterations() * (256 << 10));
}
BENCHMARK(BM_DmaSteadyStateAllocs);

// End-to-end load-session throughput: a full WorkloadEngine run (mixed
// closed + open tenants, sync ops and DMA) per iteration, items = ops the
// engine completed. This is the number the allocation-free datapath is
// supposed to move: compare ops/sec against the previous PR's bench file.
void BM_WorkloadEngineSteadyState(benchmark::State& state) {
  std::uint64_t completed = 0;
  for (auto _ : state) {
    core::DatacenterConfig config;
    config.trays = 2;
    config.compute_bricks_per_tray = 2;
    config.memory_bricks_per_tray = 2;
    core::Datacenter dc{config};
    workload::WorkloadConfig wc;
    workload::TenantSpec closed;
    closed.name = "bench-closed";
    closed.vms = 2;
    closed.outstanding = 2;
    closed.mix = {0.6, 0.3, 0.1};
    workload::TenantSpec open;
    open.name = "bench-open";
    open.loop = workload::LoopMode::kOpen;
    open.rate_hz = 30000.0;
    open.mix = {0.7, 0.3, 0.0};
    wc.tenants = {closed, open};
    wc.duration = sim::Time::ms(4);
    wc.power_samples = 0;
    workload::WorkloadEngine engine{dc, wc};
    const workload::WorkloadResult result = engine.run();
    benchmark::DoNotOptimize(result.digest);
    completed += result.completed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_WorkloadEngineSteadyState);

void BM_FcfsScheduling(benchmark::State& state) {
  const tco::WorkloadGenerator gen{tco::WorkloadType::kRandom};
  sim::Rng rng{1};
  std::vector<tco::VmSpec> workload;
  for (int i = 0; i < 500; ++i) workload.push_back(gen.next(rng));
  for (auto _ : state) {
    tco::ConventionalDatacenter conv{64, 32, 32};
    tco::DisaggregatedDatacenter dd{256, 8, 256, 8};
    for (const auto& vm : workload) {
      benchmark::DoNotOptimize(conv.schedule(vm));
      benchmark::DoNotOptimize(dd.schedule(vm));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(workload.size()));
}
BENCHMARK(BM_FcfsScheduling);

}  // namespace

BENCHMARK_MAIN();
