// Fabric stress: aggregate bulk-transfer throughput as dCOMPUBRICKs,
// dMEMBRICK controllers and bonded lanes scale. Every transfer runs
// through the DMA engines (Fig. 3) on the shared event-driven timeline,
// so the numbers include chunk-level pipelining, circuit serialization
// and memory-controller contention — the end-to-end question "how much
// bandwidth can one dMEMBRICK actually serve?".

#include <cstdio>

#include "memsys/dma.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;
constexpr std::uint64_t kMiB = 1ull << 20;

struct Scenario {
  std::size_t compute_bricks;
  std::size_t lanes_per_brick;
  std::size_t memory_controllers;
};

double run(const Scenario& sc) {
  sim::Simulator sim;
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  std::vector<hw::BrickId> cpus;
  for (std::size_t i = 0; i < sc.compute_bricks; ++i) {
    cpus.push_back(rack.add_compute_brick(tray_a).id());
  }
  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 64 * kGiB;
  mc.memory_controllers = sc.memory_controllers;
  const hw::BrickId mem = rack.add_memory_brick(tray_b, mc).id();

  optics::OpticalSwitchConfig swc;
  swc.ports = 96;
  optics::OpticalSwitch sw{swc};
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};

  // One bonded attachment and one dual-channel DMA engine per brick.
  std::vector<std::unique_ptr<memsys::DmaEngine>> engines;
  std::vector<memsys::Attachment> attachments;
  for (hw::BrickId cpu : cpus) {
    memsys::AttachRequest req;
    req.compute = cpu;
    req.membrick = mem;
    req.bytes = 8 * kGiB;
    req.lanes = sc.lanes_per_brick;
    auto a = fabric.attach(req, sim::Time::zero());
    if (!a) throw std::runtime_error("attach failed: " + to_string(fabric.last_error()));
    attachments.push_back(*a);
    engines.push_back(std::make_unique<memsys::DmaEngine>(sim, fabric, cpu, 2, 65536));
  }

  // Every brick pushes 64 MiB; measure wall-clock of the slowest.
  const std::uint64_t per_brick = 64 * kMiB;
  sim::Time last_done;
  std::size_t completions = 0;
  for (std::size_t b = 0; b < engines.size(); ++b) {
    memsys::DmaDescriptor d;
    d.address = attachments[b].compute_base;
    d.bytes = per_brick;
    engines[b]->enqueue(d, [&](const memsys::DmaCompletion& c) {
      if (!c.ok) throw std::runtime_error("transfer failed: " + c.error);
      last_done = std::max(last_done, c.completed_at);
      ++completions;
    });
  }
  sim.run();
  if (completions != engines.size()) throw std::runtime_error("missing completions");
  const double total_bytes = static_cast<double>(per_brick * sc.compute_bricks);
  return total_bytes * 8.0 / last_done.as_sec() / 1e9;  // Gb/s aggregate
}

}  // namespace

int main() {
  std::printf("=== Fabric stress: aggregate DMA throughput into one dMEMBRICK ===\n");
  std::printf("64 MiB pushed per dCOMPUBRICK, dual-channel DMA, 64 KiB chunks\n\n");

  sim::TextTable table{{"dCOMPUBRICKs", "lanes/brick", "controllers", "aggregate (Gb/s)"}};
  const Scenario scenarios[] = {
      {1, 1, 2}, {2, 1, 2}, {4, 1, 2},  // consumers scale, 10G lanes each
      {4, 1, 1},                        // controller-starved
      {4, 1, 4},                        // controller-rich
      {1, 2, 2}, {1, 4, 4},             // lane bonding for one consumer
  };
  double starved = 0, rich = 0, one_lane = 0, four_lane = 0;
  for (const auto& sc : scenarios) {
    const double gbps = run(sc);
    table.add_row({std::to_string(sc.compute_bricks), std::to_string(sc.lanes_per_brick),
                   std::to_string(sc.memory_controllers), sim::TextTable::num(gbps, 2)});
    if (sc.compute_bricks == 4 && sc.memory_controllers == 1) starved = gbps;
    if (sc.compute_bricks == 4 && sc.memory_controllers == 4) rich = gbps;
    if (sc.compute_bricks == 1 && sc.lanes_per_brick == 1) one_lane = gbps;
    if (sc.compute_bricks == 1 && sc.lanes_per_brick == 4) four_lane = gbps;
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Observations:\n");
  std::printf("  consumers scale linearly (one 10G lane each): the fabric, not the\n");
  std::printf("  brick, is the unit of bandwidth. Lane bonding scales one consumer\n");
  std::printf("  %.1f -> %.1f Gb/s with 4 lanes.\n", one_lane, four_lane);
  std::printf("  controllers barely matter for bulk (%.1f vs %.1f Gb/s at 1 vs 4 MCs):\n",
              starved, rich);
  std::printf("  a single DDR controller (~160 Gb/s array) outruns several 10G lanes.\n");
  std::printf("  Controller count is a *transaction-rate* knob (see\n");
  std::printf("  abl_memory_controllers for the 64 B-read latency cliff), while link\n");
  std::printf("  count is the *bandwidth* knob — exactly how Section II frames the\n");
  std::printf("  dMEMBRICK's two dimensioning axes.\n");
  const bool ok = four_lane > 2.0 * one_lane && rich >= starved;
  std::printf("  -> %s\n", ok ? "CONFIRMED" : "NOT confirmed");
  return ok ? 0 : 1;
}
