// Ablation: the FEC-free interface requirement (Section III). "The
// dReDBox architecture requires a FEC-free optical interface between
// dBRICKs, as the presence of FEC can potentially introduce more than
// 100 ns of latency, which degrades the performance of a disaggregated
// system." This bench quantifies both sides of that trade-off: the
// latency penalty of adding RS-FEC to the remote-memory path, and the
// coding gain it would buy on marginal links.

#include <cstdio>

#include "net/packet_network.hpp"
#include "optics/fec.hpp"
#include "optics/receiver.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;

double round_trip_ns(optics::FecScheme scheme) {
  net::PacketNetwork network{net::PacketPathLatencies{}, optics::FecModel{scheme}};
  const hw::BrickId cpu{1}, mem{2};
  network.add_brick(cpu);
  network.add_brick(mem);
  network.connect(cpu, mem, 10.0);
  return network.remote_read(cpu, mem, 0x0, 64, sim::Time::zero()).latency().as_ns();
}

}  // namespace

int main() {
  std::printf("=== Ablation: FEC-free vs RS-FEC on the remote-memory path ===\n\n");

  const double base_ns = round_trip_ns(optics::FecScheme::kNone);
  sim::TextTable table{{"interface", "added latency/traversal", "round trip (ns)",
                        "penalty", "pre-FEC BER tolerated for 1e-12"}};
  const optics::ReceiverModel rx{-16.5, 10.0};
  for (auto scheme : {optics::FecScheme::kNone, optics::FecScheme::kRsLight,
                      optics::FecScheme::kRsStrong}) {
    const optics::FecModel fec{scheme};
    const double rt = round_trip_ns(scheme);
    const double tolerated =
        scheme == optics::FecScheme::kNone ? 1e-12 : fec.correction_threshold();
    table.add_row({to_string(scheme), fec.added_latency().to_string(),
                   sim::TextTable::num(rt, 0),
                   sim::TextTable::pct((rt - base_ns) / base_ns),
                   sim::TextTable::sci(tolerated)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // What the coding gain is worth in dB on the link budget.
  const double p_raw = rx.required_power_dbm(1e-12);
  const double p_light = rx.required_power_dbm(optics::FecModel{optics::FecScheme::kRsLight}
                                                   .correction_threshold());
  const double p_strong = rx.required_power_dbm(optics::FecModel{optics::FecScheme::kRsStrong}
                                                    .correction_threshold());
  std::printf("Link-budget view (power needed at the receiver):\n");
  std::printf("  FEC-free (raw 1e-12):      %.2f dBm\n", p_raw);
  std::printf("  RS(528,514):               %.2f dBm  (%.1f dB coding gain => ~%.0f more 1 dB hops)\n",
              p_light, p_raw - p_light, p_raw - p_light);
  std::printf("  RS(544,514):               %.2f dBm  (%.1f dB coding gain)\n", p_strong,
              p_raw - p_strong);

  const double penalty_light = round_trip_ns(optics::FecScheme::kRsLight) - base_ns;
  std::printf("\nPaper rationale check: RS-FEC adds >100 ns per traversal (round-trip\n");
  std::printf("penalty measured: %.0f ns, i.e. %.0f ns per traversal) -> %s\n", penalty_light,
              penalty_light / 2.0, penalty_light / 2.0 > 100.0 ? "CONFIRMED" : "NOT confirmed");
  std::printf("Verdict: in-rack budgets close at 6-8 hops without FEC (see fig7_ber),\n");
  std::printf("so dReDBox keeps the interface FEC-free and banks the latency.\n");
  return 0;
}
