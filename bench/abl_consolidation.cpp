// Ablation: power-aware VM consolidation (project objective: "aggressive
// power-aware resource management/scheduling"). After a burst of tenant
// churn leaves single VMs scattered across many dCOMPUBRICKs, one
// consolidation pass packs them — cheap because disaggregated segments
// are re-pointed, not copied — and the emptied bricks power off.

#include <cstdio>
#include <memory>

#include "orch/consolidator.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;
}

int main() {
  std::printf("=== Ablation: consolidation + power-off closed loop ===\n\n");

  hw::Rack rack;
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  orch::SdmController sdm{rack, fabric, circuits};
  orch::MigrationEngine engine{rack, fabric, sdm};
  orch::PowerManager power{rack};

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    orch::SdmAgent agent;
  };
  std::vector<std::unique_ptr<Stack>> stacks;
  std::vector<hw::BrickId> computes;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  hw::ComputeBrickConfig cc;
  cc.apu_cores = 4;
  cc.local_memory_bytes = 8 * kGiB;
  for (int i = 0; i < 8; ++i) {
    auto& cb = rack.add_compute_brick(i < 4 ? tray_a : tray_b, cc);
    stacks.push_back(std::make_unique<Stack>(cb));
    sdm.register_agent(stacks.back()->agent);
    computes.push_back(cb.id());
  }
  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 64 * kGiB;
  rack.add_memory_brick(tray_b, mc);

  // Tenant churn aftermath: one 1-core VM stranded on each brick, each
  // holding 1 GiB of disaggregated memory.
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    auto vm = stacks[i]->hypervisor.create_vm(1, kGiB);
    orch::ScaleUpRequest req;
    req.vm = *vm;
    req.compute = computes[i];
    req.bytes = kGiB;
    req.posted_at = sim::Time::sec(static_cast<double>(i));
    if (!sdm.scale_up(req).ok) {
      std::printf("setup scale-up failed\n");
      return 1;
    }
  }

  hw::PowerModel pm;
  auto active_bricks = [&] {
    std::size_t n = 0;
    for (hw::BrickId cb : computes) {
      if (rack.brick(cb).power_state() != hw::PowerState::kOff) ++n;
    }
    return n;
  };
  const double power_before = rack.power_draw_watts(pm, sw.ports_in_use());
  const std::size_t bricks_before = active_bricks();

  orch::Consolidator consolidator{rack, sdm, engine, power};
  const auto report = consolidator.consolidate(sim::Time::sec(100));

  const double power_after = rack.power_draw_watts(pm, sw.ports_in_use());
  const std::size_t bricks_after = active_bricks();

  sim::TextTable table{{"", "before", "after one pass"}};
  table.add_row({"powered compute bricks", std::to_string(bricks_before),
                 std::to_string(bricks_after)});
  table.add_row({"rack power (W)", sim::TextTable::num(power_before, 1),
                 sim::TextTable::num(power_after, 1)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("pass summary: %zu migrations in %s total (memory re-pointed, not\n",
              report.migrations, report.total_migration_time.to_string().c_str());
  std::uint64_t repointed = 0;
  for (const auto& m : report.moves) repointed += m.repointed_bytes;
  std::printf("copied: %llu GiB followed the VMs); %zu bricks emptied, %zu swept off\n\n",
              static_cast<unsigned long long>(repointed >> 30), report.bricks_emptied,
              report.bricks_powered_off);

  const double saving = (power_before - power_after) / power_before;
  std::printf("Design-choice check: one consolidation pass cuts rack power by %.1f%%\n",
              saving * 100);
  std::printf("  -> %s\n", saving > 0.2 ? "CONFIRMED" : "NOT confirmed");
  return saving > 0.2 ? 0 : 1;
}
