// Ablation: the four elasticity tiers available to a dReDBox VM, fastest
// to slowest. The paper's Fig. 10 compares tier 3 (attach disaggregated
// memory) against tier 4 (conventional scale-out); the revisited
// ballooning subsystem (project objectives) adds tiers 1-2 below it.
//
//   1. balloon rebalance   — reclaim from a co-located guest, no fabric
//   2. intra-tray attach   — electrical circuit, no switch programming
//   3. cross-tray attach   — optical circuit through the rack switch
//   4. scale-out           — spawn another VM [13]

#include <cstdio>
#include <memory>

#include "orch/scale_out.hpp"
#include "orch/sdm_controller.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;
}

int main() {
  std::printf("=== Ablation: elasticity tiers (1 GiB grant each) ===\n\n");

  hw::Rack rack;
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  orch::SdmController sdm{rack, fabric, circuits};

  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  hw::ComputeBrickConfig cc;
  cc.apu_cores = 4;
  cc.local_memory_bytes = 8 * kGiB;
  auto& cb = rack.add_compute_brick(tray_a, cc);
  os::BareMetalOs os{cb};
  hyp::Hypervisor hv{cb, os};
  orch::SdmAgent agent{hv, os};
  sdm.register_agent(agent);

  hw::MemoryBrickConfig mc;
  mc.capacity_bytes = 32 * kGiB;
  const hw::BrickId local_mb = rack.add_memory_brick(tray_a, mc).id();
  const hw::BrickId remote_mb = rack.add_memory_brick(tray_b, mc).id();

  orch::AllocationRequest req;
  req.vcpus = 1;
  req.memory_bytes = 4 * kGiB;
  const auto donor = sdm.allocate_vm(req, sim::Time::zero());
  req.memory_bytes = 2 * kGiB;
  const auto taker = sdm.allocate_vm(req, sim::Time::zero());
  if (!donor.ok || !taker.ok) {
    std::printf("boot failed\n");
    return 1;
  }

  sim::TextTable table{{"tier", "mechanism", "delay", "fabric state touched"}};

  // Tier 1: balloon rebalance.
  const auto t1 = sdm.rebalance(donor.vm, taker.vm, donor.compute, kGiB, sim::Time::sec(10));
  table.add_row({"1", "balloon rebalance (co-located donor)", t1.delay().to_string(),
                 "none"});

  // Tier 2: intra-tray attach (electrical). Force the local membrick by
  // exhausting nothing — the SDM-C already prefers it.
  orch::ScaleUpRequest s2;
  s2.vm = taker.vm;
  s2.compute = taker.compute;
  s2.bytes = kGiB;
  s2.posted_at = sim::Time::sec(20);
  const auto t2 = sdm.scale_up(s2);
  if (!t2.ok || t2.membrick != local_mb) {
    std::printf("tier-2 setup unexpected (mb=%s)\n", t2.membrick.to_string().c_str());
  }
  table.add_row({"2", "attach, intra-tray electrical", t2.delay().to_string(),
                 "RMST + backplane lane"});

  // Tier 3: cross-tray attach (optical). Fill the local membrick first so
  // selection must go cross-tray.
  auto filler = rack.memory_brick(local_mb).allocate(
      rack.memory_brick(local_mb).largest_free_extent(), hw::BrickId{});
  orch::ScaleUpRequest s3 = s2;
  s3.posted_at = sim::Time::sec(30);
  const auto t3 = sdm.scale_up(s3);
  if (!t3.ok || t3.membrick != remote_mb) {
    std::printf("tier-3 setup unexpected\n");
  }
  table.add_row({"3", "attach, cross-tray optical", t3.delay().to_string(),
                 "RMST + circuit + switch ports"});
  if (filler) rack.memory_brick(local_mb).release(filler->id);

  // Tier 4: conventional scale-out.
  orch::ScaleOutBaseline baseline;
  sim::Rng rng{7};
  const auto t4 = baseline.spawn(sim::Time::sec(40), rng);
  table.add_row({"4", "scale-out: spawn another VM [13]", t4.delay().to_string(),
                 "new instance + image copy"});

  std::printf("%s\n", table.to_string().c_str());

  const bool ordered = t1.delay() < t2.delay() && t2.delay() < t3.delay() &&
                       t3.delay() < t4.delay();
  std::printf("Tier ordering check (1 < 2 < 3 < 4) -> %s\n",
              ordered ? "CONFIRMED" : "NOT confirmed");
  std::printf("\nThe SDM-C exploits this ladder: ballooning redistributes what the\n");
  std::printf("brick already holds; the fabric only gets touched when genuinely new\n");
  std::printf("memory is needed, and the optical switch only for cross-tray grants.\n");
  return ordered ? 0 : 1;
}
