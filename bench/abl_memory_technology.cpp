// Ablation: memory technology behind the dMEMBRICK glue logic
// (Section II). "The dMEMBRICK architecture can seamlessly support both
// DDR and HMC memory technologies; the glue logic is connected to an AXI
// interconnect, hence directly interfacing both Xilinx DDR and HMC
// controller IPs." This bench compares end-to-end remote access with the
// two back-ends over both interconnect modes.

#include <cstdio>

#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;

double circuit_rt_ns(hw::MemoryTechnology tech) {
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  hw::MemoryBrickConfig mc;
  mc.technology = tech;
  const hw::BrickId mem = rack.add_memory_brick(tray_b, mc).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  memsys::AttachRequest areq;
  areq.compute = cpu;
  areq.membrick = mem;
  const auto a = fabric.attach(areq, sim::Time::zero());
  return fabric.read(cpu, a->compute_base, 64, sim::Time::zero()).round_trip().as_ns();
}

double packet_rt_ns(hw::MemoryTechnology tech) {
  net::PacketNetwork network;
  const hw::BrickId cpu{1}, mem{2};
  network.add_brick(cpu);
  network.add_brick(mem);
  network.connect(cpu, mem, 10.0);
  return network.remote_read(cpu, mem, 0x0, 64, sim::Time::zero(), tech).latency().as_ns();
}

}  // namespace

int main() {
  std::printf("=== Ablation: DDR4 vs HMC dMEMBRICK back-end ===\n\n");

  sim::TextTable table{{"path", "DDR4 RT (ns)", "HMC RT (ns)", "HMC advantage"}};
  const double c_ddr = circuit_rt_ns(hw::MemoryTechnology::kDdr4);
  const double c_hmc = circuit_rt_ns(hw::MemoryTechnology::kHmc);
  const double p_ddr = packet_rt_ns(hw::MemoryTechnology::kDdr4);
  const double p_hmc = packet_rt_ns(hw::MemoryTechnology::kHmc);
  table.add_row({"circuit (mainline)", sim::TextTable::num(c_ddr, 0),
                 sim::TextTable::num(c_hmc, 0), sim::TextTable::pct((c_ddr - c_hmc) / c_ddr)});
  table.add_row({"packet (exploratory)", sim::TextTable::num(p_ddr, 0),
                 sim::TextTable::num(p_hmc, 0), sim::TextTable::pct((p_ddr - p_hmc) / p_ddr)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Observation: the interconnect (serdes/MAC/PHY/switching) dominates the\n");
  std::printf("round trip, so swapping the memory controller IP moves the total by\n");
  std::printf("only %.0f%%/%.0f%% — the glue-logic abstraction is cheap, which is why\n",
              100.0 * (c_ddr - c_hmc) / c_ddr, 100.0 * (p_ddr - p_hmc) / p_ddr);
  std::printf("the brick can be dimensioned by capacity/bandwidth need, not latency.\n");
  return (c_hmc < c_ddr && p_hmc < p_ddr) ? 0 : 1;
}
