// Ablation: circuit-switched mainline vs exploratory packet-switched
// interconnect (Sections II-III). Memory interconnection occurs via
// circuit switching "as a means of minimizing the critical KPI of remote
// access latency"; packet switching exists to cater for cases where the
// system runs low on physical ports. This bench quantifies the latency
// cost of the packet fallback and the port-scalability it buys.

#include <cstdio>

#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
}

int main() {
  std::printf("=== Ablation: circuit-switched vs packet-switched remote access ===\n\n");

  // --- circuit path (cross-tray, so the optical substrate carries it;
  // the electrical intra-tray case is abl_intra_tray's subject) ---
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  const hw::BrickId mem = rack.add_memory_brick(tray_b).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};
  memsys::AttachRequest areq;
  areq.compute = cpu;
  areq.membrick = mem;
  areq.bytes = 1ull << 30;
  const auto attachment = fabric.attach(areq, sim::Time::zero());
  if (!attachment) {
    std::printf("attach failed\n");
    return 1;
  }

  // --- packet path ---
  net::PacketNetwork network;
  network.add_brick(cpu);
  network.add_brick(mem);
  network.connect(cpu, mem, 10.0);

  sim::TextTable table{{"payload (B)", "circuit RT (ns)", "packet RT (ns)", "packet overhead"}};
  for (std::uint32_t bytes : {64u, 256u, 1024u, 4096u}) {
    const auto circuit_tx =
        fabric.read(cpu, attachment->compute_base, bytes, sim::Time::ms(bytes));
    const auto packet_tx =
        network.remote_read(cpu, mem, 0x0, bytes, sim::Time::ms(bytes));
    const double c = circuit_tx.round_trip().as_ns();
    const double p = packet_tx.latency().as_ns();
    table.add_row({std::to_string(bytes), sim::TextTable::num(c, 0),
                   sim::TextTable::num(p, 0), sim::TextTable::pct((p - c) / c)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto c64 = fabric.read(cpu, attachment->compute_base, 64, sim::Time::sec(1));
  const auto p64 = network.remote_read(cpu, mem, 0x0, 64, sim::Time::sec(1));
  std::printf("64 B circuit-path breakdown:\n%s\n", c64.breakdown.to_string().c_str());
  std::printf("64 B packet-path breakdown:\n%s\n", p64.breakdown.to_string().c_str());

  std::printf("Port economics: a circuit pins 2 switch ports per brick pair for its\n");
  std::printf("lifetime; the packet substrate multiplexes many destinations over one\n");
  std::printf("port via lookup tables programmed by orchestration (Section III).\n\n");

  const bool circuit_wins = c64.round_trip() < p64.latency();
  std::printf("Design-choice check: circuit switching minimizes remote access latency\n");
  std::printf("  (%.0f ns vs %.0f ns for 64 B) -> %s\n", c64.round_trip().as_ns(),
              p64.latency().as_ns(), circuit_wins ? "CONFIRMED" : "NOT confirmed");
  return circuit_wins ? 0 : 1;
}
