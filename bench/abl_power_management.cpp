// Ablation: aggressive power-aware management (project objective) over a
// diurnal workload. The PowerManager sweeps idle bricks off after a
// timeout and the SDM-C pays a wake latency when demand returns. The
// bench integrates rack energy over 48 h with and without the manager.

#include <cstdio>
#include <memory>

#include "core/datacenter.hpp"
#include "core/pilots/nfv.hpp"
#include "orch/power_manager.hpp"
#include "sim/stats.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

core::DatacenterConfig dc_config() {
  core::DatacenterConfig cfg;
  cfg.trays = 2;
  cfg.compute_bricks_per_tray = 1;
  cfg.memory_bricks_per_tray = 4;  // generous pool: most of it idles at night
  cfg.memory.capacity_bytes = 16 * kGiB;
  return cfg;
}

struct RunOutcome {
  double energy_wh = 0.0;
  double mean_power_w = 0.0;
  std::size_t power_offs = 0;
  std::size_t wake_ups = 0;
  double mean_scale_delay_s = 0.0;
};

RunOutcome run(bool managed) {
  core::Datacenter dc{dc_config()};
  std::unique_ptr<orch::PowerManager> pm;
  if (managed) {
    orch::PowerPolicyConfig policy;
    policy.idle_timeout = sim::Time::sec(300);
    policy.keep_compute_bricks_on = true;
    pm = std::make_unique<orch::PowerManager>(dc.rack(), policy);
    dc.sdm().set_power_manager(pm.get());
  }

  const auto boot = dc.boot_vm("diurnal-app", 2, 2 * kGiB);
  if (!boot.ok) throw std::runtime_error("boot failed: " + boot.error);

  core::pilots::NfvKeyServerPilot shape{};  // reuse the diurnal load model
  struct Held {
    hw::SegmentId segment;
  };
  std::vector<Held> held;
  std::uint64_t provisioned = 2;

  RunOutcome out;
  sim::RunningStats power;
  sim::RunningStats delays;
  const double step_h = 0.25;  // 15 min samples
  for (double hour = 0.0; hour < 48.0; hour += step_h) {
    const sim::Time now = sim::Time::sec(hour * 3600.0);
    dc.advance_to(now);
    const std::uint64_t demand = shape.demand_gb(shape.load_at(hour)) / 2;  // 2-26 GB

    while (provisioned < demand) {
      auto r = dc.scale_up(boot.vm, boot.compute, 2 * kGiB);
      if (!r.ok) break;
      dc.advance_to(r.completed_at);
      held.push_back(Held{r.segment});
      provisioned += 2;
      delays.add(r.delay().as_sec());
    }
    while (provisioned >= demand + 4 && !held.empty()) {
      auto r = dc.scale_down(boot.vm, boot.compute, held.back().segment);
      if (!r.ok) break;
      dc.advance_to(r.completed_at);
      held.pop_back();
      provisioned -= 2;
    }
    if (pm) pm->tick(dc.simulator().now());

    const double watts = dc.power_draw_watts();
    power.add(watts);
    out.energy_wh += watts * step_h;
  }

  out.mean_power_w = power.mean();
  out.power_offs = pm ? pm->power_offs() : 0;
  out.wake_ups = pm ? pm->wake_ups() : 0;
  out.mean_scale_delay_s = delays.count() ? delays.mean() : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: power-aware management over a 48 h diurnal trace ===\n\n");

  const RunOutcome off = run(false);
  const RunOutcome on = run(true);

  sim::TextTable table{{"policy", "mean power (W)", "energy (Wh)", "power-offs", "wake-ups",
                        "mean scale delay (s)"}};
  table.add_row({"always-on", sim::TextTable::num(off.mean_power_w, 1),
                 sim::TextTable::num(off.energy_wh, 0), "0", "0",
                 sim::TextTable::num(off.mean_scale_delay_s, 2)});
  table.add_row({"power-managed", sim::TextTable::num(on.mean_power_w, 1),
                 sim::TextTable::num(on.energy_wh, 0), std::to_string(on.power_offs),
                 std::to_string(on.wake_ups), sim::TextTable::num(on.mean_scale_delay_s, 2)});
  std::printf("%s\n", table.to_string().c_str());

  const double saving = 1.0 - on.energy_wh / off.energy_wh;
  std::printf("Energy saved by sweeping idle bricks: %.1f%%\n", saving * 100);
  std::printf("Cost: %.2f s mean scale-up (vs %.2f s) — wake latency shows up only\n",
              on.mean_scale_delay_s, off.mean_scale_delay_s);
  std::printf("when demand returns to a dark brick.\n\n");
  std::printf("Design-choice check: power management saves energy on diurnal load -> %s\n",
              saving > 0.05 ? "CONFIRMED" : "NOT confirmed");
  return saving > 0.05 ? 0 : 1;
}
