// Ablation: dMEMBRICK memory-controller dimensioning (Section II: "a
// dMEMBRICK can be dimensioned in terms of memory size as well as the
// number of memory controllers it supports, so as to adapt to the size
// and bandwidth needs at the tray and system level"). Four dCOMPUBRICKs
// stream concurrent reads at one dMEMBRICK; the bench sweeps the
// controller count and reports sustained latency.

#include <cstdio>

#include "memsys/remote_memory.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {
using namespace dredbox;

struct Outcome {
  double mean_rt_ns;
  double p95_rt_ns;
  double mean_mc_wait_ns;
};

Outcome run(std::size_t controllers) {
  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  std::vector<hw::BrickId> cpus;
  for (int i = 0; i < 4; ++i) cpus.push_back(rack.add_compute_brick(tray_a).id());
  hw::MemoryBrickConfig mc;
  mc.memory_controllers = controllers;
  const hw::BrickId mem = rack.add_memory_brick(tray_b, mc).id();

  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};

  std::vector<memsys::Attachment> attachments;
  for (hw::BrickId cpu : cpus) {
    memsys::AttachRequest req;
    req.compute = cpu;
    req.membrick = mem;
    req.bytes = 1ull << 30;
    auto a = fabric.attach(req, sim::Time::zero());
    if (!a) throw std::runtime_error("attach failed");
    attachments.push_back(*a);
  }

  // Each brick issues a 64 B read every 110 ns (interleaved pages), for
  // 1000 rounds: enough pressure that a single controller saturates.
  sim::SampleSet round_trips;
  sim::SampleSet waits;
  for (int round = 0; round < 1000; ++round) {
    const sim::Time when = sim::Time::ns(110.0 * round);
    for (std::size_t b = 0; b < cpus.size(); ++b) {
      const std::uint64_t addr =
          attachments[b].compute_base + (static_cast<std::uint64_t>(round % 64) << 12);
      const auto tx = fabric.read(cpus[b], addr, 64, when);
      round_trips.add(tx.round_trip().as_ns());
      waits.add(tx.breakdown.of("memory controller wait").as_ns());
    }
  }
  return Outcome{round_trips.mean(), round_trips.percentile(95), waits.mean()};
}

}  // namespace

int main() {
  std::printf("=== Ablation: dMEMBRICK memory-controller dimensioning ===\n");
  std::printf("4 dCOMPUBRICKs x 64 B read every 110 ns at one dMEMBRICK\n\n");

  sim::TextTable table{{"controllers", "mean RT (ns)", "p95 RT (ns)", "mean MC wait (ns)"}};
  double rt1 = 0, rt4 = 0;
  for (std::size_t mcs : {1u, 2u, 4u, 8u}) {
    const Outcome out = run(mcs);
    if (mcs == 1) rt1 = out.mean_rt_ns;
    if (mcs == 4) rt4 = out.mean_rt_ns;
    table.add_row({std::to_string(mcs), sim::TextTable::num(out.mean_rt_ns, 0),
                   sim::TextTable::num(out.p95_rt_ns, 0),
                   sim::TextTable::num(out.mean_mc_wait_ns, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Design-choice check: adding controllers absorbs concurrent demand\n");
  std::printf("  (mean RT %.0f ns @1 MC -> %.0f ns @4 MCs) -> %s\n", rt1, rt4,
              rt4 < rt1 ? "CONFIRMED" : "NOT confirmed");
  std::printf("This is why the brick is *dimensioned*, not fixed: bandwidth-hungry\n");
  std::printf("trays take more controllers, capacity-hungry trays take more DRAM.\n");
  return rt4 < rt1 ? 0 : 1;
}
