// Reproduces Fig. 8: preliminary breakdown of the (hardware-level)
// measured remote-memory round-trip access latency over the exploratory
// packet-switched interconnect. The contributions are the on-brick switch
// and the MAC/PHY blocks on both the dMEMBRICK and the dCOMPUBRICK, plus
// the optical path propagation delay.

#include <cstdio>

#include "net/packet_network.hpp"
#include "sim/breakdown.hpp"
#include "sim/stats.hpp"

namespace {
using namespace dredbox;
}

int main() {
  std::printf("=== Fig. 8: round-trip remote memory access latency breakdown ===\n");
  std::printf("Path: APU -> TGL/NI -> on-brick switch -> MAC/PHY -> optics -> \n");
  std::printf("      MAC/PHY -> on-brick switch -> glue logic -> DDR (and back)\n\n");

  net::PacketNetwork network;
  const hw::BrickId cpu{1};
  const hw::BrickId mem{2};
  network.add_brick(cpu);
  network.add_brick(mem);
  network.connect(cpu, mem, 10.0);  // 10 m in-rack fibre

  // Average over a stream of isolated 64 B reads (one outstanding at a
  // time, spaced far apart: pure hardware latency, no queueing).
  constexpr int kReads = 1000;
  sim::Breakdown avg;
  sim::SampleSet round_trip_ns;
  for (int i = 0; i < kReads; ++i) {
    const net::Packet pkt =
        network.remote_read(cpu, mem, 0x1000, 64, sim::Time::us(10.0 * i));
    avg.merge(pkt.breakdown);
    round_trip_ns.add(pkt.latency().as_ns());
  }
  avg.scale_all(1.0 / kReads);

  std::printf("Per-component contribution (mean over %d isolated 64 B reads):\n", kReads);
  std::printf("%s\n", avg.to_string().c_str());
  std::printf("Round trip: mean %.1f ns (min %.1f, max %.1f)\n\n", round_trip_ns.mean(),
              round_trip_ns.min(), round_trip_ns.max());

  const double total = avg.total().as_ns();
  const double mac_phy = avg.of("MAC/PHY (dCOMPUBRICK)").as_ns() +
                         avg.of("MAC/PHY (dMEMBRICK)").as_ns();
  const double switches = avg.of("on-brick switch (dCOMPUBRICK)").as_ns() +
                          avg.of("on-brick switch (dMEMBRICK)").as_ns();
  const double prop = avg.of("optical propagation").as_ns();

  std::printf("Shape checks vs the paper:\n");
  std::printf("  MAC/PHY + on-brick switching dominate (%.0f%% of total) -> %s\n",
              100.0 * (mac_phy + switches) / total,
              (mac_phy + switches) > 0.5 * total ? "REPRODUCED" : "NOT reproduced");
  std::printf("  optical propagation is a minor contributor (%.0f%%) -> %s\n",
              100.0 * prop / total, prop < 0.15 * total ? "REPRODUCED" : "NOT reproduced");
  std::printf("  round trip is sub-2us at rack scale -> %s\n",
              total < 2000.0 ? "REPRODUCED" : "NOT reproduced");
  std::printf("\nNote: 'work is on-going on further optimizing IP designs' (Section III);\n");
  std::printf("the abl_circuit_vs_packet bench shows the mainline circuit path beating this.\n");
  return 0;
}
