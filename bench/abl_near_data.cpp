// Ablation: near-data processing on dACCELBRICKs (Section II): "instead
// of transmitting data to a remote dCOMPUBRICK, data are offloaded by
// remote dCOMPUBRICKs to dACCELBRICKs, thus improving performance and at
// the same time reducing network utilization." This bench sweeps the
// dataset size and compares offload against hauling the data to the CPU.

#include <algorithm>
#include <cstdio>

#include "optics/circuit.hpp"
#include "orch/accel_manager.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kMiB = 1ull << 20;
}

int main() {
  std::printf("=== Ablation: near-data offload vs haul-to-CPU ===\n\n");

  hw::Rack rack;
  const hw::TrayId tray = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray).id();
  rack.add_accelerator_brick(tray);
  const hw::BrickId membrick = rack.add_memory_brick(tray).id();
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  orch::AcceleratorManager mgr{rack};

  hw::Bitstream kernel;
  kernel.name = "packet-filter";
  kernel.size_bytes = 24ull << 20;
  kernel.kernel_ops_per_sec = 50e9;  // streaming filter, bandwidth-bound
  const auto deployment = mgr.deploy(cpu, kernel, sim::Time::zero());
  if (!deployment) {
    std::printf("deploy failed\n");
    return 1;
  }
  std::printf("deployment: bitstream push %.1f ms + PCAP %.1f ms (one-time)\n\n",
              deployment->breakdown.of("bitstream transfer").as_ms(),
              deployment->breakdown.of("PCAP reconfiguration").as_ms());

  // Fig. 5 mode: the wrapper's own transceivers wired straight to the
  // dMEMBRICK hosting the dataset (4 bonded lanes).
  if (!mgr.link_memory(deployment->accel, membrick, 4, circuits)) {
    std::printf("direct link failed\n");
    return 1;
  }

  sim::TextTable table{{"dataset", "near-data (ms)", "direct dMEMBRICK link (ms)",
                        "haul-to-CPU (ms)", "best speedup", "net bytes (near)",
                        "net bytes (haul)"}};
  bool always_faster = true;
  for (const std::uint64_t mib : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    const std::uint64_t bytes = mib * kMiB;
    const auto near = mgr.offload(deployment->accel, bytes / 64, bytes, deployment->ready_at);
    const auto direct =
        mgr.offload_from_membrick(deployment->accel, bytes / 64, bytes, deployment->ready_at);
    const auto haul = mgr.process_on_compute(bytes, /*cpu_gbps=*/20.0, deployment->ready_at);
    const double near_ms = (near.completed_at - deployment->ready_at).as_ms();
    const double direct_ms = (direct.completed_at - deployment->ready_at).as_ms();
    const double haul_ms = (haul.completed_at - deployment->ready_at).as_ms();
    always_faster = always_faster && near_ms < haul_ms && direct_ms < haul_ms;
    table.add_row({std::to_string(mib) + " MiB", sim::TextTable::num(near_ms, 1),
                   sim::TextTable::num(direct_ms, 1), sim::TextTable::num(haul_ms, 1),
                   sim::TextTable::num(haul_ms / std::min(near_ms, direct_ms), 1) + "x",
                   std::to_string(near.network_bytes), std::to_string(haul.network_bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Design-choice checks:\n");
  std::printf("  near-data offload faster at every dataset size -> %s\n",
              always_faster ? "CONFIRMED" : "NOT confirmed");
  std::printf("  network utilization reduced to descriptors+results (~KB vs GB)\n");
  std::printf("  -> the Section II rationale for hosting accelerators near the data.\n");
  return always_faster ? 0 : 1;
}
