// Reproduces Table I: the six VM workload mixes with different types of
// resource requirements used for the TCO studies, plus empirical moments
// of the generator that drives Figs. 12-13.

#include <cstdio>

#include "sim/random.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"
#include "tco/workload.hpp"

namespace {
using namespace dredbox;
}

int main() {
  std::printf("=== Table I: VM workloads for the TCO studies ===\n\n");

  sim::TextTable table{{"Configuration", "vCPUs", "RAM"}};
  for (tco::WorkloadType type : tco::all_workload_types()) {
    const auto r = tco::ranges_for(type);
    const std::string cpus = r.cpu_lo == r.cpu_hi
                                 ? std::to_string(r.cpu_lo) + " cores"
                                 : std::to_string(r.cpu_lo) + "-" + std::to_string(r.cpu_hi) +
                                       " cores";
    const std::string ram = r.ram_lo_gb == r.ram_hi_gb
                                ? std::to_string(r.ram_lo_gb) + " GB"
                                : std::to_string(r.ram_lo_gb) + "-" +
                                      std::to_string(r.ram_hi_gb) + " GB";
    table.add_row({tco::to_string(type), cpus, ram});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Empirical generator moments (100k draws per mix):\n");
  sim::TextTable moments{{"Configuration", "mean vCPUs", "mean RAM (GB)", "CPU:RAM ratio"}};
  for (tco::WorkloadType type : tco::all_workload_types()) {
    const tco::WorkloadGenerator gen{type};
    sim::Rng rng{1};
    sim::RunningStats cpus, ram;
    for (int i = 0; i < 100000; ++i) {
      const auto vm = gen.next(rng);
      cpus.add(static_cast<double>(vm.vcpus));
      ram.add(static_cast<double>(vm.ram_gb));
    }
    moments.add_row({tco::to_string(type), sim::TextTable::num(cpus.mean(), 2),
                     sim::TextTable::num(ram.mean(), 2),
                     sim::TextTable::num(cpus.mean() / ram.mean(), 2)});
  }
  std::printf("%s\n", moments.to_string().c_str());
  sim::maybe_write_csv("table1_workloads", table);
  sim::maybe_write_csv("table1_moments", moments);
  std::printf("Unbalanced mixes (High RAM, High CPU, More Ram, More CPU) are the ones\n");
  std::printf("where Figs. 12-13 show the dReDBox advantage.\n");
  return 0;
}
