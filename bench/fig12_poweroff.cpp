// Reproduces Fig. 11 (resource-equivalent datacenter configurations) and
// Fig. 12 (percentage of unutilized resources that can be powered off).
// The paper reports that depending on the VM mix, up to 88% of
// dMEMBRICKs or dCOMPUBRICKs can be powered off, whereas in a
// conventional datacenter only ~15% of hosts can.

#include <algorithm>
#include <cstdio>

#include "sim/report.hpp"
#include "tco/tco_study.hpp"

namespace {
using namespace dredbox;
}

int main() {
  tco::TcoConfig config;
  config.servers = 64;
  config.repetitions = 10;
  const tco::TcoStudy study{config};

  std::printf("=== Fig. 11: resource-equivalent datacenters ===\n%s\n\n",
              study.describe_datacenters().c_str());
  std::printf("Scheduling: FCFS, workload bounded at %.0f%% of the binding resource\n\n",
              config.target_utilization * 100);

  std::printf("=== Fig. 12: %% of unutilized resources that can be powered off ===\n\n");
  sim::TextTable table{{"Workload", "conventional (servers)", "dReDBox (dCOMPUBRICKs)",
                        "dReDBox (dMEMBRICKs)", "dReDBox (all bricks)", "VMs"}};
  double best_dd = 0.0;
  double best_conv = 0.0;
  for (const auto& row : study.run_poweroff_all()) {
    table.add_row({tco::to_string(row.workload), sim::TextTable::pct(row.conventional_off),
                   sim::TextTable::pct(row.dd_compute_off),
                   sim::TextTable::pct(row.dd_memory_off),
                   sim::TextTable::pct(row.dd_combined_off),
                   sim::TextTable::num(row.vms_scheduled, 0)});
    best_dd = std::max({best_dd, row.dd_compute_off, row.dd_memory_off});
    best_conv = std::max(best_conv, row.conventional_off);
  }
  std::printf("%s\n", table.to_string().c_str());
  sim::maybe_write_csv("fig12_poweroff", table);

  std::printf("Bars (best powered-off class per workload):\n");
  for (const auto& row : study.run_poweroff_all()) {
    const double dd = std::max(row.dd_compute_off, row.dd_memory_off);
    std::printf("  %-9s dReDBox      %5.1f%% |%s\n", tco::to_string(row.workload).c_str(),
                dd * 100, sim::ascii_bar(dd, 1.0, 40).c_str());
    std::printf("  %-9s conventional %5.1f%% |%s\n", tco::to_string(row.workload).c_str(),
                row.conventional_off * 100, sim::ascii_bar(row.conventional_off, 1.0, 40).c_str());
  }

  std::printf("\nPaper claim check: up to ~88%% of one brick class powered off\n");
  std::printf("  (measured best: %.1f%%) -> %s\n", best_dd * 100,
              best_dd > 0.75 ? "REPRODUCED" : "NOT reproduced");
  std::printf("Paper claim check: conventional datacenter stays <=~15%%\n");
  std::printf("  (measured best: %.1f%%) -> %s\n", best_conv * 100,
              best_conv <= 0.20 ? "REPRODUCED" : "NOT reproduced");
  return (best_dd > 0.75 && best_conv <= 0.20) ? 0 : 1;
}
