// Reproduces Fig. 13: estimation of power consumption, normalized to the
// conventional datacenter. The paper reports that powering down unused
// resources can translate into almost 50% energy savings for workloads
// with diverse, unbalanced resource requirements.

#include <algorithm>
#include <cstdio>

#include "sim/report.hpp"
#include "tco/tco_study.hpp"

namespace {
using namespace dredbox;
}

int main() {
  tco::TcoConfig config;
  config.servers = 64;
  config.repetitions = 10;
  const tco::TcoStudy study{config};

  std::printf("=== Fig. 13: power consumption normalized to conventional ===\n");
  std::printf("%s\n", study.describe_datacenters().c_str());
  std::printf("Power model: dCOMPUBRICK %.0f W, dMEMBRICK %.0f W, server = brick-\n",
              config.power.compute_brick_w, config.power.memory_brick_w);
  std::printf("equivalent %.0f W, switch %.1f W per active brick; off units draw 0 W.\n\n",
              config.server_equivalent_w(), config.power.switch_share_per_active_brick_w);

  sim::TextTable table{{"Workload", "conventional", "dReDBox", "savings"}};
  double best_savings = 0.0;
  double halfhalf_savings = 0.0;
  for (const auto& row : study.run_power_all()) {
    table.add_row({tco::to_string(row.workload), sim::TextTable::num(row.conventional_norm, 2),
                   sim::TextTable::num(row.dredbox_norm, 3),
                   sim::TextTable::pct(row.savings())});
    best_savings = std::max(best_savings, row.savings());
    if (row.workload == tco::WorkloadType::kHalfHalf) halfhalf_savings = row.savings();
  }
  std::printf("%s\n", table.to_string().c_str());
  sim::maybe_write_csv("fig13_power", table);

  std::printf("Normalized power (conventional = 1.00):\n");
  for (const auto& row : study.run_power_all()) {
    std::printf("  %-9s conventional 1.00 |%s\n", tco::to_string(row.workload).c_str(),
                sim::ascii_bar(1.0, 1.0, 40).c_str());
    std::printf("  %-9s dReDBox      %.2f |%s\n", tco::to_string(row.workload).c_str(),
                row.dredbox_norm, sim::ascii_bar(row.dredbox_norm, 1.0, 40).c_str());
  }

  std::printf("\nPaper claim check: almost 50%% savings on unbalanced workloads\n");
  std::printf("  (measured best: %.1f%%) -> %s\n", best_savings * 100,
              best_savings > 0.35 && best_savings < 0.70 ? "REPRODUCED" : "NOT reproduced");
  std::printf("Shape check: balanced Half-Half saves little (%.1f%%) -> %s\n",
              halfhalf_savings * 100,
              halfhalf_savings < 0.15 ? "REPRODUCED" : "NOT reproduced");
  return best_savings > 0.35 ? 0 : 1;
}
