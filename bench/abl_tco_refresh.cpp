// Extension bench: multi-year TCO with component-level technology refresh
// — the study the paper explicitly defers ("the modularity and
// interchangeability of the dBRICKs ... delivering technology refreshes
// at the component level instead of the server level. This study does not
// consider how these aspects ... affect the TCO; the latter is targeted
// by our on-going work", Section VI).

#include <cstdio>

#include "sim/report.hpp"
#include "tco/refresh_model.hpp"

namespace {
using namespace dredbox;
}

int main() {
  tco::TcoConfig config;
  config.servers = 64;
  config.repetitions = 5;
  const tco::RefreshStudy study{config};
  const auto& costs = study.costs();

  std::printf("=== Extension: 5-year TCO with technology refresh ===\n");
  std::printf("procurement: server $%.0f | compute brick $%.0f | memory brick $%.0f\n",
              costs.server_cost, costs.compute_brick_cost, costs.memory_brick_cost);
  std::printf("refresh: servers every %.0fy (whole box) | compute bricks %.0fy |\n",
              costs.server_refresh_years, costs.compute_brick_refresh_years);
  std::printf("memory bricks %.0fy | salvage %.0f%% | energy $%.2f/kWh\n\n",
              costs.memory_brick_refresh_years, costs.salvage_fraction * 100,
              costs.usd_per_kwh);

  const double horizon = 5.0;
  sim::TextTable table{{"Workload", "conv capex+refresh", "conv energy", "conv total",
                        "dReDBox capex+refresh", "dReDBox energy", "dReDBox total",
                        "savings"}};
  double min_savings = 1.0, max_savings = 0.0;
  for (tco::WorkloadType type : tco::all_workload_types()) {
    const auto conv = study.conventional(type, horizon);
    const auto dd = study.dredbox(type, horizon);
    const double savings = study.savings(type, horizon);
    min_savings = std::min(min_savings, savings);
    max_savings = std::max(max_savings, savings);
    auto usd_k = [](double v) { return sim::TextTable::num(v / 1000.0, 1) + "k"; };
    table.add_row({tco::to_string(type), usd_k(conv.capex_usd + conv.refresh_usd),
                   usd_k(conv.energy_usd), usd_k(conv.total()),
                   usd_k(dd.capex_usd + dd.refresh_usd), usd_k(dd.energy_usd),
                   usd_k(dd.total()), sim::TextTable::pct(savings)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Horizon sensitivity (Random mix):\n");
  sim::TextTable horizon_tbl{{"horizon", "savings"}};
  for (double years : {2.0, 4.0, 5.0, 7.0, 10.0}) {
    horizon_tbl.add_row({sim::TextTable::num(years, 0) + "y",
                         sim::TextTable::pct(study.savings(tco::WorkloadType::kRandom, years))});
  }
  std::printf("%s\n", horizon_tbl.to_string().c_str());

  std::printf("Extension claim check: component-level refresh + power-off savings\n");
  std::printf("lower 5-year TCO on every mix (%.1f%%..%.1f%%) -> %s\n", min_savings * 100,
              max_savings * 100, min_savings > 0.0 ? "CONFIRMED" : "NOT confirmed");
  std::printf("The driver: each server refresh re-buys DRAM/chassis that the brick\n");
  std::printf("model keeps for another cadence.\n");
  return min_savings > 0.0 ? 0 : 1;
}
