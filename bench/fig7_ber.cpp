// Reproduces Fig. 7: BER vs receiving optical power for the two plotted
// 10 Gb/s bi-directional links (channel 1 and channel 8) between the
// dCOMPUBRICK and the dMEMBRICK, after traversing multiple hops through
// the Polatis optical circuit switch. The paper reports all links below
// 1e-12 BER with all but one channel traversing eight hops (the remaining
// one traversing six).

#include <cmath>
#include <cstdio>

#include "optics/link_budget.hpp"
#include "optics/mbo.hpp"
#include "optics/receiver.hpp"
#include "optics/units.hpp"
#include "sim/random.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace dredbox;

struct ChannelRun {
  std::size_t channel;
  std::size_t hops;
  sim::SampleSet rx_power_dbm;
  sim::SampleSet log10_ber;
};

ChannelRun measure_channel(const optics::MboChannel& channel, std::size_t hops,
                           const optics::ReceiverModel& rx, sim::Rng& rng,
                           std::size_t trials) {
  ChannelRun run;
  run.channel = channel.index + 1;
  run.hops = hops;
  for (std::size_t t = 0; t < trials; ++t) {
    optics::LinkBudget lb{channel.launch_dbm};
    lb.add_loss("TX MBO coupling", 1.2);
    lb.add_loss("TX connector", 0.3);
    // Per-hop insertion loss varies slightly trial to trial (polarization
    // and alignment drift of the beam-steering switch).
    for (std::size_t h = 0; h < hops; ++h) {
      lb.add_loss("switch hop", std::max(0.6, 1.0 + rng.normal(0.0, 0.08)));
    }
    lb.add_loss("RX connector", 0.3);
    lb.add_loss("RX MBO coupling", 1.2);
    const double rx_dbm = lb.received_dbm() + rng.normal(0.0, 0.15);  // meter noise
    run.rx_power_dbm.add(rx_dbm);
    run.log10_ber.add(std::log10(std::max(rx.ber(rx_dbm), 1e-30)));
  }
  return run;
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: BER vs receiving optical power (10 Gb/s links) ===\n");
  std::printf("SiP MBO: 8 channels, shared 1310 nm laser, mean launch -3.7 dBm\n");
  std::printf("Optical switch: ~1 dB insertion loss per hop; FEC-free interface\n\n");

  sim::Rng rng{2024};
  optics::MboConfig mbo_cfg;
  optics::MidBoardOptics mbo{mbo_cfg, rng};
  // Receiver sensitivity calibrated so the 8-hop budget lands just below
  // the paper's 1e-12 line.
  const optics::ReceiverModel rx{-16.5, 10.0};
  constexpr std::size_t kTrials = 400;

  // The paper's plotted pair: ch-1 (six hops) and ch-8 (eight hops).
  auto ch1 = measure_channel(mbo.channel(0), 6, rx, rng, kTrials);
  auto ch8 = measure_channel(mbo.channel(7), 8, rx, rng, kTrials);

  sim::TextTable table{{"link", "hops", "rx power med (dBm)", "rx power IQR (dB)",
                        "BER med", "BER q1", "BER q3", "BER max"}};
  for (const auto* run : {&ch1, &ch8}) {
    const auto power = run->rx_power_dbm.box_plot();
    const auto ber = run->log10_ber.box_plot();
    table.add_row({"ch-" + std::to_string(run->channel), std::to_string(run->hops),
                   sim::TextTable::num(power.median, 2), sim::TextTable::num(power.iqr(), 2),
                   sim::TextTable::sci(std::pow(10.0, ber.median)),
                   sim::TextTable::sci(std::pow(10.0, ber.q1)),
                   sim::TextTable::sci(std::pow(10.0, ber.q3)),
                   sim::TextTable::sci(std::pow(10.0, ber.maximum))});
  }
  std::printf("%s\n", table.to_string().c_str());
  sim::maybe_write_csv("fig7_ber", table);

  // The figure's curve: BER as a function of received power for the model.
  std::printf("BER vs received power (receiver curve):\n");
  sim::TextTable curve{{"rx power (dBm)", "Q", "BER"}};
  for (double p = -20.0; p <= -10.0; p += 1.0) {
    curve.add_row({sim::TextTable::num(p, 1), sim::TextTable::num(rx.q_factor(p), 2),
                   sim::TextTable::sci(rx.ber(p))});
  }
  std::printf("%s\n", curve.to_string().c_str());

  // Extension sweep: how many FEC-free hops does the budget support?
  // (The scalability question behind the paper's "work is on-going to
  // obtain similar results on higher throughput transceiver links".)
  std::printf("Hop-count head-room (median channel, worst-trial BER over %zu trials):\n",
              kTrials);
  sim::TextTable hops_tbl{{"hops", "median rx (dBm)", "worst-trial BER", "< 1e-12"}};
  for (std::size_t hops = 2; hops <= 14; hops += 2) {
    auto run = measure_channel(mbo.channel(3), hops, rx, rng, kTrials);
    const double worst = std::pow(10.0, run.log10_ber.box_plot().maximum);
    hops_tbl.add_row({std::to_string(hops),
                      sim::TextTable::num(run.rx_power_dbm.median(), 2),
                      sim::TextTable::sci(worst), worst < 1e-12 ? "yes" : "NO"});
  }
  std::printf("%s\n", hops_tbl.to_string().c_str());

  const bool both_below = std::pow(10.0, ch1.log10_ber.box_plot().maximum) < 1e-12 &&
                          std::pow(10.0, ch8.log10_ber.box_plot().maximum) < 1e-12;
  std::printf("Paper claim check: all bi-directional links achieve BER below 1e-12 -> %s\n",
              both_below ? "REPRODUCED" : "NOT reproduced");
  std::printf("Shape check: ch-8 (8 hops) receives less power than ch-1 (6 hops) -> %s\n",
              ch8.rx_power_dbm.median() < ch1.rx_power_dbm.median() ? "REPRODUCED"
                                                                    : "NOT reproduced");
  return both_below ? 0 : 1;
}
