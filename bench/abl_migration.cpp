// Ablation: VM migration cost vs disaggregated-memory fraction (project
// objective: "enhanced elasticity and improved process/VM migration").
// In dReDBox only the guest's local DIMMs are pre-copied; disaggregated
// segments are re-pointed (RMST + circuit move) with zero data movement.
// A conventional server must stream the whole footprint.

#include <cstdio>
#include <memory>

#include "orch/migration.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

struct Testbed {
  hw::Rack rack;
  optics::OpticalSwitch sw;
  std::unique_ptr<optics::CircuitManager> circuits;
  std::unique_ptr<memsys::RemoteMemoryFabric> fabric;
  std::unique_ptr<orch::SdmController> sdm;
  std::unique_ptr<orch::MigrationEngine> engine;

  struct Stack {
    explicit Stack(hw::ComputeBrick& brick)
        : os{brick}, hypervisor{brick, os}, agent{hypervisor, os} {}
    os::BareMetalOs os;
    hyp::Hypervisor hypervisor;
    orch::SdmAgent agent;
  };
  std::vector<std::unique_ptr<Stack>> stacks;
  std::vector<hw::BrickId> computes;

  Testbed() {
    circuits = std::make_unique<optics::CircuitManager>(sw);
    fabric = std::make_unique<memsys::RemoteMemoryFabric>(rack, *circuits);
    sdm = std::make_unique<orch::SdmController>(rack, *fabric, *circuits);
    engine = std::make_unique<orch::MigrationEngine>(rack, *fabric, *sdm);
    const hw::TrayId tray_a = rack.add_tray();
    const hw::TrayId tray_b = rack.add_tray();
    hw::ComputeBrickConfig cc;
    cc.apu_cores = 4;
    cc.local_memory_bytes = 16 * kGiB;
    for (hw::TrayId tray : {tray_a, tray_b}) {
      auto& cb = rack.add_compute_brick(tray, cc);
      stacks.push_back(std::make_unique<Stack>(cb));
      sdm->register_agent(stacks.back()->agent);
      computes.push_back(cb.id());
    }
    hw::MemoryBrickConfig mc;
    mc.capacity_bytes = 64 * kGiB;
    rack.add_memory_brick(tray_b, mc);
  }
};

}  // namespace

int main() {
  std::printf("=== Ablation: migration cost vs disaggregated-memory fraction ===\n");
  std::printf("VM footprint: 16 GiB total; local portion pre-copied at 10 Gb/s,\n");
  std::printf("disaggregated segments re-pointed (zero copy).\n\n");

  sim::TextTable table{{"remote fraction", "copied (GiB)", "re-pointed (GiB)",
                        "total time (s)", "downtime (ms)", "vs all-local"}};

  // The all-local baseline (conventional mainboard).
  Testbed probe;
  const sim::Time conventional = probe.engine->conventional_copy_time(16 * kGiB);

  for (const std::uint64_t remote_gib : {0ull, 4ull, 8ull, 12ull, 15ull}) {
    Testbed tb;
    const std::uint64_t local_gib = 16 - remote_gib;
    orch::AllocationRequest req;
    req.vcpus = 2;
    req.memory_bytes = local_gib * kGiB;
    const auto vm = tb.sdm->allocate_vm(req, sim::Time::zero());
    if (!vm.ok) {
      std::printf("boot failed: %s\n", vm.error.c_str());
      return 1;
    }
    for (std::uint64_t g = 0; g < remote_gib; ++g) {
      orch::ScaleUpRequest sr;
      sr.vm = vm.vm;
      sr.compute = vm.compute;
      sr.bytes = kGiB;
      sr.posted_at = sim::Time::sec(1 + static_cast<double>(g));
      const auto r = tb.sdm->scale_up(sr);
      if (!r.ok) {
        std::printf("scale-up failed: %s\n", r.error.c_str());
        return 1;
      }
    }
    const auto result =
        tb.engine->migrate(vm.vm, tb.computes[0], tb.computes[1], sim::Time::sec(100));
    if (!result.ok) {
      std::printf("migration failed: %s\n", result.error.c_str());
      return 1;
    }
    char frac[16];
    std::snprintf(frac, sizeof frac, "%2llu/16",
                  static_cast<unsigned long long>(remote_gib));
    table.add_row({frac,
                   sim::TextTable::num(static_cast<double>(result.copied_bytes) / kGiB, 2),
                   sim::TextTable::num(static_cast<double>(result.repointed_bytes) / kGiB, 0),
                   sim::TextTable::num(result.total_time.as_sec(), 2),
                   sim::TextTable::num(result.downtime.as_ms(), 0),
                   sim::TextTable::num(conventional.as_sec() / result.total_time.as_sec(), 1) +
                       "x faster"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("All-local conventional baseline: %.2f s to move 16 GiB\n\n",
              conventional.as_sec());
  std::printf("Design-choice check: migration time shrinks with the disaggregated\n");
  std::printf("fraction because re-pointing RMST entries replaces data movement —\n");
  std::printf("the 'improved VM migration' the project objectives promise.\n");
  return 0;
}
