// Ablation: dMEMBRICK link usage (Section II). "dMEMBRICKs can support
// multiple links. These links can be used to provide more aggregate
// bandwidth, or can be partitioned by orchestrator software and assigned
// to different dCOMPUBRICKs, depending on the resource allocation policy."
// This bench measures both modes: burst completion time with 1/2/4
// aggregated links, and isolation when two dCOMPUBRICKs share vs own
// their links.

#include <cstdio>

#include "memsys/remote_memory.hpp"
#include "net/packet_network.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {
using namespace dredbox;

/// Time for `burst` back-to-back 4 KiB reads from one compute brick using
/// `links` parallel links on the dMEMBRICK side.
double burst_completion_us(std::size_t links, int burst) {
  net::PacketNetwork network;
  const hw::BrickId cpu{1}, mem{2};
  network.add_brick(cpu, links);
  network.add_brick(mem, links);
  network.connect_multipath(cpu, mem, links, 10.0);
  sim::Time done;
  for (int i = 0; i < burst; ++i) {
    done = network.remote_read(cpu, mem, 0x0, 4096, sim::Time::zero()).delivered_at;
  }
  return done.as_us();
}

}  // namespace

int main() {
  std::printf("=== Ablation: dMEMBRICK link aggregation vs partitioning ===\n\n");

  constexpr int kBurst = 64;
  std::printf("Mode A: aggregate bandwidth (round-robin over parallel links)\n");
  sim::TextTable agg{{"links", "64x4KiB burst (us)", "speedup"}};
  const double base = burst_completion_us(1, kBurst);
  for (std::size_t links : {1u, 2u, 4u, 8u}) {
    const double t = burst_completion_us(links, kBurst);
    agg.add_row({std::to_string(links), sim::TextTable::num(t, 1),
                 sim::TextTable::num(base / t, 2) + "x"});
  }
  std::printf("%s\n", agg.to_string().c_str());

  std::printf("Mode B: partitioning (two dCOMPUBRICKs on one dMEMBRICK)\n");
  // Shared: both bricks' traffic multiplexes over the same single link.
  net::PacketNetwork shared;
  const hw::BrickId cpu1{1}, cpu2{2}, mem{3};
  shared.add_brick(cpu1, 1);
  shared.add_brick(cpu2, 1);
  shared.add_brick(mem, 1);
  shared.connect(cpu1, mem, 10.0);
  shared.connect(cpu2, mem, 10.0);
  sim::SampleSet shared_lat;
  for (int i = 0; i < kBurst; ++i) {
    // Interleaved bursts from both bricks arriving together contend on the
    // dMEMBRICK's single egress for the responses.
    shared_lat.add(shared.remote_read(cpu1, mem, 0x0, 4096, sim::Time::zero()).latency().as_us());
    shared_lat.add(shared.remote_read(cpu2, mem, 0x0, 4096, sim::Time::zero()).latency().as_us());
  }

  // Partitioned: the orchestrator assigns each brick its own link (its own
  // egress port on the dMEMBRICK switch).
  net::PacketNetwork split;
  split.add_brick(cpu1, 1);
  split.add_brick(cpu2, 1);
  split.add_brick(mem, 2);
  split.connect(cpu1, mem, 10.0);
  split.connect(cpu2, mem, 10.0);
  split.switch_of(mem).program_route(cpu1, 0);
  split.switch_of(mem).program_route(cpu2, 1);
  sim::SampleSet split_lat;
  for (int i = 0; i < kBurst; ++i) {
    split_lat.add(split.remote_read(cpu1, mem, 0x0, 4096, sim::Time::zero()).latency().as_us());
    split_lat.add(split.remote_read(cpu2, mem, 0x0, 4096, sim::Time::zero()).latency().as_us());
  }

  sim::TextTable part{{"configuration", "mean RT (us)", "p95 RT (us)", "max RT (us)"}};
  part.add_row({"shared single link", sim::TextTable::num(shared_lat.mean(), 1),
                sim::TextTable::num(shared_lat.percentile(95), 1),
                sim::TextTable::num(shared_lat.max(), 1)});
  part.add_row({"partitioned (1 link each)", sim::TextTable::num(split_lat.mean(), 1),
                sim::TextTable::num(split_lat.percentile(95), 1),
                sim::TextTable::num(split_lat.max(), 1)});
  std::printf("%s\n", part.to_string().c_str());

  // Mode C: lane bonding on the mainline circuit path (the same
  // aggregate-bandwidth idea without packet framing).
  std::printf("Mode C: bonded lanes on the circuit-switched mainline (16 KiB read)\n");
  sim::TextTable bond_tbl{{"lanes", "round trip (us)", "switch ports"}};
  for (std::size_t lanes : {1u, 2u, 4u}) {
    hw::Rack rack;
    const hw::TrayId t1 = rack.add_tray();
    const hw::TrayId t2 = rack.add_tray();
    const hw::BrickId cpu = rack.add_compute_brick(t1).id();
    const hw::BrickId memb = rack.add_memory_brick(t2).id();
    optics::OpticalSwitch sw;
    optics::CircuitManager circuits{sw};
    memsys::RemoteMemoryFabric fabric{rack, circuits};
    memsys::AttachRequest req;
    req.compute = cpu;
    req.membrick = memb;
    req.lanes = lanes;
    auto a = fabric.attach(req, sim::Time::zero());
    if (!a) continue;
    const auto tx = fabric.read(cpu, a->compute_base, 16384, sim::Time::zero());
    bond_tbl.add_row({std::to_string(lanes),
                      sim::TextTable::num(tx.round_trip().as_us(), 2),
                      std::to_string(sw.ports_in_use())});
  }
  std::printf("%s\n", bond_tbl.to_string().c_str());

  const bool agg_scales = burst_completion_us(4, kBurst) < 0.5 * base;
  const bool isolation = split_lat.mean() < shared_lat.mean();
  std::printf("Design-choice checks:\n");
  std::printf("  aggregating 4 links >2x faster on bursts -> %s\n",
              agg_scales ? "CONFIRMED" : "NOT confirmed");
  std::printf("  partitioning isolates tenants (lower mean RT) -> %s\n",
              isolation ? "CONFIRMED" : "NOT confirmed");
  return (agg_scales && isolation) ? 0 : 1;
}
