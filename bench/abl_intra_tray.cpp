// Ablation: intra-tray electrical vs cross-tray optical circuits
// (Section II: "Intra-tray bricks are connected over a low latency/high-
// throughput electrical circuit, whereas trays utilize optical networks
// for cross-tray, in-rack interconnection."). Quantifies the latency gap
// and the optical-switch ports the electrical substrate saves — and hence
// why the SDM-C prefers same-tray dMEMBRICKs.

#include <cstdio>

#include "memsys/remote_memory.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
}

int main() {
  std::printf("=== Ablation: intra-tray electrical vs cross-tray optical ===\n\n");

  hw::Rack rack;
  const hw::TrayId tray_a = rack.add_tray();
  const hw::TrayId tray_b = rack.add_tray();
  const hw::BrickId cpu = rack.add_compute_brick(tray_a).id();
  const hw::BrickId mem_local = rack.add_memory_brick(tray_a).id();   // same tray
  const hw::BrickId mem_remote = rack.add_memory_brick(tray_b).id();  // other tray
  optics::OpticalSwitch sw;
  optics::CircuitManager circuits{sw};
  memsys::RemoteMemoryFabric fabric{rack, circuits};

  memsys::AttachRequest local_req;
  local_req.compute = cpu;
  local_req.membrick = mem_local;
  const auto local = fabric.attach(local_req, sim::Time::zero());
  memsys::AttachRequest remote_req;
  remote_req.compute = cpu;
  remote_req.membrick = mem_remote;
  const auto remote = fabric.attach(remote_req, sim::Time::zero());
  if (!local || !remote) {
    std::printf("attach failed\n");
    return 1;
  }
  std::printf("intra-tray attach medium: %s (switch ports used: %zu)\n",
              memsys::to_string(local->medium).c_str(), sw.ports_in_use());
  std::printf("cross-tray attach medium: %s (switch ports used: %zu)\n\n",
              memsys::to_string(remote->medium).c_str(), sw.ports_in_use());

  sim::TextTable table{{"payload (B)", "intra-tray RT (ns)", "cross-tray RT (ns)", "saving"}};
  for (std::uint32_t bytes : {64u, 256u, 1024u, 4096u}) {
    const auto e = fabric.read(cpu, local->compute_base, bytes, sim::Time::ms(bytes));
    const auto o = fabric.read(cpu, remote->compute_base, bytes, sim::Time::ms(bytes) + sim::Time::us(500));
    table.add_row({std::to_string(bytes), sim::TextTable::num(e.round_trip().as_ns(), 0),
                   sim::TextTable::num(o.round_trip().as_ns(), 0),
                   sim::TextTable::pct((o.round_trip() - e.round_trip()).as_ns() /
                                       o.round_trip().as_ns())});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto e64 = fabric.read(cpu, local->compute_base, 64, sim::Time::sec(10));
  std::printf("64 B intra-tray breakdown:\n%s\n", e64.breakdown.to_string().c_str());

  std::printf("Port economics: the intra-tray attachment consumed 0 optical switch\n");
  std::printf("ports; each cross-tray circuit pins 2 (of 48). Keeping intra-tray\n");
  std::printf("traffic electrical preserves the switch for cross-tray circuits — the\n");
  std::printf("scarcity that otherwise forces the packet-switched fallback (Sec. III).\n\n");

  const bool faster =
      fabric.read(cpu, local->compute_base, 64, sim::Time::sec(20)).round_trip() <
      fabric.read(cpu, remote->compute_base, 64, sim::Time::sec(30)).round_trip();
  std::printf("Design-choice check: electrical intra-tray path is faster -> %s\n",
              faster ? "CONFIRMED" : "NOT confirmed");
  return faster ? 0 : 1;
}
