// Ablation: application slowdown vs interconnect design point. The
// paper's introduction leans on prior studies ([1] SparkSQL over 40Gbps,
// [2] network requirements for disaggregation, [3] disaggregated blade
// memory) to argue feasibility; its own contribution is an interconnect
// whose remote-access round trip is sub-microsecond ("transparent access
// to remote memory with minimal latency"). This bench puts the measured
// round trips of every substrate this repository models through the
// first-order slowdown model, with 50% of each application's working set
// disaggregated.

#include <cstdio>

#include "core/app_performance.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;

struct Interconnect {
  const char* name;
  sim::Time round_trip;
};

}  // namespace

int main() {
  std::printf("=== Ablation: application slowdown vs interconnect (50%% remote) ===\n\n");

  // Round trips measured by the other benches of this repository, plus
  // the commodity alternatives the related work evaluated.
  const Interconnect interconnects[] = {
      {"electrical intra-tray (abl_intra_tray)", sim::Time::ns(285)},
      {"optical circuit (abl_circuit_vs_packet)", sim::Time::ns(486)},
      {"packet substrate (fig8)", sim::Time::ns(1399)},
      {"RDMA/InfiniBand-class [5][6]", sim::Time::us(3)},
      {"40GbE block device-class", sim::Time::us(20)},
  };

  core::DisaggregationSlowdownModel model;
  const auto apps = core::DisaggregationSlowdownModel::reference_profiles();

  std::vector<std::string> header{"application"};
  for (const auto& ic : interconnects) header.push_back(ic.name);
  sim::TextTable table{header};
  for (const auto& app : apps) {
    std::vector<std::string> row{app.name};
    for (const auto& ic : interconnects) {
      row.push_back(sim::TextTable::num(model.slowdown(app, 0.5, ic.round_trip), 2) + "x");
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Latency budget for <=10%% slowdown at 50%% remote working set:\n");
  sim::TextTable budget{{"application", "budget (round trip)"}};
  for (const auto& app : apps) {
    budget.add_row({app.name, model.latency_budget(app, 0.5, 1.10).to_string()});
  }
  std::printf("%s\n", budget.to_string().c_str());

  // The design-point check: the circuit path holds the pilot-class apps
  // near native; the commodity paths do not hold the demanding ones.
  bool circuit_ok = true;
  bool commodity_fails_someone = false;
  for (const auto& app : apps) {
    if (app.name.find("KV store") != std::string::npos) continue;
    const double s486 = model.slowdown(app, 0.5, sim::Time::ns(486));
    const bool pilot = app.name.find("video") != std::string::npos ||
                       app.name.find("NFV") != std::string::npos;
    if (pilot ? s486 >= 1.10 : s486 >= 1.35) circuit_ok = false;
    if (model.slowdown(app, 0.5, sim::Time::us(20)) >= 1.5) commodity_fails_someone = true;
  }
  std::printf("Design-point checks:\n");
  std::printf("  sub-us circuit path: pilots within 10%%, analytics within 35%% -> %s\n",
              circuit_ok ? "CONFIRMED" : "NOT confirmed");
  std::printf("  40GbE-class paths inflate demanding apps >1.5x -> %s\n",
              commodity_fails_someone ? "CONFIRMED" : "NOT confirmed");
  std::printf("\nThis is the quantitative case for the FEC-free, circuit-switched\n");
  std::printf("design: every 100 ns on the round trip is ~%.0f%% slowdown for the\n",
              (model.slowdown(apps[3], 0.5, sim::Time::ns(586)) -
               model.slowdown(apps[3], 0.5, sim::Time::ns(486))) *
                  100.0);
  std::printf("memory-intensive analytics profile at 50%% remote.\n");
  return circuit_ok ? 0 : 1;
}
