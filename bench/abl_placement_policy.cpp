// Ablation: the SDM-C's power-consumption-conscious resource selection
// (Section IV-C, role (b)) vs a naive spreading policy. The packing
// policy is what turns independent resource pools into the Fig. 12/13
// power-off opportunity: it concentrates segments on already-active
// dMEMBRICKs so the rest can stay powered off.

#include <cstdio>

#include "core/datacenter.hpp"
#include "sim/report.hpp"

namespace {
using namespace dredbox;
constexpr std::uint64_t kGiB = 1ull << 30;

core::DatacenterConfig config() {
  core::DatacenterConfig cfg;
  cfg.trays = 2;
  cfg.compute_bricks_per_tray = 2;
  cfg.memory_bricks_per_tray = 4;  // 8 dMEMBRICKs x 32 GiB
  cfg.optical_switch.ports = 96;
  return cfg;
}

struct Outcome {
  std::size_t active_membricks = 0;
  std::size_t idle_membricks = 0;
  double power_w = 0.0;
};

/// Boots 4 VMs and issues 12 x 2 GiB scale-ups under the given policy.
Outcome run(bool power_conscious) {
  core::Datacenter dc{config()};
  std::vector<std::pair<hw::VmId, hw::BrickId>> vms;
  for (int i = 0; i < 4; ++i) {
    const auto r = dc.boot_vm("vm" + std::to_string(i), 1, kGiB);
    if (!r.ok) throw std::runtime_error("boot failed: " + r.error);
    vms.emplace_back(r.vm, r.compute);
  }

  const auto membricks = dc.memory_bricks();
  std::size_t rr = 0;
  for (int i = 0; i < 12; ++i) {
    auto [vm, brick] = vms[static_cast<std::size_t>(i) % vms.size()];
    dc.advance_to(sim::Time::sec(10.0 * (i + 1)));
    if (power_conscious) {
      const auto r = dc.scale_up(vm, brick, 2 * kGiB);
      if (!r.ok) throw std::runtime_error("scale-up failed: " + r.error);
    } else {
      // Naive spreading: round-robin the pool, waking every brick.
      memsys::AttachRequest areq;
      areq.compute = brick;
      areq.membrick = membricks[rr++ % membricks.size()];
      areq.bytes = 2 * kGiB;
      if (dc.rack().brick(areq.membrick).power_state() == hw::PowerState::kOff) {
        dc.rack().brick(areq.membrick).power_on();
      }
      const auto a = dc.fabric().attach(areq, dc.simulator().now());
      if (!a) throw std::runtime_error("attach failed");
      dc.agent_of(brick).attach_physical(*a);
      dc.agent_of(brick).expand_guest(vm, *a, dc.simulator().now());
    }
  }

  Outcome out;
  for (hw::BrickId mb : dc.memory_bricks()) {
    if (dc.rack().brick(mb).power_state() == hw::PowerState::kActive) {
      ++out.active_membricks;
    } else {
      ++out.idle_membricks;  // candidates for power-off
    }
  }
  // Power once idle bricks are actually powered off.
  for (hw::BrickId mb : dc.memory_bricks()) {
    auto& b = dc.rack().brick(mb);
    if (b.power_state() == hw::PowerState::kIdle) b.power_off();
  }
  out.power_w = dc.power_draw_watts();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: power-conscious (SDM-C) vs naive spreading placement ===\n");
  std::printf("Workload: 4 VMs, 12 x 2 GiB scale-ups across an 8-dMEMBRICK pool\n\n");

  const Outcome packed = run(/*power_conscious=*/true);
  const Outcome spread = run(/*power_conscious=*/false);

  sim::TextTable table{{"policy", "active dMEMBRICKs", "power-off candidates", "rack power (W)"}};
  table.add_row({"SDM-C power-conscious", std::to_string(packed.active_membricks),
                 std::to_string(packed.idle_membricks),
                 sim::TextTable::num(packed.power_w, 1)});
  table.add_row({"naive spreading", std::to_string(spread.active_membricks),
                 std::to_string(spread.idle_membricks),
                 sim::TextTable::num(spread.power_w, 1)});
  std::printf("%s\n", table.to_string().c_str());

  const double saving = (spread.power_w - packed.power_w) / spread.power_w;
  std::printf("Design-choice check: packing keeps more bricks off and saves %.1f%%\n",
              saving * 100);
  std::printf("rack power for the same served memory -> %s\n",
              packed.active_membricks < spread.active_membricks && saving > 0.0
                  ? "CONFIRMED"
                  : "NOT confirmed");
  return packed.active_membricks < spread.active_membricks ? 0 : 1;
}
